"""Minimal in-tree PEP 517 build backend.

This environment (and many air-gapped clusters) cannot download build
dependencies, and pip's default setuptools editable path additionally needs
the ``wheel`` package.  This shim implements the PEP 517/660 hooks directly —
zero build requirements, pure stdlib — so ``pip install -e .`` and
``pip install .`` work offline.  Wheels are just zip files with a dist-info
directory; editable wheels carry a ``.pth`` file pointing at ``src/``.

``python setup.py develop`` remains available as the legacy fallback.
"""

from __future__ import annotations

import base64
import hashlib
import os
import zipfile
from pathlib import Path

_ROOT = Path(__file__).parent
_NAME = "repro"
_VERSION = "1.0.0"
_TAG = "py3-none-any"

_METADATA = f"""Metadata-Version: 2.1
Name: {_NAME}
Version: {_VERSION}
Summary: Parallel algebraic preconditioners for distributed sparse linear systems (reproduction of Cai & Sosonkina, IPPS 2003)
Requires-Python: >=3.10
Requires-Dist: numpy>=1.24
Requires-Dist: scipy>=1.10
"""

_WHEEL = f"""Wheel-Version: 1.0
Generator: build_shim
Root-Is-Purelib: true
Tag: {_TAG}
"""


def _record_hash(data: bytes) -> str:
    digest = hashlib.sha256(data).digest()
    return "sha256=" + base64.urlsafe_b64encode(digest).rstrip(b"=").decode()


class _WheelWriter:
    def __init__(self, directory: str, editable: bool) -> None:
        kind = "editable" if editable else ""
        self.filename = f"{_NAME}-{_VERSION}-{_TAG}.whl"
        self.path = Path(directory) / self.filename
        self.zf = zipfile.ZipFile(self.path, "w", zipfile.ZIP_DEFLATED)
        self.records: list[str] = []

    def add(self, arcname: str, data: bytes) -> None:
        self.zf.writestr(arcname, data)
        self.records.append(f"{arcname},{_record_hash(data)},{len(data)}")

    def finish(self) -> str:
        info = f"{_NAME}-{_VERSION}.dist-info"
        self.add(f"{info}/METADATA", _METADATA.encode())
        self.add(f"{info}/WHEEL", _WHEEL.encode())
        record_name = f"{info}/RECORD"
        record_body = "\n".join(self.records + [f"{record_name},,"]) + "\n"
        self.zf.writestr(record_name, record_body)
        self.zf.close()
        return self.filename


# -- PEP 517 hooks -----------------------------------------------------------


def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    w = _WheelWriter(wheel_directory, editable=False)
    pkg_root = _ROOT / "src" / _NAME
    for path in sorted(pkg_root.rglob("*.py")):
        arcname = str(Path(_NAME) / path.relative_to(pkg_root)).replace(os.sep, "/")
        w.add(arcname, path.read_bytes())
    return w.finish()


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    w = _WheelWriter(wheel_directory, editable=True)
    src = str((_ROOT / "src").resolve())
    w.add(f"__editable__.{_NAME}.pth", (src + "\n").encode())
    return w.finish()


def build_sdist(sdist_directory, config_settings=None):
    import tarfile

    name = f"{_NAME}-{_VERSION}"
    path = Path(sdist_directory) / f"{name}.tar.gz"
    with tarfile.open(path, "w:gz") as tf:
        for rel in ("pyproject.toml", "setup.py", "build_shim.py", "README.md"):
            p = _ROOT / rel
            if p.exists():
                tf.add(p, arcname=f"{name}/{rel}")
        tf.add(_ROOT / "src", arcname=f"{name}/src")
    return path.name
