"""End-to-end over real OS processes: bitwise backend equality, and
kill-and-recover with a genuine SIGKILL mid-solve.

These are the acceptance tests for the multiprocess backend: the solver
must produce byte-identical answers whether ranks are simulated or real
processes, and a rank that is truly killed (not simulated) must be
detected, classified, and absorbed — with the recovered solution still
meeting the original convergence target.
"""

import numpy as np
import pytest

from repro import faults, obs
from repro.cases import poisson2d_case
from repro.core.driver import solve_case
from repro.resilience import ResilientSolver
from repro.resilience.errors import RankDeadError


def _events(tracer, name):
    evs = [e for e in tracer.orphan_events if e["name"] == name]
    for s in tracer.spans:
        evs.extend(e for e in s.events if e["name"] == name)
    return evs


@pytest.fixture(scope="module")
def case():
    return poisson2d_case(12)


class TestBackendEquality:
    def test_solutions_bitwise_identical_across_backends(self, case):
        ref = solve_case(case, precond="schur1", nparts=3)
        out = solve_case(case, precond="schur1", nparts=3,
                         backend="multiprocess")
        assert out.status == ref.status == "converged"
        assert out.iterations == ref.iterations
        assert out.x_global.tobytes() == ref.x_global.tobytes()
        assert out.residuals == ref.residuals
        assert out.backend == "multiprocess" and ref.backend == "inprocess"

    def test_real_transport_actually_used(self, case):
        with obs.tracing() as tracer:
            out = solve_case(case, precond="schur1", nparts=2,
                             backend="multiprocess")
        assert out.status == "converged"
        assert out.comm_stats["messages"] > 0
        (sel,) = _events(tracer, "comm.backend.selected")
        assert sel["attrs"]["backend"] == "multiprocess"
        assert sel["attrs"]["real"] is True
        assert _events(tracer, "comm.backend.ready")


class TestKillAndRecover:
    def test_sigkilled_worker_is_classified_and_absorbed(self, case):
        """A real SIGKILL mid-solve ends in a recovered, accurate solution."""
        baseline = solve_case(case, precond="schur1", nparts=3)
        assert baseline.status == "converged"
        # the tolerance the original solve was asked to meet (default
        # rtol=1e-6 relative reduction from the zero initial guess)
        atol = 1e-6 * np.linalg.norm(case.rhs)

        plan = faults.FaultPlan(
            faults.FaultSpec("proc-kill", rank=2, start=4)
        )
        with obs.tracing() as tracer, faults.inject(plan):
            res = ResilientSolver().solve(
                case, precond="schur1", nparts=3, backend="multiprocess",
            )

        # the fault really fired against a real process
        (rec,) = plan.injected
        assert rec["kind"] == "proc-kill" and rec["degraded"] is False
        # the supervisor saw a process death, not a simulated timeout
        assert isinstance(res.attempts[0].error, RankDeadError)
        assert [a.kind for a in res.attempts] == ["primary", "rank-recovery"]
        assert res.recovered

        # recovered solution meets the original target
        out = res.outcome
        assert out.status == "converged"
        resid = np.linalg.norm(case.rhs - case.matrix @ out.x_global)
        assert resid <= atol

        exits = _events(tracer, "comm.backend.rank_exit")
        assert any(e["attrs"]["exitcode"] == -9 for e in exits)
        assert _events(tracer, "comm.backend.classified")

    def test_hang_is_fenced_then_recovered(self, case):
        """A SIGSTOPped worker exhausts the heartbeat budget, gets fenced
        (SIGKILL), and recovery proceeds exactly as for a crash."""
        plan = faults.FaultPlan(
            faults.FaultSpec("proc-hang", rank=1, start=4)
        )
        with obs.tracing() as tracer, faults.inject(plan):
            res = ResilientSolver().solve(
                case, precond="schur1", nparts=3, backend="multiprocess",
            )
        assert res.recovered
        assert res.outcome.status == "converged"
        assert _events(tracer, "comm.backend.heartbeat_miss")
        fenced = _events(tracer, "comm.backend.fenced")
        assert fenced and fenced[0]["attrs"]["rank"] == 1


class TestWorkerResidentState:
    """Worker-resident subdomain compute: parity, shipping, and recovery."""

    def test_block2_bitwise_identical_across_backends(self, case):
        # block2's hot path (ILU sweeps + matvec) runs *in the workers* on
        # the multiprocess backend; the answers must still be bitwise equal
        ref = solve_case(case, precond="block2", nparts=3)
        out = solve_case(case, precond="block2", nparts=3,
                         backend="multiprocess")
        assert out.status == ref.status == "converged"
        assert out.iterations == ref.iterations
        assert out.x_global.tobytes() == ref.x_global.tobytes()
        assert out.residuals == ref.residuals

    def test_worker_rounds_carry_the_hot_path(self, case):
        with obs.tracing() as tracer:
            out = solve_case(case, precond="block2", nparts=2,
                             backend="multiprocess")
        assert out.status == "converged"
        rounds = _events(tracer, "comm.worker.round")
        ops = {e["attrs"]["op"] for e in rounds}
        # sweeps and ghost-only matvecs run worker-side every iteration;
        # state ships via load/factor rounds
        assert "apply" in ops
        assert "matvec-ghosts" in ops
        assert ops & {"load-factor", "factor"}
        # per-rank attribution present on every round
        for e in rounds:
            assert len(e["attrs"]["seconds"]) == len(e["attrs"]["ranks"])
            assert len(e["attrs"]["cpu_seconds"]) == len(e["attrs"]["ranks"])
        # content addressing: factors ship once, not once per iteration
        napply = sum(1 for e in rounds if e["attrs"]["op"] == "apply")
        nload = sum(1 for e in rounds
                    if e["attrs"]["op"] in ("load-factor", "load-matrix",
                                            "factor"))
        assert napply > 2 * nload

    def test_kill_mid_solve_reships_worker_state_and_recovers(self, case):
        """SIGKILL a rank mid-iteration: the recovered solve must re-ship
        subdomain state to a fresh worker fleet and still hit the original
        convergence target (satellite: worker-resident state across
        ``absorb_rank``)."""
        baseline = solve_case(case, precond="block2", nparts=3)
        assert baseline.status == "converged"
        atol = 1e-6 * np.linalg.norm(case.rhs)

        plan = faults.FaultPlan(
            faults.FaultSpec("proc-kill", rank=2, start=6)
        )
        with obs.tracing() as tracer, faults.inject(plan):
            res = ResilientSolver().solve(
                case, precond="block2", nparts=3, backend="multiprocess",
            )
        (rec,) = plan.injected
        assert rec["kind"] == "proc-kill"
        assert res.recovered
        out = res.outcome
        assert out.status == "converged"
        resid = np.linalg.norm(case.rhs - case.matrix @ out.x_global)
        assert resid <= atol

        # worker state moved twice: once in the primary attempt, and again
        # after recovery built a fresh backend (empty shipped-key set)
        rounds = _events(tracer, "comm.worker.round")
        ship_rounds = [e for e in rounds
                       if e["attrs"]["op"] in ("load-factor", "load-matrix")]
        assert len(ship_rounds) >= 2

    def test_reshipped_keys_match_content_identity(self, partitioned_poisson):
        """A fresh session (what recovery creates) re-ships under the *same*
        content digests — the reloaded subdomain hash matches what the
        original session shipped."""
        from repro.comm import compute
        from repro.comm.communicator import Communicator
        from repro.precond.block_jacobi import block2

        pm, dmat, rhs, _ = partitioned_poisson
        comm = Communicator(pm.num_ranks, backend="multiprocess")
        try:
            M = block2(dmat, comm)
            z = M.apply(pm.to_distributed(rhs))
            assert np.isfinite(z).all()
            wc = compute.session(comm)
            assert wc is not None
            keys = dict(M._ship_keys)
            assert all(wc.is_shipped(r, keys[r]) for r in keys)
            # recovery semantics: a brand-new session starts empty and must
            # re-ship every factor under the identical content key
            wc2 = compute.WorkerCompute(comm)
            assert M._ensure_worker_factors(wc2) == pm.num_ranks
            assert all(wc2.is_shipped(r, keys[r]) for r in keys)
            assert M._ship_keys == keys
        finally:
            comm.close()


class TestBackendDeterminismCheck:
    def test_check_backend_reports_identical(self, case):
        from repro.analysis.determinism import check_determinism

        report = check_determinism([case], nparts=3, checks=["backend"])
        kinds = {c.kind for c in report.checks}
        assert kinds == {"backend"}
        assert report.identical
        assert report.checks  # one per case
