"""End-to-end over real OS processes: bitwise backend equality, and
kill-and-recover with a genuine SIGKILL mid-solve.

These are the acceptance tests for the multiprocess backend: the solver
must produce byte-identical answers whether ranks are simulated or real
processes, and a rank that is truly killed (not simulated) must be
detected, classified, and absorbed — with the recovered solution still
meeting the original convergence target.
"""

import numpy as np
import pytest

from repro import faults, obs
from repro.cases import poisson2d_case
from repro.core.driver import solve_case
from repro.resilience import ResilientSolver
from repro.resilience.errors import RankDeadError


def _events(tracer, name):
    evs = [e for e in tracer.orphan_events if e["name"] == name]
    for s in tracer.spans:
        evs.extend(e for e in s.events if e["name"] == name)
    return evs


@pytest.fixture(scope="module")
def case():
    return poisson2d_case(12)


class TestBackendEquality:
    def test_solutions_bitwise_identical_across_backends(self, case):
        ref = solve_case(case, precond="schur1", nparts=3)
        out = solve_case(case, precond="schur1", nparts=3,
                         backend="multiprocess")
        assert out.status == ref.status == "converged"
        assert out.iterations == ref.iterations
        assert out.x_global.tobytes() == ref.x_global.tobytes()
        assert out.residuals == ref.residuals
        assert out.backend == "multiprocess" and ref.backend == "inprocess"

    def test_real_transport_actually_used(self, case):
        with obs.tracing() as tracer:
            out = solve_case(case, precond="schur1", nparts=2,
                             backend="multiprocess")
        assert out.status == "converged"
        assert out.comm_stats["messages"] > 0
        (sel,) = _events(tracer, "comm.backend.selected")
        assert sel["attrs"]["backend"] == "multiprocess"
        assert sel["attrs"]["real"] is True
        assert _events(tracer, "comm.backend.ready")


class TestKillAndRecover:
    def test_sigkilled_worker_is_classified_and_absorbed(self, case):
        """A real SIGKILL mid-solve ends in a recovered, accurate solution."""
        baseline = solve_case(case, precond="schur1", nparts=3)
        assert baseline.status == "converged"
        # the tolerance the original solve was asked to meet (default
        # rtol=1e-6 relative reduction from the zero initial guess)
        atol = 1e-6 * np.linalg.norm(case.rhs)

        plan = faults.FaultPlan(
            faults.FaultSpec("proc-kill", rank=2, start=4)
        )
        with obs.tracing() as tracer, faults.inject(plan):
            res = ResilientSolver().solve(
                case, precond="schur1", nparts=3, backend="multiprocess",
            )

        # the fault really fired against a real process
        (rec,) = plan.injected
        assert rec["kind"] == "proc-kill" and rec["degraded"] is False
        # the supervisor saw a process death, not a simulated timeout
        assert isinstance(res.attempts[0].error, RankDeadError)
        assert [a.kind for a in res.attempts] == ["primary", "rank-recovery"]
        assert res.recovered

        # recovered solution meets the original target
        out = res.outcome
        assert out.status == "converged"
        resid = np.linalg.norm(case.rhs - case.matrix @ out.x_global)
        assert resid <= atol

        exits = _events(tracer, "comm.backend.rank_exit")
        assert any(e["attrs"]["exitcode"] == -9 for e in exits)
        assert _events(tracer, "comm.backend.classified")

    def test_hang_is_fenced_then_recovered(self, case):
        """A SIGSTOPped worker exhausts the heartbeat budget, gets fenced
        (SIGKILL), and recovery proceeds exactly as for a crash."""
        plan = faults.FaultPlan(
            faults.FaultSpec("proc-hang", rank=1, start=4)
        )
        with obs.tracing() as tracer, faults.inject(plan):
            res = ResilientSolver().solve(
                case, precond="schur1", nparts=3, backend="multiprocess",
            )
        assert res.recovered
        assert res.outcome.status == "converged"
        assert _events(tracer, "comm.backend.heartbeat_miss")
        fenced = _events(tracer, "comm.backend.fenced")
        assert fenced and fenced[0]["attrs"]["rank"] == 1


class TestBackendDeterminismCheck:
    def test_check_backend_reports_identical(self, case):
        from repro.analysis.determinism import check_determinism

        report = check_determinism([case], nparts=3, checks=["backend"])
        kinds = {c.kind for c in report.checks}
        assert kinds == {"backend"}
        assert report.identical
        assert report.checks  # one per case
