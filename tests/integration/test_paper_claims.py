"""Qualitative reproduction of the paper's per-table claims at reduced scale.

The paper's table bodies were lost in text extraction, but its prose states
who wins where (DESIGN.md §4).  These tests assert those *shapes* on grids
small enough for CI; the benchmarks regenerate the full tables.
"""

import numpy as np
import pytest

from repro.cases.convection2d import convection2d_case
from repro.cases.elasticity_ring import elasticity_ring_case
from repro.cases.heat3d import heat3d_case
from repro.cases.poisson2d import poisson2d_case
from repro.cases.poisson3d import poisson3d_case
from repro.core.driver import solve_case
from repro.perfmodel.machine import LINUX_CLUSTER


@pytest.fixture(scope="module")
def tc1():
    return poisson2d_case(n=41)


@pytest.fixture(scope="module")
def tc2():
    return poisson3d_case(n=11)


class TestTc1Claims:
    def test_schur_variants_need_far_fewer_iterations(self, tc1):
        b1 = solve_case(tc1, "block1", nparts=4, maxiter=400)
        s1 = solve_case(tc1, "schur1", nparts=4, maxiter=400)
        s2 = solve_case(tc1, "schur2", nparts=4, maxiter=400)
        assert s1.iterations < 0.5 * b1.iterations
        assert s2.iterations < 0.5 * b1.iterations

    def test_schur2_convergence_stable_across_p(self, tc1):
        """'Schur 2 has the most stable iteration counts with respect to P.'"""
        iters = [solve_case(tc1, "schur2", nparts=p, maxiter=300).iterations for p in (2, 4, 8)]
        assert max(iters) - min(iters) <= 5

    def test_block1_slowest_convergence(self, tc1):
        outs = {
            name: solve_case(tc1, name, nparts=4, maxiter=500).iterations
            for name in ("block1", "block2", "schur1", "schur2")
        }
        assert outs["block1"] == max(outs.values())

    def test_block_per_iteration_overhead_lowest(self, tc1):
        """'Block 1/2 have very good scalability of the computational cost
        per iteration': their applications are communication-free, so their
        per-iteration synchronization (allreduces) and message counts are
        strictly below the Schur-enhanced preconditioners', whose global
        Schur iterations add inner allreduces and neighbor exchanges."""

        def per_iter_comm(name):
            out = solve_case(tc1, name, nparts=8, maxiter=400)
            led = out.solve_ledger
            it = max(out.iterations, 1)
            return led.allreduces / it, led.total_msgs / it

        b_ar, b_msg = per_iter_comm("block1")
        s_ar, s_msg = per_iter_comm("schur1")
        assert b_ar < s_ar
        assert b_msg < s_msg

    def test_block_per_iteration_flops_scale_down_with_p(self, tc1):
        """Per-iteration critical-path flops must shrink as P grows (the
        compute side of per-iteration scalability)."""

        def crit_flops_per_iter(p):
            out = solve_case(tc1, "block1", nparts=p, maxiter=400)
            return out.solve_ledger.crit_flops / max(out.iterations, 1)

        assert crit_flops_per_iter(8) < crit_flops_per_iter(2)


class TestTc2Claims:
    def test_all_four_converge_fast(self, tc2):
        for name in ("block1", "block2", "schur1", "schur2"):
            out = solve_case(tc2, name, nparts=4, maxiter=200)
            assert out.converged
            assert out.iterations < 80

    def test_block2_competitive_on_3d_poisson(self, tc2):
        """'Block 2 produces the best overall computational efficiency' for
        TC2 — at minimum it must beat the Schur variants' simulated time."""
        b2 = solve_case(tc2, "block2", nparts=4, maxiter=300)
        s1 = solve_case(tc2, "schur1", nparts=4, maxiter=300)
        assert b2.sim_time(LINUX_CLUSTER) <= 1.5 * s1.sim_time(LINUX_CLUSTER)


class TestTc4Claims:
    def test_all_preconditioners_stable_counts(self):
        """The mass matrix makes TC4 easy: stable counts for everyone."""
        case = heat3d_case(n=9)
        for name in ("block1", "block2", "schur1", "schur2"):
            iters = [
                solve_case(case, name, nparts=p, maxiter=200).iterations for p in (2, 6)
            ]
            assert max(iters) < 40
            assert iters[1] <= iters[0] + 12


class TestTc5Claims:
    def test_schur1_clear_winner(self):
        case = convection2d_case(n=41)
        s1 = solve_case(case, "schur1", nparts=4, maxiter=400)
        b1 = solve_case(case, "block1", nparts=4, maxiter=400)
        assert s1.converged
        assert s1.iterations < b1.iterations


class TestTc6Claims:
    def test_toughest_case_blocks_struggle_schur_converges(self):
        """'Block 1 and Block 2 have trouble producing satisfactory
        convergence' on the elasticity ring; the Schur variants work."""
        case = elasticity_ring_case(n_theta=25, n_r=9)
        budget = 150
        b1 = solve_case(case, "block1", nparts=4, maxiter=budget)
        s2 = solve_case(case, "schur2", nparts=4, maxiter=budget)
        assert not b1.converged  # blocks fail within a budget the Schurs meet
        assert s2.converged

    def test_schur1_also_converges(self):
        case = elasticity_ring_case(n_theta=25, n_r=9)
        s1 = solve_case(case, "schur1", nparts=4, maxiter=300)
        assert s1.converged


class TestSection51Claims:
    def test_partitioning_scheme_barely_changes_iterations(self):
        """Sec. 5.1: box vs general partitioning — 'the change in iteration
        counts is hardly noticeable'."""
        case = poisson2d_case(n=33)
        for name in ("block2", "schur1"):
            general = solve_case(case, name, nparts=4, scheme="general", maxiter=300)
            box = solve_case(case, name, nparts=4, scheme="box", maxiter=300)
            assert abs(general.iterations - box.iterations) <= max(
                6, 0.4 * general.iterations
            )

    def test_box_partitioning_better_balanced(self):
        case = poisson2d_case(n=33)
        general = solve_case(case, "block2", nparts=4, scheme="general", maxiter=300)
        box = solve_case(case, "block2", nparts=4, scheme="box", maxiter=300)
        assert box.solve_ledger.load_imbalance <= general.solve_ledger.load_imbalance + 0.02


class TestDistributedEqualsSerial:
    def test_parallel_solution_matches_direct_solve(self, tc1):
        import scipy.sparse.linalg as spla

        out = solve_case(tc1, "schur1", nparts=4, rtol=1e-10, maxiter=300)
        direct = spla.spsolve(tc1.matrix.tocsc(), tc1.rhs)
        assert np.abs(out.x_global - direct).max() < 1e-6
