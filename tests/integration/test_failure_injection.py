"""Failure-injection tests: the library must fail loudly and honestly.

Singular operators, hostile partitions, breakdown-inducing systems — every
path should either produce a correct answer or report non-convergence/raise,
never return garbage silently.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.comm.communicator import Communicator
from repro.distributed.matrix import DistributedMatrix, distribute_matrix
from repro.distributed.partition_map import PartitionMap
from repro.factor.dense import dense_lu
from repro.factor.ilu0 import ilu0
from repro.factor.ilut import ilut
from repro.graph.adjacency import graph_from_matrix
from repro.krylov.fgmres import fgmres


class TestSingularOperators:
    def test_fgmres_reports_nonconvergence_on_inconsistent_system(self):
        a = np.diag([1.0, 1.0, 0.0])
        b = np.array([1.0, 1.0, 1.0])  # b not in range(A)
        res = fgmres(lambda v: a @ v, b, rtol=1e-10, maxiter=50)
        assert not res.converged
        assert np.all(np.isfinite(res.x))

    def test_dense_lu_rejects_singular(self):
        with pytest.raises(ZeroDivisionError):
            dense_lu(np.zeros((3, 3)))

    def test_ilu_survives_zero_pivots_with_floor(self):
        """Structurally singular leading blocks must not produce NaNs."""
        a = sp.csr_matrix(
            np.array([[1.0, 1.0, 0.0], [1.0, 1.0, 1.0], [0.0, 1.0, 1.0]])
        )
        for fac in (ilu0(a), ilut(a, 1e-3, 3)):
            z = fac.solve(np.ones(3))
            assert np.all(np.isfinite(z))


class TestHostilePartitions:
    def _pm(self, a, membership, num_ranks):
        return PartitionMap(graph_from_matrix(a), np.asarray(membership), num_ranks)

    def test_all_interface_partition(self, rng):
        """A checkerboard partition makes every point an interface point —
        B blocks are empty, and everything must still work."""
        n = 16
        a = sp.diags([-np.ones(n - 1), 4 * np.ones(n), -np.ones(n - 1)], [-1, 0, 1]).tocsr()
        membership = np.arange(n) % 2
        pm = self._pm(a, membership, 2)
        for sd in pm.subdomains:
            assert sd.n_internal == 0
        dmat = distribute_matrix(a, pm)
        comm = Communicator(2)
        x = rng.random(n)
        assert np.allclose(pm.to_global(dmat.matvec(comm, pm.to_distributed(x))), a @ x)

    def test_all_interface_schur1_still_converges(self, rng):
        from repro.precond.schur1 import Schur1Preconditioner

        n = 24
        a = sp.diags([-np.ones(n - 1), 4 * np.ones(n), -np.ones(n - 1)], [-1, 0, 1]).tocsr()
        membership = np.arange(n) % 2
        pm = self._pm(a, membership, 2)
        dmat = distribute_matrix(a, pm)
        comm = Communicator(2)
        M = Schur1Preconditioner(dmat, comm)
        b = rng.random(n)
        res = fgmres(lambda v: dmat.matvec(comm, v), pm.to_distributed(b),
                     apply_m=M.apply, rtol=1e-8, maxiter=100)
        assert res.converged

    def test_empty_rank_tolerated(self, rng):
        n = 10
        a = sp.eye(n, format="csr") * 2
        membership = np.zeros(n, dtype=np.int64)
        pm = self._pm(a, membership, 3)  # ranks 1, 2 own nothing
        dmat = distribute_matrix(a, pm)
        comm = Communicator(3)
        x = rng.random(n)
        y = dmat.matvec(comm, pm.to_distributed(x))
        assert np.allclose(pm.to_global(y), 2 * x)

    def test_disconnected_graph_partitions(self):
        """Two disconnected components must still partition and classify."""
        blocks = sp.block_diag(
            [sp.eye(5, format="csr") * 2, sp.eye(7, format="csr") * 3]
        ).tocsr()
        from repro.graph.partitioner import partition_graph

        g = graph_from_matrix(blocks)
        mem = partition_graph(g, 2, seed=0)
        pm = PartitionMap(g, mem, num_ranks=2)
        assert sum(sd.n_owned for sd in pm.subdomains) == 12

    def test_block_preconditioner_with_identity_rows(self, rng):
        """Dirichlet identity rows inside subdomains must not break ILU."""
        from repro.precond.block_jacobi import block1

        n = 20
        a = sp.diags([-np.ones(n - 1), 4 * np.ones(n), -np.ones(n - 1)], [-1, 0, 1]).tolil()
        a[5, :] = 0.0
        a[5, 5] = 1.0
        a[:, 5] = 0.0
        a[5, 5] = 1.0
        a = a.tocsr()
        pm = self._pm(a, (np.arange(n) >= n // 2).astype(np.int64), 2)
        dmat = distribute_matrix(a, pm)
        comm = Communicator(2)
        M = block1(dmat, comm)
        z = M.apply(rng.random(n))
        assert np.all(np.isfinite(z))


class TestInputValidation:
    def test_distributed_matrix_shape_mismatch(self, partitioned_poisson):
        pm, _, _, _ = partitioned_poisson
        bad = [sp.csr_matrix((3, 3))] * pm.num_ranks
        with pytest.raises(ValueError):
            DistributedMatrix(pm, bad)

    def test_wrong_rank_count(self, partitioned_poisson):
        pm, dmat, _, _ = partitioned_poisson
        with pytest.raises(ValueError):
            DistributedMatrix(pm, dmat.local[:2])
