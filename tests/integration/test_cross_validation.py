"""Cross-validation against scipy's independent implementations.

Our from-scratch kernels are checked here against external oracles: SuperLU's
ILU (scipy spilu), scipy's gmres/cg, and direct sparse solves — on the
actual FE systems the benchmarks run.
"""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.factor.ilut import ilut
from repro.krylov.cg import cg
from repro.krylov.fgmres import fgmres


class TestAgainstScipy:
    def test_our_ilut_preconditioner_competitive_with_superlu_ilu(self, poisson_system):
        """Iteration counts with our ILUT must be in the same regime as with
        SuperLU's drop-tolerance ILU at comparable fill."""
        a, rhs, _ = poisson_system
        ours = ilut(a, 1e-3, 10)
        res_ours = fgmres(lambda v: a @ v, rhs, apply_m=ours.solve, rtol=1e-8, maxiter=500)

        superlu = spla.spilu(a.tocsc(), drop_tol=1e-3, fill_factor=4)
        res_slu = fgmres(lambda v: a @ v, rhs, apply_m=superlu.solve, rtol=1e-8, maxiter=500)
        assert res_ours.converged and res_slu.converged
        assert res_ours.iterations <= 2.5 * res_slu.iterations

    def test_fgmres_iterations_match_scipy_gmres(self, poisson_system):
        """Same restart, same tolerance, same preconditioner → iteration
        counts within a small factor of scipy's GMRES."""
        a, rhs, _ = poisson_system
        fac = ilut(a, 1e-3, 10)
        ours = fgmres(lambda v: a @ v, rhs, apply_m=fac.solve, restart=20,
                      rtol=1e-8, maxiter=400)
        count = {"n": 0}

        def cb(x):
            count["n"] += 1

        m_op = spla.LinearOperator(a.shape, matvec=fac.solve)
        x, info = spla.gmres(a, rhs, M=m_op, restart=20, rtol=1e-8,
                             maxiter=400, callback=cb, callback_type="pr_norm")
        assert info == 0
        assert ours.converged
        assert abs(ours.iterations - count["n"]) <= max(3, 0.5 * count["n"])

    def test_cg_iterations_match_scipy_cg(self, poisson_system):
        a, rhs, _ = poisson_system
        ours = cg(lambda v: a @ v, rhs, rtol=1e-8, maxiter=1000)
        count = {"n": 0}

        def cb(x):
            count["n"] += 1

        x, info = spla.cg(a, rhs, rtol=1e-8, maxiter=1000, callback=cb)
        assert info == 0 and ours.converged
        assert abs(ours.iterations - count["n"]) <= 3

    def test_solutions_match_direct_solver_all_cases(self):
        from repro.cases import CASE_BUILDERS

        small = {
            "tc1": dict(n=13), "tc2": dict(n=6),
            "tc3": dict(target_h=0.09), "tc4": dict(n=6),
            "tc5": dict(n=13), "tc6": dict(n_theta=9, n_r=5),
            "aniso": dict(n=13),
        }
        from repro.core.driver import solve_case

        for key, kwargs in small.items():
            case = CASE_BUILDERS[key](**kwargs)
            direct = spla.spsolve(case.matrix.tocsc(), case.rhs)
            out = solve_case(case, "schur2", nparts=2, rtol=1e-10, maxiter=600)
            assert out.converged, key
            scale = max(np.abs(direct).max(), 1.0)
            assert np.abs(out.x_global - direct).max() < 1e-5 * scale, key
