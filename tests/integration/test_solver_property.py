"""Property-based tests of the solver stack on random well-posed systems."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.factor.ilu0 import ilu0
from repro.factor.ilut import ilut
from repro.krylov.bicgstab import bicgstab
from repro.krylov.cg import cg
from repro.krylov.fgmres import fgmres


@st.composite
def dd_systems(draw):
    """Diagonally dominant system + rhs (always uniquely solvable)."""
    n = draw(st.integers(min_value=2, max_value=50))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    density = draw(st.floats(min_value=0.05, max_value=0.4))
    symmetric = draw(st.booleans())
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density, random_state=int(rng.integers(2**31)), format="csr")
    if symmetric:
        a = (a + a.T) * 0.5
    a = a + sp.diags(np.asarray(np.abs(a).sum(axis=1)).ravel() + 1.0)
    b = rng.standard_normal(n)
    return a.tocsr(), b, symmetric, seed


@given(dd_systems())
@settings(max_examples=40, deadline=None)
def test_fgmres_always_meets_its_tolerance(data):
    a, b, _, _ = data
    res = fgmres(lambda v: a @ v, b, rtol=1e-8, maxiter=500)
    assert res.converged
    assert np.linalg.norm(b - a @ res.x) <= 1.1e-8 * np.linalg.norm(b) + 1e-12


@given(dd_systems())
@settings(max_examples=30, deadline=None)
def test_preconditioned_never_slower_than_half_unpreconditioned(data):
    """ILU preconditioning of a diagonally dominant system must not blow up
    the iteration count (weak but universal sanity property)."""
    a, b, _, _ = data
    plain = fgmres(lambda v: a @ v, b, rtol=1e-8, maxiter=500)
    fac = ilu0(a)
    pre = fgmres(lambda v: a @ v, b, apply_m=fac.solve, rtol=1e-8, maxiter=500)
    assert pre.converged
    assert pre.iterations <= max(plain.iterations, 3)


@given(dd_systems())
@settings(max_examples=30, deadline=None)
def test_cg_solves_spd_members(data):
    a, b, symmetric, _ = data
    if not symmetric:
        return
    res = cg(lambda v: a @ v, b, rtol=1e-8, maxiter=800)
    assert res.converged
    assert np.linalg.norm(b - a @ res.x) <= 1.1e-8 * np.linalg.norm(b) + 1e-12


@given(dd_systems())
@settings(max_examples=30, deadline=None)
def test_bicgstab_residual_honest(data):
    """Whatever BiCGStab reports, a converged=True result truly meets the
    tolerance (breakdowns must not masquerade as convergence)."""
    a, b, _, _ = data
    res = bicgstab(lambda v: a @ v, b, rtol=1e-8, maxiter=500)
    if res.converged:
        assert np.linalg.norm(b - a @ res.x) <= 2e-8 * np.linalg.norm(b) + 1e-12


@given(dd_systems(), st.integers(min_value=1, max_value=6))
@settings(max_examples=30, deadline=None)
def test_ilut_solve_finite_for_any_fill(data, fill):
    a, b, _, _ = data
    fac = ilut(a, drop_tol=1e-3, fill=fill)
    z = fac.solve(b)
    assert np.all(np.isfinite(z))
