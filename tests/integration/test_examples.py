"""Smoke-run the fast example scripts end-to-end (subprocess integration)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "21")
        assert "Schur 1" in out and "Block 2" in out
        assert "problem dependent" in out

    def test_partitioner_gallery(self):
        out = run_example("partitioner_gallery.py")
        assert "edge cut" in out
        assert "box partitioning" in out

    def test_vtk_export(self, tmp_path):
        target = tmp_path / "o.vtk"
        out = run_example("vtk_export.py", str(target))
        assert "converged" in out
        assert target.exists()
        assert "UNSTRUCTURED_GRID" in target.read_text()[:300]
