import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.cases import (
    CASE_BUILDERS,
    convection2d_case,
    elasticity_ring_case,
    heat3d_case,
    poisson2d_case,
    poisson3d_case,
    poisson_unstructured_case,
)

SMALL = {
    "tc1": lambda: poisson2d_case(n=17),
    "tc2": lambda: poisson3d_case(n=7),
    "tc3": lambda: poisson_unstructured_case(target_h=0.07),
    "tc4": lambda: heat3d_case(n=7),
    "tc5": lambda: convection2d_case(n=17),
    "tc6": lambda: elasticity_ring_case(n_theta=13, n_r=7),
}


@pytest.fixture(scope="module", params=sorted(SMALL))
def case(request):
    return SMALL[request.param]()


class TestAllCases:
    def test_registry_complete(self):
        assert sorted(CASE_BUILDERS) == [
            "aniso", "lshape", "tc1", "tc2", "tc3", "tc4", "tc5", "tc6",
        ]

    def test_system_shapes_consistent(self, case):
        n = case.num_dofs
        assert case.matrix.shape == (n, n)
        assert case.rhs.shape == (n,)
        assert case.x0.shape == (n,)
        assert n == case.dofs_per_node * case.mesh.num_points

    def test_direct_solve_finite(self, case):
        x = spla.spsolve(case.matrix.tocsc(), case.rhs)
        assert np.all(np.isfinite(x))

    def test_exact_solution_when_given(self, case):
        if case.exact is None:
            return
        x = spla.spsolve(case.matrix.tocsc(), case.rhs)
        err = case.solution_error(x)
        assert err is not None and err < 0.05

    def test_x0_satisfies_dirichlet_rows(self, case):
        """Paper: zero initial guess except Dirichlet dofs.  On identity rows
        (Dirichlet) x0 must match the rhs."""
        a = case.matrix
        n = a.shape[0]
        for i in range(n):
            row = a.indices[a.indptr[i] : a.indptr[i + 1]]
            vals = a.data[a.indptr[i] : a.indptr[i + 1]]
            stored = {int(c): v for c, v in zip(row, vals)}
            if set(stored) == {i} and stored[i] == 1.0:
                assert case.x0[i] == pytest.approx(case.rhs[i])

    def test_membership_general_covers(self, case):
        mem = case.membership(4, seed=0)
        assert mem.shape == (case.num_dofs,)
        assert set(np.unique(mem)) <= set(range(4))

    def test_membership_vector_keeps_node_dofs_together(self, case):
        if case.dofs_per_node == 1:
            return
        mem = case.membership(4, seed=0)
        pairs = mem.reshape(-1, case.dofs_per_node)
        assert np.all(pairs[:, 0] == pairs[:, 1])

    def test_coupling_graph_covers_matrix_pattern(self, case):
        g = case.coupling_graph
        a = case.matrix
        n = a.shape[0]
        adj = [set(g.neighbors(v).tolist()) for v in range(n)]
        rows = np.repeat(np.arange(n), np.diff(a.indptr))
        off = rows != a.indices
        for i, j in zip(rows[off][:500], a.indices[off][:500]):
            assert int(j) in adj[int(i)]


class TestCaseSpecifics:
    def test_tc1_exact_is_x_exp_y(self):
        c = SMALL["tc1"]()
        p = c.mesh.points
        assert np.allclose(c.exact, p[:, 0] * np.exp(p[:, 1]))

    def test_tc2_exact_is_x_exp_yz(self):
        c = SMALL["tc2"]()
        p = c.mesh.points
        assert np.allclose(c.exact, p[:, 0] * np.exp(p[:, 1] * p[:, 2]))

    def test_tc4_initial_guess_is_initial_condition(self):
        c = SMALL["tc4"]()
        p = c.mesh.points
        expected = np.sin(np.pi * p[:, 0]) * np.sin(np.pi * p[:, 1])
        right = c.mesh.boundary_set("right")
        expected[right] = 0.0
        assert np.allclose(c.x0, expected)

    def test_tc5_matrix_unsymmetric(self):
        c = SMALL["tc5"]()
        assert abs(c.matrix - c.matrix.T).max() > 1.0

    def test_tc5_boundary_values(self):
        c = SMALL["tc5"]()
        x = spla.spsolve(c.matrix.tocsc(), c.rhs)
        pts = c.mesh.points
        left_high = c.mesh.boundary_set("left")
        left_high = left_high[pts[left_high, 1] > 0.25 + 1e-9]
        assert np.allclose(x[left_high], 1.0)
        bottom = c.mesh.boundary_set("bottom")
        assert np.allclose(x[bottom], 0.0)
        # solution bounded by BC values (upwinding keeps it nearly monotone)
        assert x.min() > -0.2 and x.max() < 1.2

    def test_tc5_discontinuity_transported_along_characteristic(self):
        """Fig. 4: the front lies on the line from (0, 1/4) at angle π/4."""
        c = convection2d_case(n=41)
        x = spla.spsolve(c.matrix.tocsc(), c.rhs)
        pts = c.mesh.points
        # sample a vertical slice at x = 0.5: the jump should be near y = 0.75
        on_slice = np.abs(pts[:, 0] - 0.5) < 1e-9
        ys = pts[on_slice, 1]
        vals = x[on_slice]
        order = np.argsort(ys)
        ys, vals = ys[order], vals[order]
        jump_at = ys[np.argmax(np.diff(vals))]
        assert abs(jump_at - 0.75) < 0.1

    def test_tc6_two_dofs_per_node(self):
        c = SMALL["tc6"]()
        assert c.dofs_per_node == 2
        assert c.num_dofs == 2 * c.mesh.num_points

    def test_tc6_symmetry_conditions_hold(self):
        c = SMALL["tc6"]()
        x = spla.spsolve(c.matrix.tocsc(), c.rhs)
        g1 = c.mesh.boundary_set("gamma1")
        g2 = c.mesh.boundary_set("gamma2")
        assert np.abs(x[2 * g1]).max() < 1e-12  # u1 = 0 on Γ1
        assert np.abs(x[2 * g2 + 1]).max() < 1e-12  # u2 = 0 on Γ2

    def test_tc3_mesh_unstructured(self):
        c = SMALL["tc3"]()
        assert c.mesh.structured_shape is None

    def test_box_membership_on_structured_cases(self):
        c1 = SMALL["tc1"]()
        mem = c1.membership(4, scheme="box")
        assert len(np.unique(mem)) == 4
        c3 = SMALL["tc3"]()
        with pytest.raises(ValueError):
            c3.membership(4, scheme="box")

    def test_unknown_scheme_raises(self):
        with pytest.raises(ValueError):
            SMALL["tc1"]().membership(4, scheme="diagonal")
