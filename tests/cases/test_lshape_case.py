import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.cases.lshape_poisson import lshape_poisson_case


class TestLshapeCase:
    @pytest.fixture(scope="class")
    def case(self):
        return lshape_poisson_case(n=13)

    def test_solvable_and_positive(self, case):
        """−Δu = 1, u|∂Ω = 0 on a connected domain: u > 0 inside (max
        principle)."""
        x = spla.spsolve(case.matrix.tocsc(), case.rhs)
        interior = np.setdiff1d(
            np.arange(case.num_dofs), case.mesh.all_boundary_nodes()
        )
        assert np.all(x[interior] > 0)
        assert np.abs(x[case.mesh.all_boundary_nodes()]).max() < 1e-14

    def test_corner_singularity_slows_pointwise_convergence(self):
        """The maximum of u sits away from the corner; the gradient is
        singular at the re-entrant corner, visible as the largest energy
        density in the corner-adjacent cells."""
        case = lshape_poisson_case(n=17)
        x = spla.spsolve(case.matrix.tocsc(), case.rhs)
        pts = case.mesh.points
        # gradient magnitude per element
        from repro.fem.p1_triangle import triangle_geometry

        _, grads = triangle_geometry(case.mesh)
        grad_u = np.einsum("eid,ei->ed", grads, x[case.mesh.elements])
        gmag = np.linalg.norm(grad_u, axis=1)
        cent = pts[case.mesh.elements].mean(axis=1)
        near_corner = np.hypot(cent[:, 0] - 0.5, cent[:, 1] - 0.5) < 0.12
        far = ~near_corner
        assert gmag[near_corner].max() > gmag[far].mean()

    def test_parallel_solve_matches_direct(self, case):
        from repro.core.driver import solve_case

        out = solve_case(case, "schur2", nparts=4, rtol=1e-10, maxiter=300)
        assert out.converged
        direct = spla.spsolve(case.matrix.tocsc(), case.rhs)
        assert np.abs(out.x_global - direct).max() < 1e-7

    def test_all_preconditioners_converge(self, case):
        from repro.core.driver import solve_case

        for name in ("block1", "block2", "schur1", "schur2"):
            out = solve_case(case, name, nparts=4, maxiter=400)
            assert out.converged, name
