import numpy as np
import pytest

from repro.comm.communicator import Communicator
from repro.distributed.assembly import assemble_distributed_stiffness
from repro.distributed.matrix import distribute_matrix
from repro.distributed.partition_map import PartitionMap
from repro.fem.assembly import assemble_load, assemble_stiffness
from repro.fem.boundary import apply_dirichlet
from repro.graph.adjacency import graph_from_elements
from repro.graph.partitioner import partition_graph
from repro.mesh.grid2d import structured_rectangle
from repro.mesh.grid3d import structured_box


@pytest.mark.parametrize("make_mesh", [lambda: structured_rectangle(11, 11),
                                       lambda: structured_box(5, 5, 5)])
def test_distributed_assembly_matches_global_distribution(make_mesh):
    """Paper Sec. 1.1: per-subdomain discretization must produce exactly the
    rows the global-assembly-then-distribute path produces."""
    mesh = make_mesh()
    raw = assemble_stiffness(mesh)
    exact = mesh.points[:, 0]
    b = np.zeros(mesh.num_points)
    bn = mesh.all_boundary_nodes()
    a, _ = apply_dirichlet(raw, b, bn, exact[bn])
    g = graph_from_elements(mesh.num_points, mesh.elements)
    mem = partition_graph(g, 4, seed=0)
    pm = PartitionMap(g, mem, num_ranks=4)

    from_global = distribute_matrix(a, pm)
    from_subdomains = assemble_distributed_stiffness(mesh, pm, dirichlet_nodes=bn)
    for r in range(4):
        diff = from_global.local[r] - from_subdomains.local[r]
        assert diff.nnz == 0 or abs(diff).max() < 1e-12


def test_distributed_assembly_without_bc():
    mesh = structured_rectangle(9, 9)
    raw = assemble_stiffness(mesh, kappa=2.5)
    g = graph_from_elements(mesh.num_points, mesh.elements)
    mem = partition_graph(g, 3, seed=1)
    pm = PartitionMap(g, mem, num_ranks=3)
    dm = assemble_distributed_stiffness(mesh, pm, kappa=2.5)
    comm = Communicator(3)
    rng = np.random.default_rng(0)
    x = rng.random(mesh.num_points)
    y = dm.matvec(comm, pm.to_distributed(x))
    assert np.allclose(pm.to_global(y), raw @ x, atol=1e-12)


def test_mesh_partition_mismatch_raises():
    mesh = structured_rectangle(5, 5)
    other = structured_rectangle(7, 7)
    g = graph_from_elements(other.num_points, other.elements)
    pm = PartitionMap(g, partition_graph(g, 2, seed=0), num_ranks=2)
    with pytest.raises(ValueError):
        assemble_distributed_stiffness(mesh, pm)
