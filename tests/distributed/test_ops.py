import numpy as np
import pytest

from repro.comm.communicator import Communicator
from repro.distributed.layout import Layout
from repro.distributed.ops import DistributedOps


class TestDistributedOps:
    def test_dot_matches_numpy(self, rng):
        lay = Layout.from_sizes([3, 4, 3])
        ops = DistributedOps(Communicator(3), lay)
        x, y = rng.random(10), rng.random(10)
        assert ops.dot(x, y) == pytest.approx(float(x @ y))

    def test_dot_charges_allreduce_and_flops(self, rng):
        lay = Layout.from_sizes([5, 5])
        comm = Communicator(2)
        ops = DistributedOps(comm, lay)
        ops.dot(rng.random(10), rng.random(10))
        assert comm.ledger.allreduces == 1
        assert comm.ledger.crit_flops == 10.0  # 2 * max local size

    def test_norm_nonnegative(self, rng):
        lay = Layout.from_sizes([4, 4])
        ops = DistributedOps(Communicator(2), lay)
        assert ops.norm(np.zeros(8)) == 0.0
        x = rng.random(8)
        assert ops.norm(x) == pytest.approx(np.linalg.norm(x))

    def test_rank_mismatch_raises(self):
        with pytest.raises(ValueError):
            DistributedOps(Communicator(2), Layout.from_sizes([1, 2, 3]))

    def test_charge_local_axpy(self):
        lay = Layout.from_sizes([6, 2])
        comm = Communicator(2)
        DistributedOps(comm, lay).charge_local_axpy(3)
        assert comm.ledger.crit_flops == 2 * 3 * 6
