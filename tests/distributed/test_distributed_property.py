"""Property-based tests of the distributed-system invariants."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.communicator import Communicator
from repro.distributed.matrix import distribute_matrix
from repro.distributed.partition_map import PartitionMap
from repro.graph.adjacency import graph_from_matrix


@st.composite
def partitioned_systems(draw):
    """Random banded SPD-ish matrix + random membership over 1..4 ranks."""
    n = draw(st.integers(min_value=4, max_value=60))
    nranks = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    bw = draw(st.integers(min_value=1, max_value=3))
    diags = [rng.random(n - abs(k)) for k in range(-bw, bw + 1)]
    a = sp.diags(diags, list(range(-bw, bw + 1))).tocsr()
    a = a + sp.diags(np.full(n, 2.0 * (2 * bw + 1)))
    membership = rng.integers(0, nranks, n)
    return a.tocsr(), membership.astype(np.int64), nranks, seed


@given(partitioned_systems())
@settings(max_examples=50, deadline=None)
def test_distributed_matvec_always_matches_global(data):
    a, membership, nranks, seed = data
    pm = PartitionMap(graph_from_matrix(a), membership, num_ranks=nranks)
    dmat = distribute_matrix(a, pm)
    comm = Communicator(nranks)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal(a.shape[0])
    y = pm.to_global(dmat.matvec(comm, pm.to_distributed(x)))
    assert np.allclose(y, a @ x, atol=1e-10)


@given(partitioned_systems())
@settings(max_examples=50, deadline=None)
def test_classification_partition_invariants(data):
    a, membership, nranks, _ = data
    g = graph_from_matrix(a)
    pm = PartitionMap(g, membership, num_ranks=nranks)
    n = a.shape[0]
    # owned sets are a disjoint cover
    owned = np.concatenate([sd.owned for sd in pm.subdomains])
    assert sorted(owned.tolist()) == list(range(n))
    # ghost sets contain no owned points and only interface points
    for sd in pm.subdomains:
        assert not set(sd.ghost.tolist()) & set(sd.owned.tolist())
        assert np.all(pm.is_interface[sd.ghost]) if sd.ghost.size else True
    # round trip
    rng = np.random.default_rng(0)
    x = rng.standard_normal(n)
    assert np.array_equal(pm.to_global(pm.to_distributed(x)), x)


@given(partitioned_systems())
@settings(max_examples=30, deadline=None)
def test_explicit_and_fused_matvec_agree(data):
    a, membership, nranks, seed = data
    pm = PartitionMap(graph_from_matrix(a), membership, num_ranks=nranks)
    dmat = distribute_matrix(a, pm)
    rng = np.random.default_rng(seed + 2)
    x = pm.to_distributed(rng.standard_normal(a.shape[0]))
    y1 = dmat.matvec(Communicator(nranks), x)
    y2 = dmat.matvec_explicit(Communicator(nranks), x)
    assert np.allclose(y1, y2, atol=1e-12)
