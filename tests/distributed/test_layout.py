import numpy as np
import pytest

from repro.distributed.layout import Layout


class TestLayout:
    def test_from_sizes(self):
        lay = Layout.from_sizes([3, 0, 2])
        assert lay.num_ranks == 3
        assert lay.total == 5
        assert lay.sizes.tolist() == [3, 0, 2]

    def test_local_views_are_writable(self):
        lay = Layout.from_sizes([2, 2])
        x = np.zeros(4)
        lay.local(x, 1)[:] = 7.0
        assert x.tolist() == [0.0, 0.0, 7.0, 7.0]

    def test_split_covers_everything(self):
        lay = Layout.from_sizes([1, 3, 2])
        x = np.arange(6.0)
        parts = lay.split(x)
        assert np.concatenate(parts).tolist() == x.tolist()

    def test_empty_rank_view(self):
        lay = Layout.from_sizes([2, 0, 1])
        x = np.arange(3.0)
        assert lay.local(x, 1).size == 0

    def test_zeros(self):
        lay = Layout.from_sizes([2, 3])
        assert lay.zeros().shape == (5,)
