"""absorb_rank: dead-subdomain reassignment for rank-failure recovery."""

import numpy as np
import pytest

from repro.distributed.partition_map import PartitionMap, absorb_rank
from repro.graph.adjacency import Graph, graph_from_elements
from repro.graph.partitioner import partition_graph
from repro.mesh.grid2d import structured_rectangle


@pytest.fixture(scope="module")
def grid_graph():
    mesh = structured_rectangle(9, 9)
    return graph_from_elements(mesh.num_points, mesh.elements)


def _path_graph(n):
    """A 1D chain 0-1-2-...-(n-1)."""
    indptr = [0]
    indices = []
    for v in range(n):
        nbrs = [u for u in (v - 1, v + 1) if 0 <= u < n]
        indices.extend(nbrs)
        indptr.append(len(indices))
    return Graph(
        indptr=np.asarray(indptr, dtype=np.int64),
        indices=np.asarray(indices, dtype=np.int64),
        edge_weights=np.ones(len(indices)),
    )


class TestAbsorbRank:
    def test_survivors_cover_everything(self, grid_graph):
        membership = partition_graph(grid_graph, 4, seed=0)
        new = absorb_rank(grid_graph, membership, dead_rank=2)
        assert new.shape == membership.shape
        assert set(np.unique(new)) == {0, 1, 2}  # compacted to 3 ranks
        # the result is a valid partition: PartitionMap accepts it
        pm = PartitionMap(grid_graph, new, num_ranks=3)
        assert sum(sd.n_owned for sd in pm.subdomains) == grid_graph.num_vertices

    def test_untouched_ranks_keep_their_vertices(self, grid_graph):
        membership = partition_graph(grid_graph, 4, seed=0)
        new = absorb_rank(grid_graph, membership, dead_rank=3)
        # killing the top rank leaves everyone else's assignment unchanged
        survivors = membership != 3
        np.testing.assert_array_equal(new[survivors], membership[survivors])

    def test_compaction_shifts_higher_ranks(self):
        g = _path_graph(6)
        membership = np.array([0, 0, 1, 1, 2, 2])
        new = absorb_rank(g, membership, dead_rank=1)
        # vertices 2,3 join a neighbor; old rank 2 becomes rank 1
        np.testing.assert_array_equal(new[[4, 5]], [1, 1])
        assert set(np.unique(new)) == {0, 1}

    def test_orphans_go_to_most_connected_neighbor(self):
        g = _path_graph(4)
        membership = np.array([0, 1, 1, 2])
        new = absorb_rank(g, membership, dead_rank=1)
        # vertex 1 neighbors only rank 0; vertex 2 then ties between rank 0
        # (via the just-reassigned vertex 1) and old rank 2 — the
        # deterministic tie-break picks the smaller rank
        np.testing.assert_array_equal(new, [0, 0, 0, 1])

    def test_deterministic(self, grid_graph):
        membership = partition_graph(grid_graph, 4, seed=3)
        a = absorb_rank(grid_graph, membership, dead_rank=1)
        b = absorb_rank(grid_graph, membership, dead_rank=1)
        np.testing.assert_array_equal(a, b)

    def test_isolated_component_falls_back(self):
        # two disconnected vertices; rank 1's vertex has no live neighbor
        g = Graph(
            indptr=np.array([0, 0, 0], dtype=np.int64),
            indices=np.array([], dtype=np.int64),
            edge_weights=np.array([]),
        )
        new = absorb_rank(g, np.array([0, 1]), dead_rank=1)
        np.testing.assert_array_equal(new, [0, 0])

    def test_invalid_dead_rank(self, grid_graph):
        membership = partition_graph(grid_graph, 3, seed=0)
        with pytest.raises(ValueError, match="dead_rank"):
            absorb_rank(grid_graph, membership, dead_rank=7)

    def test_cannot_absorb_only_rank(self):
        g = _path_graph(3)
        with pytest.raises(ValueError, match="only rank"):
            absorb_rank(g, np.zeros(3, dtype=np.int64), dead_rank=0)
