import numpy as np
import pytest

from repro.comm.communicator import Communicator
from repro.distributed.vector import DistributedVector


class TestDistributedVector:
    def test_from_global_roundtrip(self, partitioned_poisson, rng):
        pm, _, _, _ = partitioned_poisson
        x = rng.random(len(pm.membership))
        v = DistributedVector.from_global(pm, x)
        assert np.allclose(v.to_global(), x)

    def test_dot_matches_numpy_and_charges(self, partitioned_poisson, rng):
        pm, _, _, _ = partitioned_poisson
        x = rng.random(len(pm.membership))
        y = rng.random(len(pm.membership))
        vx = DistributedVector.from_global(pm, x)
        vy = DistributedVector.from_global(pm, y)
        comm = Communicator(pm.num_ranks)
        assert vx.dot(vy, comm) == pytest.approx(float(x @ y))
        assert comm.ledger.allreduces == 1

    def test_norm(self, partitioned_poisson, rng):
        pm, _, _, _ = partitioned_poisson
        x = rng.random(len(pm.membership))
        v = DistributedVector.from_global(pm, x)
        assert v.norm(Communicator(pm.num_ranks)) == pytest.approx(np.linalg.norm(x))

    def test_axpy(self, partitioned_poisson, rng):
        pm, _, _, _ = partitioned_poisson
        x = rng.random(len(pm.membership))
        y = rng.random(len(pm.membership))
        vx = DistributedVector.from_global(pm, x)
        vy = DistributedVector.from_global(pm, y)
        vx.axpy(2.5, vy)
        assert np.allclose(vx.to_global(), x + 2.5 * y)

    def test_local_view_writable(self, partitioned_poisson):
        pm, _, _, _ = partitioned_poisson
        v = DistributedVector(pm)
        v.local(0)[:] = 3.0
        assert np.all(pm.layout.local(v.data, 0) == 3.0)

    def test_wrong_size_data_raises(self, partitioned_poisson):
        pm, _, _, _ = partitioned_poisson
        with pytest.raises(ValueError):
            DistributedVector(pm, np.zeros(3))

    def test_mixed_partition_maps_rejected(self, partitioned_poisson, tiny_case):
        pm, _, _, _ = partitioned_poisson
        from repro.distributed.partition_map import PartitionMap

        pm2 = PartitionMap(tiny_case.coupling_graph, tiny_case.membership(2), num_ranks=2)
        v1 = DistributedVector(pm)
        v2 = DistributedVector(pm2)
        with pytest.raises(ValueError):
            v1.axpy(1.0, v2)
