import numpy as np
import pytest

from repro.distributed.partition_map import PartitionMap
from repro.graph.adjacency import graph_from_elements
from repro.graph.partitioner import partition_graph
from repro.mesh.grid2d import structured_rectangle


@pytest.fixture(scope="module")
def mesh_graph():
    mesh = structured_rectangle(13, 13)
    return mesh, graph_from_elements(mesh.num_points, mesh.elements)


@pytest.fixture(scope="module")
def pmap(mesh_graph):
    _, g = mesh_graph
    mem = partition_graph(g, 4, seed=0)
    return PartitionMap(g, mem, num_ranks=4)


class TestClassification:
    def test_owned_partition_is_disjoint_cover(self, pmap, mesh_graph):
        _, g = mesh_graph
        all_owned = np.concatenate([sd.owned for sd in pmap.subdomains])
        assert sorted(all_owned.tolist()) == list(range(g.num_vertices))

    def test_internal_points_have_no_external_neighbors(self, pmap, mesh_graph):
        _, g = mesh_graph
        for sd in pmap.subdomains:
            for v in sd.owned[: sd.n_internal]:
                owners = pmap.membership[g.neighbors(int(v))]
                assert np.all(owners == sd.rank)

    def test_interface_points_have_external_neighbors(self, pmap, mesh_graph):
        _, g = mesh_graph
        for sd in pmap.subdomains:
            for v in sd.interface_global:
                owners = pmap.membership[g.neighbors(int(v))]
                assert np.any(owners != sd.rank)

    def test_ghosts_are_neighbors_interface_points(self, pmap):
        for sd in pmap.subdomains:
            for gpt in sd.ghost:
                owner = pmap.membership[gpt]
                assert owner != sd.rank
                assert pmap.is_interface[gpt]

    def test_ghosts_are_exactly_external_interface_neighbors(self, pmap, mesh_graph):
        """Fig. 1: external interface points = off-processor points directly
        coupled to owned points."""
        _, g = mesh_graph
        for sd in pmap.subdomains:
            expected = set()
            for v in sd.owned:
                for u in g.neighbors(int(v)):
                    if pmap.membership[u] != sd.rank:
                        expected.add(int(u))
            assert set(sd.ghost.tolist()) == expected


class TestOrderingAndConversions:
    def test_perm_inverse_roundtrip(self, pmap, rng):
        x = rng.random(len(pmap.membership))
        assert np.allclose(pmap.to_global(pmap.to_distributed(x)), x)

    def test_local_view_is_internal_then_interface(self, pmap, rng):
        x = rng.random(len(pmap.membership))
        xd = pmap.to_distributed(x)
        for r, sd in enumerate(pmap.subdomains):
            assert np.allclose(pmap.local_view(xd, r), x[sd.owned])

    def test_interface_view(self, pmap, rng):
        x = rng.random(len(pmap.membership))
        xd = pmap.to_distributed(x)
        for r, sd in enumerate(pmap.subdomains):
            assert np.allclose(pmap.interface_view(xd, r), x[sd.interface_global])


class TestPatterns:
    def test_exchange_delivers_owner_values(self, pmap, rng):
        from repro.comm.communicator import Communicator

        x = rng.random(len(pmap.membership))
        owned = [x[sd.owned] for sd in pmap.subdomains]
        ghosts = [np.zeros(len(sd.ghost)) for sd in pmap.subdomains]
        comm = Communicator(4)
        pmap.pattern.exchange(comm, owned, ghosts)
        for r, sd in enumerate(pmap.subdomains):
            assert np.allclose(ghosts[r], x[sd.ghost])

    def test_interface_pattern_equivalent_to_full(self, pmap, rng):
        from repro.comm.communicator import Communicator

        x = rng.random(len(pmap.membership))
        ifc = [x[sd.interface_global] for sd in pmap.subdomains]
        ghosts = [np.zeros(len(sd.ghost)) for sd in pmap.subdomains]
        comm = Communicator(4)
        pmap.interface_pattern.exchange(comm, ifc, ghosts)
        for r, sd in enumerate(pmap.subdomains):
            assert np.allclose(ghosts[r], x[sd.ghost])

    def test_census_shape(self, pmap):
        census = pmap.census()
        assert census["num_ranks"] == 4
        assert len(census["internal"]) == 4
        assert all(n > 0 for n in census["interface"])


class TestValidation:
    def test_membership_length_mismatch(self, mesh_graph):
        _, g = mesh_graph
        with pytest.raises(ValueError):
            PartitionMap(g, np.zeros(3, dtype=np.int64))

    def test_num_ranks_too_small(self, mesh_graph):
        _, g = mesh_graph
        mem = partition_graph(g, 4, seed=0)
        with pytest.raises(ValueError):
            PartitionMap(g, mem, num_ranks=2)

    def test_num_ranks_larger_allows_empty_ranks(self, mesh_graph):
        _, g = mesh_graph
        mem = partition_graph(g, 2, seed=0)
        pm = PartitionMap(g, mem, num_ranks=3)
        assert pm.subdomains[2].n_owned == 0
