import numpy as np
import pytest

from repro.comm.communicator import Communicator
from repro.distributed.matrix import distribute_matrix


class TestDistributeMatrix:
    def test_fused_matvec_matches_global(self, partitioned_poisson, rng):
        pm, dmat, _, _ = partitioned_poisson
        comm = Communicator(4)
        x = rng.random(dmat.shape[0])
        xd = pm.to_distributed(x)
        y = dmat.matvec(comm, xd)
        # reconstruct the global operator action via the fused matrix
        a_global_action = pm.to_global(y)
        # the explicit path is the reference implementation
        y2 = dmat.matvec_explicit(Communicator(4), xd)
        assert np.allclose(y, y2, atol=1e-13)
        assert np.all(np.isfinite(a_global_action))

    def test_blocks_reassemble_owned_square(self, partitioned_poisson):
        pm, dmat, _, _ = partitioned_poisson
        for r in range(4):
            assembled = dmat.blocks[r].assemble()
            assert abs(assembled - dmat.owned_square[r]).max() < 1e-14

    def test_internal_rows_have_no_ghost_coupling(self, partitioned_poisson):
        pm, dmat, _, _ = partitioned_poisson
        for r, sd in enumerate(pm.subdomains):
            full = dmat.local[r]
            internal_ghost = full[: sd.n_internal, sd.n_owned :]
            assert internal_ghost.nnz == 0

    def test_ghost_coupling_shape(self, partitioned_poisson):
        pm, dmat, _, _ = partitioned_poisson
        for r, sd in enumerate(pm.subdomains):
            assert dmat.ghost_coupling[r].shape == (sd.n_interface, len(sd.ghost))

    def test_matvec_charges_flops_and_messages(self, partitioned_poisson, rng):
        pm, dmat, _, _ = partitioned_poisson
        comm = Communicator(4)
        dmat.matvec(comm, rng.random(dmat.shape[0]))
        led = comm.ledger
        assert led.crit_flops > 0
        assert led.total_msgs > 0
        assert led.allreduces == 0

    def test_nnz_matches_global(self, partitioned_poisson, poisson_system):
        _, dmat, _, _ = partitioned_poisson
        a, _, _ = poisson_system
        assert dmat.nnz == a.nnz

    def test_diagonal_dist(self, partitioned_poisson, poisson_system):
        pm, dmat, _, _ = partitioned_poisson
        a, _, _ = poisson_system
        d = pm.to_global(dmat.diagonal_dist())
        assert np.allclose(d, a.diagonal())

    def test_size_mismatch_raises(self, partitioned_poisson):
        import scipy.sparse as sp

        pm, _, _, _ = partitioned_poisson
        with pytest.raises(ValueError):
            distribute_matrix(sp.eye(3, format="csr"), pm)


class TestMatvecEquivalenceSolve:
    def test_distributed_solve_equals_serial_solve(self, partitioned_poisson, poisson_system):
        """Solving through the distributed operator must give the same
        solution as the serial operator — parallelization changes nothing
        numerically except summation order."""
        import scipy.sparse.linalg as spla

        pm, dmat, rhs, exact = partitioned_poisson
        a, b, _ = poisson_system
        comm = Communicator(4)
        from repro.krylov.fgmres import fgmres

        res = fgmres(
            lambda v: dmat.matvec(comm, v),
            pm.to_distributed(b),
            rtol=1e-10,
            maxiter=600,
        )
        x_serial = spla.spsolve(a.tocsc(), b)
        assert np.allclose(pm.to_global(res.x), x_serial, atol=1e-6)
