import numpy as np
import pytest

from repro.mesh.lshape import l_shape
from repro.mesh.mesh import boundary_edges_2d, triangle_quality


@pytest.fixture(scope="module")
def lmesh():
    return l_shape(9)


class TestLShape:
    def test_point_count(self, lmesh):
        m = 2 * 9 - 1
        removed = (m - 9) * (m - 9)  # open upper-right quadrant lattice
        assert lmesh.num_points == m * m - removed

    def test_no_points_in_removed_quadrant(self, lmesh):
        x, y = lmesh.points[:, 0], lmesh.points[:, 1]
        assert not np.any((x > 0.5 + 1e-12) & (y > 0.5 + 1e-12))

    def test_area_is_three_quarters(self, lmesh):
        p = lmesh.points[lmesh.elements]
        d1 = p[:, 1] - p[:, 0]
        d2 = p[:, 2] - p[:, 0]
        area = 0.5 * np.abs(d1[:, 0] * d2[:, 1] - d1[:, 1] * d2[:, 0]).sum()
        assert area == pytest.approx(0.75)

    def test_conforming(self, lmesh):
        tri = lmesh.elements
        edges = np.sort(
            np.vstack([tri[:, [0, 1]], tri[:, [1, 2]], tri[:, [2, 0]]]), axis=1
        )
        _, counts = np.unique(edges, axis=0, return_counts=True)
        assert set(counts.tolist()) <= {1, 2}

    def test_boundary_sets_cover_topological_boundary(self, lmesh):
        named = set(lmesh.all_boundary_nodes().tolist())
        topo = set(np.unique(boundary_edges_2d(lmesh)).tolist())
        assert named == topo

    def test_reentrant_corner_in_reentrant_set(self, lmesh):
        corner = np.flatnonzero(
            (np.abs(lmesh.points[:, 0] - 0.5) < 1e-12)
            & (np.abs(lmesh.points[:, 1] - 0.5) < 1e-12)
        )
        assert len(corner) == 1
        assert corner[0] in set(lmesh.boundary_set("reentrant").tolist())

    def test_quality_uniform(self, lmesh):
        q = triangle_quality(lmesh)
        assert np.allclose(q, q[0])  # all congruent right triangles

    def test_poisson_solvable_on_lshape(self):
        """Full pipeline on the non-convex domain: assemble, partition,
        precondition, solve against the direct answer."""
        import scipy.sparse.linalg as spla

        from repro.comm.communicator import Communicator
        from repro.distributed.matrix import distribute_matrix
        from repro.distributed.partition_map import PartitionMap
        from repro.fem.assembly import assemble_load, assemble_stiffness
        from repro.fem.boundary import apply_dirichlet
        from repro.graph.adjacency import graph_from_elements
        from repro.graph.partitioner import partition_graph
        from repro.krylov.fgmres import fgmres
        from repro.precond.schur1 import Schur1Preconditioner

        mesh = l_shape(9)
        raw = assemble_stiffness(mesh)
        b = assemble_load(mesh, lambda p: np.ones(len(p)))
        a, rhs = apply_dirichlet(raw, b, mesh.all_boundary_nodes(), 0.0)
        g = graph_from_elements(mesh.num_points, mesh.elements)
        pm = PartitionMap(g, partition_graph(g, 4, seed=0), num_ranks=4)
        dmat = distribute_matrix(a, pm)
        comm = Communicator(4)
        M = Schur1Preconditioner(dmat, comm)
        res = fgmres(lambda v: dmat.matvec(comm, v), pm.to_distributed(rhs),
                     apply_m=M.apply, rtol=1e-8, maxiter=200)
        assert res.converged
        direct = spla.spsolve(a.tocsc(), rhs)
        assert np.abs(pm.to_global(res.x) - direct).max() < 1e-6

    def test_too_small(self):
        with pytest.raises(ValueError):
            l_shape(1)
