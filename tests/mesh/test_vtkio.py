import numpy as np
import pytest

from repro.mesh.grid2d import structured_rectangle
from repro.mesh.grid3d import structured_box
from repro.mesh.vtkio import read_vtk_points_cells, write_vtk


class TestWriteVtk:
    def test_roundtrip_2d(self, tmp_path):
        mesh = structured_rectangle(5, 4)
        path = write_vtk(tmp_path / "m.vtk", mesh)
        pts, cells = read_vtk_points_cells(path)
        assert np.allclose(pts[:, :2], mesh.points)
        assert np.allclose(pts[:, 2], 0.0)
        assert np.array_equal(cells, mesh.elements)

    def test_roundtrip_3d(self, tmp_path):
        mesh = structured_box(3, 3, 3)
        path = write_vtk(tmp_path / "m3.vtk", mesh)
        pts, cells = read_vtk_points_cells(path)
        assert np.allclose(pts, mesh.points)
        assert np.array_equal(cells, mesh.elements)

    def test_scalar_field_written(self, tmp_path, rng):
        mesh = structured_rectangle(4, 4)
        u = rng.random(mesh.num_points)
        path = write_vtk(tmp_path / "u.vtk", mesh, {"solution": u})
        text = path.read_text()
        assert "SCALARS solution double 1" in text
        assert f"POINT_DATA {mesh.num_points}" in text

    def test_vector_field_padded_to_3d(self, tmp_path, rng):
        mesh = structured_rectangle(4, 4)
        disp = rng.random((mesh.num_points, 2))
        path = write_vtk(tmp_path / "d.vtk", mesh, {"displacement": disp})
        assert "VECTORS displacement double" in path.read_text()

    def test_field_name_spaces_sanitized(self, tmp_path, rng):
        mesh = structured_rectangle(3, 3)
        path = write_vtk(tmp_path / "s.vtk", mesh, {"my field": np.zeros(9)})
        assert "my_field" in path.read_text()

    def test_wrong_field_length_raises(self, tmp_path):
        mesh = structured_rectangle(3, 3)
        with pytest.raises(ValueError):
            write_vtk(tmp_path / "x.vtk", mesh, {"bad": np.zeros(5)})

    def test_cell_types_match_dimension(self, tmp_path):
        m2 = structured_rectangle(3, 3)
        assert "\n5\n" in write_vtk(tmp_path / "a.vtk", m2).read_text()
        m3 = structured_box(2, 2, 2)
        assert "\n10\n" in write_vtk(tmp_path / "b.vtk", m3).read_text()
