import numpy as np
import pytest

from repro.mesh.mesh import boundary_edges_2d, triangle_quality
from repro.mesh.unstructured import plate_with_hole


@pytest.fixture(scope="module")
def plate():
    return plate_with_hole(target_h=0.05, seed=0)


class TestPlateWithHole:
    def test_no_points_inside_hole(self, plate):
        r = np.hypot(plate.points[:, 0] - 0.5, plate.points[:, 1] - 0.5)
        assert np.all(r >= 0.25 - 1e-9)

    def test_no_triangle_centroid_inside_hole(self, plate):
        c = plate.points[plate.elements].mean(axis=1)
        r = np.hypot(c[:, 0] - 0.5, c[:, 1] - 0.5)
        assert np.all(r > 0.25 - 1e-9)

    def test_boundary_sets_cover_real_boundary(self, plate):
        bnodes = set(np.unique(boundary_edges_2d(plate)).tolist())
        named = set(plate.all_boundary_nodes().tolist())
        assert bnodes == named

    def test_hole_nodes_on_circle(self, plate):
        hole = plate.boundary_set("hole")
        r = np.hypot(plate.points[hole, 0] - 0.5, plate.points[hole, 1] - 0.5)
        assert np.all(np.abs(r - 0.25) < 0.05)

    def test_outer_nodes_on_square(self, plate):
        outer = plate.boundary_set("outer")
        p = plate.points[outer]
        on_edge = (
            (p[:, 0] < 1e-9) | (p[:, 0] > 1 - 1e-9) | (p[:, 1] < 1e-9) | (p[:, 1] > 1 - 1e-9)
        )
        assert np.all(on_edge)

    def test_reasonable_quality(self, plate):
        q = triangle_quality(plate)
        assert np.all(q > 0.02)
        assert np.median(q) > 0.5

    def test_genuinely_unstructured(self, plate):
        """Vertex degrees must vary (unlike a structured grid)."""
        from repro.graph.adjacency import graph_from_elements

        g = graph_from_elements(plate.num_points, plate.elements)
        degrees = np.asarray([g.degree(v) for v in range(g.num_vertices)])
        assert len(np.unique(degrees)) >= 4

    def test_deterministic_for_seed(self):
        a = plate_with_hole(target_h=0.1, seed=3)
        b = plate_with_hole(target_h=0.1, seed=3)
        assert np.allclose(a.points, b.points)

    def test_finer_h_gives_more_points(self):
        coarse = plate_with_hole(target_h=0.1, seed=0)
        fine = plate_with_hole(target_h=0.05, seed=0)
        assert fine.num_points > 2 * coarse.num_points

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            plate_with_hole(hole_radius=0.7)
