import numpy as np
import pytest

from repro.mesh.grid2d import structured_rectangle


class TestStructuredRectangle:
    def test_counts(self):
        m = structured_rectangle(5, 7)
        assert m.num_points == 35
        assert m.num_elements == 2 * 4 * 6

    def test_paper_grid_size_formula(self):
        """1001x1001 would give the paper's 1,002,001 points (checked small)."""
        m = structured_rectangle(11, 11)
        assert m.num_points == 121

    def test_x_fastest_numbering(self):
        m = structured_rectangle(4, 3)
        assert np.allclose(m.points[1], [1.0 / 3.0, 0.0])
        assert np.allclose(m.points[4], [0.0, 0.5])

    def test_total_area_is_domain_area(self):
        m = structured_rectangle(6, 6, 0.0, 2.0, 0.0, 3.0)
        p = m.points[m.elements]
        d1 = p[:, 1] - p[:, 0]
        d2 = p[:, 2] - p[:, 0]
        area = 0.5 * np.abs(d1[:, 0] * d2[:, 1] - d1[:, 1] * d2[:, 0]).sum()
        assert area == pytest.approx(6.0)

    def test_consistent_orientation(self):
        m = structured_rectangle(5, 5)
        p = m.points[m.elements]
        d1 = p[:, 1] - p[:, 0]
        d2 = p[:, 2] - p[:, 0]
        det = d1[:, 0] * d2[:, 1] - d1[:, 1] * d2[:, 0]
        assert np.all(det > 0)

    def test_boundary_sets(self):
        m = structured_rectangle(4, 5)
        assert len(m.boundary_set("left")) == 5
        assert len(m.boundary_set("bottom")) == 4
        assert np.all(m.points[m.boundary_set("right"), 0] == 1.0)
        assert np.all(m.points[m.boundary_set("top"), 1] == 1.0)

    def test_structured_shape_recorded(self):
        m = structured_rectangle(4, 5)
        assert m.structured_shape == (4, 5)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            structured_rectangle(1, 5)
