import numpy as np
import pytest

from repro.mesh.grid2d import structured_rectangle
from repro.mesh.mesh import boundary_edges_2d
from repro.mesh.refine import refine_uniform
from repro.mesh.unstructured import plate_with_hole


class TestRefineUniform:
    def test_counts_quadruple_elements(self):
        m = structured_rectangle(4, 4)
        r = refine_uniform(m)
        assert r.num_elements == 4 * m.num_elements

    def test_point_count_euler(self):
        """new points = old points + unique edges."""
        m = structured_rectangle(4, 4)
        tri = m.elements
        edges = np.vstack([tri[:, [0, 1]], tri[:, [1, 2]], tri[:, [2, 0]]])
        n_edges = len(np.unique(np.sort(edges, axis=1), axis=0))
        r = refine_uniform(m)
        assert r.num_points == m.num_points + n_edges

    def test_area_preserved(self):
        m = structured_rectangle(5, 5)
        for mesh in (m, refine_uniform(m)):
            p = mesh.points[mesh.elements]
            d1 = p[:, 1] - p[:, 0]
            d2 = p[:, 2] - p[:, 0]
            area = 0.5 * np.abs(d1[:, 0] * d2[:, 1] - d1[:, 1] * d2[:, 0]).sum()
            assert area == pytest.approx(1.0)

    def test_conforming_after_refinement(self):
        m = plate_with_hole(0.1, seed=0)
        r = refine_uniform(m)
        tri = r.elements
        edges = np.sort(
            np.vstack([tri[:, [0, 1]], tri[:, [1, 2]], tri[:, [2, 0]]]), axis=1
        )
        _, counts = np.unique(edges, axis=0, return_counts=True)
        assert set(counts.tolist()) <= {1, 2}

    def test_boundary_sets_carried_and_grown(self):
        m = structured_rectangle(4, 4)
        r = refine_uniform(m)
        # left edge of a 4x4 grid has 4 points and 3 edges → 7 after refining
        assert len(r.boundary_set("left")) == 7
        assert np.all(np.abs(r.points[r.boundary_set("left"), 0]) < 1e-12)

    def test_refined_boundary_matches_topology(self):
        m = structured_rectangle(5, 5)
        r = refine_uniform(m)
        from_edges = set(np.unique(boundary_edges_2d(r)).tolist())
        named = set(r.all_boundary_nodes().tolist())
        assert from_edges == named

    def test_fem_convergence_through_refinement(self):
        """Solving Poisson on successive refinements halves h: errors drop
        at second order."""
        import scipy.sparse.linalg as spla

        from repro.fem.assembly import assemble_load, assemble_stiffness
        from repro.fem.boundary import apply_dirichlet

        mesh = structured_rectangle(5, 5)
        errs = []
        for _ in range(3):
            k = assemble_stiffness(mesh)
            exact = mesh.points[:, 0] * np.exp(mesh.points[:, 1])
            b = -assemble_load(mesh, lambda p: p[:, 0] * np.exp(p[:, 1]))
            bn = mesh.all_boundary_nodes()
            a, rhs = apply_dirichlet(k, b, bn, exact[bn])
            errs.append(np.abs(spla.spsolve(a.tocsc(), rhs) - exact).max())
            mesh = refine_uniform(mesh)
        assert np.log2(errs[0] / errs[1]) > 1.5
        assert np.log2(errs[1] / errs[2]) > 1.5

    def test_rejects_3d(self):
        from repro.mesh.grid3d import structured_box

        with pytest.raises(ValueError):
            refine_uniform(structured_box(3, 3, 3))
