import numpy as np
import pytest

from repro.mesh.ring import quarter_ring


@pytest.fixture(scope="module")
def ring():
    return quarter_ring(17, 9)


class TestQuarterRing:
    def test_counts(self, ring):
        assert ring.num_points == 17 * 9
        assert ring.num_elements == 2 * 16 * 8

    def test_radii_in_range(self, ring):
        r = np.hypot(ring.points[:, 0], ring.points[:, 1])
        assert np.all(r >= 1.0 - 1e-12)
        assert np.all(r <= 2.0 + 1e-12)

    def test_first_quadrant(self, ring):
        assert np.all(ring.points >= -1e-12)

    def test_gamma1_on_x_zero_plane(self, ring):
        g1 = ring.boundary_set("gamma1")
        assert np.all(np.abs(ring.points[g1, 0]) < 1e-12)

    def test_gamma2_on_y_zero_plane(self, ring):
        g2 = ring.boundary_set("gamma2")
        assert np.all(np.abs(ring.points[g2, 1]) < 1e-12)

    def test_stress_boundary_on_arcs(self, ring):
        s = ring.boundary_set("stress")
        r = np.hypot(ring.points[s, 0], ring.points[s, 1])
        on_arc = (np.abs(r - 1.0) < 1e-9) | (np.abs(r - 2.0) < 1e-9)
        assert np.all(on_arc)

    def test_area_approximates_quarter_annulus(self):
        m = quarter_ring(65, 33)
        p = m.points[m.elements]
        d1 = p[:, 1] - p[:, 0]
        d2 = p[:, 2] - p[:, 0]
        area = 0.5 * np.abs(d1[:, 0] * d2[:, 1] - d1[:, 1] * d2[:, 0]).sum()
        exact = np.pi / 4.0 * (4.0 - 1.0)
        assert area == pytest.approx(exact, rel=1e-3)

    def test_positive_element_areas(self, ring):
        p = ring.points[ring.elements]
        d1 = p[:, 1] - p[:, 0]
        d2 = p[:, 2] - p[:, 0]
        det = d1[:, 0] * d2[:, 1] - d1[:, 1] * d2[:, 0]
        assert np.all(np.abs(det) > 1e-14)

    def test_invalid_radii(self):
        with pytest.raises(ValueError):
            quarter_ring(5, 5, r_inner=2.0, r_outer=1.0)
