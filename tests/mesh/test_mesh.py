import numpy as np
import pytest

from repro.mesh.grid2d import structured_rectangle
from repro.mesh.grid3d import structured_box
from repro.mesh.mesh import (
    Mesh,
    boundary_edges_2d,
    boundary_faces_3d,
    triangle_quality,
)


class TestMeshValidation:
    def test_rejects_bad_element_width(self):
        with pytest.raises(ValueError):
            Mesh(np.zeros((3, 2)), np.array([[0, 1]]))

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(ValueError):
            Mesh(np.zeros((3, 2)), np.array([[0, 1, 5]]))

    def test_all_boundary_nodes_union(self):
        m = structured_rectangle(4, 4)
        assert len(m.all_boundary_nodes()) == 12  # perimeter of 4x4

    def test_unknown_boundary_set_raises(self):
        m = structured_rectangle(3, 3)
        with pytest.raises(KeyError, match="available"):
            m.boundary_set("nope")


class TestBoundaryEdges2d:
    def test_count_matches_perimeter(self):
        n = 6
        m = structured_rectangle(n, n)
        edges = boundary_edges_2d(m)
        assert len(edges) == 4 * (n - 1)

    def test_nodes_match_named_sets(self):
        m = structured_rectangle(5, 5)
        from_edges = set(np.unique(boundary_edges_2d(m)).tolist())
        from_sets = set(m.all_boundary_nodes().tolist())
        assert from_edges == from_sets

    def test_requires_2d(self):
        m = structured_box(3, 3, 3)
        with pytest.raises(ValueError):
            boundary_edges_2d(m)


class TestBoundaryFaces3d:
    def test_count_matches_surface(self):
        n = 4
        m = structured_box(n, n, n)
        faces = boundary_faces_3d(m)
        # each of the 6 faces has (n-1)^2 quads; the Kuhn split gives 2
        # triangles per surface quad
        assert len(faces) == 6 * (n - 1) ** 2 * 2

    def test_nodes_match_named_sets(self):
        m = structured_box(4, 4, 4)
        from_faces = set(np.unique(boundary_faces_3d(m)).tolist())
        from_sets = set(m.all_boundary_nodes().tolist())
        assert from_faces == from_sets


class TestTriangleQuality:
    def test_right_triangles_quality(self):
        m = structured_rectangle(4, 4)
        q = triangle_quality(m)
        # isoceles right triangle: q = 4*sqrt(3)*(1/2)/(1+1+2) = sqrt(3)/2 / ... compute
        expected = 4 * np.sqrt(3) * 0.5 / 4.0
        assert np.allclose(q, expected)

    def test_quality_in_unit_interval(self):
        m = structured_rectangle(7, 5)
        q = triangle_quality(m)
        assert np.all(q > 0) and np.all(q <= 1.0 + 1e-12)

    def test_equilateral_is_one(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, np.sqrt(3) / 2]])
        m = Mesh(pts, np.array([[0, 1, 2]]))
        assert triangle_quality(m)[0] == pytest.approx(1.0)
