import numpy as np
import pytest

from repro.mesh.grid3d import structured_box


class TestStructuredBox:
    def test_counts(self):
        m = structured_box(3, 4, 5)
        assert m.num_points == 60
        assert m.num_elements == 6 * 2 * 3 * 4  # six tets per cell

    def test_paper_grid_size_formula(self):
        m = structured_box(11, 11, 11)
        assert m.num_points == 1331  # 101³ → 1,030,301 at paper scale

    def test_total_volume_is_domain_volume(self):
        m = structured_box(4, 4, 4, 0, 2, 0, 1, 0, 1)
        p = m.points[m.elements]
        d = p[:, 1:] - p[:, :1]
        vol = np.abs(np.linalg.det(d)).sum() / 6.0
        assert vol == pytest.approx(2.0)

    def test_no_degenerate_tets(self):
        m = structured_box(4, 4, 4)
        p = m.points[m.elements]
        d = p[:, 1:] - p[:, :1]
        assert np.all(np.abs(np.linalg.det(d)) > 1e-14)

    def test_mesh_is_conforming(self):
        """Every interior face is shared by exactly two tets."""
        from repro.mesh.mesh import boundary_faces_3d

        m = structured_box(3, 3, 3)
        tet = m.elements
        faces = np.vstack(
            [tet[:, [0, 1, 2]], tet[:, [0, 1, 3]], tet[:, [0, 2, 3]], tet[:, [1, 2, 3]]]
        )
        faces = np.sort(faces, axis=1)
        _, counts = np.unique(faces, axis=0, return_counts=True)
        assert set(counts.tolist()) <= {1, 2}

    def test_boundary_sets(self):
        m = structured_box(3, 4, 5)
        assert len(m.boundary_set("left")) == 20
        assert len(m.boundary_set("top")) == 12
        assert np.all(m.points[m.boundary_set("right"), 0] == 1.0)

    def test_x_fastest_z_slowest(self):
        m = structured_box(3, 3, 3)
        assert np.allclose(m.points[1], [0.5, 0.0, 0.0])
        assert np.allclose(m.points[9], [0.0, 0.0, 0.5])

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            structured_box(2, 1, 2)
