"""Admission control: queue bounds, rate limits, weighted fair share."""

import pytest

from repro.service.admission import AdmissionController, TenantPolicy, TokenBucket
from repro.service.errors import ServiceOverload
from repro.service.job import JobRecord, JobSpec


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_record(tenant: str = "a", n: int = 0) -> JobRecord:
    return JobRecord(f"job-{tenant}-{n}", JobSpec(tenant=tenant))


class TestTenantPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"max_queue": 0}, {"rate": 0.0}, {"burst": 0}, {"weight": 0},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantPolicy(**kwargs)


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, now=clock())
        assert bucket.try_take(clock())
        assert bucket.try_take(clock())
        assert not bucket.try_take(clock())   # burst spent, no time passed
        clock.advance(1.0)
        assert bucket.try_take(clock())       # 1 token/s refilled
        assert not bucket.try_take(clock())

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3, now=clock())
        clock.advance(60.0)
        taken = sum(bucket.try_take(clock()) for _ in range(10))
        assert taken == 3


class TestGates:
    def test_global_queue_bound_sheds_with_reason(self):
        adm = AdmissionController(max_total=2, clock=FakeClock())
        adm.submit(make_record("a", 0))
        adm.submit(make_record("b", 0))
        with pytest.raises(ServiceOverload) as err:
            adm.submit(make_record("c", 0))
        assert err.value.reason == "global-queue-full"
        assert adm.stats()["shed"] == {"global-queue-full": 1}

    def test_tenant_queue_bound_sheds_only_that_tenant(self):
        adm = AdmissionController(
            default_policy=TenantPolicy(max_queue=1), max_total=100,
            clock=FakeClock(),
        )
        adm.submit(make_record("a", 0))
        with pytest.raises(ServiceOverload) as err:
            adm.submit(make_record("a", 1))
        assert err.value.reason == "tenant-queue-full"
        adm.submit(make_record("b", 0))  # other tenants unaffected

    def test_rate_limit_sheds_after_burst(self):
        clock = FakeClock()
        adm = AdmissionController(
            default_policy=TenantPolicy(max_queue=100, rate=1.0, burst=2),
            max_total=100, clock=clock,
        )
        adm.submit(make_record("a", 0))
        adm.submit(make_record("a", 1))
        with pytest.raises(ServiceOverload) as err:
            adm.submit(make_record("a", 2))
        assert err.value.reason == "rate-limit"
        clock.advance(1.5)
        adm.submit(make_record("a", 3))  # refilled

    def test_shed_record_rides_on_the_exception(self):
        adm = AdmissionController(max_total=1, clock=FakeClock())
        adm.submit(make_record("a", 0))
        victim = make_record("b", 0)
        with pytest.raises(ServiceOverload) as err:
            adm.submit(victim)
        assert err.value.record is victim

    def test_per_tenant_policy_overrides_default(self):
        adm = AdmissionController(
            default_policy=TenantPolicy(max_queue=1),
            policies={"vip": TenantPolicy(max_queue=5)},
            max_total=100, clock=FakeClock(),
        )
        for n in range(5):
            adm.submit(make_record("vip", n))
        assert adm.depth("vip") == 5


class TestFairShare:
    def test_round_robin_alternates_tenants(self):
        adm = AdmissionController(max_total=100, clock=FakeClock())
        for n in range(3):
            adm.submit(make_record("a", n))
        for n in range(3):
            adm.submit(make_record("b", n))
        order = [adm.next_job(timeout=0.01).spec.tenant for _ in range(6)]
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_weight_grants_consecutive_picks(self):
        adm = AdmissionController(
            policies={"heavy": TenantPolicy(weight=2)},
            max_total=100, clock=FakeClock(),
        )
        for n in range(4):
            adm.submit(make_record("heavy", n))
        for n in range(2):
            adm.submit(make_record("light", n))
        order = [adm.next_job(timeout=0.01).spec.tenant for _ in range(6)]
        assert order == ["heavy", "heavy", "light",
                         "heavy", "heavy", "light"]

    def test_empty_tenant_skipped_without_losing_turns(self):
        adm = AdmissionController(max_total=100, clock=FakeClock())
        adm.submit(make_record("a", 0))
        assert adm.next_job(timeout=0.01).spec.tenant == "a"
        adm.submit(make_record("b", 0))
        assert adm.next_job(timeout=0.01).spec.tenant == "b"

    def test_fifo_within_a_tenant(self):
        adm = AdmissionController(max_total=100, clock=FakeClock())
        for n in range(3):
            adm.submit(make_record("a", n))
        ids = [adm.next_job(timeout=0.01).job_id for _ in range(3)]
        assert ids == ["job-a-0", "job-a-1", "job-a-2"]


class TestDequeueAndDrain:
    def test_next_job_times_out_empty(self):
        adm = AdmissionController(clock=FakeClock())
        assert adm.next_job(timeout=0.01) is None

    def test_flush_empties_every_queue(self):
        adm = AdmissionController(max_total=100, clock=FakeClock())
        records = [make_record("a", 0), make_record("b", 0),
                   make_record("b", 1)]
        for r in records:
            adm.submit(r)
        evicted = adm.flush()
        assert set(evicted) == set(records)
        assert adm.depth() == 0
        assert adm.next_job(timeout=0.01) is None

    def test_stats_shape(self):
        adm = AdmissionController(max_total=100, clock=FakeClock())
        adm.submit(make_record("a", 0))
        stats = adm.stats()
        assert stats["admitted"] == 1 and stats["queued"] == 1
        assert stats["tenants"] == {"a": 1} and stats["shed"] == {}
