"""SolveService end to end: admission, breakers, deadlines, drain, resume.

Deterministic tests inject a scripted solver via ``svc._ctx.solver_factory``
(a gate-blocked fake makes queue states observable); a couple of real-solve
tests keep the service honest against the actual FGMRES stack.
"""

import threading
import time

import numpy as np
import pytest

from repro.checkpoint import CheckpointManager
from repro.service import (
    DRAIN_SCHEMA,
    JobSpec,
    ServiceConfig,
    ServiceOverload,
    ServiceShutdown,
    SolveService,
    TenantPolicy,
)

SMALL = dict(case="tc1", size=13, nparts=2)


# -- scripted solver scaffolding ----------------------------------------------

class FakeAttempt:
    def __init__(self, precond, status="converged", iterations=5,
                 fault=None, kind="primary"):
        self.precond = precond
        self.status = status
        self.iterations = iterations
        self.fault = fault
        self.kind = kind


class FakeOutcome:
    def __init__(self, precond, residuals=(1.0, 1e-9), x_global=None):
        self.precond = precond
        self.residuals = list(residuals)
        self.x_global = x_global


class FakeResult:
    def __init__(self, status="converged", precond="schur1", iterations=5,
                 outcome="auto"):
        self.status = status
        self.converged = status == "converged"
        self.attempts = [FakeAttempt(precond, status=status,
                                     iterations=iterations)]
        self.outcome = (FakeOutcome(precond) if outcome == "auto"
                        else outcome)


def scripted_factory(fn):
    """solver_factory whose solve() delegates to ``fn(case, kwargs)``."""
    class _Solver:
        def solve(self, case, **kwargs):
            return fn(case, kwargs)

    return _Solver


def gate_factory(gate, calls=None):
    """Blocks every solve on ``gate``; converges once it opens."""
    def fn(case, kwargs):
        if calls is not None:
            calls.append(kwargs)
        assert gate.wait(timeout=30.0), "test gate never opened"
        return FakeResult(precond=kwargs["precond"])

    return scripted_factory(fn)


def wait_until(pred, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pred():
            return True
        time.sleep(0.005)
    return False


@pytest.fixture
def spool(tmp_path):
    return str(tmp_path / "spool")


def make_service(spool, *, workers=1, gate=None, calls=None, **cfg):
    svc = SolveService(ServiceConfig(workers=workers, spool_dir=spool, **cfg))
    if gate is not None:
        svc._ctx.solver_factory = gate_factory(gate, calls)
    return svc


# -- real solves --------------------------------------------------------------

class TestRealSolve:
    def test_job_converges_to_original_tolerance(self, spool):
        with make_service(spool, workers=2) as svc:
            rec = svc.submit(JobSpec(**SMALL))
            assert svc.wait(rec.job_id, timeout=60.0).status == "converged"
        assert rec.final_relres is not None
        assert rec.final_relres <= rec.spec.rtol * 10
        assert rec.iterations > 0 and rec.residuals
        assert rec.attempts[0]["precond"] == "schur1"
        assert rec.latency_s is not None

    def test_failed_solve_is_typed_not_raised(self, spool):
        # an impossibly small iteration budget exhausts maxiter
        with make_service(spool, workers=1) as svc:
            rec = svc.submit(JobSpec(**SMALL, precond="none", maxiter=2,
                                     rtol=1e-14))
            svc.wait(rec.job_id, timeout=60.0)
        assert rec.status == "failed"
        assert rec.error is not None


# -- submission ---------------------------------------------------------------

class TestSubmission:
    def test_submit_before_start_raises_typed(self, spool):
        svc = SolveService(ServiceConfig(spool_dir=spool))
        with pytest.raises(ServiceShutdown):
            svc.submit(JobSpec(**SMALL))

    def test_idempotent_key_returns_existing_record(self, spool):
        gate = threading.Event()
        with make_service(spool, gate=gate) as svc:
            a = svc.submit(JobSpec(**SMALL, key="job-key"))
            b = svc.submit(JobSpec(**SMALL, key="job-key"))
            gate.set()
            assert b is a
            svc.wait_all(timeout=30.0)
            # terminal jobs dedup too: the key still owns its record
            assert svc.submit(JobSpec(**SMALL, key="job-key")) is a

    def test_dict_specs_accepted(self, spool):
        gate = threading.Event()
        gate.set()
        with make_service(spool, gate=gate) as svc:
            rec = svc.submit({"tenant": "t", **SMALL})
            assert svc.wait(rec.job_id, timeout=30.0).status == "converged"


class TestOverload:
    def test_all_three_gates_shed_typed_with_records(self, spool):
        gate = threading.Event()
        svc = make_service(
            spool, workers=1, gate=gate, max_total_queue=2,
            default_policy=TenantPolicy(max_queue=1),
        ).start()
        try:
            running = svc.submit(JobSpec(**SMALL, tenant="a"))
            assert wait_until(lambda: running.status == "running")
            svc.submit(JobSpec(**SMALL, tenant="a"))  # queued (a: 1/1)
            with pytest.raises(ServiceOverload) as err:
                svc.submit(JobSpec(**SMALL, tenant="a"))
            assert err.value.reason == "tenant-queue-full"
            assert err.value.record.status == "shed"
            assert err.value.record.shed_reason == "tenant-queue-full"

            svc.submit(JobSpec(**SMALL, tenant="b"))  # queued (total 2/2)
            with pytest.raises(ServiceOverload) as err:
                svc.submit(JobSpec(**SMALL, tenant="c"))
            assert err.value.reason == "global-queue-full"

            gate.set()
            assert svc.wait_all(timeout=30.0)
            stats = svc.stats()
            assert stats["by_status"]["shed"] == 2
            assert stats["by_status"]["converged"] == 3
            assert stats["admission"]["shed"] == {
                "tenant-queue-full": 1, "global-queue-full": 1,
            }
        finally:
            gate.set()
            svc.shutdown()

    def test_shed_records_stay_queryable(self, spool):
        gate = threading.Event()
        svc = make_service(spool, workers=1, gate=gate,
                           max_total_queue=1).start()
        try:
            running = svc.submit(JobSpec(**SMALL))
            assert wait_until(lambda: running.status == "running")
            svc.submit(JobSpec(**SMALL))
            with pytest.raises(ServiceOverload) as err:
                svc.submit(JobSpec(**SMALL))
            shed_id = err.value.record.job_id
            assert svc.job(shed_id).status == "shed"
            assert shed_id in {r.job_id for r in svc.all_jobs()}
        finally:
            gate.set()
            svc.shutdown()


# -- control signals ----------------------------------------------------------

class TestCancel:
    def test_queued_job_cancels_at_dispatch(self, spool):
        gate = threading.Event()
        svc = make_service(spool, workers=1, gate=gate).start()
        try:
            running = svc.submit(JobSpec(**SMALL))
            assert wait_until(lambda: running.status == "running")
            queued = svc.submit(JobSpec(**SMALL))
            svc.cancel(queued.job_id)
            gate.set()
            assert svc.wait_all(timeout=30.0)
            assert queued.status == "cancelled"
            assert running.status == "converged"
        finally:
            gate.set()
            svc.shutdown()


class TestWorkerError:
    def test_raising_solver_yields_terminal_failed(self, spool):
        def explode(case, kwargs):
            raise RuntimeError("kaboom")

        with make_service(spool, workers=1) as svc:
            svc._ctx.solver_factory = scripted_factory(explode)
            rec = svc.submit(JobSpec(**SMALL))
            svc.wait(rec.job_id, timeout=30.0)
        assert rec.status == "failed"
        assert "RuntimeError: kaboom" in rec.error
        assert rec.updates[-1].detail["reason"] == "internal-error"


class TestBreakerRouting:
    def test_tripped_primary_degrades_down_the_chain(self, spool):
        calls = []

        def fn(case, kwargs):
            calls.append(kwargs["precond"])
            return FakeResult(precond=kwargs["precond"])

        with make_service(spool, workers=1) as svc:
            svc._ctx.solver_factory = scripted_factory(fn)
            for _ in range(3):
                svc.breakers.record_failure("schur1")
            rec = svc.submit(JobSpec(**SMALL, precond="schur1"))
            svc.wait(rec.job_id, timeout=30.0)
        assert rec.status == "converged"
        assert calls == ["schur2"]  # strongest non-tripped fallback
        assert rec.attempts[0]["precond"] == "schur2"


class TestDeadline:
    def test_expiring_in_the_queue_sheds_typed(self, spool):
        gate = threading.Event()
        svc = make_service(spool, workers=1, gate=gate).start()
        try:
            running = svc.submit(JobSpec(**SMALL))
            assert wait_until(lambda: running.status == "running")
            doomed = svc.submit(JobSpec(**SMALL, deadline_s=0.05))
            time.sleep(0.15)  # budget burns while queued
            gate.set()
            assert svc.wait_all(timeout=30.0)
            assert doomed.status == "shed"
            assert doomed.shed_reason == "deadline"
        finally:
            gate.set()
            svc.shutdown()

    def test_expiring_mid_solve_fails_at_a_chunk_boundary(self, spool):
        def slow_chunk(case, kwargs):
            time.sleep(0.08)
            return FakeResult(status="maxiter", iterations=kwargs["maxiter"])

        with make_service(spool, workers=1) as svc:
            svc._ctx.solver_factory = scripted_factory(slow_chunk)
            rec = svc.submit(JobSpec(**SMALL, deadline_s=0.2))
            svc.wait(rec.job_id, timeout=30.0)
        assert rec.status == "failed"
        assert rec.updates[-1].detail["reason"] == "deadline"
        assert "deadline" in rec.error
        assert rec.iterations > 0  # it did make progress first


# -- drain / resume -----------------------------------------------------------

def drain_in_background(svc):
    out = {}

    def run():
        out["manifest"] = svc.drain(timeout=30.0)

    t = threading.Thread(target=run, daemon=True)
    t.start()
    return t, out


class TestDrain:
    def test_queued_jobs_shed_running_job_finishes(self, spool):
        gate = threading.Event()
        svc = make_service(spool, workers=1, gate=gate).start()
        running = svc.submit(JobSpec(**SMALL))
        assert wait_until(lambda: running.status == "running")
        queued = [svc.submit(JobSpec(**SMALL)) for _ in range(2)]

        t, out = drain_in_background(svc)
        assert wait_until(
            lambda: all(q.status == "shed" for q in queued)
        )
        gate.set()  # running job's chunk completes -> converged
        t.join(timeout=30.0)

        manifest = out["manifest"]
        assert manifest["schema"] == DRAIN_SCHEMA
        assert running.status == "converged"
        drained_ids = {j["job_id"] for j in manifest["jobs"]}
        assert drained_ids == {q.job_id for q in queued}
        for entry in manifest["jobs"]:
            assert entry["status"] == "shed"
            assert entry["shed_reason"] == "drained"
        # the service refuses work after drain, typed
        with pytest.raises(ServiceShutdown):
            svc.submit(JobSpec(**SMALL))

    def test_running_job_checkpoints_and_resumes_elsewhere(self, spool, tmp_path):
        gate = threading.Event()

        def chunk_with_checkpoint(case, kwargs):
            assert gate.wait(timeout=30.0), "test gate never opened"
            mgr = CheckpointManager(kwargs["checkpoint_dir"], prefix="solve")
            mgr.save(1, {"x": np.zeros(3)})
            return FakeResult(status="maxiter", iterations=kwargs["maxiter"])

        svc = make_service(spool, workers=1)
        svc._ctx.solver_factory = scripted_factory(chunk_with_checkpoint)
        svc.start()
        rec = svc.submit(JobSpec(**SMALL, deadline_s=None))
        assert wait_until(lambda: rec.status == "running")

        t, out = drain_in_background(svc)
        assert wait_until(lambda: svc._draining.is_set())
        gate.set()  # chunk ends; the boundary check sees the drain
        t.join(timeout=30.0)

        assert rec.status == "shed" and rec.shed_reason == "drained"
        assert rec.resumable
        (entry,) = out["manifest"]["jobs"]
        assert entry["resumable"] and entry["checkpoint_dir"]

        # a successor process picks the manifest up and restores
        seen = []

        def record_restore(case, kwargs):
            seen.append(kwargs)
            return FakeResult()

        svc2 = SolveService(ServiceConfig(
            workers=1, spool_dir=str(tmp_path / "spool2")))
        svc2._ctx.solver_factory = scripted_factory(record_restore)
        with svc2:
            (resumed,) = svc2.resume(out["manifest"])
            assert resumed.resumed
            assert resumed.checkpoint_dir == entry["checkpoint_dir"]
            svc2.wait(resumed.job_id, timeout=30.0)
        assert resumed.status == "converged"
        assert seen[0]["restore"] is True  # first chunk restored the snapshot

    def test_resume_rejects_foreign_manifests(self, spool):
        with make_service(spool) as svc:
            with pytest.raises(ValueError, match="manifest"):
                svc.resume({"schema": "something.else", "jobs": []})
