"""``repro serve`` as a process: result lines, SIGTERM drain, resume flag."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service.job import TERMINAL_STATUSES


def serve_cmd(*extra):
    return [sys.executable, "-m", "repro", "serve", *extra]


def env():
    e = dict(os.environ)
    e["PYTHONPATH"] = "src"
    return e


REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def run_serve(*extra, timeout=120):
    return subprocess.run(
        serve_cmd(*extra), capture_output=True, text=True,
        timeout=timeout, env=env(), cwd=REPO,
    )


def parse_results(stdout):
    return [json.loads(line) for line in stdout.splitlines() if line.strip()]


class TestServeBatch:
    def test_gen_jobs_all_reach_terminal_status_exit_zero(self, tmp_path):
        proc = run_serve("--gen", "3", "--size", "13", "--nparts", "2",
                         "--workers", "2", "--spool", str(tmp_path / "spool"))
        assert proc.returncode == 0, proc.stderr
        results = parse_results(proc.stdout)
        assert len(results) == 3
        for r in results:
            assert r["status"] in TERMINAL_STATUSES
        assert all(r["status"] == "converged" for r in results)
        assert "served 3 job(s)" in proc.stderr

    def test_jobs_file_and_out_file(self, tmp_path):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(json.dumps(
            {"tenant": "t1", "case": "tc1", "size": 13, "nparts": 2}
        ) + "\n")
        out = tmp_path / "results.jsonl"
        proc = run_serve("--jobs", str(jobs), "--out", str(out),
                         "--spool", str(tmp_path / "spool"))
        assert proc.returncode == 0, proc.stderr
        (result,) = parse_results(out.read_text())
        assert result["tenant"] == "t1"
        assert result["status"] == "converged"

    def test_bad_deadline_jobs_end_typed_not_crashed(self, tmp_path):
        # a 1 ms deadline can't fit any solve: shed/failed, still exit 0
        proc = run_serve("--gen", "2", "--size", "13", "--nparts", "2",
                         "--deadline", "0.001",
                         "--spool", str(tmp_path / "spool"))
        assert proc.returncode == 0, proc.stderr
        results = parse_results(proc.stdout)
        assert len(results) == 2
        for r in results:
            assert r["status"] in ("shed", "failed")


class TestServeSignals:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_drains_gracefully_exit_zero(self, tmp_path, signum):
        spool = tmp_path / "spool"
        proc = subprocess.Popen(
            serve_cmd("--gen", "1", "--size", "13", "--nparts", "2",
                      "--linger", "60", "--spool", str(spool)),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env(), cwd=REPO,
        )
        try:
            # wait for the job's checkpoint dir to appear, a sign the
            # solve has been dispatched (the service lingers afterwards)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and proc.poll() is None:
                if spool.is_dir() and any(p.is_dir() for p in spool.iterdir()):
                    break
                time.sleep(0.1)
            time.sleep(2.0)  # generous: let the solve complete into linger
            proc.send_signal(signum)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
        assert proc.returncode == 0, stderr
        assert "drained with" in stderr
        manifest = json.loads((spool / "drain.json").read_text())
        assert manifest["schema"] == "repro.service.drain.v1"
        results = parse_results(stdout)
        assert results and all(
            r["status"] in TERMINAL_STATUSES for r in results
        )
