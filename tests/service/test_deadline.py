"""Deadline propagation: budgets, the rate estimator, retry-policy scaling."""

import math

import pytest

from repro.comm.communicator import RetryPolicy
from repro.service.deadline import (
    Deadline,
    IterationRateEstimator,
    iteration_budget,
    scaled_retry_policy,
)


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestDeadline:
    def test_no_deadline_never_expires(self):
        d = Deadline(None, clock=FakeClock())
        assert d.remaining() == math.inf and not d.expired

    def test_counts_down_and_expires(self):
        clock = FakeClock()
        d = Deadline(2.0, clock=clock)
        assert d.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert d.remaining() == pytest.approx(0.5) and not d.expired
        clock.advance(0.6)
        assert d.expired

    def test_start_anchor_spends_queue_time(self):
        clock = FakeClock()
        clock.advance(10.0)
        # submitted at t=7, dispatched at t=10: 3 s already spent
        d = Deadline(5.0, clock=clock, start=7.0)
        assert d.remaining() == pytest.approx(2.0)


class TestIterationRateEstimator:
    def test_defaults_until_observed(self):
        est = IterationRateEstimator(default=1e-2)
        assert est.estimate(("tc1", 13)) == 1e-2

    def test_first_observation_taken_whole(self):
        est = IterationRateEstimator()
        est.observe(("k",), wall_s=1.0, iterations=10)
        assert est.estimate(("k",)) == pytest.approx(0.1)

    def test_ewma_blends_toward_new_rate(self):
        est = IterationRateEstimator(alpha=0.5)
        est.observe(("k",), wall_s=1.0, iterations=10)   # 0.1 s/it
        est.observe(("k",), wall_s=3.0, iterations=10)   # 0.3 s/it
        assert est.estimate(("k",)) == pytest.approx(0.2)

    def test_degenerate_observations_ignored(self):
        est = IterationRateEstimator(default=5.0)
        est.observe(("k",), wall_s=0.0, iterations=10)
        est.observe(("k",), wall_s=1.0, iterations=0)
        assert est.estimate(("k",)) == 5.0


class TestIterationBudget:
    def test_no_deadline_grants_the_whole_chunk(self):
        assert iteration_budget(math.inf, 1e-3, restart=20, max_chunk=100) == 100

    def test_rounds_down_to_whole_restart_cycles(self):
        # 0.055 s at 1 ms/it = 55 affordable -> 2 whole cycles of 20
        assert iteration_budget(0.055, 1e-3, restart=20, max_chunk=100) == 40

    def test_never_below_one_restart_cycle(self):
        assert iteration_budget(1e-6, 1.0, restart=20, max_chunk=100) == 20

    def test_never_above_max_chunk(self):
        assert iteration_budget(1e6, 1e-6, restart=20, max_chunk=60) == 60


class TestScaledRetryPolicy:
    def test_no_deadline_returns_base_unchanged(self):
        base = RetryPolicy(max_retries=3, timeout=0.1, backoff=2.0)
        assert scaled_retry_policy(base, math.inf) is base

    def test_ample_time_returns_base_unchanged(self):
        base = RetryPolicy(max_retries=3, timeout=0.1, backoff=2.0)
        assert scaled_retry_policy(base, 1e4) is base

    def test_tight_deadline_shrinks_timeout_not_structure(self):
        base = RetryPolicy(max_retries=3, timeout=0.1, backoff=2.0)
        scaled = scaled_retry_policy(base, remaining_s=1.0, share=0.1)
        assert scaled.max_retries == base.max_retries
        assert scaled.backoff == base.backoff
        assert scaled.timeout < base.timeout
        # worst-case cumulative wait now fits the 10% share of 1 s
        worst = scaled.timeout * (scaled.backoff**4 - 1) / (scaled.backoff - 1)
        assert worst == pytest.approx(0.1, rel=1e-6)

    def test_expired_deadline_still_grants_a_floor(self):
        base = RetryPolicy(max_retries=3, timeout=0.1, backoff=2.0)
        scaled = scaled_retry_policy(base, remaining_s=0.0)
        assert scaled.timeout > 0
