"""Circuit breakers: trip, cooldown, half-open probe, unbreakable rungs."""

from repro import obs
from repro.service.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    BreakerPolicy,
)


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def board(clock, threshold=3, cooldown=5.0):
    return BreakerBoard(
        BreakerPolicy(fail_threshold=threshold, cooldown_s=cooldown),
        clock=clock,
    )


def _events(tracer, name):
    evs = [e for e in tracer.orphan_events if e["name"] == name]
    for s in tracer.spans:
        evs.extend(e for e in s.events if e["name"] == name)
    return evs


class TestTrip:
    def test_closed_until_threshold_consecutive_failures(self):
        b = board(FakeClock(), threshold=3)
        b.record_failure("schur1")
        b.record_failure("schur1")
        assert b.state("schur1") == CLOSED and b.allow("schur1")
        b.record_failure("schur1")
        assert b.state("schur1") == OPEN and not b.allow("schur1")

    def test_success_resets_the_consecutive_count(self):
        b = board(FakeClock(), threshold=2)
        b.record_failure("schur1")
        b.record_success("schur1")
        b.record_failure("schur1")
        assert b.state("schur1") == CLOSED

    def test_trip_emits_breaker_open_event(self):
        b = board(FakeClock(), threshold=1)
        with obs.tracing() as tracer:
            b.record_failure("schur2")
        (ev,) = _events(tracer, "service.breaker.open")
        assert ev["attrs"]["precond"] == "schur2"

    def test_circuits_are_independent(self):
        b = board(FakeClock(), threshold=1)
        b.record_failure("schur1")
        assert not b.allow("schur1") and b.allow("schur2")


class TestCooldownAndProbe:
    def test_open_holds_until_cooldown_then_half_open_probe(self):
        clock = FakeClock()
        b = board(clock, threshold=1, cooldown=5.0)
        b.record_failure("schur1")
        clock.advance(4.9)
        assert not b.allow("schur1")
        clock.advance(0.2)
        assert b.allow("schur1")                 # the single probe
        assert b.state("schur1") == HALF_OPEN
        assert not b.allow("schur1")             # everyone else held back

    def test_probe_success_closes(self):
        clock = FakeClock()
        b = board(clock, threshold=1, cooldown=1.0)
        b.record_failure("schur1")
        clock.advance(1.1)
        assert b.allow("schur1")
        b.record_success("schur1")
        assert b.state("schur1") == CLOSED and b.allow("schur1")

    def test_probe_failure_reopens_for_another_cooldown(self):
        clock = FakeClock()
        b = board(clock, threshold=3, cooldown=1.0)
        for _ in range(3):
            b.record_failure("schur1")
        clock.advance(1.1)
        assert b.allow("schur1")
        b.record_failure("schur1")  # one probe failure re-trips immediately
        assert b.state("schur1") == OPEN and not b.allow("schur1")
        assert b.stats()["schur1"]["trips"] == 2


class TestUnbreakable:
    def test_jacobi_is_never_tripped(self):
        b = board(FakeClock(), threshold=1)
        for _ in range(10):
            b.record_failure("jacobi")
        assert b.allow("jacobi") and b.state("jacobi") == CLOSED
        assert "jacobi" not in b.stats()
