"""Job model: spec validation, the lifecycle state machine, streaming."""

import pytest

from repro.service.errors import UnknownJob
from repro.service.job import (
    JOB_STATUSES,
    TERMINAL_STATUSES,
    JobRecord,
    JobSpec,
    JobTable,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestJobSpec:
    def test_defaults_are_valid(self):
        spec = JobSpec()
        assert spec.tenant == "default" and spec.precond == "schur1"

    @pytest.mark.parametrize("kwargs,match", [
        ({"precond": "nope"}, "unknown preconditioner"),
        ({"solver": "bicg"}, "unknown solver"),
        ({"nparts": 0}, "nparts"),
        ({"maxiter": 0}, "maxiter"),
        ({"deadline_s": 0.0}, "deadline_s"),
        ({"tenant": ""}, "tenant"),
    ])
    def test_invalid_fields_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            JobSpec(**kwargs)

    def test_round_trips_through_dict(self):
        spec = JobSpec(tenant="t", case="tc3", size=9, precond="block2",
                       deadline_s=2.5, key="k-1")
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected_on_load(self):
        with pytest.raises(ValueError, match="unknown JobSpec field"):
            JobSpec.from_dict({"tenant": "t", "color": "red"})


class TestStateMachine:
    def test_happy_path_and_timestamps(self):
        clock = FakeClock()
        rec = JobRecord("job-1", JobSpec(), clock=clock)
        assert rec.status == "queued" and not rec.terminal
        clock.advance(1.0)
        rec.transition("running", worker="w0")
        assert rec.started_t == 1.0
        clock.advance(2.0)
        rec.transition("converged", iterations=5)
        assert rec.terminal and rec.finished_t == 3.0
        assert rec.latency_s == 3.0

    @pytest.mark.parametrize("status", TERMINAL_STATUSES)
    def test_terminal_statuses_are_terminal(self, status):
        rec = JobRecord("job-1", JobSpec())
        if status in ("converged", "failed"):
            rec.transition("running")
        rec.transition(status)
        for other in JOB_STATUSES:
            with pytest.raises(ValueError, match="illegal transition"):
                rec.transition(other)

    def test_queued_cannot_jump_to_converged(self):
        rec = JobRecord("job-1", JobSpec())
        with pytest.raises(ValueError, match="illegal transition"):
            rec.transition("converged")

    def test_unknown_status_rejected(self):
        rec = JobRecord("job-1", JobSpec())
        with pytest.raises(ValueError, match="unknown status"):
            rec.transition("paused")

    def test_every_update_is_recorded_in_order(self):
        rec = JobRecord("job-1", JobSpec())
        rec.transition("running")
        rec.progress(iterations=10, relres=1e-3)
        rec.transition("converged")
        kinds = [(u.seq, u.kind, u.status) for u in rec.updates]
        assert kinds == [
            (0, "status", "queued"), (1, "status", "running"),
            (2, "progress", "running"), (3, "status", "converged"),
        ]
        assert rec.updates[2].detail["relres"] == 1e-3

    def test_cancel_flag_is_sticky(self):
        rec = JobRecord("job-1", JobSpec())
        assert not rec.cancel_requested
        rec.request_cancel()
        assert rec.cancel_requested


class TestObservation:
    def test_wait_returns_true_once_terminal(self):
        rec = JobRecord("job-1", JobSpec())
        rec.transition("shed", reason="test")
        assert rec.wait(timeout=0.1)

    def test_wait_times_out_on_live_job(self):
        rec = JobRecord("job-1", JobSpec())
        assert not rec.wait(timeout=0.05)

    def test_stream_yields_all_updates_then_ends(self):
        rec = JobRecord("job-1", JobSpec())
        rec.transition("running")
        rec.progress(iterations=3)
        rec.transition("converged")
        got = list(rec.stream(timeout=1.0))
        assert [u.status for u in got] == [
            "queued", "running", "running", "converged",
        ]
        assert got[-1].kind == "status"

    def test_to_dict_snapshot_shape(self):
        rec = JobRecord("job-7", JobSpec(tenant="t", key="k"))
        rec.transition("running")
        rec.transition("failed", reason="maxiter")
        d = rec.to_dict()
        assert d["job_id"] == "job-7" and d["tenant"] == "t"
        assert d["status"] == "failed" and d["spec"]["key"] == "k"
        assert d["latency_s"] is not None


class TestJobTable:
    def test_monotone_ids_and_lookup(self):
        table = JobTable()
        a = JobRecord(table.new_id(), JobSpec())
        b = JobRecord(table.new_id(), JobSpec(key="k"))
        table.add(a)
        table.add(b)
        assert a.job_id != b.job_id
        assert table.get(b.job_id) is b
        assert table.by_key("k") is b
        assert table.by_key("missing") is None
        assert set(table.all()) == {a, b}

    def test_unknown_job_is_typed(self):
        with pytest.raises(UnknownJob, match="no job"):
            JobTable().get("job-99999")
