"""The transition edges the model checker formalizes, against the real code.

RPR011 proves the *specs* sound and the implementations *structurally*
faithful; these tests drive the implementations through every illegal edge
the specs forbid and assert they refuse at runtime too — cancel after
terminal, resurrect after DEAD, fence outside SUSPECT, a second probe
while half-open.  Parametrization comes from the specs themselves, so
extending a spec grows this coverage automatically.
"""

import pytest

from repro.analysis.proto.machines import BREAKER_SPEC, JOB_SPEC
from repro.comm.backends.supervisor import (
    DEAD,
    READY,
    SUSPECT,
    HeartbeatPolicy,
    RankSupervisor,
)
from repro.service.breaker import BreakerBoard, BreakerPolicy
from repro.service.job import JobRecord, JobSpec


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _record(status: str) -> JobRecord:
    rec = JobRecord("job-1", JobSpec())
    if status == "running":
        rec.transition("running")
    elif status != "queued":
        path = {"queued": (), "converged": ("running",),
                "failed": ("running",), "shed": (), "cancelled": ()}[status]
        for step in path:
            rec.transition(step)
        rec.transition(status)
    return rec


def _illegal_job_edges():
    allowed = JOB_SPEC.adjacency()
    for src in JOB_SPEC.states:
        for dst in JOB_SPEC.states:
            if dst not in allowed.get(src, ()):
                yield src, dst


class TestJobRecordRejectsIllegalEdges:
    @pytest.mark.parametrize("src,dst", sorted(_illegal_job_edges()))
    def test_illegal_transition_raises(self, src, dst):
        rec = _record(src)
        assert rec.status == src
        with pytest.raises(ValueError, match="illegal transition|unknown"):
            rec.transition(dst)
        assert rec.status == src  # refused edges leave the state untouched

    @pytest.mark.parametrize("terminal", JOB_SPEC.terminals)
    def test_cancel_after_terminal_refused(self, terminal):
        rec = _record(terminal)
        with pytest.raises(ValueError, match="illegal transition"):
            rec.transition("cancelled")

    @pytest.mark.parametrize("src,dst", [
        (src, dst) for src, dsts in JOB_SPEC.adjacency().items()
        for dst in dsts
    ])
    def test_every_spec_edge_is_accepted(self, src, dst):
        rec = _record(src)
        rec.transition(dst)
        assert rec.status == dst


class TestSupervisorTerminalAndFencing:
    def _sup(self, fence_after: int = 3) -> RankSupervisor:
        return RankSupervisor(
            size=1, policy=HeartbeatPolicy(fence_after=fence_after)
        )

    def test_no_resurrection_after_dead(self):
        sup = self._sup()
        sup.record_exit(0, exitcode=-9)
        assert sup.state(0) == DEAD
        sup.record_ready(0)  # late reply from a fenced rank: noise
        assert sup.state(0) == DEAD
        sup.record_miss(0)
        assert sup.state(0) == DEAD and sup.records[0].misses == 0

    def test_fence_requires_suspect_and_exhausted_budget(self):
        sup = self._sup(fence_after=2)
        assert not sup.should_fence(0)          # SPAWNED: never
        sup.record_ready(0)
        assert not sup.should_fence(0)          # READY: never
        assert sup.record_miss(0) == SUSPECT
        assert not sup.should_fence(0)          # budget not exhausted
        sup.record_miss(0)
        assert sup.should_fence(0)              # SUSPECT + budget: fence
        sup.record_fenced(0)
        assert not sup.should_fence(0)          # idempotent advice
        sup.record_exit(0, exitcode=-9)
        assert not sup.should_fence(0)          # DEAD: never again

    def test_probe_reply_deescalates_suspect(self):
        sup = self._sup(fence_after=2)
        sup.record_miss(0)
        assert sup.state(0) == SUSPECT
        sup.record_ready(0)
        assert sup.state(0) == READY and sup.records[0].misses == 0


class TestBreakerSingleProbe:
    def _board(self) -> tuple[BreakerBoard, FakeClock]:
        clock = FakeClock()
        board = BreakerBoard(
            policy=BreakerPolicy(fail_threshold=2, cooldown_s=5.0),
            clock=clock,
        )
        return board, clock

    def _trip(self, board: BreakerBoard) -> None:
        board.record_failure("ilu0")
        board.record_failure("ilu0")
        assert board.state("ilu0") == "open"

    def test_open_denies_until_cooldown(self):
        board, clock = self._board()
        self._trip(board)
        assert not board.allow("ilu0")
        clock.advance(5.1)
        assert board.allow("ilu0")  # the one probe

    def test_second_probe_denied_while_half_open(self):
        board, clock = self._board()
        self._trip(board)
        clock.advance(5.1)
        assert board.allow("ilu0")
        assert board.state("ilu0") == "half-open"
        # spec invariant: half-open admits exactly one probe
        assert not board.allow("ilu0")
        assert not board.allow("ilu0")

    def test_probe_failure_reopens_for_full_cooldown(self):
        board, clock = self._board()
        self._trip(board)
        clock.advance(5.1)
        assert board.allow("ilu0")
        board.record_failure("ilu0")  # single half-open failure re-trips
        assert board.state("ilu0") == "open"
        assert not board.allow("ilu0")
        clock.advance(5.1)
        assert board.allow("ilu0")

    def test_probe_success_closes_and_recovers(self):
        board, clock = self._board()
        self._trip(board)
        clock.advance(5.1)
        assert board.allow("ilu0")
        board.record_success("ilu0")
        assert board.state("ilu0") == "closed"
        assert board.allow("ilu0") and board.allow("ilu0")

    def test_spec_models_the_board(self):
        # the spec's event alphabet matches what the board implements
        events = {e for _s, e, _d in BREAKER_SPEC.transitions}
        assert events == {
            "failure-threshold", "cooldown-probe", "probe-success",
            "probe-failure", "success",
        }
