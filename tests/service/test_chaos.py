"""Chaos acceptance: composed fault injectors against a live service.

The bar (ISSUE 8): with proc-kill, straggler, and message-corrupt firing
against 50+ concurrent jobs, every job still ends in a terminal *typed*
status, and every job reported converged genuinely meets its original
solve tolerance.  No hangs, no untyped crashes, no silent wrong answers.
"""

import pytest

from repro import faults
from repro.service import ServiceConfig, SolveService, synthetic_jobs
from repro.service.job import TERMINAL_STATUSES

N_JOBS = 54
RELRES_SLACK = 10.0  # converged means converged: small slack over rtol


@pytest.fixture
def chaos_plan():
    # one rank death, two slowed transfers, two corrupted payloads —
    # aimed mid-run (start skips the first matching opportunities)
    return faults.FaultPlan([
        faults.FaultSpec(kind="proc-kill", rank=1, count=1, start=4),
        faults.FaultSpec(kind="straggler", count=2, start=6, delay=2e-3),
        faults.FaultSpec(kind="message-corrupt", count=2, start=8),
    ], seed=7)


class TestChaosAcceptance:
    def test_every_job_terminal_and_converged_jobs_accurate(
        self, tmp_path, chaos_plan
    ):
        specs = synthetic_jobs(N_JOBS, keyed=True)
        config = ServiceConfig(
            workers=4, max_total_queue=2 * N_JOBS,
            spool_dir=str(tmp_path / "spool"),
        )
        shed = 0
        with faults.inject(chaos_plan) as plan:
            with SolveService(config) as svc:
                for spec in specs:
                    try:
                        svc.submit(spec)
                    except Exception:
                        shed += 1
                assert svc.wait_all(timeout=300.0), (
                    "jobs failed to reach a terminal status under chaos: "
                    + str({r.job_id: r.status for r in svc.all_jobs()
                           if not r.terminal})
                )
                records = svc.all_jobs()

        # the faults really fired (otherwise this test proves nothing)
        assert plan.injected, "chaos plan never fired"
        kinds = {f["kind"] for f in plan.injected}
        assert "proc-kill" in kinds or "rank-dead" in kinds

        assert len(records) + shed >= N_JOBS
        by_status: dict[str, int] = {}
        for rec in records:
            assert rec.status in TERMINAL_STATUSES, (
                f"{rec.job_id} ended non-terminal: {rec.status}"
            )
            by_status[rec.status] = by_status.get(rec.status, 0) + 1

        converged = [r for r in records if r.status == "converged"]
        # chaos is bounded, so the fleet largely survives
        assert len(converged) >= N_JOBS // 2, by_status
        for rec in converged:
            assert rec.final_relres is not None
            assert rec.final_relres <= rec.spec.rtol * RELRES_SLACK, (
                f"{rec.job_id} reported converged at "
                f"relres={rec.final_relres:.3e}"
            )

        # faulted attempts are visible in the job records, typed
        faulted = [a for r in records for a in r.attempts
                   if a["fault"] is not None]
        assert faulted, "no job recorded a typed faulted attempt"

    def test_chaos_with_deadlines_still_all_typed(self, tmp_path, chaos_plan):
        # tight-but-feasible deadlines under chaos: some jobs may shed or
        # fail on the clock, but nothing escapes the typed state machine
        specs = synthetic_jobs(12, deadline_s=5.0)
        config = ServiceConfig(workers=3,
                               spool_dir=str(tmp_path / "spool"))
        with faults.inject(chaos_plan):
            with SolveService(config) as svc:
                records = [svc.submit(s) for s in specs]
                assert svc.wait_all(timeout=120.0)
        for rec in records:
            assert rec.status in TERMINAL_STATUSES
