import numpy as np
import pytest
import scipy.sparse as sp

from repro.factor.ilut import ilut
from tests.conftest import random_nonsymmetric_csr, random_spd_csr


class TestIlut:
    def test_no_dropping_gives_exact_lu(self):
        a = random_nonsymmetric_csr(35, 0.2, 0)
        fac = ilut(a, drop_tol=0.0, fill=35)
        assert abs(fac.as_product() - a).max() < 1e-10

    def test_fill_cap_respected(self):
        a = random_spd_csr(50, 0.3, 1)
        p = 4
        fac = ilut(a, drop_tol=0.0, fill=p)
        from repro.sparse.csr import nnz_per_row

        assert nnz_per_row(fac.l_strict).max() <= p
        # U stores diagonal + at most p off-diagonals
        assert nnz_per_row(fac.u_upper).max() <= p + 1

    def test_larger_fill_better_approximation(self):
        a = random_spd_csr(60, 0.15, 2)
        dense = a.toarray()
        errs = []
        for p in (2, 6, 20):
            fac = ilut(a, drop_tol=0.0, fill=p)
            errs.append(np.abs(fac.as_product().toarray() - dense).max())
        assert errs[0] >= errs[1] >= errs[2]

    def test_tighter_tolerance_better_preconditioner(self):
        from repro.krylov.fgmres import fgmres

        a = random_nonsymmetric_csr(120, 0.06, 3)
        b = np.ones(120)
        iters = []
        for tol in (1e-1, 1e-4):
            fac = ilut(a, drop_tol=tol, fill=15)
            res = fgmres(lambda v: a @ v, b, apply_m=fac.solve, rtol=1e-8, maxiter=200)
            iters.append(res.iterations)
        assert iters[1] <= iters[0]

    def test_beats_ilu0_on_fe_matrix(self, poisson_system):
        from repro.factor.ilu0 import ilu0
        from repro.krylov.fgmres import fgmres

        a, rhs, _ = poisson_system
        r0 = fgmres(lambda v: a @ v, rhs, apply_m=ilu0(a).solve, rtol=1e-8, maxiter=300)
        r1 = fgmres(
            lambda v: a @ v, rhs, apply_m=ilut(a, 1e-3, 10).solve, rtol=1e-8, maxiter=300
        )
        assert r1.iterations <= r0.iterations

    def test_invalid_parameters(self):
        a = random_spd_csr(10, 0.3, 4)
        with pytest.raises(ValueError):
            ilut(a, drop_tol=-1.0)
        with pytest.raises(ValueError):
            ilut(a, fill=0)

    def test_zero_row_norm_handled(self):
        a = sp.csr_matrix(np.array([[0.0, 0.0], [0.0, 1.0]]))
        a = (a + sp.eye(2) * 0).tocsr()
        a[0, 0] = 0.0
        fac = ilut(a.tocsr(), 1e-3, 5)
        assert np.all(np.isfinite(fac.solve(np.ones(2))))

    def test_unit_lower_diagonal_implicit(self):
        a = random_spd_csr(20, 0.3, 5)
        fac = ilut(a, 1e-4, 10)
        # strictly lower: no diagonal entries stored in L
        assert all(
            i not in fac.l_strict.indices[fac.l_strict.indptr[i] : fac.l_strict.indptr[i + 1]]
            for i in range(20)
        )

    def test_fill_in_beyond_pattern_occurs(self):
        """Unlike ILU(0), ILUT introduces fill entries outside pattern(A)."""
        a = random_spd_csr(40, 0.08, 6)
        fac = ilut(a, drop_tol=0.0, fill=40)
        a_bool = a.copy()
        a_bool.data[:] = 1.0
        lu = (fac.l_strict + fac.u_upper).tocsr()
        lu.data[:] = 1.0
        extra = (lu - lu.multiply(a_bool)).nnz
        assert extra > 0
