import numpy as np
import pytest

from repro.factor.arms import ArmsFactorization, arms_factor
from repro.graph.adjacency import graph_from_matrix
from repro.graph.independent_sets import verify_group_independence
from tests.conftest import random_spd_csr


@pytest.fixture(scope="module")
def fe_matrix(request):
    from repro.fem.assembly import assemble_load, assemble_stiffness
    from repro.fem.boundary import apply_dirichlet
    from repro.mesh.grid2d import structured_rectangle

    mesh = structured_rectangle(15, 15)
    raw = assemble_stiffness(mesh)
    bn = mesh.all_boundary_nodes()
    a, _ = apply_dirichlet(raw, np.zeros(mesh.num_points), bn, 0.0)
    return a


class TestArmsFactorization:
    def test_grouped_block_is_block_diagonal(self, fe_matrix):
        fac = arms_factor(fe_matrix, fe_matrix.shape[0], group_size=12, seed=0)
        ptr = fac.gis.group_ptr
        d = fac.D.toarray()
        for k in range(len(fac.gis.groups)):
            lo, hi = ptr[k], ptr[k + 1]
            # zero outside the diagonal blocks
            d[lo:hi, lo:hi] = 0.0
        assert np.abs(d).max() == 0.0

    def test_group_independence_invariant(self, fe_matrix):
        fac = arms_factor(fe_matrix, fe_matrix.shape[0], group_size=12, seed=0)
        g = graph_from_matrix(fe_matrix)
        assert verify_group_independence(g, fac.gis)

    def test_d_solve_is_exact(self, fe_matrix, rng):
        fac = arms_factor(fe_matrix, fe_matrix.shape[0], group_size=12, seed=0)
        x = rng.random(fac.n_grouped)
        assert np.allclose(fac.solve_d(fac.D @ x), x, atol=1e-10)

    def test_schur_matches_exact_without_dropping(self, fe_matrix):
        fac = arms_factor(fe_matrix, fe_matrix.shape[0], group_size=12, drop_tol=0.0, seed=0)
        d = fac.D.toarray()
        s_exact = (
            fac.C.toarray()
            - fac.E.toarray() @ np.linalg.inv(d) @ fac.F.toarray()
        )
        assert np.abs(fac.s_hat.toarray() - s_exact).max() < 1e-10

    def test_forward_back_roundtrip_is_exact_solve_with_exact_schur(self, fe_matrix, rng):
        """With exact Ŝ solve, ARMS elimination is an exact A solve."""
        fac = arms_factor(fe_matrix, fe_matrix.shape[0], group_size=12, drop_tol=0.0, seed=0)
        x = rng.random(fe_matrix.shape[0])
        r = fe_matrix @ x
        f, ghat = fac.forward_eliminate(r)
        y = np.linalg.solve(fac.s_hat.toarray(), ghat)
        z = fac.back_substitute(f, y)
        assert np.allclose(z, x, atol=1e-8)

    def test_solve_is_useful_preconditioner(self, fe_matrix, rng):
        from repro.krylov.fgmres import fgmres

        fac = arms_factor(fe_matrix, fe_matrix.shape[0], group_size=16, seed=0)
        b = rng.random(fe_matrix.shape[0])
        plain = fgmres(lambda v: fe_matrix @ v, b, rtol=1e-8, maxiter=400)
        pre = fgmres(lambda v: fe_matrix @ v, b, apply_m=fac.solve, rtol=1e-8, maxiter=400)
        assert pre.converged
        assert pre.iterations < 0.5 * plain.iterations

    def test_interface_candidates_respected(self, fe_matrix):
        """Unknowns at/above n_internal never join groups — they form the
        trailing slice of the expanded interface in owned order."""
        ni = fe_matrix.shape[0] - 40
        fac = arms_factor(fe_matrix, ni, group_size=12, seed=0)
        assert fac.n_interdomain == 40
        grouped = np.concatenate(fac.gis.groups) if fac.gis.groups else np.empty(0)
        assert np.all(grouped < ni)
        # trailing expanded slots are exactly the interface unknowns in order
        assert np.array_equal(
            fac.separator_local[fac.n_local_interface :],
            np.arange(ni, fe_matrix.shape[0]),
        )

    def test_split_join_roundtrip(self, fe_matrix, rng):
        fac = arms_factor(fe_matrix, fe_matrix.shape[0] - 20, group_size=10, seed=0)
        r = rng.random(fe_matrix.shape[0])
        f, g = fac.split(r)
        assert np.array_equal(fac.join(f, g), r)

    def test_flop_counters_positive(self, fe_matrix):
        fac = arms_factor(fe_matrix, fe_matrix.shape[0], group_size=10, seed=0)
        assert fac.solve_flops() > 0
        assert fac.forward_flops() > 0
        assert fac.back_flops() > 0

    def test_no_internal_unknowns_degenerates_gracefully(self):
        a = random_spd_csr(15, 0.3, 0)
        fac = arms_factor(a, 0, group_size=5, seed=0)
        assert fac.n_grouped == 0
        assert fac.n_expanded == 15
        r = np.ones(15)
        z = fac.solve(r)
        assert np.all(np.isfinite(z))

    def test_invalid_n_internal(self):
        a = random_spd_csr(10, 0.3, 1)
        with pytest.raises(ValueError):
            ArmsFactorization(a, 11)
