"""Property-based tests for the incomplete factorizations."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.factor.ilu0 import ilu0
from repro.factor.ilut import ilut


@st.composite
def dd_matrices(draw):
    """Random diagonally dominant CSR matrices (ILU-safe)."""
    n = draw(st.integers(min_value=2, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    density = draw(st.floats(min_value=0.05, max_value=0.5))
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density, random_state=int(rng.integers(2**31)), format="csr")
    a = a + sp.diags(np.asarray(np.abs(a).sum(axis=1)).ravel() + 1.0)
    return a.tocsr(), seed


@given(dd_matrices())
@settings(max_examples=40, deadline=None)
def test_ilu0_l_strictly_lower_u_upper(data):
    a, _ = data
    fac = ilu0(a)
    assert sp.triu(fac.l_strict, k=0).nnz == 0
    assert sp.tril(fac.u_upper, k=-1).nnz == 0
    assert np.all(fac.u_upper.diagonal() != 0.0)


@given(dd_matrices())
@settings(max_examples=40, deadline=None)
def test_ilu0_solve_then_multiply_is_identity_like(data):
    """LU solve composed with LU product is the identity (solves invert the
    stored factors exactly, independent of how good the factorization is)."""
    a, seed = data
    fac = ilu0(a)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(a.shape[0])
    lu_x = fac.U.strict @ x + fac.U.diag * x  # U x
    lu_x = fac.l_strict @ lu_x + lu_x  # L (U x)
    assert np.allclose(fac.solve(lu_x), x, atol=1e-6 * max(1.0, np.abs(x).max()))


@given(dd_matrices(), st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_ilut_row_fill_bound(data, fill):
    a, _ = data
    fac = ilut(a, drop_tol=1e-4, fill=fill)
    l_counts = np.diff(fac.l_strict.indptr)
    u_counts = np.diff(fac.u_upper.indptr)
    assert l_counts.max(initial=0) <= fill
    assert u_counts.max(initial=0) <= fill + 1


@given(dd_matrices())
@settings(max_examples=30, deadline=None)
def test_ilut_residual_no_worse_than_half_matrix_norm(data):
    """For diagonally dominant matrices ILUT with moderate settings yields a
    product close to A (a loose but meaningful sanity bound)."""
    a, _ = data
    fac = ilut(a, drop_tol=1e-3, fill=a.shape[0])
    err = abs(fac.as_product() - a).max()
    scale = abs(a).max()
    assert err <= 0.5 * scale + 1e-9
