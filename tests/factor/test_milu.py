"""Tests for the MILU(0) (modified ILU) variant."""

import numpy as np
import pytest

from repro.factor.ilu0 import ilu0
from tests.conftest import random_spd_csr


class TestMilu0:
    def test_rowsum_preservation(self, poisson_system):
        """Gustafsson's defining property: (LU)·1 = A·1."""
        a, _, _ = poisson_system
        fac = ilu0(a, modified=True)
        ones = np.ones(a.shape[0])
        assert np.abs(fac.as_product() @ ones - a @ ones).max() < 1e-12

    def test_plain_ilu_does_not_preserve_rowsums(self, poisson_system):
        a, _, _ = poisson_system
        fac = ilu0(a, modified=False)
        ones = np.ones(a.shape[0])
        # on the 5-point stencil ILU(0) drops fill, breaking row sums
        assert np.abs(fac.as_product() @ ones - a @ ones).max() > 1e-8

    def test_same_pattern_as_ilu0(self, poisson_system):
        a, _, _ = poisson_system
        plain = ilu0(a)
        milu = ilu0(a, modified=True)
        assert plain.nnz == milu.nnz

    def test_milu_preconditions_poisson_better(self):
        """Gustafsson: κ(MILU⁻¹A) = O(h⁻¹) vs O(h⁻²) — fewer CG iterations
        at fine resolution."""
        from repro.fem.assembly import assemble_stiffness
        from repro.fem.boundary import apply_dirichlet
        from repro.krylov.cg import cg
        from repro.mesh.grid2d import structured_rectangle

        mesh = structured_rectangle(49, 49)
        a, rhs = apply_dirichlet(
            assemble_stiffness(mesh), np.ones(mesh.num_points),
            mesh.all_boundary_nodes(), 0.0,
        )
        plain = cg(lambda v: a @ v, rhs, apply_m=ilu0(a).solve, rtol=1e-8, maxiter=500)
        milu = cg(lambda v: a @ v, rhs, apply_m=ilu0(a, modified=True).solve,
                  rtol=1e-8, maxiter=500)
        assert milu.converged
        assert milu.iterations < plain.iterations

    def test_milu_solves_correctly(self, rng):
        a = random_spd_csr(50, 0.1, 3)
        fac = ilu0(a, modified=True)
        z = fac.solve(rng.random(50))
        assert np.all(np.isfinite(z))
