import numpy as np
import pytest

from repro.factor.dense import dense_lu


class TestDenseLU:
    def test_solves_random_system(self, rng):
        a = rng.random((25, 25)) + 25 * np.eye(25)
        x = rng.random(25)
        lu = dense_lu(a)
        assert np.allclose(lu.solve(a @ x), x, atol=1e-10)

    def test_batched_solve(self, rng):
        a = rng.random((15, 15)) + 15 * np.eye(15)
        X = rng.random((15, 6))
        lu = dense_lu(a)
        assert np.allclose(lu.solve(a @ X), X, atol=1e-10)

    def test_pivoting_handles_zero_leading_entry(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        lu = dense_lu(a)
        assert np.allclose(lu.solve(np.array([2.0, 3.0])), [3.0, 2.0])

    def test_matches_numpy_solve(self, rng):
        a = rng.standard_normal((20, 20)) + 5 * np.eye(20)
        b = rng.standard_normal(20)
        assert np.allclose(dense_lu(a).solve(b), np.linalg.solve(a, b), atol=1e-9)

    def test_singular_raises(self):
        with pytest.raises(ZeroDivisionError):
            dense_lu(np.ones((3, 3)))

    def test_rectangular_raises(self):
        with pytest.raises(ValueError):
            dense_lu(np.ones((2, 3)))

    def test_one_by_one(self):
        lu = dense_lu(np.array([[4.0]]))
        assert lu.solve(np.array([8.0]))[0] == 2.0

    def test_ill_conditioned_with_pivoting_is_stable(self):
        """Partial pivoting keeps growth modest on a classic bad case."""
        n = 12
        a = np.tril(-np.ones((n, n)), -1) + np.eye(n)
        a[:, -1] = 1.0
        x = np.ones(n)
        lu = dense_lu(a)
        assert np.allclose(lu.solve(a @ x), x, atol=1e-8)

    def test_flops(self):
        lu = dense_lu(np.eye(10))
        assert lu.flops() == 200.0
