import numpy as np
import pytest
import scipy.sparse as sp

from repro.factor.ilut import ilut
from repro.factor.schur_extract import extract_schur_blocks
from tests.conftest import random_nonsymmetric_csr


@pytest.fixture()
def ordered_matrix():
    """A diagonally dominant matrix we treat as [internal(20); interface(10)]."""
    return random_nonsymmetric_csr(30, 0.25, 7), 20


class TestExtractSchurBlocks:
    def test_trailing_product_equals_exact_schur_for_full_lu(self, ordered_matrix):
        """Paper Sec. 2: with an exact LU, L_S U_S IS the Schur complement."""
        a, ni = ordered_matrix
        fac = ilut(a, drop_tol=0.0, fill=30)
        sb = extract_schur_blocks(fac, ni)
        d = a.toarray()
        s_exact = d[ni:, ni:] - d[ni:, :ni] @ np.linalg.inv(d[:ni, :ni]) @ d[:ni, ni:]
        ls = sb.LS.strict.toarray() + np.eye(30 - ni)
        us = sb.US.strict.toarray() + np.diag(sb.US.diag)
        assert np.abs(ls @ us - s_exact).max() < 1e-8

    def test_leading_product_approximates_b(self, ordered_matrix):
        a, ni = ordered_matrix
        fac = ilut(a, drop_tol=0.0, fill=30)
        sb = extract_schur_blocks(fac, ni)
        lb = sb.LB.strict.toarray() + np.eye(ni)
        ub = sb.UB.strict.toarray() + np.diag(sb.UB.diag)
        assert np.abs(lb @ ub - a.toarray()[:ni, :ni]).max() < 1e-8

    def test_solve_b_inverts_b_for_full_lu(self, ordered_matrix, rng):
        a, ni = ordered_matrix
        fac = ilut(a, drop_tol=0.0, fill=30)
        sb = extract_schur_blocks(fac, ni)
        x = rng.random(ni)
        b = a.toarray()[:ni, :ni] @ x
        assert np.allclose(sb.solve_b(b), x, atol=1e-8)

    def test_solve_s_inverts_schur_for_full_lu(self, ordered_matrix, rng):
        a, ni = ordered_matrix
        n = a.shape[0]
        fac = ilut(a, drop_tol=0.0, fill=n)
        sb = extract_schur_blocks(fac, ni)
        d = a.toarray()
        s_exact = d[ni:, ni:] - d[ni:, :ni] @ np.linalg.inv(d[:ni, :ni]) @ d[:ni, ni:]
        y = rng.random(n - ni)
        assert np.allclose(sb.solve_s(s_exact @ y), y, atol=1e-7)

    def test_incomplete_factor_still_close(self, ordered_matrix, rng):
        """With dropping, the trailing blocks approximate S_i (the basis of
        Schur 1's block-Jacobi preconditioner)."""
        a, ni = ordered_matrix
        fac = ilut(a, drop_tol=1e-3, fill=12)
        sb = extract_schur_blocks(fac, ni)
        d = a.toarray()
        s_exact = d[ni:, ni:] - d[ni:, :ni] @ np.linalg.inv(d[:ni, :ni]) @ d[:ni, ni:]
        y = rng.random(a.shape[0] - ni)
        # S_i^{-1}(S y) ≈ y to preconditioner quality
        rel = np.linalg.norm(sb.solve_s(s_exact @ y) - y) / np.linalg.norm(y)
        assert rel < 0.5

    def test_shapes_and_flops(self, ordered_matrix):
        a, ni = ordered_matrix
        fac = ilut(a, 1e-3, 8)
        sb = extract_schur_blocks(fac, ni)
        assert sb.n_internal == ni
        assert sb.n_interface == a.shape[0] - ni
        assert sb.solve_b_flops() > 0
        assert sb.solve_s_flops() > 0

    def test_degenerate_splits(self, ordered_matrix):
        a, _ = ordered_matrix
        fac = ilut(a, 1e-3, 8)
        sb_all = extract_schur_blocks(fac, a.shape[0])
        assert sb_all.n_interface == 0
        sb_none = extract_schur_blocks(fac, 0)
        assert sb_none.n_internal == 0

    def test_out_of_range_raises(self, ordered_matrix):
        a, _ = ordered_matrix
        fac = ilut(a, 1e-3, 8)
        with pytest.raises(ValueError):
            extract_schur_blocks(fac, 31)
