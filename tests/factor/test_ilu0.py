import numpy as np
import pytest
import scipy.sparse as sp

from repro.factor.ilu0 import ilu0
from tests.conftest import random_nonsymmetric_csr, random_spd_csr


class TestIlu0:
    def test_pattern_preserved(self):
        a = random_spd_csr(40, 0.1, 0)
        fac = ilu0(a)
        lu_pattern = (fac.l_strict + fac.u_upper).tocsr()
        # every stored LU entry lies in the pattern of A
        a_bool = a.copy()
        a_bool.data[:] = 1.0
        lu_bool = lu_pattern.copy()
        lu_bool.data[:] = 1.0
        extra = (lu_bool - lu_bool.multiply(a_bool)).nnz
        assert extra == 0

    def test_exact_for_tridiagonal(self):
        """A tridiagonal matrix has no fill, so ILU(0) = exact LU."""
        n = 30
        a = sp.diags([-np.ones(n - 1), 4 * np.ones(n), -np.ones(n - 1)], [-1, 0, 1]).tocsr()
        fac = ilu0(a)
        assert abs(fac.as_product() - a).max() < 1e-12

    def test_exact_for_dense_pattern(self):
        """With a full pattern, ILU(0) is exact LU."""
        rng = np.random.default_rng(0)
        d = rng.random((12, 12)) + 12 * np.eye(12)
        a = sp.csr_matrix(d)
        fac = ilu0(a)
        assert abs(fac.as_product() - a).max() < 1e-9

    def test_residual_small_on_pattern(self):
        """(LU - A) vanishes on the pattern of A (defining ILU(0) property)."""
        a = random_spd_csr(60, 0.08, 1)
        fac = ilu0(a)
        err = (fac.as_product() - a).tocsr()
        mask = a.copy()
        mask.data[:] = 1.0
        on_pattern = err.multiply(mask)
        assert abs(on_pattern).max() < 1e-10 if on_pattern.nnz else True

    def test_preconditioner_accelerates_gmres(self):
        from repro.krylov.fgmres import fgmres

        a = random_nonsymmetric_csr(150, 0.05, 2)
        rng = np.random.default_rng(3)
        b = rng.random(150)
        plain = fgmres(lambda v: a @ v, b, rtol=1e-8, maxiter=300)
        fac = ilu0(a)
        pre = fgmres(lambda v: a @ v, b, apply_m=fac.solve, rtol=1e-8, maxiter=300)
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_missing_diagonal_raises(self):
        a = sp.csr_matrix((np.array([1.0]), np.array([1]), np.array([0, 1, 1])), shape=(2, 2))
        with pytest.raises(ValueError, match="diagonal"):
            ilu0(a)

    def test_zero_pivot_floored_not_crashing(self):
        a = sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]))  # second pivot hits 0
        fac = ilu0(a)
        x = fac.solve(np.array([1.0, 2.0]))
        assert np.all(np.isfinite(x))

    def test_rectangular_raises(self):
        with pytest.raises(ValueError):
            ilu0(sp.csr_matrix((2, 3)))

    def test_solve_flops_positive(self):
        a = random_spd_csr(20, 0.2, 4)
        fac = ilu0(a)
        assert fac.solve_flops() > 0
        # zero fill: stored entries = pattern(A) plus L's implicit unit diag
        assert 1.0 <= fac.fill_factor(a) <= 1.0 + a.shape[0] / a.nnz + 1e-12
