"""The content-addressed factor cache: keying, invalidation, bypass, LRU."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import faults
from repro.factor import cache as factor_cache
from repro.resilience.errors import FactorizationBreakdown
from repro.factor.cache import FactorCache
from repro.factor.ilu0 import ilu0
from repro.factor.ilut import ilut
from tests.conftest import random_nonsymmetric_csr, random_spd_csr


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts from an empty, enabled cache with zeroed counters."""
    cache = factor_cache.configure(enabled=True)
    cache.clear()
    cache.reset_stats()
    yield cache
    cache.clear()
    cache.reset_stats()


class TestHits:
    def test_repeat_ilut_returns_cached_object(self, fresh_cache):
        a = random_nonsymmetric_csr(30, 0.2, 0)
        f1 = ilut(a, 1e-3, 10)
        f2 = ilut(a, 1e-3, 10)
        assert f2 is f1
        assert fresh_cache.stats()["misses"] == 1
        assert fresh_cache.stats()["hits"] == 1

    def test_repeat_ilu0_returns_cached_object(self, fresh_cache):
        a = random_spd_csr(30, 0.2, 1)
        assert ilu0(a) is ilu0(a)
        assert fresh_cache.stats() | {"hits": 1, "misses": 1} == fresh_cache.stats()

    def test_equal_content_different_object_hits(self, fresh_cache):
        # content addressing: a byte-identical copy is the same key
        a = random_nonsymmetric_csr(25, 0.2, 2)
        b = a.copy()
        assert ilut(a, 1e-3, 5) is ilut(b, 1e-3, 5)

    def test_ilu0_and_ilut_do_not_collide(self, fresh_cache):
        a = random_spd_csr(20, 0.3, 3)
        ilu0(a)
        ilut(a, 1e-3, 10)
        assert fresh_cache.stats()["misses"] == 2
        assert fresh_cache.stats()["hits"] == 0


class TestInvalidation:
    def test_value_change_misses(self, fresh_cache):
        a = random_nonsymmetric_csr(30, 0.2, 4)
        f1 = ilut(a, 1e-3, 10)
        b = a.copy()
        b.data = b.data.copy()
        b.data[0] *= 1.0 + 1e-12  # one ULP-scale nudge in one entry
        f2 = ilut(b, 1e-3, 10)
        assert f2 is not f1
        assert fresh_cache.stats()["misses"] == 2

    def test_structure_change_misses(self, fresh_cache):
        # same shape, identical values everywhere, one extra stored zero in
        # row 0 — numerically the same operator, structurally a new key
        a = random_spd_csr(20, 0.25, 5)
        extra = int(np.setdiff1d(np.arange(20), a.indices[: a.indptr[1]])[-1])
        coo = a.tocoo()
        b = sp.csr_matrix(
            (
                np.append(coo.data, 0.0),
                (np.append(coo.row, 0), np.append(coo.col, extra)),
            ),
            shape=a.shape,
        )
        assert b.nnz == a.nnz + 1  # the zero is stored, not pruned
        f1 = ilu0(a)
        f2 = ilu0(b)
        assert f2 is not f1
        assert fresh_cache.stats()["misses"] == 2

    @pytest.mark.parametrize("params", [
        dict(drop_tol=1e-4, fill=10),
        dict(drop_tol=1e-3, fill=11),
        dict(drop_tol=1e-3, fill=10, shift=0.01),
    ])
    def test_param_change_misses(self, fresh_cache, params):
        a = random_nonsymmetric_csr(25, 0.2, 6)
        f1 = ilut(a, 1e-3, 10)
        f2 = ilut(a, params.pop("drop_tol"), params.pop("fill"), **params)
        assert f2 is not f1
        assert fresh_cache.stats()["misses"] == 2
        assert fresh_cache.stats()["hits"] == 0

    def test_milu_and_ilu0_distinct(self, fresh_cache):
        a = random_spd_csr(25, 0.25, 7)
        f1 = ilu0(a)
        f2 = ilu0(a, modified=True)
        assert f2 is not f1
        assert fresh_cache.stats()["misses"] == 2


class TestBreakdownRecheckOnHit:
    def test_hit_reruns_breakdown_detector(self, fresh_cache):
        # pivot of row 1 floors; a hit under a tighter breakdown_frac must
        # fail exactly like a recomputation would
        a = sp.csr_matrix(np.array([[1.0, 2.0], [2.0, 4.0]]))
        fac = ilu0(a)  # no threshold: cached with floored_pivots == 1
        assert fac.stats.floored_pivots == 1
        with pytest.raises(FactorizationBreakdown, match="pivots collapsed"):
            ilu0(a, breakdown_frac=0.25)
        assert fresh_cache.stats()["hits"] == 1

    def test_hit_with_loose_threshold_succeeds(self, fresh_cache):
        a = sp.csr_matrix(np.array([[1.0, 2.0], [2.0, 4.0]]))
        fac = ilu0(a)
        assert ilu0(a, breakdown_frac=0.75) is fac


class TestFaultPlanBypass:
    def test_live_pivot_spec_bypasses(self, fresh_cache):
        a = random_spd_csr(20, 0.25, 8)
        plan = faults.FaultPlan(faults.FaultSpec("bad-pivot", count=1))
        with faults.inject(plan):
            ilut(a, 1e-3, 10)
        assert fresh_cache.stats()["bypasses"] == 1
        assert fresh_cache.stats()["misses"] == 0
        assert len(fresh_cache) == 0  # nothing stored either

    def test_exhausted_pivot_spec_caches_again(self, fresh_cache):
        # once the spec's budget is spent, factors are clean: caching resumes
        # inside the same plan, which is what lets retries reuse factors
        a = random_spd_csr(20, 0.25, 9)
        plan = faults.FaultPlan(faults.FaultSpec("bad-pivot", count=1))
        with faults.inject(plan):
            ilut(a, 1e-3, 10)  # fires the fault; bypassed
            f2 = ilut(a, 1e-3, 10)  # clean: miss + store
            f3 = ilut(a, 1e-3, 10)  # clean: hit
        assert f3 is f2
        s = fresh_cache.stats()
        assert (s["bypasses"], s["misses"], s["hits"]) == (1, 1, 1)

    def test_non_pivot_plan_does_not_bypass(self, fresh_cache):
        a = random_spd_csr(20, 0.25, 10)
        plan = faults.FaultPlan(faults.FaultSpec("ghost-drop", count=1))
        with faults.inject(plan):
            assert ilut(a, 1e-3, 10) is ilut(a, 1e-3, 10)
        s = fresh_cache.stats()
        assert (s["bypasses"], s["misses"], s["hits"]) == (0, 1, 1)

    def test_scoped_pivot_spec_only_bypasses_matching_scope(self, fresh_cache):
        a = random_spd_csr(20, 0.25, 11)
        plan = faults.FaultPlan(
            faults.FaultSpec("bad-pivot", count=-1, target="schur1")
        )
        with faults.inject(plan):
            ilut(a, 1e-3, 10)  # no scope entered: cached normally
            with faults.scope("schur1"):
                ilut(a, 1e-3, 10)  # in-scope: bypassed
        s = fresh_cache.stats()
        assert (s["bypasses"], s["misses"]) == (1, 1)


class TestConfiguration:
    def test_disabled_cache_untouched(self, fresh_cache):
        factor_cache.configure(enabled=False)
        try:
            a = random_spd_csr(20, 0.25, 12)
            f1 = ilut(a, 1e-3, 10)
            f2 = ilut(a, 1e-3, 10)
            assert f2 is not f1
            s = fresh_cache.stats()
            assert (s["hits"], s["misses"], s["size"]) == (0, 0, 0)
        finally:
            factor_cache.configure(enabled=True)

    def test_disabling_clears_store(self, fresh_cache):
        ilut(random_spd_csr(20, 0.25, 13), 1e-3, 10)
        assert len(fresh_cache) == 1
        factor_cache.configure(enabled=False)
        assert len(fresh_cache) == 0
        factor_cache.configure(enabled=True)

    def test_env_var_disables_fresh_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_FACTOR_CACHE", "0")
        assert not FactorCache().enabled
        monkeypatch.setenv("REPRO_FACTOR_CACHE", "off")
        assert not FactorCache().enabled
        monkeypatch.delenv("REPRO_FACTOR_CACHE")
        assert FactorCache().enabled

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            factor_cache.configure(capacity=0)


class TestLru:
    def test_eviction_order(self):
        cache = FactorCache(capacity=2)
        facs = {}
        for i, name in enumerate(("k1", "k2", "k3")):
            facs[name] = ilu0(sp.identity(3, format="csr") * float(i + 2))
        cache.put("k1", facs["k1"])
        cache.put("k2", facs["k2"])
        assert cache.get("k1", "ilu0") is facs["k1"]  # refresh k1
        cache.put("k3", facs["k3"])  # evicts k2, the least recently used
        assert cache.get("k2", "ilu0") is None
        assert cache.get("k1", "ilu0") is facs["k1"]
        assert cache.get("k3", "ilu0") is facs["k3"]
        assert len(cache) == 2

    def test_shrinking_capacity_evicts(self, fresh_cache):
        for seed in range(4):
            ilu0(random_spd_csr(10, 0.4, seed))
        assert len(fresh_cache) == 4
        factor_cache.configure(capacity=2)
        try:
            assert len(fresh_cache) == 2
        finally:
            factor_cache.configure(capacity=32)


class TestKeying:
    def test_key_is_deterministic(self):
        a = random_spd_csr(15, 0.3, 14)
        k1 = FactorCache.key("ilut", a, (1e-3, 10, 0.0), "band")
        k2 = FactorCache.key("ilut", a, (1e-3, 10, 0.0), "band")
        assert k1 == k2 and len(k1) == 64

    def test_key_separates_family(self):
        # reference and band factors may differ on |value| ties, so the
        # tier family is part of the address
        a = random_spd_csr(15, 0.3, 15)
        assert FactorCache.key("ilut", a, (1e-3, 10, 0.0), "band") != \
            FactorCache.key("ilut", a, (1e-3, 10, 0.0), "reference")
