"""Tests for the multilevel (>2-level) ARMS recursion extension."""

import numpy as np
import pytest

from repro.factor.arms import arms_factor


@pytest.fixture(scope="module")
def fe_matrix():
    from repro.fem.assembly import assemble_stiffness
    from repro.fem.boundary import apply_dirichlet
    from repro.mesh.grid2d import structured_rectangle

    mesh = structured_rectangle(21, 21)
    raw = assemble_stiffness(mesh)
    bn = mesh.all_boundary_nodes()
    a, _ = apply_dirichlet(raw, np.zeros(mesh.num_points), bn, 0.0)
    return a


class TestMultilevelArms:
    def test_two_level_has_no_child(self, fe_matrix):
        fac = arms_factor(fe_matrix, fe_matrix.shape[0], group_size=8, levels=2)
        assert fac.child is None
        assert fac.num_levels == 2
        assert fac.final is fac

    def test_three_level_recursion_shrinks_final_system(self, fe_matrix):
        two = arms_factor(fe_matrix, fe_matrix.shape[0], group_size=8, levels=2)
        three = arms_factor(fe_matrix, fe_matrix.shape[0], group_size=8, levels=3)
        assert three.num_levels >= 3
        assert three.final_n_expanded < two.final_n_expanded

    def test_interdomain_preserved_through_levels(self, fe_matrix):
        ni = fe_matrix.shape[0] - 30
        fac = arms_factor(fe_matrix, ni, group_size=8, levels=4)
        assert fac.final_n_interdomain == 30
        # trailing block stays in original interface order at every level
        lvl = fac
        while lvl is not None:
            assert lvl.n_interdomain == 30
            lvl = lvl.child

    def test_forward_back_full_roundtrip_exact(self, fe_matrix, rng):
        """With an exact final-Schur solve the cascaded elimination is an
        exact solve of A — at any depth."""
        fac = arms_factor(
            fe_matrix, fe_matrix.shape[0], group_size=8, drop_tol=0.0, levels=3
        )
        assert fac.num_levels >= 3
        x = rng.random(fe_matrix.shape[0])
        r = fe_matrix @ x
        stack, ghat = fac.forward_eliminate_full(r)
        y = np.linalg.solve(fac.final_s_hat.toarray(), ghat)
        z = fac.back_substitute_full(stack, y)
        assert np.allclose(z, x, atol=1e-7)

    def test_multilevel_solve_is_good_preconditioner(self, fe_matrix, rng):
        from repro.krylov.fgmres import fgmres

        fac = arms_factor(fe_matrix, fe_matrix.shape[0], group_size=8, levels=3)
        b = rng.random(fe_matrix.shape[0])
        res = fgmres(lambda v: fe_matrix @ v, b, apply_m=fac.solve, rtol=1e-8, maxiter=200)
        assert res.converged
        assert res.iterations < 40

    def test_flops_accumulate_over_levels(self, fe_matrix):
        two = arms_factor(fe_matrix, fe_matrix.shape[0], group_size=8, levels=2)
        three = arms_factor(fe_matrix, fe_matrix.shape[0], group_size=8, levels=3)
        assert three.forward_full_flops() > two.forward_flops()
        assert three.back_full_flops() > two.back_flops()

    def test_min_coarse_size_stops_recursion(self, fe_matrix):
        fac = arms_factor(fe_matrix, fe_matrix.shape[0], group_size=8, levels=10)
        assert fac.final_n_expanded <= max(64, fac.final_n_interdomain + 64) or (
            fac.final.n_local_interface == 0
        )

    def test_invalid_levels(self, fe_matrix):
        with pytest.raises(ValueError):
            arms_factor(fe_matrix, fe_matrix.shape[0], levels=1)


class TestSchur2Multilevel:
    def test_three_level_schur2_converges(self, partitioned_poisson):
        from repro.comm.communicator import Communicator
        from repro.krylov.fgmres import fgmres
        from repro.precond.schur2 import Schur2Preconditioner

        pm, dmat, rhs, exact = partitioned_poisson
        comm = Communicator(pm.num_ranks)
        M = Schur2Preconditioner(dmat, comm, group_size=8, levels=3,
                                 global_iterations=5)
        bd = pm.to_distributed(rhs)
        res = fgmres(lambda v: dmat.matvec(comm, v), bd, apply_m=M.apply,
                     rtol=1e-6, maxiter=100)
        assert res.converged
        assert res.iterations <= 20

    def test_three_level_final_system_smaller(self, partitioned_poisson):
        from repro.comm.communicator import Communicator
        from repro.precond.schur2 import Schur2Preconditioner

        pm, dmat, _, _ = partitioned_poisson
        m2 = Schur2Preconditioner(dmat, Communicator(pm.num_ranks), group_size=8,
                                  levels=2)
        m3 = Schur2Preconditioner(dmat, Communicator(pm.num_ranks), group_size=8,
                                  levels=3)
        assert m3._exp_layout.total <= m2._exp_layout.total
