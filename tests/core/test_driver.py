import numpy as np
import pytest

from repro.core.driver import PRECONDITIONER_NAMES, make_preconditioner, solve_case
from repro.perfmodel.machine import LINUX_CLUSTER, ORIGIN_3800


class TestSolveCase:
    @pytest.mark.parametrize("precond", ["block1", "block2", "schur1", "schur2"])
    def test_all_algebraic_preconditioners_solve_tc1(self, tiny_case, precond):
        out = solve_case(tiny_case, precond=precond, nparts=3, maxiter=300)
        assert out.converged
        assert out.error is not None and out.error < 1e-3
        assert out.precond in ("Block 1", "Block 2", "Schur 1", "Schur 2")

    def test_schwarz_preconditioners_solve_tc1(self, tiny_case):
        for name in ("as", "as+cgc"):
            out = solve_case(tiny_case, precond=name, nparts=4, maxiter=300)
            assert out.converged, name

    def test_ledgers_separated(self, tiny_case):
        out = solve_case(tiny_case, precond="block2", nparts=3, maxiter=300)
        assert out.setup_ledger.crit_flops > 0
        assert out.solve_ledger.crit_flops > 0
        assert out.setup_ledger.allreduces == 0

    def test_sim_time_positive_and_machine_dependent(self, tiny_case):
        out = solve_case(tiny_case, precond="schur1", nparts=3, maxiter=300)
        t_cluster = out.sim_time(LINUX_CLUSTER)
        t_origin = out.sim_time(ORIGIN_3800)
        assert t_cluster > 0
        assert t_origin < t_cluster  # faster machine

    def test_time_per_iteration(self, tiny_case):
        out = solve_case(tiny_case, precond="block1", nparts=3, maxiter=300)
        assert out.time_per_iteration(LINUX_CLUSTER) > 0

    def test_iterations_grow_with_parts_for_block1(self, tiny_case):
        """More subdomains weaken the block preconditioner — the basic
        scalability tension the paper studies."""
        i2 = solve_case(tiny_case, precond="block1", nparts=2, maxiter=400).iterations
        i8 = solve_case(tiny_case, precond="block1", nparts=8, maxiter=400).iterations
        assert i8 >= i2

    def test_seed_changes_outcome(self, tiny_case):
        """The paper's observation: partitioning RNG affects iteration counts."""
        outs = {solve_case(tiny_case, "block1", nparts=6, seed=s, maxiter=400).iterations
                for s in range(4)}
        assert len(outs) > 1

    def test_box_scheme_supported(self, tiny_case):
        out = solve_case(tiny_case, precond="block2", nparts=4, scheme="box", maxiter=300)
        assert out.converged

    def test_unknown_preconditioner_raises(self, tiny_case):
        with pytest.raises(ValueError, match="unknown preconditioner"):
            solve_case(tiny_case, precond="multigrid")

    def test_none_preconditioner_baseline(self, tiny_case):
        out = solve_case(tiny_case, precond="none", nparts=2, maxiter=500)
        assert out.converged
        pre = solve_case(tiny_case, precond="schur1", nparts=2, maxiter=500)
        assert pre.iterations < out.iterations

    def test_keep_solution_flag(self, tiny_case):
        out = solve_case(tiny_case, precond="block1", nparts=2, keep_solution=False, maxiter=300)
        assert out.x_global is None
        assert out.error is not None  # computed before dropping

    def test_registry_names_all_constructible(self, tiny_case):
        from repro.comm.communicator import Communicator
        from repro.distributed.matrix import distribute_matrix
        from repro.distributed.partition_map import PartitionMap

        mem = tiny_case.membership(2)
        pm = PartitionMap(tiny_case.coupling_graph, mem, num_ranks=2)
        dmat = distribute_matrix(tiny_case.matrix, pm)
        for name in PRECONDITIONER_NAMES:
            M = make_preconditioner(name, dmat, Communicator(2), tiny_case)
            assert M is not None
