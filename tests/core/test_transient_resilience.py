"""TransientHeatSolver fault tolerance: status threading, checkpoints,
kill-and-resume, and in-place rank-failure recovery (docs/robustness.md)."""

import numpy as np
import pytest

from repro import faults, obs
from repro.core.transient import TransientHeatSolver
from repro.mesh.grid2d import structured_rectangle
from repro.resilience.errors import TransientStepFailure


def _mesh():
    return structured_rectangle(11, 11)


def _u0(mesh):
    return np.sin(np.pi * mesh.points[:, 0]) * np.sin(np.pi * mesh.points[:, 1])


def _solver(mesh, **kw):
    kw.setdefault("precond", "schur1")
    kw.setdefault("nparts", 3)
    kw.setdefault("rtol", 1e-10)
    return TransientHeatSolver(
        mesh, dt=0.02, dirichlet_nodes=mesh.all_boundary_nodes(), **kw
    )


class TestStepStatus:
    def test_records_carry_status(self):
        mesh = _mesh()
        ths = _solver(mesh)
        ths.advance(_u0(mesh), steps=2)
        assert [rec.status for rec in ths.history] == ["converged", "converged"]

    def test_breakdown_stops_the_march(self):
        # starve FGMRES of iterations: the step classifies as maxiter and
        # the march raises instead of silently appending garbage states
        mesh = _mesh()
        ths = _solver(mesh, maxiter=1, rtol=1e-14)
        with pytest.raises(TransientStepFailure) as exc:
            ths.advance(_u0(mesh), steps=3)
        assert exc.value.context["step"] == 1
        assert exc.value.status == "maxiter"
        # the failed step is still recorded, classified
        assert len(ths.history) == 1
        assert ths.history[0].status == "maxiter"
        assert not ths.history[0].converged


class TestCheckpointResume:
    def test_kill_and_resume_matches_uninterrupted(self, tmp_path):
        mesh = _mesh()
        u0 = _u0(mesh)

        # the uninterrupted reference march
        ref = _solver(mesh)
        u_ref = ref.advance(u0, steps=6)

        # march 3 steps, then "crash" (drop the solver object)
        first = _solver(mesh, checkpoint_dir=str(tmp_path))
        first.advance(u0, steps=3)
        del first

        # a fresh process restores and finishes the remaining steps
        second = _solver(mesh, checkpoint_dir=str(tmp_path))
        restored = second.restore()
        assert restored is not None
        u, step = restored
        assert step == 3
        u_final = second.advance(u, steps=3)
        np.testing.assert_allclose(u_final, u_ref, atol=1e-8)

    def test_restore_without_snapshot_returns_none(self, tmp_path):
        mesh = _mesh()
        ths = _solver(mesh, checkpoint_dir=str(tmp_path))
        assert ths.restore() is None

    def test_restore_requires_checkpoint_dir(self):
        mesh = _mesh()
        with pytest.raises(ValueError, match="checkpoint_dir"):
            _solver(mesh).restore()

    def test_checkpoint_every_thins_snapshots(self, tmp_path):
        mesh = _mesh()
        ths = _solver(mesh, checkpoint_dir=str(tmp_path), checkpoint_every=2)
        ths.advance(_u0(mesh), steps=5)
        assert ths.checkpoints.steps() == [2, 4]


class TestRankFailureMidMarch:
    def test_rank_dead_recovery_matches_fault_free(self, tmp_path):
        mesh = _mesh()
        u0 = _u0(mesh)
        u_ref = _solver(mesh).advance(u0, steps=6)

        plan = faults.FaultPlan(faults.FaultSpec("rank-dead", rank=2, start=40))
        ths = _solver(mesh, checkpoint_dir=str(tmp_path))
        with obs.tracing() as tracer, faults.inject(plan):
            u = ths.advance(u0, steps=6)

        assert plan.injected  # the fault really fired
        assert ths.nparts == 2  # survivors absorbed the dead subdomain
        assert ths.step == 6
        # acceptance bar: same solution as the fault-free run within 1e-8
        np.testing.assert_allclose(u, u_ref, atol=1e-8)
        names = [s.name for s in tracer.spans]
        assert "resilience.comm.recover" in names

    def test_recovery_without_checkpoints_retries_current_step(self):
        mesh = _mesh()
        u0 = _u0(mesh)
        u_ref = _solver(mesh).advance(u0, steps=4)

        plan = faults.FaultPlan(faults.FaultSpec("rank-dead", rank=1, start=25))
        ths = _solver(mesh)
        with faults.inject(plan):
            u = ths.advance(u0, steps=4)
        assert plan.injected
        assert ths.nparts == 2
        np.testing.assert_allclose(u, u_ref, atol=1e-8)

    def test_survivor_layout_persists_across_restore(self, tmp_path):
        # a post-recovery snapshot stores the shrunk membership; a fresh
        # process re-adopts it instead of re-partitioning for 3 ranks
        mesh = _mesh()
        u0 = _u0(mesh)
        plan = faults.FaultPlan(faults.FaultSpec("rank-dead", rank=2, start=40))
        ths = _solver(mesh, checkpoint_dir=str(tmp_path))
        with faults.inject(plan):
            ths.advance(u0, steps=4)
        assert ths.nparts == 2

        fresh = _solver(mesh, checkpoint_dir=str(tmp_path))
        assert fresh.nparts == 3
        u, step = fresh.restore()
        assert fresh.nparts == 2
        np.testing.assert_array_equal(fresh.membership, ths.membership)
        u_final = fresh.advance(u, steps=6 - step)
        u_ref = _solver(mesh).advance(u0, steps=6)
        np.testing.assert_allclose(u_final, u_ref, atol=1e-8)
