import pytest

from repro.cli import CASE_ALIASES, main, make_parser
from repro.obs import read_json_trace


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "tc1" in out and "schur1" in out and "linux-cluster" in out

    def test_solve_tc1(self, capsys):
        rc = main(["solve", "--case", "tc1", "--size", "17", "--precond",
                   "schur1", "--nparts", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "max error" in out

    def test_solve_returns_nonzero_on_failure(self, capsys):
        # elasticity with Block 1 and a tiny budget: honest nonzero exit
        rc = main(["solve", "--case", "tc6", "--size", "15", "--precond",
                   "block1", "--maxiter", "10"])
        assert rc == 1
        assert "NOT CONVERGED" in capsys.readouterr().out

    def test_sweep_renders_table(self, capsys):
        rc = main(["sweep", "--case", "tc1", "--size", "17",
                   "--preconds", "block1,schur1", "--p", "2,4", "--maxiter", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "#itr" in out and "Schur 1" in out

    def test_unknown_case_exits(self):
        with pytest.raises(SystemExit):
            main(["solve", "--case", "tc9"])

    def test_bad_p_list_exits(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--case", "tc1", "--p", "2,x"])

    def test_box_scheme(self, capsys):
        rc = main(["solve", "--case", "tc1", "--size", "17", "--scheme", "box",
                   "--precond", "block2", "--nparts", "4"])
        assert rc == 0

    def test_machine_selection(self, capsys):
        rc = main(["solve", "--case", "tc1", "--size", "17",
                   "--machine", "origin3800", "--nparts", "2"])
        assert rc == 0
        assert "origin3800" in capsys.readouterr().out

    def test_parser_help_structure(self):
        parser = make_parser()
        assert parser.prog == "repro"


class TestTraceCommand:
    def test_trace_prints_breakdown_and_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        rc = main(["trace", "poisson2d", "--precond", "schur1", "--nparts", "4",
                   "--size", "17", "--out", str(out_path)])
        assert rc == 0
        out = capsys.readouterr().out
        # per-phase breakdown table with setup/solve/exchange/inner-Schur rows
        for phase in ("precond.setup", "krylov.solve", "comm.exchange",
                      "schur.solve", "TOTAL"):
            assert phase in out
        assert "ledger conservation: OK" in out

        doc = read_json_trace(out_path)
        assert doc["meta"]["case"] == "tc1"
        assert doc["meta"]["precond"] == "schur1"
        assert doc["meta"]["nparts"] == 4
        names = {s["name"] for s in doc["spans"]}
        assert {"solve_case", "precond.setup", "krylov.solve"} <= names

    def test_trace_csv_export(self, tmp_path, capsys):
        json_path, csv_path = tmp_path / "t.json", tmp_path / "t.csv"
        rc = main(["trace", "tc1", "--size", "13", "--precond", "block2",
                   "--nparts", "2", "--out", str(json_path),
                   "--csv", str(csv_path)])
        assert rc == 0
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("id,parent,depth,name")
        assert "crit_flops" in header

    def test_trace_default_output_name(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["trace", "poisson2d", "--size", "13", "--precond", "block1",
                   "--nparts", "2", "--maxiter", "300"])
        assert rc == 0
        assert (tmp_path / "trace_poisson2d_block1_p2.json").exists()

    def test_case_aliases_resolve(self, capsys):
        assert CASE_ALIASES["poisson2d"] == "tc1"
        rc = main(["solve", "--case", "poisson2d", "--size", "17",
                   "--nparts", "2"])
        assert rc == 0

    def test_unknown_alias_exits(self):
        with pytest.raises(SystemExit):
            main(["trace", "poissonXd"])
