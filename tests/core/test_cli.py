import pytest

from repro.cli import main, make_parser


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "tc1" in out and "schur1" in out and "linux-cluster" in out

    def test_solve_tc1(self, capsys):
        rc = main(["solve", "--case", "tc1", "--size", "17", "--precond",
                   "schur1", "--nparts", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "max error" in out

    def test_solve_returns_nonzero_on_failure(self, capsys):
        # elasticity with Block 1 and a tiny budget: honest nonzero exit
        rc = main(["solve", "--case", "tc6", "--size", "15", "--precond",
                   "block1", "--maxiter", "10"])
        assert rc == 1
        assert "NOT CONVERGED" in capsys.readouterr().out

    def test_sweep_renders_table(self, capsys):
        rc = main(["sweep", "--case", "tc1", "--size", "17",
                   "--preconds", "block1,schur1", "--p", "2,4", "--maxiter", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "#itr" in out and "Schur 1" in out

    def test_unknown_case_exits(self):
        with pytest.raises(SystemExit):
            main(["solve", "--case", "tc9"])

    def test_bad_p_list_exits(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--case", "tc1", "--p", "2,x"])

    def test_box_scheme(self, capsys):
        rc = main(["solve", "--case", "tc1", "--size", "17", "--scheme", "box",
                   "--precond", "block2", "--nparts", "4"])
        assert rc == 0

    def test_machine_selection(self, capsys):
        rc = main(["solve", "--case", "tc1", "--size", "17",
                   "--machine", "origin3800", "--nparts", "2"])
        assert rc == 0
        assert "origin3800" in capsys.readouterr().out

    def test_parser_help_structure(self):
        parser = make_parser()
        assert parser.prog == "repro"
