import pytest

from repro.core.experiment import run_sweep
from repro.perfmodel.machine import LINUX_CLUSTER


class TestRunSweep:
    @pytest.fixture(scope="class")
    def sweep(self, request):
        from repro.cases.poisson2d import poisson2d_case

        case = poisson2d_case(n=17)
        return run_sweep(case, ["block1", "schur1"], [2, 4], maxiter=300)

    def test_all_cells_present(self, sweep):
        for name in ("block1", "schur1"):
            for p in (2, 4):
                assert sweep.get(name, p) is not None

    def test_outcomes_converged(self, sweep):
        assert all(o.converged for o in sweep.outcomes.values())

    def test_table_renders_paper_layout(self, sweep):
        text = sweep.table(LINUX_CLUSTER)
        assert "Block 1" in text
        assert "Schur 1" in text
        assert "#itr" in text and "time" in text
        lines = text.splitlines()
        assert any(line.strip().startswith("2 ") for line in lines)
        assert any(line.strip().startswith("4 ") for line in lines)

    def test_missing_cell_renders_dashes(self, sweep):
        sweep2 = type(sweep)(
            case_key=sweep.case_key,
            case_title=sweep.case_title,
            scheme=sweep.scheme,
            p_values=[2, 8],
            preconds=["block1"],
            outcomes={k: v for k, v in sweep.outcomes.items() if k[1] == 2},
        )
        assert "--" in sweep2.table(LINUX_CLUSTER)

    def test_precond_params_forwarded(self):
        from repro.cases.poisson2d import poisson2d_case

        case = poisson2d_case(n=17)
        sweep = run_sweep(
            case,
            ["schur1"],
            [2],
            maxiter=300,
            precond_params={"schur1": {"global_iterations": 2}},
        )
        assert sweep.get("schur1", 2).converged
