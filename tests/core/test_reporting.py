from repro.core.reporting import format_paper_table


class TestFormatPaperTable:
    def test_basic_layout(self):
        table = format_paper_table(
            "Test table",
            [2, 4],
            {"Schur 1": {2: (10, 1.5), 4: (12, 0.9)}, "Block 2": {2: (40, 2.0), 4: (55, 1.4)}},
        )
        lines = table.splitlines()
        assert lines[0] == "Test table"
        assert "Schur 1" in lines[1] and "Block 2" in lines[1]
        assert lines[2].count("#itr") == 2
        assert "10" in lines[3] and "1.50" in lines[3]

    def test_none_iterations_render_as_dashes(self):
        table = format_paper_table("t", [2], {"Block 1": {2: (None, 3.0)}})
        assert "--" in table
        assert "3.00" in table

    def test_missing_entry(self):
        table = format_paper_table("t", [2, 4], {"X": {2: (5, 0.1)}})
        row4 = [l for l in table.splitlines() if l.strip().startswith("4")][0]
        assert "--" in row4

    def test_custom_time_format(self):
        table = format_paper_table("t", [2], {"X": {2: (5, 0.123456)}}, time_format="{:.4f}")
        assert "0.1235" in table
