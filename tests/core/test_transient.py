import numpy as np
import pytest

from repro.core.transient import TransientHeatSolver
from repro.mesh.grid2d import structured_rectangle
from repro.mesh.grid3d import structured_box


@pytest.fixture(scope="module")
def solver():
    mesh = structured_rectangle(13, 13)
    return TransientHeatSolver(
        mesh,
        dt=0.02,
        dirichlet_nodes=mesh.all_boundary_nodes(),
        precond="schur1",
        nparts=3,
    ), mesh


class TestTransientHeatSolver:
    def test_advance_decays_heat(self, solver):
        ths, mesh = solver
        u0 = np.sin(np.pi * mesh.points[:, 0]) * np.sin(np.pi * mesh.points[:, 1])
        u = ths.advance(u0, steps=5)
        assert np.abs(u).max() < np.abs(u0).max()
        assert len(ths.history) >= 5

    def test_decay_rate_matches_analytics(self):
        mesh = structured_rectangle(21, 21)
        dt = 0.01
        ths = TransientHeatSolver(
            mesh, dt=dt, dirichlet_nodes=mesh.all_boundary_nodes(),
            precond="block2", nparts=2,
        )
        u0 = np.sin(np.pi * mesh.points[:, 0]) * np.sin(np.pi * mesh.points[:, 1])
        u1 = ths.advance(u0, steps=1)
        ratio = u1.max() / u0.max()
        assert ratio == pytest.approx(1.0 / (1.0 + 2 * np.pi**2 * dt), rel=0.05)

    def test_history_records_iterations(self, solver):
        ths, mesh = solver
        before = len(ths.history)
        u0 = np.sin(np.pi * mesh.points[:, 0]) * np.sin(np.pi * mesh.points[:, 1])
        ths.advance(u0, steps=2)
        assert len(ths.history) == before + 2
        assert all(rec.converged for rec in ths.history)
        assert ths.total_iterations >= len(ths.history)

    def test_preconditioner_iterations_stable_across_steps(self, solver):
        ths, mesh = solver
        u0 = np.sin(np.pi * mesh.points[:, 0]) * np.sin(np.pi * mesh.points[:, 1])
        ths.advance(u0, steps=4)
        iters = [rec.iterations for rec in ths.history[-4:]]
        assert max(iters) - min(iters) <= 3  # same operator every step

    def test_ledger_accumulates_across_steps(self, solver):
        ths, mesh = solver
        flops_before = ths.comm.ledger.crit_flops
        u0 = np.ones(mesh.num_points)
        u0[mesh.all_boundary_nodes()] = 0.0
        ths.advance(u0, steps=1)
        assert ths.comm.ledger.crit_flops > flops_before

    def test_3d_mesh_supported(self):
        mesh = structured_box(7, 7, 7)
        ths = TransientHeatSolver(
            mesh, dt=0.05, dirichlet_nodes=mesh.boundary_set("right"),
            precond="block1", nparts=2,
        )
        u0 = np.sin(np.pi * mesh.points[:, 0]) * np.sin(np.pi * mesh.points[:, 1])
        u0[mesh.boundary_set("right")] = 0.0
        u = ths.advance(u0, steps=2)
        assert np.all(np.isfinite(u))
        assert np.abs(u[mesh.boundary_set("right")]).max() < 1e-10

    def test_box_scheme(self):
        mesh = structured_rectangle(9, 9)
        ths = TransientHeatSolver(
            mesh, dt=0.02, dirichlet_nodes=mesh.all_boundary_nodes(),
            precond="block2", nparts=4, scheme="box",
        )
        u = ths.advance(np.ones(mesh.num_points), steps=1)
        assert np.all(np.isfinite(u))

    def test_unknown_scheme_raises(self):
        mesh = structured_rectangle(7, 7)
        with pytest.raises(ValueError):
            TransientHeatSolver(
                mesh, dt=0.02, dirichlet_nodes=mesh.all_boundary_nodes(),
                scheme="spiral",
            )
