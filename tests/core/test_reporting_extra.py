import numpy as np
import pytest

from repro.core.reporting import format_convergence_history, format_efficiency_table


class TestConvergenceHistory:
    def test_renders_decreasing_staircase(self):
        residuals = [10.0 ** (-k) for k in range(8)]
        plot = format_convergence_history(residuals, title="decay")
        lines = plot.splitlines()
        assert lines[0] == "decay"
        assert plot.count("*") >= 8 - 2  # most points visible (some overlap)
        assert "iterations" in plot

    def test_short_history(self):
        assert "too short" in format_convergence_history([1.0])

    def test_flat_history_does_not_crash(self):
        plot = format_convergence_history([1.0, 1.0, 1.0])
        assert "*" in plot

    def test_zero_residual_clamped(self):
        plot = format_convergence_history([1.0, 0.0])
        assert "*" in plot

    def test_real_solver_history_plots(self, tiny_case):
        from repro.core.driver import solve_case

        out = solve_case(tiny_case, "schur1", nparts=2, maxiter=100)
        plot = format_convergence_history(out.residuals)
        assert plot.count("*") >= 3


class TestEfficiencyTable:
    def test_speedup_relative_to_base(self):
        times = {"X": {2: 4.0, 4: 2.0, 8: 1.0}}
        table = format_efficiency_table("t", [2, 4, 8], times)
        lines = table.splitlines()
        row8 = [l for l in lines if l.strip().startswith("8")][0]
        assert "4.00" in row8  # speedup 4 vs P=2
        assert "1.00" in row8  # perfect efficiency (4 × 2/8)

    def test_missing_cells(self):
        table = format_efficiency_table("t", [2, 4], {"X": {2: 1.0}})
        assert "--" in table

    def test_explicit_base(self):
        times = {"X": {4: 2.0, 8: 1.0}}
        table = format_efficiency_table("t", [4, 8], times, base_p=4)
        row8 = [l for l in table.splitlines() if l.strip().startswith("8")][0]
        assert "2.00" in row8
