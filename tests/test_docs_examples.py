"""Every fenced Python block in the docs must actually run.

Blocks are extracted per document and executed sequentially in one shared
namespace (docs read top-to-bottom: later blocks may use earlier names),
with the working directory pointed at a temp dir so example output files
land nowhere permanent.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

DOCS_DIR = Path(__file__).parent.parent / "docs"
DOCS = sorted(p.name for p in DOCS_DIR.glob("*.md"))

_FENCE = re.compile(r"^```python\n(.*?)^```", re.MULTILINE | re.DOTALL)


def python_blocks(doc: str) -> list[tuple[int, str]]:
    """(starting line number, source) for each ```python fence in the doc."""
    text = (DOCS_DIR / doc).read_text()
    return [
        (text[: m.start()].count("\n") + 2, m.group(1))
        for m in _FENCE.finditer(text)
    ]


def test_docs_present():
    assert "usage.md" in DOCS and "observability.md" in DOCS


@pytest.mark.parametrize("doc", DOCS)
def test_python_blocks_execute(doc, tmp_path, monkeypatch):
    blocks = python_blocks(doc)
    if not blocks:
        pytest.skip(f"{doc} has no python blocks")
    monkeypatch.chdir(tmp_path)
    namespace: dict = {"__name__": f"docs_{doc.removesuffix('.md')}"}
    for lineno, source in blocks:
        code = compile(source, f"{doc}:{lineno}", "exec")
        try:
            exec(code, namespace)
        except Exception as exc:  # pragma: no cover - diagnostic path
            pytest.fail(
                f"docs/{doc} block at line {lineno} failed: {exc!r}\n{source}"
            )
