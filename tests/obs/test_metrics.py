import pytest

from repro.comm.communicator import Communicator
from repro.obs.metrics import (
    aggregate_phases,
    aggregate_worker_rounds,
    conservation_error,
    exclusive_deltas,
    format_phase_table,
    format_worker_table,
    ledger_from_delta,
    sum_exclusive,
    worker_round_events,
)
from repro.obs.tracer import Tracer
from repro.perfmodel.machine import LINUX_CLUSTER


def _traced_run():
    """Two-level span tree with known charges; returns (tracer, comm)."""
    comm = Communicator(4)
    t = Tracer(comm)
    with t.span("solve"):
        with t.span("setup"):
            comm.ledger.add_phase(100.0, msgs_per_rank=1, bytes_per_rank=8.0)
        with t.span("apply"):
            comm.ledger.add_phase(10.0)
        with t.span("apply"):
            comm.ledger.add_phase(10.0)
        comm.ledger.add_phase(1.0)  # charged to "solve" exclusively
    return t, comm


class TestExclusiveAccounting:
    def test_exclusive_subtracts_direct_children(self):
        t, _ = _traced_run()
        excl = exclusive_deltas(t.spans)
        by_name = {}
        for s in t.spans:
            by_name.setdefault(s.name, []).append(excl[s.span_id])
        assert by_name["setup"][0]["crit_flops"] == 100.0
        assert by_name["solve"][0]["crit_flops"] == 1.0
        assert sum(d["crit_flops"] for d in by_name["apply"]) == 20.0

    def test_sum_exclusive_equals_root_inclusive(self):
        t, _ = _traced_run()
        total = sum_exclusive(t.spans)
        root = next(s for s in t.spans if s.parent_id is None)
        assert total == root.ledger
        assert total["crit_flops"] == 121.0

    def test_conservation_against_communicator(self):
        t, comm = _traced_run()
        assert conservation_error(t.spans, comm.cumulative_counts()) == 0.0

    def test_conservation_detects_untrapped_charge(self):
        t, comm = _traced_run()
        comm.ledger.add_phase(1000.0)  # outside every span
        assert conservation_error(t.spans, comm.cumulative_counts()) > 0.1

    def test_empty_span_list(self):
        assert sum_exclusive([])["crit_flops"] == 0.0
        assert conservation_error([], {"crit_flops": 0.0}) == 0.0


class TestLedgerFromDelta:
    def test_pricing_roundtrip(self):
        comm = Communicator(8)
        comm.ledger.add_phase(1e6, msgs_per_rank=4, bytes_per_rank=4096.0)
        comm.ledger.add_allreduce(8)
        rebuilt = ledger_from_delta(8, comm.ledger.counts())
        assert rebuilt.num_ranks == 8
        assert rebuilt.allreduces == 1
        assert isinstance(rebuilt.allreduces, int)
        assert LINUX_CLUSTER.time(rebuilt) == pytest.approx(
            LINUX_CLUSTER.time(comm.ledger)
        )

    def test_missing_keys_default_to_zero(self):
        ledger = ledger_from_delta(2, {})
        assert ledger.crit_flops == 0.0
        assert ledger.phases == 0


class TestAggregation:
    def test_phases_grouped_in_first_seen_order(self):
        t, _ = _traced_run()
        stats = aggregate_phases(t.spans)
        assert [s.name for s in stats] == ["solve", "setup", "apply"]
        apply_stat = stats[2]
        assert apply_stat.count == 2
        assert apply_stat.ledger_excl["crit_flops"] == 20.0
        assert apply_stat.ledger_incl["crit_flops"] == 20.0
        solve_stat = stats[0]
        assert solve_stat.ledger_incl["crit_flops"] == 121.0
        assert solve_stat.ledger_excl["crit_flops"] == 1.0

    def test_sim_time_positive(self):
        t, _ = _traced_run()
        stats = {s.name: s for s in aggregate_phases(t.spans)}
        assert stats["setup"].sim_time(LINUX_CLUSTER, 4) > 0.0


class TestPhaseTable:
    def test_table_totals_match_run(self):
        t, comm = _traced_run()
        table = format_phase_table(t.spans, LINUX_CLUSTER, 4, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert any(line.startswith("setup") for line in lines)
        total_line = next(l for l in lines if l.startswith("TOTAL"))
        assert "121" in total_line  # exclusive flops sum to the run total

    def test_table_without_machine_has_no_sim_column(self):
        t, _ = _traced_run()
        table = format_phase_table(t.spans)
        assert "sim[s]" not in table
        assert "wall[s]" in table


def _worker_traced_run():
    """A tracer holding worker rounds both span-nested and orphaned."""
    comm = Communicator(2)
    t = Tracer(comm)
    with t.span("krylov.solve"):
        t.event("comm.worker.round", op="apply", backend="multiprocess",
                ranks=[0, 1], seconds=[0.4, 0.1], cpu_seconds=[0.3, 0.1],
                driver_seconds=0.6, bytes=100)
        t.event("comm.worker.round", op="apply", backend="multiprocess",
                ranks=[0, 1], seconds=[0.1, 0.5], cpu_seconds=[0.1, 0.4],
                driver_seconds=0.7, bytes=150)
    t.event("comm.worker.round", op="factor", backend="multiprocess",
            ranks=[1], seconds=[2.0], cpu_seconds=[1.5],
            driver_seconds=2.1, bytes=50)
    return t


class TestWorkerRoundMerge:
    def test_events_found_in_spans_and_orphans(self):
        t = _worker_traced_run()
        assert len(worker_round_events(t)) == 3

    def test_per_op_per_rank_attribution(self):
        t = _worker_traced_run()
        stats = {s.op: s for s in aggregate_worker_rounds(t)}
        assert sorted(stats) == ["apply", "factor"]
        a = stats["apply"]
        assert a.rounds == 2
        assert a.bytes == 250
        assert a.rank_cpu_seconds == {0: pytest.approx(0.4),
                                      1: pytest.approx(0.5)}
        assert a.rank_seconds == {0: pytest.approx(0.5),
                                  1: pytest.approx(0.6)}
        # critical path sums each round's slowest rank, not the rank sums
        assert a.critical_seconds == pytest.approx(0.3 + 0.4)
        assert stats["factor"].rank_cpu_seconds == {1: pytest.approx(1.5)}

    def test_table_lists_every_rank_column(self):
        t = _worker_traced_run()
        table = format_worker_table(t)
        assert "r0[s]" in table and "r1[s]" in table
        assert any(line.startswith("apply") for line in table.splitlines())
        assert any(line.startswith("factor") for line in table.splitlines())

    def test_empty_trace_renders_nothing(self):
        comm = Communicator(2)
        assert format_worker_table(Tracer(comm)) == ""
