"""End-to-end accounting: spans recorded by a real solve must attribute
every ledger charge (setup + solve) exactly once — the contract of
docs/observability.md."""

import pytest

from repro import obs
from repro.cases.poisson2d import poisson2d_case
from repro.core.driver import solve_case
from repro.obs.metrics import conservation_error, sum_exclusive


def _merged_counts(out):
    totals = out.setup_ledger.counts()
    for key, value in out.solve_ledger.counts().items():
        totals[key] += value
    return totals


@pytest.fixture(scope="module")
def traced_schur1():
    case = poisson2d_case(n=17)
    with obs.tracing() as tracer:
        out = solve_case(case, precond="schur1", nparts=4)
    return tracer, out


class TestTracedSolve:
    def test_span_name_contract(self, traced_schur1):
        tracer, _ = traced_schur1
        names = {s.name for s in tracer.spans}
        assert {
            "solve_case", "partition", "distribute", "precond.setup",
            "krylov.solve", "precond.apply", "schur.forward", "schur.solve",
            "schur.back", "comm.exchange", "dist.matvec",
        } <= names

    def test_root_span_attrs(self, traced_schur1):
        tracer, out = traced_schur1
        root = next(s for s in tracer.spans if s.name == "solve_case")
        assert root.attrs["precond"] == "schur1"
        assert root.attrs["nparts"] == 4
        assert root.attrs["iterations"] == out.iterations
        assert root.attrs["converged"] == out.converged

    def test_ledger_conservation(self, traced_schur1):
        # the acceptance-criteria invariant: per-span deltas sum to the
        # run's total CostLedger (setup + solve)
        tracer, out = traced_schur1
        assert conservation_error(tracer.spans, _merged_counts(out)) < 1e-12

    def test_setup_and_solve_spans_partition_phases(self, traced_schur1):
        tracer, out = traced_schur1
        setup = next(s for s in tracer.spans if s.name == "precond.setup")
        solve = next(s for s in tracer.spans if s.name == "krylov.solve")
        assert setup.ledger["crit_flops"] == pytest.approx(
            out.setup_ledger.crit_flops
        )
        assert solve.ledger["crit_flops"] == pytest.approx(
            out.solve_ledger.crit_flops
        )
        assert solve.ledger["allreduces"] == out.solve_ledger.allreduces

    def test_iteration_events_recorded(self, traced_schur1):
        tracer, out = traced_schur1
        solve = next(s for s in tracer.spans if s.name == "krylov.solve")
        iters = [e for e in solve.events if e["name"] == "krylov.iteration"]
        assert len(iters) == out.iterations
        starts = [e for e in solve.events if e["name"] == "krylov.start"]
        assert starts and starts[0]["attrs"]["residual"] == out.residuals[0]

    def test_inner_schur_events_nested(self, traced_schur1):
        tracer, _ = traced_schur1
        inner = [s for s in tracer.spans if s.name == "schur.solve"]
        assert inner
        assert all(
            any(e["name"] == "krylov.iteration" for e in s.events)
            for s in inner
        )

    def test_allreduce_events_attributed(self, traced_schur1):
        tracer, out = traced_schur1
        n_events = sum(
            sum(1 for e in s.events if e["name"] == "comm.allreduce")
            for s in tracer.spans
        )
        total = _merged_counts(out)
        assert n_events == total["allreduces"]


@pytest.mark.parametrize("precond", ["block2", "schur2", "as"])
def test_conservation_other_preconditioners(precond):
    case = poisson2d_case(n=13)
    with obs.tracing() as tracer:
        out = solve_case(case, precond=precond, nparts=4, maxiter=300)
    assert conservation_error(tracer.spans, _merged_counts(out)) < 1e-12
    assert sum_exclusive(tracer.spans)["crit_flops"] > 0


def test_untraced_solve_records_nothing():
    case = poisson2d_case(n=9)
    solve_case(case, precond="block1", nparts=2)
    assert not obs.enabled()
    assert obs.get_tracer().span("x") is obs.get_tracer().span("y")
