import pytest

from repro import obs
from repro.comm.communicator import Communicator
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.perfmodel.costs import COUNT_FIELDS


class TestDisabledTracing:
    def test_default_tracer_is_null(self):
        assert obs.get_tracer() is NULL_TRACER
        assert not obs.enabled()

    def test_null_span_is_shared_and_inert(self):
        s1 = obs.span("anything", attr=1)
        s2 = obs.span("else")
        assert s1 is s2  # no allocation when disabled
        with s1 as inner:
            inner.set(x=1).event("noop")

    def test_module_event_noop(self):
        obs.event("krylov.iteration", k=0)  # must not raise or record

    def test_null_tracer_api_surface(self):
        t = NullTracer()
        assert t.enabled is False
        t.bind(None)


class TestSpans:
    def test_nesting_and_ids(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                pass
        assert [s.name for s in t.spans] == ["outer", "inner"]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert (outer.depth, inner.depth) == (0, 1)
        assert inner.t_start >= outer.t_start
        assert outer.t_end >= inner.t_end

    def test_attrs_and_events(self):
        t = Tracer()
        with t.span("s", precond="schur1") as s:
            s.set(iterations=7)
            s.event("tick", k=1)
            t.event("via-tracer", k=2)
        assert s.attrs == {"precond": "schur1", "iterations": 7}
        assert [e["name"] for e in s.events] == ["tick", "via-tracer"]
        assert s.events[1]["attrs"] == {"k": 2}

    def test_orphan_events(self):
        t = Tracer()
        t.event("lonely", why="no open span")
        assert t.spans == []
        assert t.orphan_events[0]["name"] == "lonely"

    def test_current(self):
        t = Tracer()
        assert t.current() is None
        with t.span("a") as a:
            assert t.current() is a
        assert t.current() is None

    def test_out_of_order_exit_tolerated(self):
        t = Tracer()
        outer = t.span("outer")
        inner = t.span("inner")
        outer.__enter__()
        inner.__enter__()
        outer.__exit__(None, None, None)  # closes inner too
        assert t.current() is None

    def test_to_dict_has_all_count_fields(self):
        t = Tracer()
        with t.span("s") as s:
            pass
        d = s.to_dict()
        assert set(d["ledger"]) == set(COUNT_FIELDS)
        assert d["wall_s"] == pytest.approx(s.wall)


class TestLedgerDeltas:
    def test_delta_captured(self):
        comm = Communicator(4)
        t = Tracer(comm)
        with t.span("work") as s:
            comm.ledger.add_phase(50.0, msgs_per_rank=2, bytes_per_rank=16.0)
        assert s.ledger["crit_flops"] == 50.0
        assert s.ledger["crit_msgs"] == 2.0
        assert s.ledger["phases"] == 1.0

    def test_delta_survives_reset_ledger(self):
        comm = Communicator(2)
        t = Tracer(comm)
        with t.span("run") as s:
            comm.ledger.add_phase(10.0)
            comm.reset_ledger()
            comm.ledger.add_phase(5.0)
        assert s.ledger["crit_flops"] == 15.0

    def test_delta_survives_rebind(self):
        # the sweep pattern: one communicator per solve, same tracer
        t = Tracer()
        with t.span("sweep") as s:
            for flops in (3.0, 4.0):
                comm = Communicator(2)
                t.bind(comm)
                comm.ledger.add_phase(flops)
        assert s.ledger["crit_flops"] == 7.0

    def test_unbound_tracer_records_zero_deltas(self):
        t = Tracer()
        with t.span("s") as s:
            pass
        assert all(v == 0.0 for v in s.ledger.values())

    def test_sibling_spans_split_charges(self):
        comm = Communicator(2)
        t = Tracer(comm)
        with t.span("parent") as parent:
            with t.span("a") as a:
                comm.ledger.add_phase(1.0)
            with t.span("b") as b:
                comm.ledger.add_phase(2.0)
        assert a.ledger["crit_flops"] == 1.0
        assert b.ledger["crit_flops"] == 2.0
        assert parent.ledger["crit_flops"] == 3.0  # inclusive


class TestTracingContext:
    def test_installs_and_restores(self):
        assert obs.get_tracer() is NULL_TRACER
        with obs.tracing() as tracer:
            assert obs.get_tracer() is tracer
            assert obs.enabled()
            with obs.span("s", a=1) as s:
                obs.event("e")
        assert obs.get_tracer() is NULL_TRACER
        assert s.attrs == {"a": 1}
        assert tracer.spans == [s]

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.tracing():
                raise RuntimeError("boom")
        assert obs.get_tracer() is NULL_TRACER

    def test_nested_tracing_restores_outer(self):
        with obs.tracing() as outer:
            with obs.tracing() as inner:
                assert obs.get_tracer() is inner
            assert obs.get_tracer() is outer
