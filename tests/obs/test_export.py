import csv
import json

import pytest

from repro.comm.communicator import Communicator
from repro.obs.export import (
    TRACE_SCHEMA,
    read_json_trace,
    trace_to_dict,
    write_csv_trace,
    write_json_trace,
)
from repro.obs.tracer import Tracer
from repro.perfmodel.costs import COUNT_FIELDS


def _tracer():
    comm = Communicator(4)
    t = Tracer(comm)
    with t.span("solve", precond="schur1") as s:
        s.event("krylov.iteration", k=0, residual=1.0)
        with t.span("apply"):
            comm.ledger.add_phase(10.0, msgs_per_rank=1, bytes_per_rank=8.0)
    t.event("orphan")
    return t


class TestJsonTrace:
    def test_schema_and_layout(self):
        doc = trace_to_dict(_tracer(), {"case": "tc1"})
        assert doc["schema"] == TRACE_SCHEMA == "repro.trace.v1"
        assert doc["meta"] == {"num_ranks": 4, "case": "tc1"}
        assert len(doc["spans"]) == 2
        assert len(doc["orphan_events"]) == 1
        span = doc["spans"][0]
        assert span["name"] == "solve"
        assert span["attrs"] == {"precond": "schur1"}
        assert span["events"][0]["name"] == "krylov.iteration"
        assert set(span["ledger"]) == set(COUNT_FIELDS)

    def test_roundtrip(self, tmp_path):
        t = _tracer()
        path = write_json_trace(tmp_path / "sub" / "t.json", t)
        doc = read_json_trace(path)
        assert doc == trace_to_dict(t)
        json.loads(path.read_text())  # valid JSON on disk

    def test_read_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other.v9"}))
        with pytest.raises(ValueError, match="repro.trace.v1"):
            read_json_trace(bad)


class TestCsvTrace:
    def test_one_row_per_span(self, tmp_path):
        t = _tracer()
        path = write_csv_trace(tmp_path / "t.csv", t)
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        by_name = {r["name"]: r for r in rows}
        assert float(by_name["apply"]["crit_flops"]) == 10.0
        assert json.loads(by_name["solve"]["attrs"]) == {"precond": "schur1"}
        assert int(by_name["solve"]["events"]) == 1
        assert rows[0]["parent"] == ""  # root has no parent
