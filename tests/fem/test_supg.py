import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.fem.assembly import assemble_convection, assemble_stiffness
from repro.fem.boundary import apply_dirichlet
from repro.fem.supg import assemble_streamline_diffusion, element_sizes, peclet_tau
from repro.mesh.grid2d import structured_rectangle


class TestPecletTau:
    def test_diffusion_limit_is_h_squared_over_12_kappa(self):
        """ξ(Pe) ≈ Pe/3 for small Pe, so τ → h²/(12κ) independent of |v|;
        the stabilization *term* then vanishes like |v|²·τ."""
        h = np.array([0.1])
        kappa = 1.0
        assert peclet_tau(h, 1e-9, kappa)[0] == pytest.approx(h[0] ** 2 / (12 * kappa))

    def test_full_upwind_in_convection_limit(self):
        h = np.array([0.1])
        v = 1e6
        assert peclet_tau(h, v, 1.0)[0] == pytest.approx(h[0] / (2 * v))

    def test_zero_velocity(self):
        assert np.all(peclet_tau(np.array([0.1, 0.2]), 0.0, 1.0) == 0.0)

    def test_monotone_in_h(self):
        hs = np.linspace(0.01, 0.5, 20)
        taus = peclet_tau(hs, 100.0, 1.0)
        assert np.all(np.diff(taus) > 0)

    def test_small_peclet_series_branch_continuous(self):
        """τ is continuous across the series/coth switch at Pe = 1e-3."""
        v, kappa = 1.0, 1.0
        h_lo = 2.0 * 0.9999e-3  # Pe just below the switch
        h_hi = 2.0 * 1.0001e-3
        t_lo = peclet_tau(np.array([h_lo]), v, kappa)[0]
        t_hi = peclet_tau(np.array([h_hi]), v, kappa)[0]
        assert t_hi == pytest.approx(t_lo, rel=1e-3)


class TestStreamlineDiffusion:
    def test_symmetric_positive_semidefinite(self):
        m = structured_rectangle(8, 8)
        s = assemble_streamline_diffusion(m, np.array([100.0, 50.0]), 1.0)
        assert abs(s - s.T).max() < 1e-12
        rng = np.random.default_rng(0)
        for _ in range(5):
            x = rng.standard_normal(m.num_points)
            assert x @ (s @ x) >= -1e-10

    def test_annihilates_crosswind_fields(self):
        """S u = 0 when u varies only perpendicular to v."""
        m = structured_rectangle(8, 8)
        v = np.array([1000.0, 0.0])
        s = assemble_streamline_diffusion(m, v, 1.0)
        u = m.points[:, 1]  # varies in y only; v·∇u = 0
        assert np.abs(s @ u).max() < 1e-10

    def test_element_sizes_match_grid(self):
        n = 11
        m = structured_rectangle(n, n)
        h = element_sizes(m)
        expected = np.sqrt(2.0 * 0.5 * (1 / (n - 1)) ** 2)
        assert np.allclose(h, expected)

    def test_stabilization_suppresses_oscillations(self):
        """1-D-like convection across the square: the stabilized solution
        stays (nearly) within the BC bounds, the Galerkin one oscillates."""
        n = 21
        m = structured_rectangle(n, n)
        v = np.array([500.0, 0.0])
        k = assemble_stiffness(m)
        c = assemble_convection(m, v)
        bn = m.all_boundary_nodes()
        bc = (m.points[bn, 0] > 1 - 1e-12).astype(float)  # u=1 at outflow x=1

        galerkin = (k + c).tocsr()
        a1, b1 = apply_dirichlet(galerkin, np.zeros(m.num_points), bn, bc)
        u_gal = spla.spsolve(a1.tocsc(), b1)

        stab = (k + c + assemble_streamline_diffusion(m, v, 1.0)).tocsr()
        a2, b2 = apply_dirichlet(stab, np.zeros(m.num_points), bn, bc)
        u_su = spla.spsolve(a2.tocsc(), b2)

        overshoot_gal = max(u_gal.max() - 1.0, -u_gal.min())
        overshoot_su = max(u_su.max() - 1.0, -u_su.min())
        assert overshoot_su < 0.05
        assert overshoot_su < 0.2 * overshoot_gal

    def test_produces_unsymmetric_system_with_convection(self):
        """The paper notes the upwinded TC5 matrix is unsymmetric."""
        m = structured_rectangle(6, 6)
        v = 1000.0 * np.array([np.cos(np.pi / 4), np.sin(np.pi / 4)])
        a = (
            assemble_stiffness(m)
            + assemble_convection(m, v)
            + assemble_streamline_diffusion(m, v, 1.0)
        ).tocsr()
        assert abs(a - a.T).max() > 1.0
