import numpy as np
import pytest

from repro.fem.p1_tet import tet_geometry
from repro.fem.p1_triangle import triangle_geometry
from repro.mesh.grid2d import structured_rectangle
from repro.mesh.grid3d import structured_box
from repro.mesh.mesh import Mesh


class TestTriangleGeometry:
    def test_reference_triangle(self):
        m = Mesh(np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]), np.array([[0, 1, 2]]))
        areas, grads = triangle_geometry(m)
        assert areas[0] == pytest.approx(0.5)
        assert np.allclose(grads[0, 0], [-1.0, -1.0])
        assert np.allclose(grads[0, 1], [1.0, 0.0])
        assert np.allclose(grads[0, 2], [0.0, 1.0])

    def test_gradients_sum_to_zero(self):
        m = structured_rectangle(5, 5)
        _, grads = triangle_geometry(m)
        assert np.allclose(grads.sum(axis=1), 0.0)

    def test_gradient_kronecker_property(self):
        """∇λ_i · (p_j − p_i-centroid basis): λ_i(p_j) = δ_ij differentiated."""
        rng = np.random.default_rng(0)
        pts = rng.random((3, 2))
        m = Mesh(pts, np.array([[0, 1, 2]]))
        _, grads = triangle_geometry(m)
        for i in range(3):
            for j in range(3):
                # λ_i(p_j) via linearity: λ_i(p) = λ_i(p_0) + ∇λ_i·(p−p_0)
                base = 1.0 if i == 0 else 0.0
                val = base + grads[0, i] @ (pts[j] - pts[0])
                assert val == pytest.approx(1.0 if i == j else 0.0, abs=1e-12)

    def test_degenerate_triangle_raises(self):
        m = Mesh(np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]]), np.array([[0, 1, 2]]))
        with pytest.raises(ValueError, match="degenerate"):
            triangle_geometry(m)

    def test_rejects_3d_mesh(self):
        m = structured_box(3, 3, 3)
        with pytest.raises(ValueError):
            triangle_geometry(m)


class TestTetGeometry:
    def test_reference_tet(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float)
        m = Mesh(pts, np.array([[0, 1, 2, 3]]))
        vols, grads = tet_geometry(m)
        assert vols[0] == pytest.approx(1.0 / 6.0)
        assert np.allclose(grads[0, 0], [-1, -1, -1])
        assert np.allclose(grads[0, 1], [1, 0, 0])

    def test_gradients_sum_to_zero(self):
        m = structured_box(3, 3, 3)
        _, grads = tet_geometry(m)
        assert np.allclose(grads.sum(axis=1), 0.0)

    def test_gradient_kronecker_property(self):
        rng = np.random.default_rng(1)
        pts = rng.random((4, 3))
        m = Mesh(pts, np.array([[0, 1, 2, 3]]))
        _, grads = tet_geometry(m)
        for i in range(4):
            for j in range(4):
                base = 1.0 if i == 0 else 0.0
                val = base + grads[0, i] @ (pts[j] - pts[0])
                assert val == pytest.approx(1.0 if i == j else 0.0, abs=1e-10)

    def test_volumes_positive(self):
        m = structured_box(4, 3, 5)
        vols, _ = tet_geometry(m)
        assert np.all(vols > 0)
