import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.fem.boundary import apply_dirichlet, dirichlet_dofs_from_nodes
from repro.fem.elasticity import assemble_elasticity, elasticity_load
from repro.mesh.grid2d import structured_rectangle
from repro.mesh.ring import quarter_ring


class TestAssembleElasticity:
    def test_symmetric(self):
        m = structured_rectangle(6, 6)
        k = assemble_elasticity(m, 1.0, 1.0)
        assert abs(k - k.T).max() < 1e-12

    def test_size_is_two_dofs_per_node(self):
        m = structured_rectangle(5, 5)
        k = assemble_elasticity(m, 1.0, 1.0)
        assert k.shape == (50, 50)

    def test_rigid_translations_in_nullspace(self):
        m = structured_rectangle(6, 6)
        k = assemble_elasticity(m, 1.0, 2.0)
        n = m.num_points
        tx = np.zeros(2 * n)
        tx[0::2] = 1.0
        ty = np.zeros(2 * n)
        ty[1::2] = 1.0
        assert np.abs(k @ tx).max() < 1e-12
        assert np.abs(k @ ty).max() < 1e-12

    def test_rigid_rotation_energy(self):
        """The Navier grad-div form penalizes div u; an infinitesimal rotation
        u = (−y, x) has zero divergence so only the μ∇u:∇v term contributes
        — the energy must equal 2μ|Ω| exactly for P1."""
        m = structured_rectangle(9, 9)
        mu = 1.5
        k = assemble_elasticity(m, mu, 7.0)
        n = m.num_points
        rot = np.zeros(2 * n)
        rot[0::2] = -m.points[:, 1]
        rot[1::2] = m.points[:, 0]
        energy = rot @ (k @ rot)
        assert energy == pytest.approx(2.0 * mu, rel=1e-12)

    def test_positive_semidefinite(self):
        m = structured_rectangle(5, 5)
        k = assemble_elasticity(m, 1.0, 3.0).toarray()
        eigs = np.linalg.eigvalsh(k)
        assert eigs.min() > -1e-10

    def test_mu_must_be_positive(self):
        m = structured_rectangle(4, 4)
        with pytest.raises(ValueError):
            assemble_elasticity(m, 0.0, 1.0)

    def test_rejects_3d_mesh(self):
        from repro.mesh.grid3d import structured_box

        with pytest.raises(ValueError):
            assemble_elasticity(structured_box(3, 3, 3), 1.0, 1.0)


class TestElasticityLoad:
    def test_total_force_conserved(self):
        m = structured_rectangle(6, 6)
        b = elasticity_load(m, lambda p: np.tile([0.0, -2.0], (len(p), 1)))
        assert b[0::2].sum() == pytest.approx(0.0)
        assert b[1::2].sum() == pytest.approx(-2.0)  # area 1 × force density 2

    def test_wrong_shape_raises(self):
        m = structured_rectangle(4, 4)
        with pytest.raises(ValueError):
            elasticity_load(m, lambda p: np.zeros(len(p)))


class TestElasticityManufactured:
    def test_manufactured_linear_displacement(self):
        """u = (x, 0): f = 0 for the Navier operator; with exact Dirichlet
        data on the whole boundary the interior must reproduce u exactly
        (P1 exactness for linear fields)."""
        m = structured_rectangle(7, 7)
        mu, lam = 1.0, 2.0
        k = assemble_elasticity(m, mu, lam)
        n = m.num_points
        exact = np.zeros(2 * n)
        exact[0::2] = m.points[:, 0]
        bn = m.all_boundary_nodes()
        dofs = dirichlet_dofs_from_nodes(bn, 2)
        a, rhs = apply_dirichlet(k, np.zeros(2 * n), dofs, exact[dofs])
        u = spla.spsolve(a.tocsc(), rhs)
        assert np.abs(u - exact).max() < 1e-10

    def test_quarter_ring_solvable_with_symmetry_bcs(self):
        """The TC6 setup (u1=0 on Γ1, u2=0 on Γ2) pins all rigid modes."""
        m = quarter_ring(13, 7)
        k = assemble_elasticity(m, 1.0, 10.0)
        b = elasticity_load(m, lambda p: np.tile([0.0, -1.0], (len(p), 1)))
        d1 = dirichlet_dofs_from_nodes(m.boundary_set("gamma1"), 2, component=0)
        d2 = dirichlet_dofs_from_nodes(m.boundary_set("gamma2"), 2, component=1)
        a, rhs = apply_dirichlet(k, b, np.concatenate([d1, d2]), 0.0)
        u = spla.spsolve(a.tocsc(), rhs)
        assert np.all(np.isfinite(u))
        assert np.abs(u).max() > 0  # nontrivial deformation
        assert np.abs(u[d1]).max() == 0.0
        assert np.abs(u[d2]).max() == 0.0
