import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.fem.assembly import assemble_stiffness, assemble_stiffness_tensor
from repro.mesh.grid2d import structured_rectangle
from repro.mesh.grid3d import structured_box


class TestTensorStiffness:
    def test_identity_tensor_matches_scalar(self):
        m = structured_rectangle(7, 7)
        k1 = assemble_stiffness(m, 2.5)
        k2 = assemble_stiffness_tensor(m, 2.5 * np.eye(2))
        assert abs(k1 - k2).max() < 1e-13

    def test_3d_identity_tensor(self):
        m = structured_box(4, 4, 4)
        k1 = assemble_stiffness(m)
        k2 = assemble_stiffness_tensor(m, np.eye(3))
        assert abs(k1 - k2).max() < 1e-13

    def test_symmetric_for_symmetric_tensor(self):
        m = structured_rectangle(6, 6)
        k = assemble_stiffness_tensor(m, np.array([[2.0, 0.5], [0.5, 1.0]]))
        assert abs(k - k.T).max() < 1e-13

    def test_asymmetric_tensor_rejected(self):
        m = structured_rectangle(4, 4)
        with pytest.raises(ValueError):
            assemble_stiffness_tensor(m, np.array([[1.0, 1.0], [0.0, 1.0]]))

    def test_wrong_shape_rejected(self):
        m = structured_rectangle(4, 4)
        with pytest.raises(ValueError):
            assemble_stiffness_tensor(m, np.eye(3))

    def test_manufactured_anisotropic_solution(self):
        """u = sin(πx)sin(πy) solves −∇·(diag(1,ε)∇u) = (1+ε)π² u."""
        eps = 0.1
        m = structured_rectangle(33, 33)
        k = assemble_stiffness_tensor(m, np.diag([1.0, eps]))
        from repro.fem.assembly import assemble_load
        from repro.fem.boundary import apply_dirichlet

        exact = np.sin(np.pi * m.points[:, 0]) * np.sin(np.pi * m.points[:, 1])
        f = lambda p: (1 + eps) * np.pi**2 * np.sin(np.pi * p[:, 0]) * np.sin(np.pi * p[:, 1])
        b = assemble_load(m, f)
        a, rhs = apply_dirichlet(k, b, m.all_boundary_nodes(), 0.0)
        u = spla.spsolve(a.tocsc(), rhs)
        assert np.abs(u - exact).max() < 6e-3

    def test_annihilates_constants(self):
        m = structured_rectangle(6, 6)
        k = assemble_stiffness_tensor(m, np.diag([3.0, 0.1]))
        assert np.abs(k @ np.ones(m.num_points)).max() < 1e-12


class TestAnisotropicCase:
    def test_case_builds_and_solves(self):
        from repro.cases.anisotropic2d import anisotropic2d_case

        c = anisotropic2d_case(n=17, epsilon=0.05)
        x = spla.spsolve(c.matrix.tocsc(), c.rhs)
        assert c.solution_error(x) < 0.05

    def test_invalid_epsilon(self):
        from repro.cases.anisotropic2d import anisotropic2d_case

        with pytest.raises(ValueError):
            anisotropic2d_case(epsilon=0.0)

    def test_anisotropy_degrades_block_more_than_schur(self):
        from repro.cases.anisotropic2d import anisotropic2d_case
        from repro.core.driver import solve_case

        iso = anisotropic2d_case(n=25, epsilon=1.0)
        aniso = anisotropic2d_case(n=25, epsilon=0.001)
        b_growth = (
            solve_case(aniso, "block2", nparts=4, maxiter=600).iterations
            / solve_case(iso, "block2", nparts=4, maxiter=600).iterations
        )
        s_growth = (
            solve_case(aniso, "schur1", nparts=4, maxiter=600).iterations
            / solve_case(iso, "schur1", nparts=4, maxiter=600).iterations
        )
        assert b_growth > s_growth
