import numpy as np
import pytest

from repro.fem.norms import error_norms, h1_seminorm, l2_norm
from repro.mesh.grid2d import structured_rectangle


class TestNorms:
    def test_l2_of_constant(self):
        m = structured_rectangle(9, 9)
        assert l2_norm(m, np.ones(m.num_points)) == pytest.approx(1.0)

    def test_l2_of_linear(self):
        m = structured_rectangle(17, 17)
        v = m.points[:, 0]
        # ∫ x² over unit square = 1/3 (exact for P1 mass on P1 interpolant)
        assert l2_norm(m, v) == pytest.approx(np.sqrt(1.0 / 3.0), rel=1e-12)

    def test_h1_of_constant_is_zero(self):
        m = structured_rectangle(9, 9)
        assert h1_seminorm(m, np.ones(m.num_points)) == pytest.approx(0.0, abs=1e-10)

    def test_h1_of_linear(self):
        m = structured_rectangle(9, 9)
        v = 2.0 * m.points[:, 0] - m.points[:, 1]
        # |∇v|² = 4 + 1 = 5 over area 1
        assert h1_seminorm(m, v) == pytest.approx(np.sqrt(5.0), rel=1e-12)

    def test_wrong_length(self):
        m = structured_rectangle(4, 4)
        with pytest.raises(ValueError):
            l2_norm(m, np.zeros(3))

    def test_error_norms_convergence_rates(self):
        """Poisson: the nodal error u_h − I_h u converges at O(h²) in both
        norms (it is the difference of two P1 fields; on uniform meshes the
        discrete solution is superconvergent to the interpolant — the true
        H¹ error, u_h − u, would be O(h), but needs exact-solution
        quadrature to measure)."""
        import scipy.sparse.linalg as spla

        from repro.fem.assembly import assemble_load, assemble_stiffness
        from repro.fem.boundary import apply_dirichlet

        results = []
        for n in (9, 17, 33):
            m = structured_rectangle(n, n)
            k = assemble_stiffness(m)
            exact = m.points[:, 0] * np.exp(m.points[:, 1])
            b = -assemble_load(m, lambda p: p[:, 0] * np.exp(p[:, 1]))
            bn = m.all_boundary_nodes()
            a, rhs = apply_dirichlet(k, b, bn, exact[bn])
            u = spla.spsolve(a.tocsc(), rhs)
            results.append(error_norms(m, u, exact))
        l2_rate = np.log2(results[0]["l2"] / results[1]["l2"])
        h1_rate = np.log2(results[0]["h1"] / results[1]["h1"])
        assert l2_rate > 1.7
        assert h1_rate > 1.7  # superconvergence of u_h to the interpolant
