import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.fem.boundary import apply_dirichlet
from repro.fem.timestepping import ImplicitEulerOperator
from repro.mesh.grid2d import structured_rectangle


class TestImplicitEulerOperator:
    def test_matrix_is_mass_plus_dt_stiffness(self):
        m = structured_rectangle(6, 6)
        op = ImplicitEulerOperator(m, dt=0.05)
        expected = op.mass + 0.05 * op.stiffness
        assert abs(op.matrix - expected).max() < 1e-14

    def test_rhs_is_mass_times_previous(self, rng):
        m = structured_rectangle(5, 5)
        op = ImplicitEulerOperator(m, dt=0.1)
        u = rng.random(m.num_points)
        assert np.allclose(op.rhs(u), op.mass @ u)

    def test_invalid_parameters(self):
        m = structured_rectangle(4, 4)
        with pytest.raises(ValueError):
            ImplicitEulerOperator(m, dt=0.0)
        with pytest.raises(ValueError):
            ImplicitEulerOperator(m, dt=0.1, conductivity=-1.0)

    def test_step_decays_heat_with_zero_dirichlet(self):
        """With u=0 on the whole boundary, each implicit step contracts."""
        m = structured_rectangle(9, 9)
        op = ImplicitEulerOperator(m, dt=0.05)
        u = np.sin(np.pi * m.points[:, 0]) * np.sin(np.pi * m.points[:, 1])
        bn = m.all_boundary_nodes()
        for _ in range(3):
            a, b = apply_dirichlet(op.matrix, op.rhs(u), bn, 0.0)
            u_new = spla.spsolve(a.tocsc(), b)
            assert np.abs(u_new).max() < np.abs(u).max()
            u = u_new

    def test_step_matches_analytic_decay_rate(self):
        """First Fourier mode decays like 1/(1 + 2π²Δt) per implicit step."""
        m = structured_rectangle(33, 33)
        dt = 0.01
        op = ImplicitEulerOperator(m, dt=dt)
        u0 = np.sin(np.pi * m.points[:, 0]) * np.sin(np.pi * m.points[:, 1])
        bn = m.all_boundary_nodes()
        a, b = apply_dirichlet(op.matrix, op.rhs(u0), bn, 0.0)
        u1 = spla.spsolve(a.tocsc(), b)
        ratio = u1.max() / u0.max()
        expected = 1.0 / (1.0 + 2.0 * np.pi**2 * dt)
        assert ratio == pytest.approx(expected, rel=0.02)

    def test_wrong_length_rhs_raises(self):
        m = structured_rectangle(4, 4)
        op = ImplicitEulerOperator(m, dt=0.1)
        with pytest.raises(ValueError):
            op.rhs(np.zeros(3))
