import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.fem.assembly import assemble_load, assemble_stiffness
from repro.fem.boundary import apply_dirichlet, dirichlet_dofs_from_nodes
from repro.fem.neumann import (
    assemble_neumann_load,
    assemble_traction_load,
    boundary_edges_of_set,
)
from repro.mesh.grid2d import structured_rectangle
from repro.mesh.ring import quarter_ring


class TestBoundaryEdgesOfSet:
    def test_selects_only_requested_side(self):
        m = structured_rectangle(5, 5)
        edges = boundary_edges_of_set(m, m.boundary_set("left"))
        assert len(edges) == 4
        assert np.all(np.abs(m.points[edges.ravel(), 0]) < 1e-12)

    def test_empty_for_interior_nodes(self):
        m = structured_rectangle(5, 5)
        interior = np.setdiff1d(np.arange(m.num_points), m.all_boundary_nodes())
        assert len(boundary_edges_of_set(m, interior)) == 0


class TestNeumannLoad:
    def test_constant_flux_total(self):
        """∫_Γ g ds over the whole left side (length 1) with g = 3."""
        m = structured_rectangle(9, 9)
        edges = boundary_edges_of_set(m, m.boundary_set("left"))
        b = assemble_neumann_load(m, edges, lambda p: np.full(len(p), 3.0))
        assert b.sum() == pytest.approx(3.0)
        # only left-side nodes receive load
        mask = np.zeros(m.num_points, dtype=bool)
        mask[m.boundary_set("left")] = True
        assert np.abs(b[~mask]).max() == 0.0

    def test_flux_solution_manufactured(self):
        """−Δu = 0, u = x: flux ∂u/∂n = 1 on x=1, −1 on x=0, 0 on y-sides;
        prescribe u on the bottom only and fluxes elsewhere."""
        m = structured_rectangle(17, 17)
        k = assemble_stiffness(m)
        b = np.zeros(m.num_points)
        right = boundary_edges_of_set(m, m.boundary_set("right"))
        left = boundary_edges_of_set(m, m.boundary_set("left"))
        b += assemble_neumann_load(m, right, lambda p: np.ones(len(p)))
        b += assemble_neumann_load(m, left, lambda p: -np.ones(len(p)))
        bottom = m.boundary_set("bottom")
        exact = m.points[:, 0]
        a, rhs = apply_dirichlet(k, b, bottom, exact[bottom])
        u = spla.spsolve(a.tocsc(), rhs)
        assert np.abs(u - exact).max() < 1e-10  # P1 exact for linear u

    def test_wrong_return_shape(self):
        m = structured_rectangle(4, 4)
        edges = boundary_edges_of_set(m, m.boundary_set("top"))
        with pytest.raises(ValueError):
            assemble_neumann_load(m, edges, lambda p: np.ones((len(p), 2)))


class TestTractionLoad:
    def test_total_force_matches_traction_integral(self):
        m = quarter_ring(17, 9)
        outer_nodes = m.boundary_set("stress")
        r = np.hypot(m.points[:, 0], m.points[:, 1])
        outer_only = outer_nodes[r[outer_nodes] > 1.5]
        edges = boundary_edges_of_set(m, outer_only)
        t = np.array([0.0, -2.0])
        b = assemble_traction_load(m, edges, lambda p: np.tile(t, (len(p), 1)))
        # total y-force = t_y × (polygonal) arc length of the outer quarter arc
        p0 = m.points[edges[:, 0]]
        p1 = m.points[edges[:, 1]]
        arc = np.linalg.norm(p1 - p0, axis=1).sum()
        assert b[1::2].sum() == pytest.approx(-2.0 * arc)
        assert b[0::2].sum() == pytest.approx(0.0, abs=1e-12)

    def test_ring_loaded_by_traction_solves(self):
        """TC6 with the load applied through the outer arc (prescribed
        stress) instead of a volume force — the paper's literal setup."""
        from repro.fem.elasticity import assemble_elasticity

        m = quarter_ring(17, 9)
        k = assemble_elasticity(m, 1.0, 10.0)
        rnorm = np.hypot(m.points[:, 0], m.points[:, 1])
        outer = m.boundary_set("stress")[rnorm[m.boundary_set("stress")] > 1.5]
        edges = boundary_edges_of_set(m, outer)
        b = assemble_traction_load(
            m, edges, lambda p: np.tile([0.0, -0.5], (len(p), 1))
        )
        d1 = dirichlet_dofs_from_nodes(m.boundary_set("gamma1"), 2, component=0)
        d2 = dirichlet_dofs_from_nodes(m.boundary_set("gamma2"), 2, component=1)
        a, rhs = apply_dirichlet(k, b, np.concatenate([d1, d2]), 0.0)
        u = spla.spsolve(a.tocsc(), rhs)
        assert np.all(np.isfinite(u))
        assert np.abs(u).max() > 1e-3  # the arc load deforms the ring

    def test_wrong_shape(self):
        m = structured_rectangle(4, 4)
        edges = boundary_edges_of_set(m, m.boundary_set("top"))
        with pytest.raises(ValueError):
            assemble_traction_load(m, edges, lambda p: np.ones(len(p)))
