import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.fem.assembly import (
    assemble_convection,
    assemble_load,
    assemble_mass,
    assemble_stiffness,
)
from repro.fem.boundary import apply_dirichlet
from repro.mesh.grid2d import structured_rectangle
from repro.mesh.grid3d import structured_box


class TestStiffness:
    def test_symmetric(self):
        m = structured_rectangle(6, 6)
        k = assemble_stiffness(m)
        assert abs(k - k.T).max() < 1e-13

    def test_annihilates_constants(self):
        m = structured_rectangle(6, 6)
        k = assemble_stiffness(m)
        assert np.abs(k @ np.ones(m.num_points)).max() < 1e-12

    def test_exact_on_linear_functions(self):
        """K u_linear has zero interior residual (P1 exactness)."""
        m = structured_rectangle(7, 7)
        k = assemble_stiffness(m)
        u = 2.0 * m.points[:, 0] - 3.0 * m.points[:, 1]
        r = k @ u
        interior = np.setdiff1d(np.arange(m.num_points), m.all_boundary_nodes())
        assert np.abs(r[interior]).max() < 1e-12

    def test_five_point_stencil_on_uniform_grid(self):
        """On a right-triangulated uniform grid the interior row is the
        classical [-1, -1, 4, -1, -1] stencil (h-independent in 2D)."""
        m = structured_rectangle(5, 5)
        k = assemble_stiffness(m).toarray()
        center = 2 * 5 + 2
        assert k[center, center] == pytest.approx(4.0)
        for nb in (center - 1, center + 1, center - 5, center + 5):
            assert k[center, nb] == pytest.approx(-1.0)

    def test_kappa_scales(self):
        m = structured_rectangle(4, 4)
        assert np.allclose(
            assemble_stiffness(m, 3.0).toarray(), 3.0 * assemble_stiffness(m).toarray()
        )

    def test_3d_positive_semidefinite(self):
        m = structured_box(4, 4, 4)
        k = assemble_stiffness(m)
        rng = np.random.default_rng(0)
        for _ in range(5):
            x = rng.standard_normal(m.num_points)
            assert x @ (k @ x) >= -1e-10


class TestMass:
    def test_total_mass_is_domain_measure_2d(self):
        m = structured_rectangle(6, 6)
        mass = assemble_mass(m)
        assert np.ones(m.num_points) @ (mass @ np.ones(m.num_points)) == pytest.approx(1.0)

    def test_total_mass_is_domain_measure_3d(self):
        m = structured_box(4, 4, 4)
        mass = assemble_mass(m)
        assert np.ones(m.num_points) @ (mass @ np.ones(m.num_points)) == pytest.approx(1.0)

    def test_integrates_linear_exactly(self):
        m = structured_rectangle(5, 5)
        mass = assemble_mass(m)
        x = m.points[:, 0]
        # ∫ x dx dy over unit square = 1/2
        assert np.ones(m.num_points) @ (mass @ x) == pytest.approx(0.5)

    def test_spd(self):
        m = structured_rectangle(5, 5)
        mass = assemble_mass(m).toarray()
        eigs = np.linalg.eigvalsh(mass)
        assert eigs.min() > 0


class TestConvection:
    def test_velocity_shape_validated(self):
        m = structured_rectangle(4, 4)
        with pytest.raises(ValueError):
            assemble_convection(m, np.array([1.0, 0.0, 0.0]))

    def test_skew_dominance_on_constants(self):
        """C 1 = ∫ φ_i (v·∇1) = 0."""
        m = structured_rectangle(5, 5)
        c = assemble_convection(m, np.array([2.0, 1.0]))
        assert np.abs(c @ np.ones(m.num_points)).max() < 1e-13

    def test_exact_on_linear_field(self):
        """Row sums against u=x give ∫φ_i v_x = v_x * (lumped mass)."""
        m = structured_rectangle(6, 6)
        v = np.array([3.0, 0.0])
        c = assemble_convection(m, v)
        mass = assemble_mass(m)
        u = m.points[:, 0]
        lumped = np.asarray(mass.sum(axis=1)).ravel()
        assert np.allclose(c @ u, 3.0 * lumped, atol=1e-12)


class TestLoad:
    def test_constant_load_total(self):
        m = structured_rectangle(6, 6)
        b = assemble_load(m, lambda p: np.ones(len(p)))
        assert b.sum() == pytest.approx(1.0)

    def test_load_3d_total(self):
        m = structured_box(4, 4, 4)
        b = assemble_load(m, lambda p: np.ones(len(p)))
        assert b.sum() == pytest.approx(1.0)

    def test_wrong_return_shape_raises(self):
        m = structured_rectangle(4, 4)
        with pytest.raises(ValueError):
            assemble_load(m, lambda p: np.ones((len(p), 2)))


class TestManufacturedSolutions:
    @pytest.mark.parametrize("n,tol", [(17, 2e-4), (33, 6e-5)])
    def test_poisson_2d_converges_to_exact(self, n, tol):
        m = structured_rectangle(n, n)
        k = assemble_stiffness(m)
        exact = m.points[:, 0] * np.exp(m.points[:, 1])
        b = -assemble_load(m, lambda p: p[:, 0] * np.exp(p[:, 1]))
        bn = m.all_boundary_nodes()
        a, rhs = apply_dirichlet(k, b, bn, exact[bn])
        u = spla.spsolve(a.tocsc(), rhs)
        assert np.abs(u - exact).max() < tol

    def test_poisson_2d_second_order_convergence(self):
        errs = []
        for n in (9, 17, 33):
            m = structured_rectangle(n, n)
            k = assemble_stiffness(m)
            exact = m.points[:, 0] * np.exp(m.points[:, 1])
            b = -assemble_load(m, lambda p: p[:, 0] * np.exp(p[:, 1]))
            bn = m.all_boundary_nodes()
            a, rhs = apply_dirichlet(k, b, bn, exact[bn])
            errs.append(np.abs(spla.spsolve(a.tocsc(), rhs) - exact).max())
        rate1 = np.log2(errs[0] / errs[1])
        rate2 = np.log2(errs[1] / errs[2])
        assert rate1 > 1.6 and rate2 > 1.6  # O(h²)

    def test_poisson_3d_converges_to_exact(self):
        m = structured_box(9, 9, 9)
        k = assemble_stiffness(m)
        exact = m.points[:, 0] * np.exp(m.points[:, 1] * m.points[:, 2])
        f = lambda p: p[:, 0] * (p[:, 1] ** 2 + p[:, 2] ** 2) * np.exp(p[:, 1] * p[:, 2])
        b = -assemble_load(m, f)
        bn = m.all_boundary_nodes()
        a, rhs = apply_dirichlet(k, b, bn, exact[bn])
        u = spla.spsolve(a.tocsc(), rhs)
        assert np.abs(u - exact).max() < 2e-3
