import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem.boundary import apply_dirichlet, dirichlet_dofs_from_nodes


@pytest.fixture()
def small_system():
    a = (sp.random(8, 8, 0.5, random_state=0) + sp.eye(8) * 5).tocsr()
    a = (a + a.T).tocsr()
    b = np.arange(8, dtype=float)
    return a, b


class TestDirichletDofs:
    def test_scalar_identity(self):
        nodes = np.array([3, 5])
        assert np.array_equal(dirichlet_dofs_from_nodes(nodes), nodes)

    def test_vector_all_components(self):
        dofs = dirichlet_dofs_from_nodes(np.array([2]), dofs_per_node=2)
        assert sorted(dofs.tolist()) == [4, 5]

    def test_vector_single_component(self):
        dofs = dirichlet_dofs_from_nodes(np.array([2, 3]), 2, component=1)
        assert dofs.tolist() == [5, 7]

    def test_component_out_of_range(self):
        with pytest.raises(ValueError):
            dirichlet_dofs_from_nodes(np.array([0]), 2, component=2)


class TestApplyDirichlet:
    def test_prescribed_rows_become_identity(self, small_system):
        a, b = small_system
        a2, b2 = apply_dirichlet(a, b, np.array([1, 4]), np.array([7.0, -2.0]))
        dense = a2.toarray()
        for d, v in [(1, 7.0), (4, -2.0)]:
            row = dense[d]
            assert row[d] == 1.0
            assert np.abs(np.delete(row, d)).max() == 0.0
            assert b2[d] == v

    def test_symmetry_preserved(self, small_system):
        a, b = small_system
        a2, _ = apply_dirichlet(a, b, np.array([0, 3]), 1.0)
        assert abs(a2 - a2.T).max() < 1e-13

    def test_solution_attains_bc_and_interior_equations(self, small_system):
        a, b = small_system
        dofs = np.array([0, 7])
        vals = np.array([2.0, -1.0])
        a2, b2 = apply_dirichlet(a, b, dofs, vals)
        import scipy.sparse.linalg as spla

        x = spla.spsolve(a2.tocsc(), b2)
        assert x[0] == pytest.approx(2.0)
        assert x[7] == pytest.approx(-1.0)
        # interior equations of the original system hold
        interior = np.arange(1, 7)
        assert np.allclose((a @ x)[interior], b[interior])

    def test_duplicate_dofs_with_same_value_ok(self, small_system):
        a, b = small_system
        a2, b2 = apply_dirichlet(a, b, np.array([2, 2]), np.array([5.0, 5.0]))
        assert b2[2] == 5.0

    def test_conflicting_duplicates_raise(self, small_system):
        a, b = small_system
        with pytest.raises(ValueError, match="conflicting"):
            apply_dirichlet(a, b, np.array([2, 2]), np.array([5.0, 6.0]))

    def test_scalar_value_broadcasts(self, small_system):
        a, b = small_system
        _, b2 = apply_dirichlet(a, b, np.array([1, 2, 3]), 0.0)
        assert np.all(b2[[1, 2, 3]] == 0.0)

    def test_out_of_range_dof_raises(self, small_system):
        a, b = small_system
        with pytest.raises(ValueError, match="range"):
            apply_dirichlet(a, b, np.array([99]), 0.0)

    def test_does_not_mutate_inputs(self, small_system):
        a, b = small_system
        a0, b0 = a.copy(), b.copy()
        apply_dirichlet(a, b, np.array([1]), 3.0)
        assert (a != a0).nnz == 0
        assert np.array_equal(b, b0)
