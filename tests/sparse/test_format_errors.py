"""Typed loader errors: truncated / inconsistent sparse files are diagnosed."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import SparseFormatError
from repro.sparse.io import load_csr_npz, save_csr_npz
from repro.sparse.matrixmarket import load_matrix_market, save_matrix_market


@pytest.fixture()
def small_csr():
    return sp.csr_matrix(
        np.array([[2.0, -1.0, 0.0], [-1.0, 2.0, -1.0], [0.0, -1.0, 2.0]])
    )


class TestMatrixMarketErrors:
    def _write(self, tmp_path, text):
        path = tmp_path / "m.mtx"
        path.write_text(text)
        return path

    def test_round_trip_still_works(self, tmp_path, small_csr):
        path = tmp_path / "m.mtx"
        save_matrix_market(path, small_csr)
        out = load_matrix_market(path)
        assert (out != small_csr).nnz == 0

    def test_truncated_file_names_expected_vs_got(self, tmp_path, small_csr):
        path = tmp_path / "m.mtx"
        save_matrix_market(path, small_csr)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-2]) + "\n")  # drop two entries
        with pytest.raises(SparseFormatError) as exc:
            load_matrix_market(path)
        err = exc.value
        assert "truncated" in str(err)
        assert err.path == str(path)
        assert "entries" in str(err.expected) and "entries" in str(err.got)

    def test_bad_header(self, tmp_path):
        path = self._write(tmp_path, "%%NotMatrixMarket foo\n1 1 0\n")
        with pytest.raises(SparseFormatError) as exc:
            load_matrix_market(path)
        assert exc.value.line == 1

    def test_bad_size_line(self, tmp_path):
        path = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n3 three 2\n",
        )
        with pytest.raises(SparseFormatError, match="size line") as exc:
            load_matrix_market(path)
        assert exc.value.line == 2

    def test_bad_entry_names_its_line(self, tmp_path):
        path = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment\n"
            "2 2 2\n"
            "1 1 5.0\n"
            "2 oops 1.0\n",
        )
        with pytest.raises(SparseFormatError, match="entry") as exc:
            load_matrix_market(path)
        assert exc.value.line == 5
        assert "2 oops 1.0" in str(exc.value.got)

    def test_out_of_range_index(self, tmp_path):
        path = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "3 1 5.0\n",
        )
        with pytest.raises(SparseFormatError, match="out of range"):
            load_matrix_market(path)

    def test_empty_file(self, tmp_path):
        path = self._write(tmp_path, "")
        with pytest.raises(SparseFormatError, match="empty"):
            load_matrix_market(path)

    def test_is_a_value_error(self, tmp_path):
        # backward compatibility: callers catching ValueError still work
        path = self._write(tmp_path, "")
        with pytest.raises(ValueError):
            load_matrix_market(path)


class TestCsrNpzErrors:
    def test_round_trip_still_works(self, tmp_path, small_csr):
        path = tmp_path / "m.npz"
        save_csr_npz(path, small_csr)
        out = load_csr_npz(path)
        assert (out != small_csr).nnz == 0

    def test_missing_keys(self, tmp_path):
        path = tmp_path / "m.npz"
        np.savez(path, data=np.zeros(1))
        with pytest.raises(SparseFormatError, match="missing"):
            load_csr_npz(path)

    def test_truncated_data_detected(self, tmp_path, small_csr):
        path = tmp_path / "m.npz"
        np.savez(
            path,
            indptr=small_csr.indptr,
            indices=small_csr.indices,
            data=small_csr.data[:-2],  # lost the tail
            shape=np.asarray(small_csr.shape, dtype=np.int64),
        )
        with pytest.raises(SparseFormatError) as exc:
            load_csr_npz(path)
        assert exc.value.expected != exc.value.got

    def test_indptr_shape_mismatch(self, tmp_path, small_csr):
        path = tmp_path / "m.npz"
        np.savez(
            path,
            indptr=small_csr.indptr[:-1],
            indices=small_csr.indices,
            data=small_csr.data,
            shape=np.asarray(small_csr.shape, dtype=np.int64),
        )
        with pytest.raises(SparseFormatError, match="indptr length"):
            load_csr_npz(path)

    def test_column_index_out_of_range(self, tmp_path, small_csr):
        path = tmp_path / "m.npz"
        indices = small_csr.indices.copy()
        indices[0] = 99
        np.savez(
            path,
            indptr=small_csr.indptr,
            indices=indices,
            data=small_csr.data,
            shape=np.asarray(small_csr.shape, dtype=np.int64),
        )
        with pytest.raises(SparseFormatError, match="column index"):
            load_csr_npz(path)
