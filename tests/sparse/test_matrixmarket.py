import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.matrixmarket import load_matrix_market, save_matrix_market


class TestMatrixMarket:
    def test_roundtrip_general(self, tmp_path, rng):
        a = sp.random(12, 9, 0.3, random_state=0, format="csr")
        path = tmp_path / "a.mtx"
        save_matrix_market(path, a, comment="test matrix")
        b = load_matrix_market(path)
        assert b.shape == a.shape
        assert abs(a - b).max() < 1e-15

    def test_roundtrip_preserves_values_exactly(self, tmp_path):
        a = sp.csr_matrix(np.array([[1.0 / 3.0, 0.0], [0.0, np.pi]]))
        path = tmp_path / "v.mtx"
        save_matrix_market(path, a)
        b = load_matrix_market(path)
        assert (a != b).nnz == 0  # %.17g is lossless for float64

    def test_symmetric_expansion(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "1 1 2.0\n"
            "2 1 -1.0\n"
            "3 3 5.0\n"
        )
        a = load_matrix_market(path)
        assert a[0, 1] == -1.0 and a[1, 0] == -1.0
        assert a[0, 0] == 2.0 and a[2, 2] == 5.0
        assert a.nnz == 4

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "\n"
            "2 2 1\n"
            "1 2 3.5\n"
        )
        a = load_matrix_market(path)
        assert a[0, 1] == 3.5

    def test_pattern_entries_default_to_one(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate integer general\n2 2 1\n2 2 7\n"
        )
        assert load_matrix_market(path)[1, 1] == 7.0

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not a header\n1 1 0\n")
        with pytest.raises(ValueError, match="header"):
            load_matrix_market(path)

    def test_unsupported_format_raises(self, tmp_path):
        path = tmp_path / "arr.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
        with pytest.raises(ValueError, match="coordinate"):
            load_matrix_market(path)

    def test_truncated_body_raises(self, tmp_path):
        path = tmp_path / "t.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n")
        with pytest.raises(ValueError, match="entries"):
            load_matrix_market(path)

    def test_exported_fe_system_reimports(self, tmp_path, poisson_system):
        a, _, _ = poisson_system
        path = tmp_path / "fe.mtx"
        save_matrix_market(path, a)
        b = load_matrix_market(path)
        assert abs(a - b).max() < 1e-15
