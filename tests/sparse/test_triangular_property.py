"""Property-based tests for the level-scheduled triangular solves."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.triangular import TriangularFactor, build_levels


@st.composite
def lower_triangles(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    density = draw(st.floats(min_value=0.0, max_value=0.5))
    rng = np.random.default_rng(seed)
    l = sp.tril(sp.random(n, n, density, random_state=int(rng.integers(2**31))), -1)
    return l.tocsr(), seed


@given(lower_triangles())
@settings(max_examples=60, deadline=None)
def test_unit_lower_solve_inverts_forward_product(data):
    l, seed = data
    n = l.shape[0]
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    f = TriangularFactor(l, None, lower=True)
    b = (sp.eye(n) + l) @ x
    assert np.allclose(f.solve(b), x, atol=1e-8 * max(1.0, np.abs(x).max()))


@given(lower_triangles())
@settings(max_examples=60, deadline=None)
def test_levels_partition_all_rows_exactly_once(data):
    l, _ = data
    sched = build_levels(l, lower=True)
    assert sorted(sched.order.tolist()) == list(range(l.shape[0]))
    assert sched.level_ptr[0] == 0
    assert sched.level_ptr[-1] == l.shape[0]
    assert np.all(np.diff(sched.level_ptr) >= 0)


@given(lower_triangles(), st.integers(min_value=1, max_value=10))
@settings(max_examples=30, deadline=None)
def test_upper_solve_with_random_diagonal(data, diag_scale):
    l, seed = data
    n = l.shape[0]
    rng = np.random.default_rng(seed + 1)
    u_strict = l.T.tocsr()
    diag = rng.uniform(1.0, 1.0 + diag_scale, n)
    f = TriangularFactor(u_strict, diag, lower=False)
    x = rng.standard_normal(n)
    b = u_strict @ x + diag * x
    assert np.allclose(f.solve(b), x, atol=1e-8 * max(1.0, np.abs(x).max()))
