import numpy as np
import scipy.sparse as sp

from repro.sparse.io import load_csr_npz, save_csr_npz


class TestCsrIO:
    def test_roundtrip(self, tmp_path, rng):
        a = sp.random(15, 9, 0.3, random_state=0, format="csr")
        path = tmp_path / "m.npz"
        save_csr_npz(path, a)
        b = load_csr_npz(path)
        assert b.shape == a.shape
        assert (a != b).nnz == 0

    def test_roundtrip_empty(self, tmp_path):
        a = sp.csr_matrix((4, 4))
        path = tmp_path / "e.npz"
        save_csr_npz(path, a)
        b = load_csr_npz(path)
        assert b.nnz == 0
        assert b.shape == (4, 4)
