import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.blocksplit import split_2x2


@pytest.fixture()
def matrix():
    return (sp.random(10, 10, 0.4, random_state=0) + sp.eye(10) * 4).tocsr()


class TestSplit2x2:
    def test_blocks_have_paper_shapes(self, matrix):
        s = split_2x2(matrix, 6)
        assert s.B.shape == (6, 6)
        assert s.F.shape == (6, 4)
        assert s.E.shape == (4, 6)
        assert s.C.shape == (4, 4)
        assert s.n_internal == 6
        assert s.n_interface == 4

    def test_reassembly_roundtrip(self, matrix):
        s = split_2x2(matrix, 6)
        assert np.allclose(s.assemble().toarray(), matrix.toarray())

    def test_degenerate_splits(self, matrix):
        all_internal = split_2x2(matrix, 10)
        assert all_internal.C.shape == (0, 0)
        all_interface = split_2x2(matrix, 0)
        assert all_interface.B.shape == (0, 0)
        assert np.allclose(all_interface.C.toarray(), matrix.toarray())

    def test_out_of_range_raises(self, matrix):
        with pytest.raises(ValueError):
            split_2x2(matrix, 11)

    def test_vector_split_join_roundtrip(self, matrix, rng):
        s = split_2x2(matrix, 6)
        x = rng.random(10)
        u, y = s.split_vector(x)
        assert len(u) == 6 and len(y) == 4
        assert np.array_equal(s.join_vector(u, y), x)

    def test_block_action_matches_full(self, matrix, rng):
        """[B F; E C] @ [u; y] must equal A @ x restructured."""
        s = split_2x2(matrix, 6)
        x = rng.random(10)
        u, y = s.split_vector(x)
        top = s.B @ u + s.F @ y
        bot = s.E @ u + s.C @ y
        assert np.allclose(np.concatenate([top, bot]), matrix @ x)
