import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.csr import (
    csr_from_coo,
    csr_row,
    diag_indices_csr,
    drop_small,
    is_sorted_csr,
    nnz_per_row,
    spmv,
)


class TestCsrFromCoo:
    def test_sums_duplicates_like_fe_assembly(self):
        a = csr_from_coo([0, 0, 1], [0, 0, 1], [1.0, 2.0, 5.0], (2, 2))
        assert a[0, 0] == 3.0
        assert a[1, 1] == 5.0

    def test_preserves_shape(self):
        a = csr_from_coo([0], [0], [1.0], (3, 5))
        assert a.shape == (3, 5)

    def test_empty_matrix(self):
        a = csr_from_coo([], [], [], (4, 4))
        assert a.nnz == 0


class TestRowAccess:
    def test_nnz_per_row(self):
        a = csr_from_coo([0, 0, 2], [0, 1, 2], [1.0, 1.0, 1.0], (3, 3))
        assert nnz_per_row(a).tolist() == [2, 0, 1]

    def test_csr_row_returns_cols_vals(self):
        a = csr_from_coo([1, 1], [0, 2], [3.0, 4.0], (3, 3))
        cols, vals = csr_row(a, 1)
        assert cols.tolist() == [0, 2]
        assert vals.tolist() == [3.0, 4.0]

    def test_is_sorted_after_canonicalization(self):
        a = csr_from_coo([0, 0], [2, 1], [1.0, 1.0], (3, 3))
        assert is_sorted_csr(a)


class TestDiagIndices:
    def test_positions_point_at_diagonal(self):
        a = (sp.eye(5) * 2 + sp.diags([1.0] * 4, 1)).tocsr()
        pos = diag_indices_csr(a)
        assert np.all(a.data[pos] == 2.0)

    def test_missing_diagonal_raises(self):
        a = sp.csr_matrix((np.array([1.0]), np.array([1]), np.array([0, 1, 1])), shape=(2, 2))
        with pytest.raises(ValueError, match="diagonal"):
            diag_indices_csr(a)


class TestSpmv:
    def test_matches_dense(self, rng):
        a = sp.random(20, 20, 0.3, random_state=0, format="csr")
        x = rng.random(20)
        assert np.allclose(spmv(a, x), a.toarray() @ x)


class TestDropSmall:
    def test_drops_relatively_small_entries(self):
        a = csr_from_coo([0, 0], [0, 1], [1.0, 1e-8], (2, 2))
        d = drop_small(a, 1e-4)
        assert d[0, 1] == 0.0
        assert d[0, 0] == 1.0

    def test_keeps_diagonal_even_when_small(self):
        a = csr_from_coo([0, 0], [0, 1], [1e-12, 1.0], (2, 2))
        d = drop_small(a, 1e-4)
        assert d[0, 0] == 1e-12

    def test_zero_tol_is_identity(self):
        a = csr_from_coo([0, 1], [1, 0], [1.0, 2.0], (2, 2))
        d = drop_small(a, 0.0)
        assert (d != a).nnz == 0

    def test_row_relative_not_absolute(self):
        # small absolute value in a small-norm row must survive
        a = csr_from_coo([0, 0, 1], [0, 1, 1], [1e-6, 1e-6, 1.0], (2, 2))
        d = drop_small(a, 1e-3)
        assert d[0, 1] == 1e-6
