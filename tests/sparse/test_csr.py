import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.csr import (
    csr_from_coo,
    csr_row,
    diag_indices_csr,
    drop_small,
    is_sorted_csr,
    nnz_per_row,
    spmv,
)


class TestCsrFromCoo:
    def test_sums_duplicates_like_fe_assembly(self):
        a = csr_from_coo([0, 0, 1], [0, 0, 1], [1.0, 2.0, 5.0], (2, 2))
        assert a[0, 0] == 3.0
        assert a[1, 1] == 5.0

    def test_preserves_shape(self):
        a = csr_from_coo([0], [0], [1.0], (3, 5))
        assert a.shape == (3, 5)

    def test_empty_matrix(self):
        a = csr_from_coo([], [], [], (4, 4))
        assert a.nnz == 0


class TestRowAccess:
    def test_nnz_per_row(self):
        a = csr_from_coo([0, 0, 2], [0, 1, 2], [1.0, 1.0, 1.0], (3, 3))
        assert nnz_per_row(a).tolist() == [2, 0, 1]

    def test_csr_row_returns_cols_vals(self):
        a = csr_from_coo([1, 1], [0, 2], [3.0, 4.0], (3, 3))
        cols, vals = csr_row(a, 1)
        assert cols.tolist() == [0, 2]
        assert vals.tolist() == [3.0, 4.0]

    def test_is_sorted_after_canonicalization(self):
        a = csr_from_coo([0, 0], [2, 1], [1.0, 1.0], (3, 3))
        assert is_sorted_csr(a)


class TestDiagIndices:
    def test_positions_point_at_diagonal(self):
        a = (sp.eye(5) * 2 + sp.diags([1.0] * 4, 1)).tocsr()
        pos = diag_indices_csr(a)
        assert np.all(a.data[pos] == 2.0)

    def test_missing_diagonal_raises(self):
        a = sp.csr_matrix((np.array([1.0]), np.array([1]), np.array([0, 1, 1])), shape=(2, 2))
        with pytest.raises(ValueError, match="diagonal"):
            diag_indices_csr(a)


class TestSpmv:
    def test_matches_dense(self, rng):
        a = sp.random(20, 20, 0.3, random_state=0, format="csr")
        x = rng.random(20)
        assert np.allclose(spmv(a, x), a.toarray() @ x)


class TestDropSmall:
    def test_drops_relatively_small_entries(self):
        a = csr_from_coo([0, 0], [0, 1], [1.0, 1e-8], (2, 2))
        d = drop_small(a, 1e-4)
        assert d[0, 1] == 0.0
        assert d[0, 0] == 1.0

    def test_keeps_diagonal_even_when_small(self):
        a = csr_from_coo([0, 0], [0, 1], [1e-12, 1.0], (2, 2))
        d = drop_small(a, 1e-4)
        assert d[0, 0] == 1e-12

    def test_zero_tol_is_identity(self):
        a = csr_from_coo([0, 1], [1, 0], [1.0, 2.0], (2, 2))
        d = drop_small(a, 0.0)
        assert (d != a).nnz == 0

    def test_row_relative_not_absolute(self):
        # small absolute value in a small-norm row must survive
        a = csr_from_coo([0, 0, 1], [0, 1, 1], [1e-6, 1e-6, 1.0], (2, 2))
        d = drop_small(a, 1e-3)
        assert d[0, 1] == 1e-6


def _is_sorted_naive(a: sp.csr_matrix) -> bool:
    """The pre-vectorization per-row loop, kept as the oracle."""
    for i in range(a.shape[0]):
        cols = a.indices[a.indptr[i]:a.indptr[i + 1]]
        if any(cols[j] >= cols[j + 1] for j in range(len(cols) - 1)):
            return False
    return True


def _diag_indices_naive(a: sp.csr_matrix) -> np.ndarray:
    """The pre-vectorization per-row scan, kept as the oracle."""
    pos = np.empty(a.shape[0], dtype=np.int64)
    for i in range(a.shape[0]):
        for k in range(a.indptr[i], a.indptr[i + 1]):
            if a.indices[k] == i:
                pos[i] = k
                break
        else:
            raise ValueError(f"row {i} has no stored diagonal entry")
    return pos


def _raw_csr(indptr, indices, data, shape) -> sp.csr_matrix:
    """Build a CSR without scipy canonicalization (keeps unsorted indices)."""
    m = sp.csr_matrix(shape)
    m.indptr = np.asarray(indptr, dtype=np.int32)
    m.indices = np.asarray(indices, dtype=np.int32)
    m.data = np.asarray(data, dtype=np.float64)
    return m


class TestIsSortedVsNaive:
    """The vectorized single-pass check must agree with the row loop."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_matrices(self, seed):
        rng = np.random.default_rng(seed)
        a = sp.random(25, 25, 0.15, random_state=rng.integers(2**31),
                      format="csr")
        assert is_sorted_csr(a) == _is_sorted_naive(a)

    def test_unsorted_row_detected(self):
        a = _raw_csr([0, 2, 3], [1, 0, 1], [1.0, 2.0, 3.0], (2, 2))
        assert not is_sorted_csr(a)
        assert not _is_sorted_naive(a)

    def test_duplicate_column_not_strictly_sorted(self):
        a = _raw_csr([0, 2, 2], [1, 1, ], [1.0, 2.0], (2, 2))
        assert not is_sorted_csr(a)
        assert not _is_sorted_naive(a)

    def test_descending_across_row_boundary_is_legal(self):
        # last column of row 0 exceeds first column of row 1: still sorted
        a = _raw_csr([0, 2, 4], [0, 3, 0, 1], [1.0] * 4, (2, 4))
        assert is_sorted_csr(a)
        assert _is_sorted_naive(a)

    @pytest.mark.parametrize("indptr", [
        [0, 0, 1, 2],  # leading empty row
        [0, 1, 2, 2],  # trailing empty row
        [0, 1, 1, 2],  # interior empty row
        [0, 0, 0, 2],  # consecutive empty rows
    ])
    def test_empty_rows(self, indptr):
        nnz = indptr[-1]
        a = _raw_csr(indptr, list(range(nnz)), [1.0] * nnz, (3, 3))
        assert is_sorted_csr(a) == _is_sorted_naive(a) is True

    def test_empty_and_single_entry_matrices(self):
        assert is_sorted_csr(sp.csr_matrix((3, 3)))
        assert is_sorted_csr(sp.csr_matrix(np.array([[5.0]])))


class TestDiagIndicesVsNaive:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_with_full_diagonal(self, seed):
        rng = np.random.default_rng(100 + seed)
        a = sp.random(20, 20, 0.2, random_state=rng.integers(2**31),
                      format="csr")
        a = (a + sp.identity(20)).tocsr()
        assert np.array_equal(diag_indices_csr(a), _diag_indices_naive(a))

    def test_dense_matrix(self):
        a = sp.csr_matrix(np.arange(1.0, 17.0).reshape(4, 4))
        assert np.array_equal(diag_indices_csr(a), _diag_indices_naive(a))

    @pytest.mark.parametrize("missing_row", [0, 2, 4])
    def test_missing_diagonal_same_error(self, missing_row):
        a = sp.lil_matrix((5, 5))
        for i in range(5):
            a[i, i] = float(i + 1)
        a[0, 1] = 1.0
        a[missing_row, missing_row] = 0.0  # lil drops explicit zeros
        a = a.tocsr()
        with pytest.raises(ValueError) as v_exc:
            diag_indices_csr(a)
        with pytest.raises(ValueError) as n_exc:
            _diag_indices_naive(a)
        assert str(v_exc.value) == str(n_exc.value)
        assert f"row {missing_row} has no stored diagonal" in str(v_exc.value)

    def test_reports_first_missing_row(self):
        a = sp.csr_matrix(
            (np.ones(2), np.array([0, 1]), np.array([0, 1, 2, 2])), (3, 3)
        )
        with pytest.raises(ValueError, match="row 2 has no stored diagonal"):
            diag_indices_csr(a)
