import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.triangular import (
    LevelSchedule,
    TriangularFactor,
    build_levels,
    solve_lower_unit,
    solve_upper,
)


def lower_strict(n, density, seed):
    return sp.tril(sp.random(n, n, density, random_state=seed), -1, format="csr")


class TestBuildLevels:
    def test_diagonal_matrix_is_one_level(self):
        sched = build_levels(sp.csr_matrix((5, 5)), lower=True)
        assert sched.num_levels == 1
        assert sorted(sched.order.tolist()) == list(range(5))

    def test_bidiagonal_chain_is_fully_sequential(self):
        # L[i, i-1] = 1: every row depends on the previous one
        n = 6
        l = sp.diags([np.ones(n - 1)], [-1], format="csr")
        sched = build_levels(l, lower=True)
        assert sched.num_levels == n

    def test_levels_respect_dependencies(self):
        l = lower_strict(40, 0.1, 3)
        sched = build_levels(l, lower=True)
        level_of = np.empty(40, dtype=int)
        for k in range(sched.num_levels):
            rows = sched.order[sched.level_ptr[k] : sched.level_ptr[k + 1]]
            level_of[rows] = k
        for i in range(40):
            for j in l.indices[l.indptr[i] : l.indptr[i + 1]]:
                assert level_of[j] < level_of[i]

    def test_upper_levels_respect_dependencies(self):
        u = sp.triu(sp.random(30, 30, 0.1, random_state=1), 1, format="csr")
        sched = build_levels(u, lower=False)
        level_of = np.empty(30, dtype=int)
        for k in range(sched.num_levels):
            rows = sched.order[sched.level_ptr[k] : sched.level_ptr[k + 1]]
            level_of[rows] = k
        for i in range(30):
            for j in u.indices[u.indptr[i] : u.indptr[i + 1]]:
                assert level_of[j] < level_of[i]


class TestTriangularSolve:
    @pytest.mark.parametrize("n,density", [(1, 0.0), (10, 0.2), (100, 0.05), (300, 0.01)])
    def test_lower_unit_solve_matches_construction(self, n, density, rng):
        l = lower_strict(n, density, 42)
        x = rng.random(n)
        b = (sp.eye(n) + l) @ x
        assert np.allclose(solve_lower_unit(l, b), x, atol=1e-10)

    @pytest.mark.parametrize("n,density", [(1, 0.0), (10, 0.2), (100, 0.05)])
    def test_upper_solve_matches_construction(self, n, density, rng):
        u = (sp.triu(sp.random(n, n, density, random_state=7), 1) + sp.eye(n) * 3).tocsr()
        x = rng.random(n)
        assert np.allclose(solve_upper(u, u @ x), x, atol=1e-10)

    def test_matches_scipy_spsolve_triangular(self, rng):
        n = 60
        l = lower_strict(n, 0.1, 5)
        full = (sp.eye(n) + l).tocsr()
        b = rng.random(n)
        import scipy.sparse.linalg as spla

        expected = spla.spsolve_triangular(full.tocsc().tocsr(), b, lower=True)
        assert np.allclose(solve_lower_unit(l, b), expected, atol=1e-10)

    def test_zero_diag_rejected(self):
        u = sp.eye(3, format="csr") * 0.0
        strict = sp.csr_matrix((3, 3))
        with pytest.raises(ZeroDivisionError):
            TriangularFactor(strict, np.zeros(3), lower=False)

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError):
            TriangularFactor(sp.csr_matrix((2, 3)), None, lower=True)

    def test_flops_counts_nnz(self):
        l = lower_strict(50, 0.1, 1)
        f = TriangularFactor(l, None, lower=True)
        assert f.flops() == 2 * l.nnz
        u = TriangularFactor(sp.csr_matrix((50, 50)), np.ones(50), lower=False)
        assert u.flops() == 50

    def test_solve_does_not_mutate_rhs(self, rng):
        l = lower_strict(20, 0.2, 9)
        b = rng.random(20)
        b0 = b.copy()
        solve_lower_unit(l, b)
        assert np.array_equal(b, b0)

    def test_wide_level_vectorized_path(self, rng):
        # block-diagonal of independent 2-chains: exactly 2 levels, wide each
        n = 200
        rows = np.arange(1, n, 2)
        cols = rows - 1
        l = sp.coo_matrix((np.full(len(rows), 0.5), (rows, cols)), shape=(n, n)).tocsr()
        f = TriangularFactor(l, None, lower=True)
        assert f.num_levels == 2
        x = rng.random(n)
        assert np.allclose(f.solve((sp.eye(n) + l) @ x), x)
