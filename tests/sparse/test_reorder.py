import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.reorder import (
    apply_symmetric_permutation,
    inverse_permutation,
    permute_vector,
)


class TestInversePermutation:
    def test_roundtrip(self, rng):
        p = rng.permutation(20)
        inv = inverse_permutation(p)
        assert np.array_equal(p[inv], np.arange(20))
        assert np.array_equal(inv[p], np.arange(20))

    def test_identity(self):
        p = np.arange(5)
        assert np.array_equal(inverse_permutation(p), p)


class TestSymmetricPermutation:
    def test_matches_dense_permutation(self, rng):
        a = sp.random(8, 8, 0.5, random_state=3, format="csr")
        p = rng.permutation(8)
        ap = apply_symmetric_permutation(a, p)
        dense = a.toarray()[np.ix_(p, p)]
        assert np.allclose(ap.toarray(), dense)

    def test_preserves_matvec_under_conjugation(self, rng):
        """P A P^T (P x) == P (A x): permutation is a similarity transform."""
        a = sp.random(12, 12, 0.4, random_state=1, format="csr")
        p = rng.permutation(12)
        ap = apply_symmetric_permutation(a, p)
        x = rng.random(12)
        assert np.allclose(ap @ permute_vector(x, p), permute_vector(a @ x, p))

    def test_wrong_length_raises(self):
        a = sp.eye(4, format="csr")
        with pytest.raises(ValueError):
            apply_symmetric_permutation(a, np.arange(3))


class TestPermuteVector:
    def test_gathers_in_new_order(self):
        x = np.array([10.0, 20.0, 30.0])
        assert permute_vector(x, [2, 0, 1]).tolist() == [30.0, 10.0, 20.0]
