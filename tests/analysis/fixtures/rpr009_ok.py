"""RPR009 negative fixture: every block is bounded (or is not a block)."""

import queue
import threading


def worker_loop(jobs: queue.Queue, drained: threading.Event, t: threading.Thread):
    record = jobs.get(timeout=0.05)
    drained.wait(timeout=0.25)
    t.join(5.0)
    labels = {"tenant": "a"}
    tenant = labels.get("tenant")
    return record, tenant, ",".join(sorted(labels))
