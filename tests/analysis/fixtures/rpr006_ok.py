"""RPR006 negative fixture (linted as krylov/cg.py).

Monitor delegation counts as instrumentation, and a pure delegating
wrapper inherits its callee's spans.
"""


def cg(apply_a, b, mon, rtol=1e-6, maxiter=100):
    x = 0.0 * b
    r = b - apply_a(x)
    mon.start(abs(r))
    for _ in range(maxiter):
        x = x + r
        r = b - apply_a(x)
        if mon.check(abs(r)):
            break
    return x


def pcg(apply_a, b, mon):
    """Delegating wrapper: body is a single return-call."""
    return cg(apply_a, b, mon)
