"""RPR008 negative fixture: simulated waits, backend-managed processes."""

import numpy as np


def run_rank(comm, backend, rank):
    backend.ensure_started()
    waits = np.zeros(comm.size)
    waits[rank] = 0.5
    comm.ledger.add_delay(waits)
    return backend.rank_pid(rank)
