"""RPR009 positive fixture: unbounded blocking calls in the service layer."""

import queue
import threading


def worker_loop(jobs: queue.Queue, drained: threading.Event, t: threading.Thread):
    record = jobs.get()
    drained.wait()
    t.join()
    return record
