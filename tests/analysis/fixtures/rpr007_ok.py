"""RPR007 negative fixture: mutations followed by an invariant re-check."""


def zero_small(a, tol):
    a.data[abs(a.data) < tol] = 0.0
    a.eliminate_zeros()
    return a


def reorder(a, ensure_csr):
    a.indices[:] = a.indices[::-1]
    return ensure_csr(a)
