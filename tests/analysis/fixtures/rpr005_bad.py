"""RPR005 positive fixture (linted under a kernels/ module path)."""

import numpy as np


def row_norms(data, rows, n):
    norms = np.sqrt(np.bincount(rows, weights=data * data, minlength=n))
    total = np.sum(data)
    partial = np.add.reduceat(data, rows)
    return norms, total, partial
