"""RPR002 positive fixture (linted under a comm/ module path)."""


def exchange(pending, counts):
    for rank in {3, 1, 2}:
        send(rank)
    for key, value in counts.items():
        retire(key, value)
    for rank in set(pending):
        send(rank)


def send(rank):
    return rank


def retire(key, value):
    return key, value
