"""RPR008 positive fixture: real waits and raw process primitives."""

import multiprocessing
import time
from multiprocessing import Pipe


def run_rank(worker):
    proc = multiprocessing.Process(target=worker)
    proc.start()
    time.sleep(0.5)
    return proc
