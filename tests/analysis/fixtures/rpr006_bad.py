"""RPR006 positive fixture (linted as krylov/cg.py): no instrumentation."""


def cg(apply_a, b, rtol=1e-6, maxiter=100):
    x = 0.0 * b
    r = b - apply_a(x)
    for _ in range(maxiter):
        x = x + r
        r = b - apply_a(x)
    return x
