"""RPR007 positive fixture: CSR mutation without an invariant re-check."""


def zero_small(a, tol):
    a.data[abs(a.data) < tol] = 0.0
    return a


def shift_columns(a, offset):
    a.indices[:] = a.indices + offset
    return a
