"""RPR005 negative fixture: reductions under errstate / kernel_guard."""

import numpy as np

from repro.analysis.sanitize.fp import kernel_guard


def row_norms(data, rows, n):
    with kernel_guard("kernels.fixture.row_norms"):
        norms = np.sqrt(np.bincount(rows, weights=data * data, minlength=n))
    with np.errstate(invalid="raise", divide="raise", over="raise"):
        total = np.sum(data)
    return norms, total
