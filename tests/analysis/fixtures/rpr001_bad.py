"""RPR001 positive fixture: float ==/!= against float literals."""


def reduction(r, r0):
    if r0 == 0.0:
        return 0.0
    if r != 1.5:
        return r / r0
    return 1.0
