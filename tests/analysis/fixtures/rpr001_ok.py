"""RPR001 negative fixture: tolerance tests, int comparisons, noqa."""

import math


def reduction(r, r0, n):
    if r0 <= 0.0:
        return 0.0
    if math.isclose(r, 1.5):
        return 1.0
    if n == 0:  # integer comparison is fine
        return 0.0
    if r == 0.0:  # repro: noqa(RPR001) exact-zero guard, documented
        return 0.0
    return r / r0
