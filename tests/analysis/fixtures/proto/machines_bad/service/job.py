"""Job lifecycle table seeded with RPR011 spec divergences (fixture).

``queued`` can no longer be shed (drain would strand it) and ``running``
grows an undeclared back-edge to ``queued``.
"""

JOB_STATUSES = (
    "queued", "running", "converged", "failed", "shed", "cancelled",
)
TERMINAL_STATUSES = ("converged", "failed", "shed", "cancelled")

_TRANSITIONS = {
    "queued": ("running", "cancelled"),
    "running": ("converged", "failed", "shed", "cancelled", "queued"),
}


class JobRecord:
    def __init__(self):
        self.status = "queued"

    def transition(self, status):
        if status not in _TRANSITIONS.get(self.status, ()):
            raise ValueError(f"illegal {self.status} -> {status}")
        self.status = status
