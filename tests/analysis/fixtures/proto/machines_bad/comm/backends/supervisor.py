"""Rank supervisor seeded with RPR011 spec divergences (fixture).

``record_ready`` drops the terminal guard (a DEAD rank can be
resurrected), ``record_zombie`` assigns a state the spec never declared,
and no mutator ever enters SUSPECT.
"""

SPAWNED = "spawned"
READY = "ready"
SUSPECT = "suspect"
DEAD = "dead"
ZOMBIE = "zombie"

RANK_STATES = (SPAWNED, READY, SUSPECT, DEAD)


class RankSupervisor:
    def __init__(self):
        self.state = SPAWNED
        self.misses = 0

    def record_spawn(self):
        self.state = SPAWNED
        self.misses = 0

    def record_ready(self):
        self.state = READY
        self.misses = 0

    def record_zombie(self):
        self.state = ZOMBIE

    def record_exit(self):
        if self.state == DEAD:
            return
        self.state = DEAD
