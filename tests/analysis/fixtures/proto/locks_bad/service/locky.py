"""Lock usage seeded with RPR012 findings (fixture).

``Alpha.crosswise`` + ``Beta.crosswise_back`` form a lock-order cycle,
``Alpha.sleepy`` sleeps under its lock, ``Alpha.reenter`` re-acquires a
non-reentrant lock through a call, and ``Beta.stuck`` blocks on an
unbounded ``get()`` while holding its lock.
"""

import threading
import time


class Alpha:
    def __init__(self, beta):
        self._la = threading.Lock()
        self.beta = beta

    def crosswise(self):
        with self._la:
            return self.beta.grab_beta()

    def grab_alpha(self):
        with self._la:
            return 1

    def sleepy(self):
        with self._la:
            time.sleep(0.5)

    def reenter(self):
        with self._la:
            return self.grab_alpha()


class Beta:
    def __init__(self, alpha):
        self._lb = threading.Lock()
        self.alpha = alpha

    def crosswise_back(self):
        with self._lb:
            return self.alpha.grab_alpha()

    def grab_beta(self):
        with self._lb:
            return 2

    def stuck(self, q):
        with self._lb:
            return q.get()
