"""Minimal consistent framing tables (clean RPR010 fixture)."""

DATA = 1
CMD = 2
RESULT = 3

FRAME_KINDS = (DATA, CMD, RESULT)

KIND_NAMES = {
    DATA: "data",
    CMD: "cmd",
    RESULT: "result",
}

ARRAY_DTYPES = {1: "<f8"}


def encode_frame(kind, seq, payload):
    return bytes([kind, seq]) + payload


def decode_frame(buf):
    return buf
