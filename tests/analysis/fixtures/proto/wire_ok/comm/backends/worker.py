"""Minimal consistent worker opcode table (clean RPR010 fixture)."""

from .framing import CMD, DATA, RESULT, encode_frame

OP_PING = 1

OP_NAMES = {
    OP_PING: "ping",
}


def pack_command(op, meta, arrays=()):
    return bytes([op])


def unpack_command(payload):
    return payload[0], {}, []


def _handle_ping(store, meta, arrays):
    if "n" not in meta:
        raise ValueError("ping without a payload size")
    return {"pong": meta["n"]}, []


_HANDLERS = {
    OP_PING: _handle_ping,
}


def serve(conn, store):
    frame = conn.recv()
    if frame.kind == CMD:
        op, meta, arrays = unpack_command(frame.payload)
        out_meta, out_arrays = _HANDLERS[op](store, meta, arrays)
        conn.send(encode_frame(RESULT, frame.seq, pack_command(op, out_meta)))
    elif frame.kind == DATA:
        conn.send(encode_frame(RESULT, frame.seq, frame.payload))
