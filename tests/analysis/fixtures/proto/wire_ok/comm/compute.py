"""Minimal consistent driver side (clean RPR010 fixture)."""

import numpy as np

from .backends import framing, worker


def run(conn, x):
    payload = np.asarray(x, dtype="<f8")
    conn.send(framing.encode_frame(framing.DATA, 0, bytes(payload)))
    cmd = worker.pack_command(worker.OP_PING, {"n": len(x)})
    conn.send(framing.encode_frame(framing.CMD, 1, cmd))
    resp = conn.recv()
    if resp.kind == framing.RESULT:
        op, meta, arrays = worker.unpack_command(resp.payload)
        if "error" in meta:
            _raise_worker_error(meta)
        return arrays
    return None


def _raise_worker_error(meta):
    raise RuntimeError(meta.get("error", "worker failure"))
