"""Minimal fault taxonomy for the clean wire fixture tree."""


class WorkerComputeError(Exception):
    pass
