"""Minimal fault taxonomy for the wire fixture tree."""


class WorkerComputeError(Exception):
    pass


class MessageCorruption(Exception):
    pass
