"""Driver side seeded with RPR010 violations (fixture).

OP_WORK and OP_ORPHAN are never encoded, a frame of unknown kind BOGUS is
constructed, worker errors bypass the typed mapping, and a float16 array
is shipped outside the closed dtype table.
"""

import numpy as np

from .backends import framing, worker


def run(conn, x):
    conn.send(framing.encode_frame(framing.DATA, 0, bytes(x)))
    cmd = worker.pack_command(worker.OP_PING, {"n": len(x)})
    conn.send(framing.encode_frame(framing.CMD, 1, cmd))
    resp = conn.recv()
    if resp.kind == framing.ACK:
        return None
    op, meta, arrays = worker.unpack_command(resp.payload)
    shrunk = np.asarray(arrays[0], dtype="float16")
    conn.send(framing.encode_frame(framing.BOGUS, 2, bytes(shrunk)))
    return meta
