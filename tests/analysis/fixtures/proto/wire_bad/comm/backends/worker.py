"""Worker opcode table seeded with RPR010 violations (fixture)."""

from .framing import CMD, DATA, RESULT, encode_frame


class RogueError(Exception):
    """Neither a taxonomy class nor a builtin: undecodable driver-side."""


OP_PING = 1
OP_WORK = 2
OP_ORPHAN = 3   # no OP_NAMES entry, no handler

OP_NAMES = {
    OP_PING: "ping",
    OP_WORK: "work",
}


def pack_command(op, meta, arrays=()):
    return bytes([op])


def unpack_command(payload):
    return payload[0], {}, []


def _handle_ping(store, meta, arrays):
    return {"pong": True}, []


def _handle_work(store, meta, arrays):
    if not arrays:
        raise RogueError("no work shipped")
    return {}, list(arrays)


_HANDLERS = {
    OP_PING: _handle_ping,
    OP_WORK: _handle_work,
}


def serve(conn, store):
    frame = conn.recv()
    if frame.kind == CMD:
        op, meta, arrays = unpack_command(frame.payload)
        out_meta, out_arrays = _HANDLERS[op](store, meta, arrays)
        conn.send(encode_frame(RESULT, frame.seq, pack_command(op, out_meta)))
    elif frame.kind == DATA:
        conn.send(encode_frame(RESULT, frame.seq, frame.payload))
