"""Framing tables seeded with RPR010 contract violations (fixture)."""

DATA = 1
ACK = 2
CMD = 3
RESULT = 4
GHOST = 5    # declared but never constructed: dead protocol surface
SHADOW = 4   # duplicate wire value (collides with RESULT)

FRAME_KINDS = (DATA, ACK, CMD, RESULT, GHOST, SHADOW)

KIND_NAMES = {
    DATA: "data",
    ACK: "ack",
    CMD: "cmd",
    RESULT: "result",
    SHADOW: "shadow",
}

ARRAY_DTYPES = {1: "<f8", 2: "<i8"}


def encode_frame(kind, seq, payload):
    return bytes([kind, seq]) + payload


def decode_frame(buf):
    return buf
