# Noqa ergonomics fixture: one live suppression, one stale one.  No
# module docstring on purpose — anchor-at-body[0] findings land on the
# DATA line below, where the suppression sits.

DATA = 1  # repro: noqa(RPR010) fixture: DATA is intentionally unconstructed

FRAME_KINDS = (DATA,)

KIND_NAMES = {
    DATA: "data",
    GHOST: "ghost",  # repro: noqa(RPR010) forward-compat alias, documented
}

ARRAY_DTYPES = {1: "<f8"}

SEQ_WIDTH = 4  # repro: noqa(RPR010) stale: nothing fires on this line
