"""RPR003 positive fixture (linted under a factor/ module path)."""


def eliminate(rows):
    for i, row in enumerate(rows):
        if not row:
            raise ValueError(f"row {i} is empty mid-sweep")
        update(row)


def sweep(block):
    while block.active():
        if block.stalled():
            raise RuntimeError("sweep stalled")
        block.advance()


def update(row):
    return row
