"""RPR004 negative fixture: seeded generators only."""

import numpy as np

from repro.utils.rng import make_rng


def perturb(x, seed):
    rng = np.random.default_rng(seed)
    x = x + rng.standard_normal(x.size)
    return x + make_rng(seed).normal()
