"""RPR002 negative fixture: sorted() iteration and list iteration."""


def exchange(pending, counts):
    for rank in sorted({3, 1, 2}):
        send(rank)
    for key, value in sorted(counts.items()):
        retire(key, value)
    for rank in [3, 1, 2]:
        send(rank)


def send(rank):
    return rank


def retire(key, value):
    return key, value
