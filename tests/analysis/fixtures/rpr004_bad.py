"""RPR004 positive fixture: unseeded global RNG draws."""

import random

import numpy as np


def perturb(x):
    x = x + np.random.rand(x.size)
    x = x + np.random.standard_normal(x.size)
    rng = np.random.default_rng()
    return x + rng.normal(), random.random()
