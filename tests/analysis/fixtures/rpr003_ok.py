"""RPR003 negative fixture: argument validation and typed faults.

Top-of-function validation (every ancestor between the function and the
raise is an ``if``) is the documented caller-bug idiom and stays exempt.
"""

from repro.resilience.errors import FactorizationBreakdown


def eliminate(rows, drop_tol):
    if drop_tol < 0:
        raise ValueError("drop_tol must be >= 0")
    if not rows:
        raise ValueError("rows must be non-empty")
    for i, row in enumerate(rows):
        if not row:
            raise FactorizationBreakdown(f"row {i} collapsed", row=i)
        update(row)


def update(row):
    return row
