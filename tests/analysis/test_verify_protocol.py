"""verify_protocol report assembly, noqa/baseline ergonomics, and the CLI."""

import json
from pathlib import Path

from repro.analysis.lint.baseline import write_baseline
from repro.analysis.lint.rules import Violation
from repro.analysis.proto.report import (
    PROTO_SCHEMA,
    _apply_noqa,
    verify_protocol,
    write_proto_report,
)
from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "proto"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


class TestReport:
    def test_src_repro_is_clean(self):
        report = verify_protocol(root=SRC)
        assert [v.message for v in report.violations] == []
        assert report.stale_noqas == [] and report.parse_errors == []
        assert report.clean

    def test_default_root_is_the_installed_package(self):
        report = verify_protocol()
        assert report.root.endswith("repro")
        assert report.clean

    def test_schema_and_sections(self, tmp_path):
        report = verify_protocol(root=SRC)
        out = write_proto_report(tmp_path / "proto.json", report)
        doc = json.loads(out.read_text())
        assert doc["schema"] == PROTO_SCHEMA
        assert set(doc) >= {
            "counts", "violations", "suppressed", "stale_noqas",
            "wire", "machines", "locks", "parse_errors",
        }
        assert len(doc["machines"]) == 3
        assert all(m["violations"] == [] for m in doc["machines"])
        assert doc["wire"]["opcodes"] and doc["wire"]["frame_kinds"]

    def test_bad_tree_counts_by_code(self):
        report = verify_protocol(root=FIXTURES / "wire_bad")
        assert not report.clean
        assert set(report.counts()) == {"RPR010"}

    def test_noqa_suppression_and_staleness(self):
        report = verify_protocol(root=FIXTURES / "noqa_tree")
        assert report.violations == []
        assert len(report.suppressed) == 2
        assert [e["code"] for e in report.stale_noqas] == ["RPR010"]
        assert not report.clean  # the stale noqa alone fails the run

    def test_noqa_honoured_outside_scan_roots(self, tmp_path):
        # a finding anchored outside SCAN_ROOTS (e.g. in the fault-taxonomy
        # module the wire checker reads) must still see its noqa
        other = tmp_path / "resilience"
        other.mkdir()
        mod = other / "errors.py"
        mod.write_text("X = 1  # repro: noqa(RPR010) anchored here\n")
        v = Violation(
            path=mod.as_posix(), line=1, col=0, code="RPR010",
            message="synthetic", snippet="X = 1",
        )
        gone = Violation(
            path=(tmp_path / "gone.py").as_posix(), line=1, col=0,
            code="RPR010", message="synthetic", snippet="",
        )
        kept, suppressed, stale = _apply_noqa(tmp_path, [v, gone])
        assert kept == [gone]
        assert suppressed == [v]
        assert stale == []

    def test_baseline_grandfathers_findings(self, tmp_path):
        dirty = verify_protocol(root=FIXTURES / "wire_bad")
        assert dirty.violations
        baseline = tmp_path / "proto-baseline.json"
        write_baseline(baseline, dirty.violations)
        rebased = verify_protocol(
            root=FIXTURES / "wire_bad", baseline_path=baseline
        )
        assert rebased.new_violations == [] and rebased.clean


class TestCli:
    def test_exit_zero_on_clean_tree(self, capsys):
        assert main(["verify-protocol", str(SRC)]) == 0
        out = capsys.readouterr().out
        assert "wire: 7 opcode(s), 9 frame kind(s), 4 dtype(s)" in out
        assert "machine rank-supervisor" in out
        assert "0 finding(s)" in out

    def test_exit_nonzero_on_findings(self, capsys):
        assert main(["verify-protocol", str(FIXTURES / "wire_bad")]) == 1
        out = capsys.readouterr().out
        assert "RPR010" in out

    def test_json_report_written(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code = main(["verify-protocol", str(SRC), "--json", str(out_path)])
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == PROTO_SCHEMA

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        baseline = tmp_path / "pb.json"
        root = str(FIXTURES / "wire_bad")
        assert main(["verify-protocol", root,
                     "--write-baseline", str(baseline)]) == 0
        assert main(["verify-protocol", root,
                     "--baseline", str(baseline)]) == 0
        assert main(["verify-protocol", root, "--no-baseline"]) == 1
