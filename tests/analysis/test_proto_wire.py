"""RPR010 wire-contract checker: fixtures fire, src/repro is covered+clean."""

from pathlib import Path

from repro.analysis.proto.wire import check_wire

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "proto"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _messages(violations):
    return [v.message for v in violations]


class TestBadTree:
    def test_every_contract_violation_fires(self):
        violations, _ = check_wire(FIXTURES / "wire_bad")
        msgs = "\n".join(_messages(violations))
        assert all(v.code == "RPR010" for v in violations)
        # table self-consistency
        assert "SHADOW reuses wire value 4" in msgs
        assert "GHOST has no KIND_NAMES entry" in msgs
        # opcode closed-world
        assert "OP_ORPHAN has no OP_NAMES entry" in msgs
        assert "OP_ORPHAN has no _HANDLERS entry" in msgs
        assert "OP_WORK has no driver-side encoder" in msgs
        # error-taxonomy mapping
        assert "raises RogueError" in msgs
        assert "never routes worker errors" in msgs
        # frame-kind usage
        assert "constructs frame kind BOGUS" in msgs
        assert "RESULT is constructed but never matched" in msgs
        assert "GHOST is declared in FRAME_KINDS but never constructed" in msgs
        # dtype closed table
        assert "ships dtype 'float16'" in msgs

    def test_violations_are_anchored(self):
        violations, _ = check_wire(FIXTURES / "wire_bad")
        rogue = [v for v in violations if "RogueError" in v.message]
        assert len(rogue) == 1 and rogue[0].line > 1
        assert rogue[0].path.endswith("comm/backends/worker.py")


class TestCleanTrees:
    def test_minimal_consistent_tree_is_clean(self):
        violations, summary = check_wire(FIXTURES / "wire_ok")
        assert violations == []
        assert summary["opcodes"]["OP_PING"]["encoded"]
        kinds = summary["frame_kinds"]
        assert all(k["constructed"] and k["accepted"] for k in kinds.values())
        assert summary["dtypes"] == {"<f8": True}

    def test_src_repro_is_clean_with_full_coverage(self):
        violations, summary = check_wire(SRC)
        assert _messages(violations) == []
        # the real protocol: 7 opcodes, 9 frame kinds, 4 dtypes — every
        # opcode encoded driver-side, every kind constructed and accepted
        assert len(summary["opcodes"]) == 7
        assert all(op["encoded"] for op in summary["opcodes"].values())
        assert len(summary["frame_kinds"]) == 9
        assert all(
            k["constructed"] and k["accepted"]
            for k in summary["frame_kinds"].values()
        )
        assert len(summary["dtypes"]) == 4

    def test_missing_tree_yields_empty_report(self, tmp_path):
        violations, summary = check_wire(tmp_path)
        assert violations == [] and summary["opcodes"] == {}
