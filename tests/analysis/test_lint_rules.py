"""Per-rule positive/negative coverage driven by the fixture files.

Every RPR rule gets at least one fixture that must trip it and one that
must stay silent; the fixtures double as readable documentation of each
rule's contract (docs/static-analysis.md).
"""

from pathlib import Path

import pytest

from repro.analysis.lint import lint_source
from repro.analysis.lint.rules import RULES, RULES_BY_CODE

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture stem -> (module path the file is linted under, expected code)
CASES = {
    "rpr001": ("krylov/monitors.py", "RPR001"),
    "rpr002": ("comm/pattern.py", "RPR002"),
    "rpr003": ("factor/sweeps.py", "RPR003"),
    "rpr004": ("utils/perturb.py", "RPR004"),
    "rpr005": ("kernels/rows.py", "RPR005"),
    "rpr006": ("krylov/cg.py", "RPR006"),
    "rpr007": ("sparse/mutate.py", "RPR007"),
    "rpr008": ("core/marcher.py", "RPR008"),
    "rpr009": ("service/queueing.py", "RPR009"),
}


def run_fixture(stem: str, module: str):
    source = (FIXTURES / f"{stem}.py").read_text()
    return lint_source(source, module, path=f"fixtures/{stem}.py")


class TestRuleRegistry:
    def test_every_code_has_a_rule_and_fixture_pair(self):
        assert sorted(RULES_BY_CODE) == sorted(
            code for _, code in CASES.values()
        )
        for stem in CASES:
            assert (FIXTURES / f"{stem}_bad.py").exists()
            assert (FIXTURES / f"{stem}_ok.py").exists()

    def test_rules_have_stable_metadata(self):
        for rule in RULES:
            assert rule.code.startswith("RPR") and len(rule.code) == 6
            assert rule.name and rule.summary


@pytest.mark.parametrize("stem", sorted(CASES))
class TestFixtures:
    def test_bad_fixture_trips_only_its_rule(self, stem):
        module, code = CASES[stem]
        violations, _ = run_fixture(f"{stem}_bad", module)
        codes = {v.code for v in violations}
        assert code in codes, f"{stem}_bad.py did not trip {code}"
        assert codes == {code}, f"unexpected extra codes {codes - {code}}"

    def test_bad_fixture_reports_position_and_snippet(self, stem):
        module, code = CASES[stem]
        violations, _ = run_fixture(f"{stem}_bad", module)
        for v in violations:
            assert v.line >= 1 and v.col >= 0
            assert v.snippet
            assert v.format().startswith(f"fixtures/{stem}_bad.py:{v.line}:")

    def test_ok_fixture_is_clean(self, stem):
        module, code = CASES[stem]
        violations, _ = run_fixture(f"{stem}_ok", module)
        assert [v.format() for v in violations if v.code == code] == []


class TestScoping:
    def test_scoped_rule_silent_outside_its_layers(self):
        # the same unordered iteration is fine in, say, a mesh helper
        source = (FIXTURES / "rpr002_bad.py").read_text()
        violations, _ = lint_source(source, "mesh/helpers.py")
        assert not [v for v in violations if v.code == "RPR002"]

    def test_unscoped_rule_applies_everywhere(self):
        source = (FIXTURES / "rpr001_bad.py").read_text()
        violations, _ = lint_source(source, "mesh/helpers.py")
        assert [v for v in violations if v.code == "RPR001"]

    def test_rpr003_spares_the_resilience_taxonomy_itself(self):
        source = "def f(x):\n    for _ in x:\n        raise ValueError('boom')\n"
        violations, _ = lint_source(source, "factor/foo.py")
        assert [v for v in violations if v.code == "RPR003"]

    def test_rpr006_only_fires_on_documented_entry_points(self):
        source = (FIXTURES / "rpr006_bad.py").read_text()
        violations, _ = lint_source(source, "krylov/helpers.py")
        assert not [v for v in violations if v.code == "RPR006"]

    def test_rpr009_silent_outside_the_service_layer(self):
        # the same unbounded q.get() is legal in, say, a test helper or the
        # backend layer — only repro.service carries the bounded-wait contract
        source = (FIXTURES / "rpr009_bad.py").read_text()
        violations, _ = lint_source(source, "comm/backends/pool.py")
        assert not [v for v in violations if v.code == "RPR009"]

    def test_rpr009_accepts_positional_and_keyword_bounds(self):
        source = (
            "def f(q, e, t, d, parts):\n"
            "    a = q.get(timeout=1.0)\n"
            "    b = e.wait(0.5)\n"
            "    t.join(2.0)\n"
            "    return a, b, d.get('k'), ','.join(parts)\n"
        )
        violations, _ = lint_source(source, "service/helpers.py")
        assert not [v for v in violations if v.code == "RPR009"]

    def test_rpr009_flags_each_unbounded_call(self):
        source = "def f(q, e):\n    return q.get(), e.wait()\n"
        violations, _ = lint_source(source, "service/helpers.py")
        assert len([v for v in violations if v.code == "RPR009"]) == 2


class TestMultipleHitsPerLine:
    def test_each_comparison_reported(self):
        source = "def f(x, y):\n    return (x == 0.0) | (y == 1.0)\n"
        violations, _ = lint_source(source, "mesh/helpers.py")
        assert len([v for v in violations if v.code == "RPR001"]) == 2
