"""Engine behavior: noqa, baselines, JSON reports, and the clean-tree gate."""

import json
from pathlib import Path

from repro.analysis.lint import (
    LintReport,
    lint_paths,
    lint_source,
    write_json_report,
)
from repro.analysis.lint.baseline import (
    BASELINE_SCHEMA,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint.engine import LINT_SCHEMA, module_of, noqa_map

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.json"


class TestNoqa:
    def test_bare_noqa_suppresses_all_codes(self):
        violations, suppressed = lint_source(
            "x = 1.0\ny = x == 0.0  # repro: noqa\n", "mesh/foo.py"
        )
        assert not violations
        assert [v.code for v in suppressed] == ["RPR001"]

    def test_coded_noqa_suppresses_only_named_codes(self):
        violations, suppressed = lint_source(
            "y = x == 0.0  # repro: noqa(RPR002)\n", "mesh/foo.py"
        )
        assert [v.code for v in violations] == ["RPR001"]
        assert not suppressed

    def test_noqa_with_rationale_text(self):
        violations, suppressed = lint_source(
            "y = x == 0.0  # repro: noqa(RPR001) — exact-zero guard\n",
            "mesh/foo.py",
        )
        assert not violations and len(suppressed) == 1

    def test_noqa_only_covers_its_own_line(self):
        violations, _ = lint_source(
            "# repro: noqa(RPR001)\ny = x == 0.0\n", "mesh/foo.py"
        )
        assert [v.code for v in violations] == ["RPR001"]

    def test_noqa_map_tolerates_untokenizable_source(self):
        # unterminated bracket: tokenize raises TokenError, not SyntaxError;
        # the file must degrade to "no suppressions", not crash
        assert noqa_map("x = (\n") == {}
        assert noqa_map("x = (  # repro: noqa(RPR001)\n") == {}

    def test_noqa_map_tolerates_indentation_error(self):
        assert noqa_map("def f():\npass\n  extra\n") == {}


class TestBaseline:
    SOURCE = "def f(x):\n    return x == 0.5\n"

    def test_roundtrip_and_match(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(self.SOURCE)
        report = lint_paths([mod])
        assert [v.code for v in report.violations] == ["RPR001"]

        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, report.violations)
        doc = json.loads(baseline.read_text())
        assert doc["schema"] == BASELINE_SCHEMA
        assert load_baseline(baseline)

        again = lint_paths([mod], baseline_path=baseline)
        assert again.clean
        assert not again.new_violations
        assert len(again.violations) == 1  # still reported, just baselined

    def test_baseline_matches_on_snippet_not_line(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(self.SOURCE)
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, lint_paths([mod]).violations)

        # shift the offending line down: the baseline must still absorb it
        mod.write_text("import math\n\n\n" + self.SOURCE)
        report = lint_paths([mod], baseline_path=baseline)
        assert report.clean

    def test_new_violation_not_absorbed(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(self.SOURCE)
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, lint_paths([mod]).violations)

        mod.write_text(self.SOURCE + "\ndef g(y):\n    return y != 2.5\n")
        report = lint_paths([mod], baseline_path=baseline)
        assert not report.clean
        assert len(report.new_violations) == 1

    def test_stale_entries_surface(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(self.SOURCE)
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, lint_paths([mod]).violations)

        mod.write_text("def f(x):\n    return x <= 0.5\n")  # fixed
        report = lint_paths([mod], baseline_path=baseline)
        assert report.clean
        assert report.baseline is not None and report.baseline.stale


class TestJsonReport:
    def test_schema_and_fields(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("y = x == 0.5\nz = x == 0.25  # repro: noqa(RPR001)\n")
        report = lint_paths([mod])
        out = write_json_report(tmp_path / "lint.json", report)
        doc = json.loads(out.read_text())
        assert doc["schema"] == LINT_SCHEMA
        assert doc["files_checked"] == 1
        assert doc["counts"] == {"RPR001": 1}
        (v,) = doc["violations"]
        assert {"path", "line", "col", "code", "message", "snippet"} <= set(v)
        assert [s["code"] for s in doc["suppressed"]] == ["RPR001"]


class TestModuleOf:
    def test_strips_to_package_relative(self):
        assert module_of(Path("src/repro/comm/pattern.py")) == "comm/pattern.py"
        assert module_of(
            Path("/abs/repo/src/repro/kernels/band.py")
        ) == "kernels/band.py"

    def test_foreign_path_falls_back_to_name(self):
        assert module_of(Path("/tmp/elsewhere/mod.py")) == "mod.py"


class TestParseErrors:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = lint_paths([bad])
        assert report.parse_errors and not report.violations


class TestStaleNoqa:
    def test_stale_coded_noqa_fails_the_run(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1  # repro: noqa(RPR001) nothing fires here\n")
        report = lint_paths([mod])
        assert not report.violations
        assert [e["code"] for e in report.stale_noqas] == ["RPR001"]
        assert not report.clean

    def test_live_noqa_is_not_stale(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("y = x == 0.0  # repro: noqa(RPR001) guard\n")
        report = lint_paths([mod])
        assert len(report.suppressed) == 1
        assert not report.stale_noqas and report.clean

    def test_staleness_judged_per_code(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("y = x == 0.0  # repro: noqa(RPR001,RPR005) both\n")
        report = lint_paths([mod])
        # RPR001 fires and is suppressed; RPR005 (kernel/factor scope)
        # never runs here, so it is stale for this line
        assert [e["code"] for e in report.stale_noqas] == ["RPR005"]

    def test_bare_noqa_exempt_from_staleness(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1  # repro: noqa\n")
        report = lint_paths([mod])
        assert not report.stale_noqas and report.clean

    def test_foreign_pass_codes_not_judged(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1  # repro: noqa(RPR012) verify-protocol's call\n")
        report = lint_paths([mod])
        assert not report.stale_noqas and report.clean

    def test_docstring_noqa_is_inert(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            '"""Use # repro: noqa(RPR001) to suppress."""\n'
            "y = x == 0.0\n"
        )
        report = lint_paths([mod])
        assert [v.code for v in report.violations] == ["RPR001"]
        assert not report.stale_noqas

    def test_stale_noqas_in_json_report(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1  # repro: noqa(RPR001) stale\n")
        report = lint_paths([mod])
        assert report.to_dict()["stale_noqas"] == report.stale_noqas


class TestTreeIsClean:
    """The PR gate: src/repro lints clean modulo the committed baseline."""

    def test_src_clean_modulo_baseline(self):
        report = lint_paths([SRC], baseline_path=BASELINE)
        assert isinstance(report, LintReport)
        assert not report.parse_errors
        offenders = "\n".join(v.format() for v in report.new_violations)
        assert report.clean, f"new lint violations:\n{offenders}"

    def test_src_has_no_stale_noqas(self):
        report = lint_paths([SRC], baseline_path=BASELINE)
        assert not report.stale_noqas, (
            "noqa comments whose code no longer fires — delete them: "
            f"{report.stale_noqas}"
        )

    def test_baseline_has_no_stale_entries(self):
        report = lint_paths([SRC], baseline_path=BASELINE)
        assert report.baseline is not None
        assert not report.baseline.stale, (
            "baseline entries no longer match any violation — shrink "
            f"lint-baseline.json: {report.baseline.stale}"
        )

    def test_baseline_stays_small(self):
        # the baseline is a burn-down list, not a dumping ground
        assert len(load_baseline(BASELINE)) <= 5
