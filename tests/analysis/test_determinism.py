"""Determinism checker: bitwise repeat / cross-tier / worker-sweep gates."""

import json
import os

import numpy as np
import pytest

from repro.analysis.determinism import (
    DETERMINISM_SCHEMA,
    Check,
    DeterminismReport,
    _digest,
    _setup_workers,
    available_tiers,
    check_determinism,
)
from repro.cases import CASE_BUILDERS
from repro.factor import cache as factor_cache


@pytest.fixture(scope="module")
def tiny_report():
    case = CASE_BUILDERS["tc1"](n=9)
    return check_determinism(
        [case], nparts=2, tiers=("reference", "numpy"), workers=(1, 2),
        maxiter=100,
    )


class TestDigest:
    def test_bitwise_sensitivity(self):
        x = np.linspace(0.0, 1.0, 8)
        y = x.copy()
        assert _digest(x) == _digest(y)
        y[3] = np.nextafter(y[3], 2.0)  # one ulp
        assert _digest(x) != _digest(y)

    def test_dtype_and_shape_matter(self):
        x = np.zeros(4)
        assert _digest(x) != _digest(x.astype(np.float32))
        assert _digest(x) != _digest(x.reshape(2, 2))


class TestSetupWorkersEnv:
    def test_sets_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_SETUP_WORKERS", "7")
        with _setup_workers(2):
            assert os.environ["REPRO_SETUP_WORKERS"] == "2"
        assert os.environ["REPRO_SETUP_WORKERS"] == "7"

    def test_none_clears_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SETUP_WORKERS", "7")
        with _setup_workers(None):
            assert "REPRO_SETUP_WORKERS" not in os.environ
        assert os.environ["REPRO_SETUP_WORKERS"] == "7"


class TestCheckMatrix:
    def test_tc1_is_bitwise_deterministic(self, tiny_report):
        failures = tiny_report.failures()
        assert tiny_report.identical, [c.to_dict() for c in failures]

    def test_all_check_kinds_present(self, tiny_report):
        kinds = {c.kind for c in tiny_report.checks}
        assert kinds == {"repeat", "cross-tier", "workers", "factors",
                         "apply", "backend"}
        # one repeat check per tier
        assert len([c for c in tiny_report.checks if c.kind == "repeat"]) == 2

    def test_cache_left_in_prior_state(self):
        prior = factor_cache.get_cache().enabled
        case = CASE_BUILDERS["tc1"](n=9)
        check_determinism([case], nparts=2, tiers=("reference",),
                          workers=(1,), maxiter=50)
        assert factor_cache.get_cache().enabled == prior

    def test_report_schema(self, tiny_report, tmp_path):
        out = tiny_report.write_json(tmp_path / "det.json")
        doc = json.loads(out.read_text())
        assert doc["schema"] == DETERMINISM_SCHEMA
        assert doc["identical"] is True
        assert doc["tiers"] == ["reference", "numpy"]
        for check in doc["checks"]:
            assert {"kind", "case", "identical"} <= set(check)

    def test_summary_readable(self, tiny_report):
        text = tiny_report.summary()
        assert "identical" in text and "tc1" in text


class TestReportAggregation:
    def test_single_mismatch_fails_report(self):
        report = DeterminismReport(nparts=2, tiers=("reference",), workers=(1,))
        report.checks.append(Check(kind="repeat", case="x", identical=True))
        assert report.identical
        report.checks.append(Check(kind="workers", case="x", identical=False))
        assert not report.identical
        assert len(report.failures()) == 1


class TestAvailableTiers:
    def test_reference_and_numpy_always_present(self):
        tiers = available_tiers()
        assert tiers[:2] == ("reference", "numpy")
