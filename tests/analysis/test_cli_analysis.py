"""CLI surface of the analysis tooling: lint, check-determinism, --sanitize."""

import json
from pathlib import Path

import pytest

from repro import faults
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.json"

BAD_SOURCE = "def f(x):\n    return x == 0.5\n"


class TestLintCommand:
    def test_src_tree_exits_clean_with_baseline(self, capsys):
        rc = main(["lint", str(SRC), "--baseline", str(BASELINE)])
        assert rc == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_violations_exit_nonzero_and_print_location(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text(BAD_SOURCE)
        rc = main(["lint", str(mod)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "RPR001" in out and "mod.py:2" in out

    def test_write_baseline_then_lint_clean(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text(BAD_SOURCE)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(mod), "--write-baseline", str(baseline)]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(["lint", str(mod), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_no_baseline_reports_everything(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(BAD_SOURCE)
        baseline = tmp_path / "baseline.json"
        main(["lint", str(mod), "--write-baseline", str(baseline)])
        assert main(["lint", str(mod), "--baseline", str(baseline),
                     "--no-baseline"]) == 1

    def test_json_report_written(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(BAD_SOURCE)
        out = tmp_path / "lint.json"
        main(["lint", str(mod), "--json", str(out)])
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.lint.v1"
        assert doc["counts"] == {"RPR001": 1}


class TestCheckDeterminismCommand:
    ARGS = ["check-determinism", "--cases", "tc1", "--size", "9",
            "--nparts", "2", "--tiers", "reference", "--workers", "1",
            "--maxiter", "50"]

    def test_tiny_matrix_passes(self, capsys):
        assert main(self.ARGS) == 0
        assert "all checks bitwise-identical" in capsys.readouterr().out

    def test_json_report_written(self, tmp_path):
        out = tmp_path / "det.json"
        assert main(self.ARGS + ["--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.determinism.v1"
        assert doc["identical"] is True

    def test_unknown_tier_rejected(self):
        with pytest.raises(SystemExit, match="not available"):
            main(["check-determinism", "--cases", "tc1", "--size", "9",
                  "--tiers", "cuda"])

    def test_no_cases_rejected(self):
        with pytest.raises(SystemExit, match="no cases"):
            main(["check-determinism", "--cases", ","])


class TestSolveSanitize:
    SOLVE = ["solve", "--case", "tc1", "--size", "9", "--nparts", "2",
             "--maxiter", "100"]

    def test_clean_solve_unaffected_by_sanitizer(self, capsys):
        assert main(self.SOLVE + ["--sanitize"]) == 0
        assert "converged" in capsys.readouterr().out

    def test_injected_nan_exits_3_with_classification(self, capsys):
        plan = faults.FaultPlan(
            faults.FaultSpec(kind="nan-kernel", count=1), seed=0
        )
        with faults.inject(plan):
            rc = main(self.SOLVE + ["--sanitize", "fp"])
        assert rc == 3
        out = capsys.readouterr().out
        assert "sanitizer trapped a fault [diverged]" in out

    def test_resilient_chain_recovers_with_sanitizer(self, capsys):
        plan = faults.FaultPlan(
            faults.FaultSpec(kind="nan-kernel", count=1), seed=0
        )
        with faults.inject(plan):
            rc = main(self.SOLVE + ["--sanitize", "fp", "--resilient"])
        assert rc == 0
        assert "converged" in capsys.readouterr().out
