"""Race detector: lockset tracking over the shared setup-phase state.

The load-bearing test here is the seeded-race regression: an
unsynchronized cross-thread mutation of the factor cache store fires
:class:`RaceDetected` under ``REPRO_SANITIZE=race`` and is invisible
without it.
"""

import threading

import pytest

from repro.analysis import sanitize
from repro.analysis.sanitize import race
from repro.analysis.sanitize.race import RaceDetected, RaceDetector, TrackedLock
from repro.factor.cache import FactorCache
from repro.utils.parallel import parallel_map


@pytest.fixture(autouse=True)
def _disarm():
    yield
    sanitize.disable("race")


def _in_thread(fn):
    """Run ``fn`` on a fresh thread; return the exception it raised (or None)."""
    box = []

    def runner():
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 - test harness
            box.append(exc)

    t = threading.Thread(target=runner)
    t.start()
    t.join()
    return box[0] if box else None


class TestDetectorStateMachine:
    def test_single_thread_never_reports(self):
        det = RaceDetector()
        for _ in range(5):
            det.access("r", "write")
        assert not det.reports

    def test_cross_thread_write_without_locks_reports(self):
        sanitize.enable("race")
        det = race.get_detector()
        det.access("r", "write")
        exc = _in_thread(lambda: det.access("r", "write"))
        assert isinstance(exc, RaceDetected)
        assert det.reports and det.reports[0]["resource"] == "r"

    def test_cross_thread_reads_are_silent(self):
        sanitize.enable("race")
        det = race.get_detector()
        det.access("r", "read")
        assert _in_thread(lambda: det.access("r", "read")) is None

    def test_common_lock_protects(self):
        sanitize.enable("race")
        det = race.get_detector()
        lock = TrackedLock("shared.lock")

        def guarded():
            with lock:
                det.access("r", "write")

        guarded()
        assert _in_thread(guarded) is None
        assert not det.reports

    def test_holding_vouches_for_external_synchronization(self):
        sanitize.enable("race")
        det = race.get_detector()

        def ordered():
            with race.holding("queue.order"):
                det.access("r", "write")

        ordered()
        assert _in_thread(ordered) is None

    def test_lockset_intersection_narrows(self):
        sanitize.enable("race")
        det = race.get_detector()
        a, b = TrackedLock("lock.a"), TrackedLock("lock.b")

        with a, b:
            det.access("r", "write")
        assert _in_thread(lambda: _with(a, lambda: det.access("r", "write"))) is None
        # third access holds only b: intersection empties -> race
        exc = _in_thread(lambda: _with(b, lambda: det.access("r", "write")))
        assert isinstance(exc, RaceDetected)

    def test_forget_resets_ownership(self):
        sanitize.enable("race")
        det = race.get_detector()
        det.access("r", "write")
        det.forget("r")
        assert _in_thread(lambda: det.access("r", "write")) is None


def _with(lock, fn):
    with lock:
        fn()


class TestTrackedLock:
    def test_drop_in_lock_api(self):
        lock = TrackedLock("t.lock")
        assert lock.acquire()
        assert lock.locked()
        lock.release()
        assert not lock.locked()

    def test_unarmed_overhead_keeps_no_state(self):
        lock = TrackedLock("t.lock")
        with lock:
            assert race._held() == set()


class TestSeededRaceRegression:
    """Seed a real race on the factor cache store and on the tracer."""

    def _race_the_cache(self):
        cache = FactorCache(capacity=4)
        fac = object()  # stored opaquely; type only matters to readers
        cache._put_locked("k0", fac)  # main thread, bypassing the lock
        return _in_thread(lambda: cache._put_locked("k1", fac))

    def test_fires_under_env_arming(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "race")
        assert sanitize.refresh_from_env() == ("race",)
        exc = self._race_the_cache()
        assert isinstance(exc, RaceDetected)
        assert "factor.cache" in str(exc)

    def test_invisible_without_arming(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitize.refresh_from_env() == ()
        assert self._race_the_cache() is None

    def test_locked_put_path_is_clean_across_threads(self):
        # parallel_map clamps to the core count, so force two real threads
        # the way the setup pool would run them on a multicore box
        sanitize.enable("race")
        cache = FactorCache(capacity=32)

        cache.put("k-main", object())
        for i in range(2):
            assert _in_thread(lambda i=i: cache.put(f"k{i}", object())) is None
        assert not race.get_detector().reports

    def test_parallel_map_setup_path_is_clean(self, monkeypatch):
        # the real PR-4 path: worker count capped by REPRO_SETUP_WORKERS
        # (and by the core count, so this may degrade to serial — the
        # explicit-thread test above still covers the concurrent case)
        monkeypatch.setenv("REPRO_SETUP_WORKERS", "2")
        sanitize.enable("race")
        cache = FactorCache(capacity=32)

        def put(i):
            cache.put(f"k{i}", object())
            return i

        assert parallel_map(put, range(4), max_workers=2) == [0, 1, 2, 3]
        assert not race.get_detector().reports

    def test_tracer_cross_thread_span_detected(self):
        from repro.obs.tracer import Tracer

        sanitize.enable("race")
        tracer = Tracer()
        with tracer.span("main.phase"):
            pass

        def foreign_span():
            with tracer.span("foreign.phase"):
                pass

        exc = _in_thread(foreign_span)
        assert isinstance(exc, RaceDetected)

    def test_tracer_single_thread_untouched(self):
        from repro.obs.tracer import Tracer

        sanitize.enable("race")
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert len(tracer.spans) == 2
