"""FP sanitizer: errstate traps speak the typed fault taxonomy."""

import numpy as np
import pytest

from repro import faults
from repro.analysis import sanitize
from repro.analysis.sanitize import fp
from repro.cases import CASE_BUILDERS
from repro.core.driver import solve_case
from repro.resilience import ResilientSolver
from repro.resilience.errors import NumericalFault, SolverFault


@pytest.fixture(autouse=True)
def _disarm():
    yield
    sanitize.disable("fp")


class TestFpGuard:
    def test_invalid_operation_raises_typed_fault(self):
        with pytest.raises(NumericalFault) as exc_info:
            with fp.fp_guard("test.region"):
                np.zeros(3) / np.zeros(3)
        exc = exc_info.value
        assert isinstance(exc, SolverFault)
        assert exc.context["where"] == "test.region"
        assert exc.context["sanitizer"] == "fp"

    def test_overflow_raises(self):
        with pytest.raises(NumericalFault):
            with fp.fp_guard("test.overflow"):
                np.full(4, 1e308) * 10.0

    def test_clean_arithmetic_passes_through(self):
        with fp.fp_guard("test.clean"):
            out = np.ones(4) / 2.0
        assert np.all(out == 0.5)


class TestKernelGuard:
    def test_noop_when_unarmed(self):
        assert not fp.fp_armed()
        with np.errstate(invalid="ignore", divide="ignore"):
            with fp.kernel_guard("test.unarmed"):
                y = np.zeros(2) / np.zeros(2)
        assert np.isnan(y).all()  # propagated silently, as before

    def test_traps_when_armed(self):
        sanitize.enable("fp")
        with pytest.raises(NumericalFault):
            with fp.kernel_guard("test.armed"):
                np.zeros(2) / np.zeros(2)


class TestCheckFinite:
    def test_passthrough_unarmed(self):
        x = np.array([np.nan, 1.0])
        assert fp.check_finite(x, "test") is x

    def test_armed_raises_with_count(self):
        sanitize.enable("fp")
        with pytest.raises(NumericalFault) as exc_info:
            fp.check_finite(np.array([np.nan, np.inf, 1.0]), "test.vec")
        assert exc_info.value.context["nonfinite"] == 2

    def test_force_checks_even_unarmed(self):
        with pytest.raises(NumericalFault):
            fp.check_finite(np.array([np.inf]), "test.forced", force=True)

    def test_finite_array_returned(self):
        sanitize.enable("fp")
        x = np.ones(3)
        assert fp.check_finite(x, "test") is x


class TestArming:
    def test_sanitizing_context_restores(self):
        assert sanitize.enabled_modes() == ()
        with sanitize.sanitizing("fp"):
            assert sanitize.enabled_modes() == ("fp",)
        assert sanitize.enabled_modes() == ()

    def test_env_refresh(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "fp")
        assert sanitize.refresh_from_env() == ("fp",)
        monkeypatch.setenv("REPRO_SANITIZE", "")
        assert sanitize.refresh_from_env() == ()

    def test_env_rejects_unknown_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "fp,tsan")
        with pytest.raises(ValueError, match="tsan"):
            sanitize.refresh_from_env()
        monkeypatch.setenv("REPRO_SANITIZE", "")
        sanitize.refresh_from_env()


class TestNanInjectionTrapPath:
    """The fault-injection smoke contract: an injected NaN surfaces as the
    typed NumericalFault, and the resilience chain recovers from it."""

    def _plan(self):
        return faults.FaultPlan(
            faults.FaultSpec(kind="nan-kernel", count=1), seed=0
        )

    def test_injected_nan_raises_numerical_fault(self):
        case = CASE_BUILDERS["tc1"](n=9)
        with sanitize.sanitizing("fp"), faults.inject(self._plan()):
            with pytest.raises(NumericalFault) as exc_info:
                solve_case(case, precond="schur1", nparts=2, maxiter=50)
        assert exc_info.value.status == "diverged"

    def test_resilient_chain_recovers_under_sanitizer(self):
        case = CASE_BUILDERS["tc1"](n=9)
        with sanitize.sanitizing("fp"), faults.inject(self._plan()):
            res = ResilientSolver().solve(
                case, precond="schur1", nparts=2, maxiter=50
            )
        assert res.converged and res.recovered
