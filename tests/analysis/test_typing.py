"""Static typing gate: py.typed shipping and the mypy islands.

mypy is a CI-only dependency (the runtime image stays numpy+scipy);
the checker test skips cleanly where it is not installed.
"""

import importlib.util
import subprocess
import sys
import tomllib
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

HAVE_MYPY = importlib.util.find_spec("mypy") is not None


class TestPyTyped:
    def test_marker_exists(self):
        assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()

    def test_marker_packaged(self):
        pyproject = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        data = pyproject["tool"]["setuptools"]["package-data"]
        assert "py.typed" in data["repro"]


class TestMypyConfig:
    def test_islands_cover_analysis_kernels_factor(self):
        pyproject = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        files = pyproject["tool"]["mypy"]["files"]
        assert {"src/repro/analysis", "src/repro/kernels",
                "src/repro/factor"} <= set(files)

    @pytest.mark.skipif(not HAVE_MYPY,
                        reason="mypy not installed in this environment")
    def test_mypy_islands_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file",
             str(REPO_ROOT / "pyproject.toml")],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
