"""RPR011 model checker: spec invariants, fixture divergences, src clean."""

from pathlib import Path

import pytest

from repro.analysis.proto.machines import (
    BREAKER_SPEC,
    JOB_SPEC,
    MACHINE_SPECS,
    SUPERVISOR_SPEC,
    MachineSpec,
    check_machines,
    model_check,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "proto"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


class TestSpecsAreSound:
    @pytest.mark.parametrize("spec", MACHINE_SPECS, ids=lambda s: s.name)
    def test_model_check_proves_invariants(self, spec):
        check = model_check(spec)
        assert check.ok, check.violations
        assert "terminals-absorbing" in check.invariants
        assert check.states_explored == len(spec.states)

    def test_supervisor_product_space(self):
        check = model_check(SUPERVISOR_SPEC)
        assert "fence-only-from-suspect" in check.invariants
        assert "product-space-reaches-terminal" in check.invariants
        assert check.product_states_explored > len(SUPERVISOR_SPEC.states)

    def test_job_drain_invariant(self):
        check = model_check(JOB_SPEC)
        assert "drain-never-strands-a-job" in check.invariants
        assert "every-state-reaches-a-terminal" in check.invariants

    def test_breaker_single_probe_and_recovery(self):
        check = model_check(BREAKER_SPEC)
        assert "half-open-admits-exactly-one-probe" in check.invariants
        assert "every-state-recovers-to-initial" in check.invariants


class TestModelCheckerCatchesBadSpecs:
    def test_transition_out_of_terminal(self):
        spec = MachineSpec(
            name="bad", module="x.py", states=("a", "b"), initial="a",
            terminals=("b",),
            transitions=(("a", "go", "b"), ("b", "back", "a")),
        )
        check = model_check(spec)
        assert any("terminal state 'b' has outgoing" in v
                   for v in check.violations)

    def test_unreachable_and_stranded_states(self):
        spec = MachineSpec(
            name="bad", module="x.py", states=("a", "b", "c"), initial="a",
            terminals=("c",),
            transitions=(("a", "go", "c"), ("b", "spin", "b")),
        )
        check = model_check(spec)
        assert any("unreachable" in v for v in check.violations)
        assert any("cannot reach any terminal" in v
                   for v in check.violations)


class TestImplementationCrossCheck:
    def test_fixture_divergences_fire(self):
        violations, _checks = check_machines(FIXTURES / "machines_bad")
        msgs = "\n".join(v.message for v in violations)
        assert all(v.code == "RPR011" for v in violations)
        assert "record_ready assigns state 'ready' without guarding" in msgs
        assert "assigns undeclared state 'zombie'" in msgs
        assert "'suspect' is never entered" in msgs
        assert "_TRANSITIONS['queued'] diverges" in msgs and "shed" in msgs
        assert "_TRANSITIONS['running'] diverges" in msgs

    def test_src_repro_matches_every_spec(self):
        violations, checks = check_machines(SRC)
        assert [v.message for v in violations] == []
        assert len(checks) == len(MACHINE_SPECS)
        assert all(c.ok for c in checks)

    def test_missing_modules_model_check_only(self, tmp_path):
        violations, checks = check_machines(tmp_path)
        assert violations == [] and all(c.ok for c in checks)
