"""RPR012 lock-order analysis: fixture deadlocks fire, src/repro is clean."""

from pathlib import Path

from repro.analysis.proto.locks import check_locks

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "proto"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


class TestBadTree:
    def test_cycle_reacquire_and_blocking_fire(self):
        violations, summary = check_locks(FIXTURES / "locks_bad")
        msgs = "\n".join(v.message for v in violations)
        assert all(v.code == "RPR012" for v in violations)
        assert "lock-order cycle (potential deadlock)" in msgs
        assert "re-acquires non-reentrant lock" in msgs
        assert "blocking call time.sleep()" in msgs
        assert "blocking call q.get() with no timeout" in msgs
        assert summary["cycles"] == [[
            "service/locky.py:Alpha._la", "service/locky.py:Beta._lb",
        ]]

    def test_cycle_anchored_at_first_edge(self):
        violations, _ = check_locks(FIXTURES / "locks_bad")
        cycle = [v for v in violations if "lock-order cycle" in v.message]
        assert len(cycle) == 1
        assert cycle[0].path.endswith("service/locky.py")


class TestSrcTree:
    def test_src_repro_has_no_findings(self):
        violations, summary = check_locks(SRC)
        assert [v.message for v in violations] == []
        assert summary["cycles"] == []
        # the analysis actually saw the real locks, it didn't scan nothing
        locks = summary["locks"]
        assert any("job.py:JobTable._lock" in k for k in locks)
        assert any("breaker.py" in k for k in locks)
        assert any("factor/cache.py:FactorCache._lock" in k for k in locks)
        assert summary["functions_scanned"] > 100

    def test_blocking_call_in_with_context_expr_seen(self, tmp_path):
        # the context-manager expression of a non-lock `with` runs under
        # any locks already held — calls inside it must not be invisible
        tree = tmp_path / "service"
        tree.mkdir()
        (tree / "w.py").write_text(
            "import threading\n\n\n"
            "class W:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n\n"
            "    def bad(self, q):\n"
            "        with self._lock:\n"
            "            with q.get():\n"
            "                pass\n"
        )
        violations, _ = check_locks(tmp_path)
        msgs = [v.message for v in violations]
        assert len(msgs) == 1
        assert "q.get() with no timeout" in msgs[0]
        assert "while holding" in msgs[0]

    def test_cycle_search_truncation_reported(self):
        violations, summary = check_locks(FIXTURES / "locks_bad")
        assert summary["cycle_search_truncated"] is False

    def test_condition_wait_on_held_lock_exempt(self, tmp_path):
        tree = tmp_path / "service"
        tree.mkdir()
        (tree / "w.py").write_text(
            "import threading\n\n\n"
            "class W:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n\n"
            "    def sleep_until_kicked(self):\n"
            "        with self._cond:\n"
            "            self._cond.wait()\n\n"
            "    def bad(self, q):\n"
            "        with self._cond:\n"
            "            q.join()\n"
        )
        violations, _ = check_locks(tmp_path)
        msgs = [v.message for v in violations]
        assert len(msgs) == 1 and "q.join()" in msgs[0]
