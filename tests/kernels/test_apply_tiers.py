"""Tier- and backend-equivalence of the apply kernels — bitwise.

The contract (docs/performance.md, "Apply phase"): every tier and every
numpy-tier backend of the triangular sweeps, the fused ILU apply and the
CSR matvec produces bit-identical output.  These tests compare raw arrays
with ``np.array_equal`` — no tolerances anywhere.
"""

import os

import numpy as np
import pytest
import scipy.sparse as sp

from repro import kernels
from repro.factor.ilu0 import ilu0
from repro.factor.ilut import ilut
from repro.kernels import apply as apply_kernels
from repro.kernels import applyspec, numba_tier
from repro.sparse.triangular import TriangularFactor, build_levels

NUMBA = numba_tier.available() and numba_tier.load_apply() is not None


@pytest.fixture
def backend_env():
    """Restore REPRO_APPLY_BACKEND after a test that forces it."""
    prev = os.environ.get("REPRO_APPLY_BACKEND")
    yield
    if prev is None:
        os.environ.pop("REPRO_APPLY_BACKEND", None)
    else:
        os.environ["REPRO_APPLY_BACKEND"] = prev


def _test_matrix(n=300, seed=7):
    rng = np.random.default_rng(seed)
    a = sp.diags(
        [np.full(n - 1, -1.0), 4.0 + rng.random(n), np.full(n - 1, -1.3)],
        [-1, 0, 1], format="csr",
    )
    return sp.csr_matrix(a + sp.random(n, n, 0.02, random_state=seed))


def _tier_solutions(fac, b, backend_env):
    """fac.solve(b) under every tier/backend this process supports."""
    out = {}
    with kernels.forced_tier("reference"):
        out["reference"] = fac.solve(b)
    with kernels.forced_tier("numpy"):
        out["numpy_auto"] = fac.solve(b)
        os.environ["REPRO_APPLY_BACKEND"] = "levels"
        out["numpy_levels"] = fac.solve(b)
        if apply_kernels.superlu_available():
            os.environ["REPRO_APPLY_BACKEND"] = "superlu"
            out["numpy_superlu"] = fac.solve(b)
        os.environ.pop("REPRO_APPLY_BACKEND", None)
    if NUMBA:
        with kernels.forced_tier("numba"):
            out["numba"] = fac.solve(b)
    return out


class TestTriangularTierEquivalence:
    @pytest.mark.parametrize("factorizer", [ilu0, lambda a: ilut(a, 1e-4, 15)])
    def test_fused_ilu_solve_bitwise_across_tiers(self, factorizer, backend_env, rng):
        a = _test_matrix()
        fac = factorizer(a)
        b = rng.standard_normal(a.shape[0])
        sols = _tier_solutions(fac, b, backend_env)
        ref = sols.pop("reference")
        for name, x in sols.items():
            assert np.array_equal(x, ref), f"{name} differs from reference"

    def test_solo_sweeps_bitwise_across_tiers(self, backend_env, rng):
        a = _test_matrix(seed=11)
        fac = ilut(a, 1e-4, 15)
        b = rng.standard_normal(a.shape[0])
        for tri in (fac.L, fac.U):
            sols = _tier_solutions(tri, b, backend_env)
            ref = sols.pop("reference")
            for name, x in sols.items():
                assert np.array_equal(x, ref), f"{name} sweep differs from reference"

    def test_fused_equals_composed_sweeps(self, rng):
        fac = ilut(_test_matrix(seed=3), 1e-4, 15)
        b = rng.standard_normal(fac.n)
        assert np.array_equal(fac.solve(b), fac.U.solve(fac.L.solve(b)))

    def test_solve_does_not_mutate_rhs(self, rng):
        fac = ilu0(_test_matrix(seed=5))
        b = rng.standard_normal(fac.n)
        b0 = b.copy()
        for tier in ("reference", "numpy"):
            with kernels.forced_tier(tier):
                fac.solve(b)
                fac.L.solve(b)
                fac.U.solve(b)
        assert np.array_equal(b, b0)

    def test_levels_backend_forced(self, backend_env, rng):
        """REPRO_APPLY_BACKEND=levels must not touch SuperLU at all."""
        os.environ["REPRO_APPLY_BACKEND"] = "levels"
        fac = ilut(_test_matrix(seed=13), 1e-4, 15)
        b = rng.standard_normal(fac.n)
        with kernels.forced_tier("numpy"):
            x = fac.solve(b)
        assert fac.L._superlu_slots is None and fac.U._superlu_slots is None
        with kernels.forced_tier("reference"):
            assert np.array_equal(x, fac.solve(b))

    def test_unknown_backend_rejected(self, backend_env):
        os.environ["REPRO_APPLY_BACKEND"] = "cuda"
        with pytest.raises(ValueError):
            apply_kernels.backend()


class TestMatvecTiers:
    def test_matvec_bitwise_across_tiers(self, rng):
        a = _test_matrix(seed=17)
        x = rng.standard_normal(a.shape[0])
        with kernels.forced_tier("reference"):
            ref = apply_kernels.csr_matvec(a, x)
        with kernels.forced_tier("numpy"):
            assert np.array_equal(apply_kernels.csr_matvec(a, x), ref)
        if NUMBA:
            with kernels.forced_tier("numba"):
                assert np.array_equal(apply_kernels.csr_matvec(a, x), ref)

    def test_matvec_matches_scipy(self, rng):
        a = _test_matrix(seed=19)
        x = rng.standard_normal(a.shape[0])
        with kernels.forced_tier("reference"):
            assert np.array_equal(apply_kernels.csr_matvec(a, x), a @ x)

    def test_spec_matvec_empty_rows(self):
        a = sp.csr_matrix((4, 4))
        y = np.empty(4)
        applyspec.csr_matvec(a.indptr, a.indices, a.data, np.ones(4), y)
        assert np.array_equal(y, np.zeros(4))


class TestProbeVerification:
    def test_probe_runs_once_and_accepts(self, rng, monkeypatch):
        calls = []
        orig = apply_kernels.gstrs_sweeps

        def counting(*args, **kw):
            calls.append(1)
            return orig(*args, **kw)

        monkeypatch.setattr(apply_kernels, "gstrs_sweeps", counting)
        fac = ilut(_test_matrix(seed=23), 1e-4, 15)
        b = rng.standard_normal(fac.n)
        with kernels.forced_tier("numpy"):
            x1 = fac.solve(b)
            x2 = fac.solve(b)
        assert np.array_equal(x1, x2)
        assert fac._fused_ok is True
        assert len(calls) == 2  # probe compares, it does not re-run gstrs

    def test_probe_mismatch_falls_back(self, rng, monkeypatch):
        """A backend that stops being bit-identical is dropped, not trusted."""
        orig = apply_kernels.gstrs_sweeps

        def corrupted(n, lslot, uslot, b):
            return np.nextafter(orig(n, lslot, uslot, b), np.inf)

        monkeypatch.setattr(apply_kernels, "gstrs_sweeps", corrupted)
        fac = ilut(_test_matrix(seed=29), 1e-4, 15)
        b = rng.standard_normal(fac.n)
        with kernels.forced_tier("numpy"):
            x = fac.solve(b)
        assert fac._fused_ok is False
        with kernels.forced_tier("reference"):
            assert np.array_equal(x, fac.solve(b))

    def test_verify_disabled_skips_probe(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_APPLY_VERIFY", "0")
        assert not apply_kernels.verify_enabled()
        fac = ilut(_test_matrix(seed=31), 1e-4, 15)
        b = rng.standard_normal(fac.n)
        with kernels.forced_tier("numpy"):
            fac.solve(b)
        assert fac._fused_ok is True


class TestLevelSchedulerEdgeCases:
    """Empty-level / singleton-row suite for the level scheduler and the
    slot-sweep backend built on it."""

    def test_singleton_matrix(self, backend_env, rng):
        t = TriangularFactor(sp.csr_matrix((1, 1)), np.array([2.0]), lower=False)
        assert t.num_levels == 1
        for tier in ("reference", "numpy"):
            with kernels.forced_tier(tier):
                assert np.array_equal(t.solve(np.array([3.0])), np.array([1.5]))

    def test_diagonal_only_factor_single_level(self, backend_env, rng):
        n = 7
        t = TriangularFactor(sp.csr_matrix((n, n)), np.arange(1.0, n + 1.0), lower=False)
        assert t.num_levels == 1
        b = rng.standard_normal(n)
        sols = _tier_solutions(t, b, backend_env)
        ref = sols.pop("reference")
        for name, x in sols.items():
            assert np.array_equal(x, ref), name

    def test_empty_strict_rows_inside_levels(self, backend_env, rng):
        # half the rows have no strict entries (level 0), half depend on
        # them (level 1): exercises zero-count rows in the slot sweep
        n = 100
        rows = np.arange(1, n, 2)
        l = sp.coo_matrix(
            (np.full(len(rows), 0.5), (rows, rows - 1)), shape=(n, n)
        ).tocsr()
        t = TriangularFactor(l, None, lower=True)
        assert t.num_levels == 2
        b = rng.standard_normal(n)
        sols = _tier_solutions(t, b, backend_env)
        ref = sols.pop("reference")
        for name, x in sols.items():
            assert np.array_equal(x, ref), name

    def test_chain_every_level_singleton(self, backend_env, rng):
        # bidiagonal chain: n levels of one row each — the slot sweep's
        # worst case and the shape that motivated the superlu backend
        n = 60
        l = sp.diags([rng.random(n - 1) + 0.5], [-1], format="csr")
        t = TriangularFactor(sp.csr_matrix(l), None, lower=True)
        assert t.num_levels == n
        b = rng.standard_normal(n)
        sols = _tier_solutions(t, b, backend_env)
        ref = sols.pop("reference")
        for name, x in sols.items():
            assert np.array_equal(x, ref), name

    def test_prepare_level_slots_partitions_entries(self):
        l = sp.tril(sp.random(50, 50, 0.2, random_state=2), -1, format="csr")
        sched = build_levels(l, lower=True)
        levels = apply_kernels.prepare_level_slots(l, sched, lower=True)
        total = sum(len(rows) for slots in levels for rows, _, _ in slots)
        assert total == l.nnz

    def test_empty_matrix_zero_slots(self):
        l = sp.csr_matrix((5, 5))
        sched = build_levels(l, lower=True)
        levels = apply_kernels.prepare_level_slots(l, sched, lower=True)
        assert levels == [[]]


@pytest.mark.skipif(not NUMBA, reason="numba not installed")
class TestNumbaApplyTier:
    def test_jitted_kernels_match_spec(self, rng):
        fwd, bwd, mv = numba_tier.load_apply()
        l = sp.tril(sp.random(80, 80, 0.1, random_state=4), -1, format="csr")
        l.sort_indices()
        b = rng.standard_normal(80)
        x_jit, x_ref = b.copy(), b.copy()
        fwd(l.indptr, l.indices, l.data, x_jit)
        applyspec.forward_unit(l.indptr, l.indices, l.data, x_ref)
        assert np.array_equal(x_jit, x_ref)
        u = sp.csr_matrix(l.T)
        u.sort_indices()
        x_jit, x_ref = b.copy(), b.copy()
        bwd(u.indptr, u.indices, u.data, x_jit)
        applyspec.backward_unit(u.indptr, u.indices, u.data, x_ref)
        assert np.array_equal(x_jit, x_ref)
