"""Kernel-tier dispatch policy and cross-tier factor equality.

The bit-compatibility contract (ISSUE 4, in the spirit of Dong & Cooperman):
the NumPy band tier, the scalar rowspec sweeps, and the numba tier must all
produce byte-identical factors, and must match the reference tier exactly
whenever no |value| ties occur in the ILUT fill-cap selection (random data
breaks all ties, so these matrices exercise the exact-match regime).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import kernels
from repro.factor import cache as factor_cache
from repro.resilience.errors import FactorizationBreakdown
from repro.factor.ilu0 import ilu0
from repro.factor.ilut import ilut
from repro.kernels import band, numba_tier, rowspec
from tests.conftest import random_nonsymmetric_csr, random_spd_csr


@pytest.fixture(autouse=True)
def _no_cache():
    """Tier-equality tests must recompute, never reuse a cached factor."""
    factor_cache.configure(enabled=False)
    yield
    factor_cache.configure(enabled=True)


def _assert_factors_equal(fa, fb):
    """Bitwise identity of two ILUFactorizations (structure and values)."""
    for la, lb in ((fa.l_strict, fb.l_strict), (fa.u_upper, fb.u_upper)):
        assert np.array_equal(la.indptr, lb.indptr)
        assert np.array_equal(la.indices, lb.indices)
        assert np.array_equal(la.data, lb.data)
    assert fa.stats.floored_pivots == fb.stats.floored_pivots


def _tiers(fn):
    """Run ``fn`` under reference and numpy tiers; return both factors."""
    with kernels.forced_tier("reference"):
        f_ref = fn()
    with kernels.forced_tier("numpy"):
        f_np = fn()
    return f_ref, f_np


class TestIlu0TierEquality:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_nonsymmetric_bitwise(self, seed):
        a = random_nonsymmetric_csr(40, 0.15, seed)
        _assert_factors_equal(*_tiers(lambda: ilu0(a)))

    def test_shift_bitwise(self):
        a = random_spd_csr(30, 0.2, 3)
        _assert_factors_equal(*_tiers(lambda: ilu0(a, shift=0.01)))

    def test_floored_pivot_count_matches(self):
        # pivot of row 1 eliminates to exactly zero -> floored on every tier
        a = sp.csr_matrix(np.array([[1.0, 2.0], [2.0, 4.0]]))
        f_ref, f_np = _tiers(lambda: ilu0(a))
        assert f_ref.stats.floored_pivots == 1
        _assert_factors_equal(f_ref, f_np)


class TestIlutTierEquality:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_nonsymmetric_bitwise(self, seed):
        a = random_nonsymmetric_csr(40, 0.15, seed)
        _assert_factors_equal(*_tiers(lambda: ilut(a, 1e-3, 10)))

    def test_no_dropping_large_fill(self):
        a = random_nonsymmetric_csr(25, 0.25, 4)
        _assert_factors_equal(*_tiers(lambda: ilut(a, 0.0, 25)))

    def test_tiny_fill_cap(self):
        # the fill-cap selection path; random values leave no |value| ties
        a = random_spd_csr(35, 0.3, 5)
        _assert_factors_equal(*_tiers(lambda: ilut(a, 0.0, 2)))

    def test_shift_bitwise(self):
        a = random_nonsymmetric_csr(30, 0.2, 6)
        _assert_factors_equal(*_tiers(lambda: ilut(a, 1e-4, 8, shift=0.05)))

    def test_solution_quality_identical(self):
        a = random_spd_csr(50, 0.15, 7)
        b = np.arange(1.0, 51.0)
        f_ref, f_np = _tiers(lambda: ilut(a, 1e-3, 6))
        assert np.array_equal(f_ref.solve(b), f_np.solve(b))


class TestBreakdownParityAcrossTiers:
    """breakdown_frac accounting must be preserved by the fast kernels."""

    @staticmethod
    def _degenerate(blocks=4):
        # each 2x2 block zeroes its second pivot: floored = blocks, n = 2*blocks
        blk = np.array([[1.0, 2.0], [2.0, 4.0]])
        return sp.csr_matrix(sp.block_diag([blk] * blocks, format="csr"))

    @pytest.mark.parametrize("factor", [
        lambda a, **kw: ilu0(a, **kw),
        lambda a, **kw: ilut(a, 1e-3, 4, **kw),
    ])
    def test_identical_breakdown_message(self, factor):
        a = self._degenerate()
        msgs = []
        for tier in ("reference", "numpy"):
            with kernels.forced_tier(tier):
                with pytest.raises(FactorizationBreakdown) as exc:
                    factor(a, breakdown_frac=0.25)
                msgs.append(str(exc.value))
        assert msgs[0] == msgs[1]
        assert "pivots collapsed" in msgs[0]

    def test_identical_floored_counts_below_threshold(self):
        a = self._degenerate()
        f_ref, f_np = _tiers(lambda: ilu0(a, breakdown_frac=0.75))
        assert f_ref.stats.floored_pivots == 4
        assert f_np.stats.floored_pivots == 4


class TestBandVsRowspec:
    """The scalar rowspec sweeps are the band kernels' specification."""

    def test_ilut_sweeps_bitwise(self):
        a = random_nonsymmetric_csr(30, 0.2, 8)
        n = a.shape[0]
        norms = band.row_norms2(n, a.indptr, a.data)
        args = (n, a.indptr, a.indices, a.data, 1e-3, 5, 0.0, norms)
        vec = band.ilut_factor(*args)
        scal = band.ilut_factor(*args, sweep=rowspec.ilut_sweep)
        for x, y in zip(vec, scal):
            assert np.array_equal(x, y)

    def test_ilu0_sweeps_bitwise(self):
        a = random_nonsymmetric_csr(30, 0.2, 9)
        n = a.shape[0]
        norms = band.row_norms_inf(n, a.indptr, a.data)
        args = (n, a.indptr, a.indices, a.data, norms)
        lu_v, fl_v = band.ilu0_factor(*args)
        lu_s, fl_s = band.ilu0_factor(*args, sweep=rowspec.ilu0_sweep)
        assert np.array_equal(lu_v, lu_s)
        assert fl_v == fl_s


class TestNumbaTier:
    def test_matches_numpy_exactly(self):
        pytest.importorskip("numba")
        a = random_nonsymmetric_csr(40, 0.15, 10)
        with kernels.forced_tier("numpy"):
            f_np = ilut(a, 1e-4, 8)
            f0_np = ilu0(a)
        with kernels.forced_tier("numba"):
            f_nb = ilut(a, 1e-4, 8)
            f0_nb = ilu0(a)
        _assert_factors_equal(f_np, f_nb)
        _assert_factors_equal(f0_np, f0_nb)

    def test_numba_without_numba_rejected(self):
        if numba_tier.available():
            pytest.skip("numba present in this environment")
        with pytest.raises(RuntimeError, match="numba is not installed"):
            kernels.set_tier("numba")


class TestDispatchPolicy:
    def test_require_reference_wins_over_forced(self):
        with kernels.forced_tier("numpy"):
            assert kernels.resolve(100, 5, require_reference=True) == "reference"

    def test_auto_uses_fast_tier_when_economical(self):
        tier = kernels.resolve(100, 5)
        assert tier in ("numpy", "numba")
        assert tier == ("numba" if numba_tier.available() else "numpy")

    def test_economy_gate_bandwidth_cap(self):
        assert kernels.band_economical(1000, kernels.BAND_BW_CAP)
        assert not kernels.band_economical(1000, kernels.BAND_BW_CAP + 1)
        assert kernels.resolve(1000, kernels.BAND_BW_CAP + 1) == "reference"

    def test_economy_gate_memory_cap(self):
        # workspace 2*(n+bw+1)*(2bw+1)*8 bytes blows the 128 MiB cap
        assert not kernels.band_economical(10**6, 100)
        assert kernels.resolve(10**6, 100) == "reference"

    def test_forced_tier_bypasses_economy_gate(self):
        with kernels.forced_tier("numpy"):
            assert kernels.resolve(1000, 10**4) == "numpy"

    def test_env_var_forces_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_TIER", "numpy")
        assert kernels.get_tier() == "numpy"
        assert kernels.resolve(1000, 10**4) == "numpy"
        monkeypatch.setenv("REPRO_KERNEL_TIER", "reference")
        assert kernels.resolve(100, 5) == "reference"

    def test_env_var_garbage_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_TIER", "turbo")
        assert kernels.get_tier() is None

    def test_set_tier_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel tier"):
            kernels.set_tier("gpu")

    def test_forced_tier_restores_previous_policy(self):
        kernels.set_tier(None)
        with kernels.forced_tier("reference"):
            assert kernels.get_tier() == "reference"
        assert kernels.get_tier() is None

    def test_available_tiers_shape(self):
        tiers = kernels.available_tiers()
        assert tiers[:2] == ("reference", "numpy")
        assert ("numba" in tiers) == numba_tier.available()
