import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils.validation import check_square, check_vector, ensure_csr, require


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")


class TestCheckSquare:
    def test_accepts_square(self):
        check_square(sp.eye(4, format="csr"))

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            check_square(sp.csr_matrix((3, 4)))


class TestCheckVector:
    def test_returns_contiguous_float64(self):
        x = check_vector([1, 2, 3], 3)
        assert x.dtype == np.float64
        assert x.flags["C_CONTIGUOUS"]

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="length"):
            check_vector(np.zeros(2), 3)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="1-D"):
            check_vector(np.zeros((2, 2)), 4)


class TestEnsureCsr:
    def test_converts_coo_and_canonicalizes(self):
        a = sp.coo_matrix(([1.0, 2.0], ([0, 0], [1, 1])), shape=(2, 2))
        c = ensure_csr(a)
        assert c.nnz == 1  # duplicates summed
        assert c[0, 1] == 3.0

    def test_rejects_dense(self):
        with pytest.raises(TypeError):
            ensure_csr(np.eye(2))

    def test_sorts_indices(self):
        a = sp.csr_matrix((np.array([1.0, 2.0]), np.array([2, 0]), np.array([0, 2, 2])), shape=(2, 3))
        c = ensure_csr(a)
        assert c.has_sorted_indices
