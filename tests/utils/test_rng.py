import numpy as np

from repro.utils.rng import make_rng


class TestMakeRng:
    def test_integer_seed_is_deterministic(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(5), make_rng(2).random(5))

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)
