import time

import pytest

from repro.utils.timer import Timer, timed


class TestTimer:
    def test_accumulates_elapsed_time(self):
        t = Timer()
        t.start()
        time.sleep(0.01)
        dt = t.stop()
        assert dt > 0
        assert t.elapsed == pytest.approx(dt)

    def test_multiple_cycles_accumulate(self):
        t = Timer()
        for _ in range(3):
            t.start()
            t.stop()
        assert t.elapsed >= 0

    def test_double_start_raises(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset_clears_state(self):
        t = Timer()
        t.start()
        t.stop()
        t.reset()
        assert t.elapsed == 0.0
        assert not t.running

    def test_running_flag(self):
        t = Timer()
        assert not t.running
        t.start()
        assert t.running
        t.stop()
        assert not t.running


class TestTimedContext:
    def test_charges_block_to_timer(self):
        t = Timer()
        with timed(t):
            time.sleep(0.005)
        assert t.elapsed > 0
        assert not t.running

    def test_stops_on_exception(self):
        t = Timer()
        with pytest.raises(ValueError):
            with timed(t):
                raise ValueError("boom")
        assert not t.running
        assert t.elapsed > 0
