"""Atomic write-and-rename helpers."""

import pytest

from repro.utils.atomic import atomic_write_bytes, atomic_write_text


class TestAtomicWrite:
    def test_writes_and_returns_path(self, tmp_path):
        path = atomic_write_bytes(tmp_path / "a.bin", b"\x00\x01")
        assert path.read_bytes() == b"\x00\x01"

    def test_overwrites_existing(self, tmp_path):
        target = tmp_path / "a.txt"
        atomic_write_text(target, "one")
        atomic_write_text(target, "two")
        assert target.read_text() == "two"

    def test_no_temp_litter(self, tmp_path):
        atomic_write_text(tmp_path / "a.txt", "hello")
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]

    def test_failure_cleans_up_temp(self, tmp_path):
        with pytest.raises(TypeError):
            atomic_write_bytes(tmp_path / "a.bin", "not bytes")  # type: ignore[arg-type]
        assert list(tmp_path.iterdir()) == []

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            atomic_write_text(tmp_path / "no" / "dir" / "a.txt", "x")
