"""Rank-lifecycle state machine: transitions, fencing, classification."""

import pytest

from repro import obs
from repro.comm.backends.supervisor import (
    DEAD,
    READY,
    SPAWNED,
    SUSPECT,
    HeartbeatPolicy,
    RankSupervisor,
)
from repro.resilience.errors import MessageTimeout, RankDeadError


def _events(tracer, name):
    evs = [e for e in tracer.orphan_events if e["name"] == name]
    for s in tracer.spans:
        evs.extend(e for e in s.events if e["name"] == name)
    return evs


class TestHeartbeatPolicy:
    def test_defaults_are_sane(self):
        p = HeartbeatPolicy()
        assert p.poll_interval < p.probe_timeout
        assert p.fence_after >= 1

    @pytest.mark.parametrize("kwargs", [
        {"poll_interval": 0.0},
        {"probe_timeout": -1.0},
        {"fence_after": 0},
        {"startup_timeout": 0.0},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HeartbeatPolicy(**kwargs)


class TestStateMachine:
    def test_initial_state_is_spawned(self):
        sup = RankSupervisor(3)
        assert [sup.state(r) for r in range(3)] == [SPAWNED] * 3

    def test_size_validated(self):
        with pytest.raises(ValueError, match="size"):
            RankSupervisor(0)

    def test_hello_promotes_to_ready(self):
        sup = RankSupervisor(2)
        sup.record_spawn(0, pid=1234)
        sup.record_ready(0)
        assert sup.state(0) == READY
        assert sup.records[0].pid == 1234

    def test_miss_demotes_to_suspect_and_counts(self):
        sup = RankSupervisor(1)
        sup.record_ready(0)
        assert sup.record_miss(0) == SUSPECT
        assert sup.record_miss(0) == SUSPECT
        assert sup.records[0].misses == 2

    def test_probe_reply_recovers_suspect_and_resets_budget(self):
        sup = RankSupervisor(1)
        sup.record_ready(0)
        sup.record_miss(0)
        sup.record_miss(0)
        sup.record_ready(0)
        assert sup.state(0) == READY
        assert sup.records[0].misses == 0

    def test_exit_is_terminal_from_any_state(self):
        for prep in (lambda s: None,
                     lambda s: s.record_ready(0),
                     lambda s: (s.record_ready(0), s.record_miss(0))):
            sup = RankSupervisor(1)
            prep(sup)
            sup.record_exit(0, exitcode=-9)
            assert sup.is_dead(0)
            assert sup.records[0].exitcode == -9
            # late replies from a dead rank are noise, not resurrection
            sup.record_ready(0)
            assert sup.is_dead(0)
            assert sup.record_miss(0) == DEAD

    def test_dead_ranks_enumerates_only_the_dead(self):
        sup = RankSupervisor(4)
        sup.record_exit(1, exitcode=0)
        sup.record_exit(3, exitcode=-9)
        assert sup.dead_ranks() == [1, 3]


class TestFencing:
    def test_fence_only_after_budget_exhausted(self):
        sup = RankSupervisor(1, HeartbeatPolicy(fence_after=3))
        sup.record_ready(0)
        sup.record_miss(0)
        sup.record_miss(0)
        assert not sup.should_fence(0)
        sup.record_miss(0)
        assert sup.should_fence(0)

    def test_fence_not_advised_twice(self):
        sup = RankSupervisor(1, HeartbeatPolicy(fence_after=1))
        sup.record_ready(0)
        sup.record_miss(0)
        assert sup.should_fence(0)
        sup.record_fenced(0)
        sup.record_exit(0, exitcode=-9)
        assert not sup.should_fence(0)
        assert sup.records[0].fenced

    def test_ready_rank_never_fenced(self):
        sup = RankSupervisor(1, HeartbeatPolicy(fence_after=1))
        sup.record_ready(0)
        assert not sup.should_fence(0)

    def test_double_fence_is_a_noop(self):
        # two recovery paths may both decide to fence; the second SIGKILL
        # against an already-fenced rank must not re-emit or re-count
        sup = RankSupervisor(1, HeartbeatPolicy(fence_after=1))
        sup.record_ready(0)
        sup.record_miss(0)
        with obs.tracing() as tracer:
            sup.record_fenced(0)
            sup.record_fenced(0)
        assert len(_events(tracer, "comm.backend.fenced")) == 1
        assert sup.records[0].fenced

    def test_fencing_an_already_dead_rank_is_a_noop(self):
        # the rank crashed (exit recorded) before the fence advice landed:
        # it died on its own, so it must not be reported as fenced
        sup = RankSupervisor(1, HeartbeatPolicy(fence_after=1))
        sup.record_ready(0)
        sup.record_exit(0, exitcode=-9)
        with obs.tracing() as tracer:
            sup.record_fenced(0)
        assert _events(tracer, "comm.backend.fenced") == []
        assert not sup.records[0].fenced
        assert sup.state(0) == DEAD


class TestClassification:
    def test_dead_rank_classifies_as_rank_dead(self):
        sup = RankSupervisor(2)
        sup.record_exit(1, exitcode=-9)
        fault = sup.classify(1, seq=17)
        assert isinstance(fault, RankDeadError)
        assert fault.rank == 1
        assert fault.context["exitcode"] == -9
        assert fault.context["seq"] == 17

    def test_fenced_rank_names_the_fencing(self):
        sup = RankSupervisor(1)
        sup.record_fenced(0)
        sup.record_exit(0, exitcode=-9)
        fault = sup.classify(0)
        assert isinstance(fault, RankDeadError)
        assert fault.context["fenced"] is True
        assert "fenced" in str(fault)

    def test_suspect_rank_stays_retryable(self):
        sup = RankSupervisor(1)
        sup.record_ready(0)
        sup.record_miss(0)
        fault = sup.classify(0)
        assert isinstance(fault, MessageTimeout)
        assert not isinstance(fault, RankDeadError)
        assert fault.context["misses"] == 1


class TestTelemetry:
    def test_lifecycle_emits_backend_events(self):
        with obs.tracing() as tracer:
            sup = RankSupervisor(1, HeartbeatPolicy(fence_after=2))
            sup.record_ready(0)
            sup.record_miss(0)
            sup.record_ready(0)       # recovered
            sup.record_miss(0)
            sup.record_miss(0)
            sup.record_fenced(0)
            sup.record_exit(0, exitcode=-9)
            sup.classify(0)
        assert len(_events(tracer, "comm.backend.heartbeat_miss")) == 3
        (rec,) = _events(tracer, "comm.backend.recovered")
        assert rec["attrs"]["rank"] == 0
        (fenced,) = _events(tracer, "comm.backend.fenced")
        assert fenced["attrs"]["misses"] == 2
        (exit_ev,) = _events(tracer, "comm.backend.rank_exit")
        assert exit_ev["attrs"]["fenced"] is True
        (cls,) = _events(tracer, "comm.backend.classified")
        assert cls["attrs"]["fault"] == "RankDeadError"

    def test_census_snapshot(self):
        sup = RankSupervisor(2)
        sup.record_spawn(0, pid=42)
        sup.record_ready(0)
        sup.record_exit(1, exitcode=0)
        census = sup.census()
        assert census[0]["state"] == READY and census[0]["pid"] == 42
        assert census[1]["state"] == DEAD and census[1]["exitcode"] == 0
