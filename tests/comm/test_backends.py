"""Execution backends: resolution, loopback, and real process lifecycle."""

import os

import numpy as np
import pytest

from repro.comm.backends import (
    BACKEND_ENV,
    BACKEND_NAMES,
    InProcessBackend,
    MultiprocessBackend,
    framing,
    make_backend,
    resolve_backend,
)
from repro.comm.backends.base import TransportBroken, TransportTimeout
from repro.comm.backends.supervisor import HeartbeatPolicy
from repro.comm.communicator import Communicator, RetryPolicy
from repro.resilience.errors import MessageTimeout, RankDeadError


@pytest.fixture()
def mp_backend():
    b = MultiprocessBackend(
        3, heartbeat=HeartbeatPolicy(probe_timeout=0.2, fence_after=2)
    )
    yield b
    b.shutdown()


class TestResolution:
    def test_default_is_inprocess(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        backend, owned = resolve_backend(None, 4)
        assert isinstance(backend, InProcessBackend) and owned

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "multiprocess")
        backend, owned = resolve_backend(None, 2)
        assert isinstance(backend, MultiprocessBackend) and owned
        backend.shutdown()

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "multiprocess")
        backend, _ = resolve_backend("inprocess", 2)
        assert isinstance(backend, InProcessBackend)

    def test_instance_passthrough_not_owned(self):
        mine = InProcessBackend(3)
        backend, owned = resolve_backend(mine, 3)
        assert backend is mine and not owned

    def test_instance_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="sized for"):
            resolve_backend(InProcessBackend(3), 4)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_backend("mpi", 2)

    def test_backend_names_constructible(self):
        for name in BACKEND_NAMES:
            b = make_backend(name, 1)
            assert b.name == name
            b.shutdown()


class TestCommunicatorOwnership:
    def test_owned_backend_shut_down_on_close(self):
        comm = Communicator(2, backend="multiprocess")
        comm.backend.ensure_started()
        pid = comm.backend.rank_pid(0)
        assert pid is not None and os.kill(pid, 0) is None  # alive
        comm.close()
        assert comm.backend.rank_pid(0) is None

    def test_close_is_idempotent(self):
        comm = Communicator(2)
        comm.close()
        comm.close()

    def test_concurrent_close_shuts_down_once(self):
        import threading

        comm = Communicator(2)
        calls = []
        orig_shutdown = comm.backend.shutdown
        comm.backend.shutdown = lambda: (calls.append(1), orig_shutdown())
        barrier = threading.Barrier(4)

        def race():
            barrier.wait(timeout=5.0)
            comm.close()

        threads = [threading.Thread(target=race) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert len(calls) == 1  # exactly one close performed the shutdown

    def test_borrowed_backend_survives_close(self):
        mine = InProcessBackend(2)
        comm = Communicator(2, backend=mine)
        comm.close()
        assert comm.backend is mine  # still usable; caller owns shutdown

    def test_backend_default_retry_policy_adopted(self):
        real = Communicator(2, backend="multiprocess")
        sim = Communicator(2)
        try:
            assert real.retry_policy.timeout > sim.retry_policy.timeout
        finally:
            real.close()
            sim.close()

    def test_explicit_retry_policy_wins(self):
        policy = RetryPolicy(max_retries=1, timeout=0.5)
        comm = Communicator(2, backend="multiprocess", retry_policy=policy)
        try:
            assert comm.retry_policy is policy
        finally:
            comm.close()


class TestInProcessLoopback:
    def test_data_acked_with_payload_echo(self):
        b = InProcessBackend(2)
        payload = np.arange(5.0).tobytes()
        resp = framing.decode_frame(b.request(
            1, framing.encode_frame(framing.DATA, 0, 1, 9, payload), 1.0
        ))
        assert resp.kind == framing.ACK
        assert (resp.src, resp.dst, resp.seq) == (0, 1, 9)
        assert resp.payload == payload

    def test_ping_ponged(self):
        b = InProcessBackend(1)
        resp = framing.decode_frame(b.request(
            0, framing.encode_frame(framing.PING, 0, 0, 1), 1.0
        ))
        assert resp.kind == framing.PONG

    def test_no_real_processes(self):
        b = InProcessBackend(2)
        assert not b.is_real
        assert b.rank_pid(1) is None
        with pytest.raises(ValueError, match="no real processes"):
            b.kill_rank(0)
        with pytest.raises(ValueError, match="no real processes"):
            b.hang_rank(0)

    def test_rank_bounds_checked(self):
        b = InProcessBackend(2)
        with pytest.raises(ValueError, match="rank 2"):
            b.request(2, framing.encode_frame(framing.PING, 0, 2, 0), 1.0)


class TestMultiprocessLifecycle:
    def test_workers_spawn_with_real_pids(self, mp_backend):
        mp_backend.ensure_started()
        pids = [mp_backend.rank_pid(r) for r in range(3)]
        assert all(p is not None and p != os.getpid() for p in pids)
        assert len(set(pids)) == 3

    def test_data_round_trip_bitwise(self, mp_backend):
        payload = np.linspace(0.0, 1.0, 17)
        raw = framing.encode_frame(framing.DATA, 0, 2, 0, payload.tobytes())
        resp = framing.decode_frame(mp_backend.request(2, raw, 1.0))
        assert resp.kind == framing.ACK
        echoed = np.frombuffer(resp.payload, dtype=np.float64)
        assert echoed.tobytes() == payload.tobytes()

    def test_stale_seq_nakked(self, mp_backend):
        new = framing.encode_frame(framing.DATA, 0, 1, 5, b"new")
        old = framing.encode_frame(framing.DATA, 0, 1, 4, b"old")
        assert framing.decode_frame(
            mp_backend.request(1, new, 1.0)).kind == framing.ACK
        resp = framing.decode_frame(mp_backend.request(1, old, 1.0))
        assert resp.kind == framing.NAK
        assert resp.payload == b"stale-seq"

    def test_corrupt_frame_nakked_with_reason(self, mp_backend):
        raw = bytearray(framing.encode_frame(framing.DATA, 0, 1, 6, b"xyzw"))
        raw[-1] ^= 0xFF
        resp = framing.decode_frame(mp_backend.request(1, bytes(raw), 1.0))
        assert resp.kind == framing.NAK
        assert b"checksum" in resp.payload

    def test_probe_healthy_rank(self, mp_backend):
        assert mp_backend.probe(0)
        assert mp_backend.supervisor.state(0) == "ready"

    def test_kill_detected_without_timeout(self, mp_backend):
        mp_backend.ensure_started()
        mp_backend.kill_rank(1)
        assert not mp_backend.check_alive(1)
        with pytest.raises(TransportBroken):
            mp_backend.request(
                1, framing.encode_frame(framing.PING, 1, 1, 1), 5.0
            )
        fault = mp_backend.classify(1)
        assert isinstance(fault, RankDeadError) and fault.rank == 1

    def test_hang_times_out_then_fences(self, mp_backend):
        mp_backend.ensure_started()
        mp_backend.hang_rank(2)
        ping = framing.encode_frame(framing.PING, 2, 2, 1)
        with pytest.raises(TransportTimeout):
            mp_backend.request(2, ping, 0.1)
        # escalate through the miss budget: SUSPECT, then fenced DEAD
        assert mp_backend.handle_timeout(2) == "suspect"
        assert isinstance(mp_backend.classify(2), MessageTimeout)
        assert mp_backend.handle_timeout(2) == "dead"
        assert mp_backend.supervisor.records[2].fenced
        assert isinstance(mp_backend.classify(2), RankDeadError)

    def test_hung_rank_can_resume_before_fencing(self, mp_backend):
        mp_backend.ensure_started()
        mp_backend.hang_rank(0)
        mp_backend.resume_rank(0)
        assert mp_backend.probe(0, timeout=2.0)

    def test_shutdown_reaps_every_worker(self, mp_backend):
        mp_backend.ensure_started()
        pids = [mp_backend.rank_pid(r) for r in range(3)]
        mp_backend.shutdown()
        for pid in pids:
            # kill(pid, 0) raising means the process is gone (daemon
            # children are reaped by join, not left as zombies)
            try:
                os.kill(pid, 0)
                alive = True
            except ProcessLookupError:
                alive = False
            assert not alive

    def test_shutdown_idempotent(self, mp_backend):
        mp_backend.ensure_started()
        mp_backend.shutdown()
        mp_backend.shutdown()

    def test_double_kill_is_a_noop(self, mp_backend):
        mp_backend.ensure_started()
        mp_backend.kill_rank(1)
        mp_backend.kill_rank(1)  # second SIGKILL on a DEAD rank: no-op
        assert mp_backend.supervisor.is_dead(1)
        assert isinstance(mp_backend.classify(1), RankDeadError)

    def test_kill_after_shutdown_does_not_respawn(self, mp_backend):
        # injecting proc-kill into a world that was already shut down must
        # not restart the ranks just to kill one of them
        mp_backend.ensure_started()
        mp_backend.shutdown()
        mp_backend.kill_rank(1)
        mp_backend.hang_rank(1)
        assert all(mp_backend.rank_pid(r) is None for r in range(3))
        assert not mp_backend._started

    def test_kill_before_start_does_not_spawn(self):
        b = MultiprocessBackend(2)
        b.kill_rank(0)
        assert b.rank_pid(0) is None and not b._started

    def test_double_fence_no_second_kill(self, mp_backend):
        mp_backend.ensure_started()
        mp_backend.hang_rank(2)
        for _ in range(2):
            mp_backend.handle_timeout(2)  # exhausts the miss budget, fences
        assert mp_backend.supervisor.records[2].fenced
        exitcode = mp_backend.supervisor.records[2].exitcode
        mp_backend._fence(2)  # concurrent path losing the race: no-op
        assert mp_backend.supervisor.records[2].exitcode == exitcode
        assert isinstance(mp_backend.classify(2), RankDeadError)


class TestExchangeOverBackend:
    def test_ghost_exchange_matches_inprocess_bitwise(self):
        from repro.comm.pattern import CommunicationPattern, ExchangeSpec

        transfers = [
            ExchangeSpec(0, 1, np.array([0, 2]), np.array([0, 1])),
            ExchangeSpec(1, 0, np.array([1]), np.array([0])),
        ]
        pattern = CommunicationPattern(num_ranks=2, transfers=transfers)
        rng = np.random.default_rng(11)
        owned = [rng.standard_normal(3), rng.standard_normal(2)]

        results = {}
        for name in BACKEND_NAMES:
            comm = Communicator(2, backend=name)
            try:
                ghost = [np.zeros(1), np.zeros(2)]
                pattern.exchange(comm, [o.copy() for o in owned], ghost)
                results[name] = [g.copy() for g in ghost]
                assert comm.comm_stats.messages == 2
            finally:
                comm.close()
        for got, want in zip(results["multiprocess"], results["inprocess"]):
            assert got.tobytes() == want.tobytes()
