import pytest

from repro.comm.communicator import Communicator


class TestCommunicator:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            Communicator(0)

    def test_fresh_ledger(self):
        c = Communicator(4)
        assert c.ledger.num_ranks == 4
        assert c.ledger.crit_flops == 0.0

    def test_reset_ledger_returns_old(self):
        c = Communicator(2)
        c.ledger.add_phase(10.0)
        old = c.reset_ledger()
        assert old.crit_flops == 10.0
        assert c.ledger.crit_flops == 0.0
        assert c.ledger.num_ranks == 2

    def test_reset_separates_phases_exactly(self):
        # the driver's pattern: charge setup, reset, charge solve; the two
        # returned ledgers must partition the total with nothing lost
        c = Communicator(4)
        c.ledger.add_phase(100.0, msgs_per_rank=2, bytes_per_rank=64.0)
        setup = c.reset_ledger()
        c.ledger.add_phase(7.0, msgs_per_rank=1, bytes_per_rank=8.0)
        c.ledger.add_allreduce(8)
        solve = c.reset_ledger()

        assert setup.crit_flops == 100.0
        assert setup.allreduces == 0
        assert solve.crit_flops == 7.0
        assert solve.allreduces == 1
        total = c.cumulative_counts()
        for key in ("crit_flops", "crit_msgs", "crit_bytes", "allreduces",
                    "total_flops", "phases"):
            assert total[key] == setup.counts()[key] + solve.counts()[key]

    def test_cumulative_counts_monotone_across_resets(self):
        c = Communicator(2)
        c.ledger.add_phase(5.0)
        before = c.cumulative_counts()
        c.reset_ledger()
        after_reset = c.cumulative_counts()
        assert after_reset == before  # reset must not lose retired work
        c.ledger.add_phase(3.0)
        assert c.cumulative_counts()["crit_flops"] == 8.0
