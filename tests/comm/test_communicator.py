import pytest

from repro.comm.communicator import Communicator


class TestCommunicator:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            Communicator(0)

    def test_fresh_ledger(self):
        c = Communicator(4)
        assert c.ledger.num_ranks == 4
        assert c.ledger.crit_flops == 0.0

    def test_reset_ledger_returns_old(self):
        c = Communicator(2)
        c.ledger.add_phase(10.0)
        old = c.reset_ledger()
        assert old.crit_flops == 10.0
        assert c.ledger.crit_flops == 0.0
        assert c.ledger.num_ranks == 2
