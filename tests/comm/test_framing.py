"""Wire framing: encode/decode round-trip and corruption detection.

The property tests drive the frame codec over arbitrary payloads and
headers, then over a real OS pipe (the transport the multiprocess backend
uses), including truncated and garbled frames — every malformed input must
surface as :class:`MessageCorruption`, never anything else.
"""

import multiprocessing

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.backends import framing
from repro.resilience.errors import MessageCorruption

KINDS = st.sampled_from(framing.FRAME_KINDS)
RANKS = st.integers(min_value=0, max_value=2**15)
SEQS = st.integers(min_value=0, max_value=2**48)
PAYLOADS = st.binary(max_size=512)


class TestEncodeValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown frame kind"):
            framing.encode_frame(99, 0, 1, 0)

    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError, match="seq"):
            framing.encode_frame(framing.DATA, 0, 1, -1)

    def test_kind_names_cover_all_kinds(self):
        assert sorted(framing.KIND_NAMES) == sorted(framing.FRAME_KINDS)


@given(kind=KINDS, src=RANKS, dst=RANKS, seq=SEQS, payload=PAYLOADS)
@settings(max_examples=120, deadline=None)
def test_round_trip_preserves_every_field(kind, src, dst, seq, payload):
    frame = framing.decode_frame(
        framing.encode_frame(kind, src, dst, seq, payload)
    )
    assert (frame.kind, frame.src, frame.dst, frame.seq) == (kind, src, dst, seq)
    assert frame.payload == payload


@given(payload=PAYLOADS)
@settings(max_examples=60, deadline=None)
def test_float64_payload_round_trips_bitwise(payload):
    # pad to a float64 boundary: the ghost exchange ships float64 arrays
    payload = payload + b"\x00" * (-len(payload) % 8)
    raw = framing.encode_frame(framing.DATA, 0, 1, 7, payload)
    out = framing.decode_frame(raw).payload
    assert np.frombuffer(out, dtype=np.float64).tobytes() == payload


@given(kind=KINDS, seq=SEQS, payload=PAYLOADS, data=st.data())
@settings(max_examples=120, deadline=None)
def test_truncation_always_detected(kind, seq, payload, data):
    raw = framing.encode_frame(kind, 0, 1, seq, payload)
    cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    with pytest.raises(MessageCorruption):
        framing.decode_frame(raw[:cut])


@given(kind=KINDS, seq=SEQS, payload=st.binary(min_size=1, max_size=256),
       data=st.data())
@settings(max_examples=120, deadline=None)
def test_single_flipped_bit_always_detected(kind, seq, payload, data):
    """Any one-bit flip anywhere in the frame fails validation.

    A flip in the header breaks magic/kind/length/crc bookkeeping; a flip
    in the payload breaks the CRC-32.  (Flips inside the src/dst/seq header
    fields are excluded: those alter addressing, not integrity, and are
    caught by the response-matching layer instead.)
    """
    raw = bytearray(framing.encode_frame(kind, 0, 1, seq, payload))
    # byte offsets of src, dst, seq in the header: 4s B ii Q I Q
    addressed = set(range(5, 5 + 4 + 4 + 8))
    pos = data.draw(st.integers(min_value=0, max_value=len(raw) - 1)
                    .filter(lambda p: p not in addressed))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    raw[pos] ^= 1 << bit
    try:
        frame = framing.decode_frame(bytes(raw))
    except MessageCorruption:
        return
    # the only undetectable flips change fields the codec cannot know the
    # intent of; everything content-bearing must have been caught
    assert frame.payload == payload


class TestPeekHeaderTruncation:
    """``peek_header`` must reject short input, never crash on it.

    Regression: the original implementation fed whatever arrived straight
    into ``struct.unpack_from``, so a frame shorter than the fixed header
    escaped the :class:`MessageCorruption` taxonomy as a bare
    ``struct.error`` out of the retry loop.
    """

    def test_empty_input_is_corruption(self):
        with pytest.raises(MessageCorruption):
            framing.peek_header(b"")

    @pytest.mark.parametrize("cut", range(framing.HEADER_SIZE))
    def test_every_short_prefix_of_a_real_frame_is_corruption(self, cut):
        raw = framing.encode_frame(framing.DATA, 3, 1, 9, b"xyz")
        with pytest.raises(MessageCorruption) as exc:
            framing.peek_header(raw[:cut])
        # every short prefix of a real frame starts with (a prefix of) the
        # magic, so the taxonomy reports truncation, not bad-magic
        assert exc.value.context["reason"] == "truncated"
        assert exc.value.context["nbytes"] == cut

    def test_short_foreign_bytes_report_bad_magic(self):
        with pytest.raises(MessageCorruption) as exc:
            framing.peek_header(b"zz")
        assert exc.value.context["reason"] == "bad-magic"

    @given(junk=st.binary(max_size=framing.HEADER_SIZE - 1))
    @settings(max_examples=80, deadline=None)
    def test_any_short_input_raises_only_corruption(self, junk):
        with pytest.raises(MessageCorruption):
            framing.peek_header(junk)

    def test_full_header_still_peeks(self):
        raw = framing.encode_frame(framing.PING, 2, 2, 17)
        assert framing.peek_header(raw) == (framing.PING, 2, 2, 17)


ARRAY_DTYPES = st.sampled_from(sorted(framing.ARRAY_DTYPES.values()))


@st.composite
def wire_arrays(draw):
    dtype = np.dtype(draw(ARRAY_DTYPES))
    n = draw(st.integers(min_value=0, max_value=64))
    if dtype.kind == "f":
        values = draw(st.lists(
            st.floats(allow_nan=False, width=64), min_size=n, max_size=n,
        ))
    else:
        info = np.iinfo(dtype)
        values = draw(st.lists(
            st.integers(min_value=int(info.min), max_value=int(info.max)),
            min_size=n, max_size=n,
        ))
    return np.asarray(values, dtype=dtype)


class TestArrayCodec:
    """Zero-copy array payloads: raw little-endian buffers, no pickle."""

    @given(a=wire_arrays())
    @settings(max_examples=120, deadline=None)
    def test_round_trip_is_bitwise(self, a):
        out, end = framing.decode_array(framing.encode_array(a))
        assert out.dtype == np.dtype(a.dtype).newbyteorder("<")
        assert out.tobytes() == a.tobytes()
        assert end == framing.ARRAY_HEADER_SIZE + a.nbytes

    @given(a=wire_arrays())
    @settings(max_examples=60, deadline=None)
    def test_decoded_view_is_zero_copy_and_readonly(self, a):
        buf = framing.encode_array(a)
        out, _ = framing.decode_array(buf)
        assert not out.flags.writeable
        if a.size:
            assert out.base is not None  # a view over the buffer, not a copy

    def test_nan_payload_survives_bitwise(self):
        a = np.array([np.nan, -np.nan, np.inf, -0.0])
        out, _ = framing.decode_array(framing.encode_array(a))
        assert out.tobytes() == a.tobytes()

    @given(arrays=st.lists(wire_arrays(), max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_concatenated_blocks_round_trip(self, arrays):
        buf = framing.encode_arrays(arrays)
        out, end = framing.decode_arrays(buf)
        assert end == len(buf)
        assert len(out) == len(arrays)
        for got, want in zip(out, arrays):
            assert got.tobytes() == want.tobytes()

    def test_2d_arrays_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            framing.encode_array(np.zeros((2, 2)))

    def test_object_dtype_rejected(self):
        with pytest.raises(ValueError, match="not shippable"):
            framing.encode_array(np.array(["a", "b"], dtype=object))

    @given(a=wire_arrays(), data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_truncation_always_detected(self, a, data):
        buf = framing.encode_array(a)
        cut = data.draw(st.integers(min_value=0, max_value=len(buf) - 1))
        with pytest.raises(MessageCorruption):
            framing.decode_array(buf[:cut])

    @given(data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_header_bit_flips_detected_or_content_preserving(self, data):
        """Any single-bit flip in an array-block *header* is detected.

        Magic flips report bad-magic, dtype-code flips either leave the
        table (bad-dtype) or change the element width (truncated body),
        count flips break the length bookkeeping.  Flips that happen to
        keep the header consistent (e.g. shrinking the count) may decode —
        but then the decoded bytes must be a prefix of the original body,
        never garbage.  Body integrity end-to-end is the *frame* CRC's
        job, tested above.
        """
        a = data.draw(wire_arrays())
        buf = bytearray(framing.encode_array(a))
        pos = data.draw(st.integers(
            min_value=0, max_value=framing.ARRAY_HEADER_SIZE - 1,
        ))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        buf[pos] ^= 1 << bit
        try:
            out, _ = framing.decode_array(bytes(buf))
        except MessageCorruption:
            return
        assert a.tobytes().startswith(out.tobytes())


class TestPipeTransport:
    """The codec over a real OS pipe — what the multiprocess backend ships."""

    @pytest.fixture()
    def pipe(self):
        a, b = multiprocessing.Pipe(duplex=True)
        yield a, b
        a.close()
        b.close()

    def test_frames_survive_a_real_pipe_bitwise(self, pipe):
        a, b = pipe
        payload = np.linspace(-1.0, 1.0, 63).tobytes()
        a.send_bytes(framing.encode_frame(framing.DATA, 2, 0, 41, payload))
        frame = framing.decode_frame(b.recv_bytes())
        assert (frame.src, frame.dst, frame.seq) == (2, 0, 41)
        assert frame.payload == payload

    def test_garbled_pipe_frame_raises_corruption(self, pipe):
        a, b = pipe
        raw = bytearray(framing.encode_frame(framing.DATA, 0, 1, 3, b"abcdef"))
        raw[-2] ^= 0x10  # payload bit flip in transit
        a.send_bytes(bytes(raw))
        with pytest.raises(MessageCorruption) as exc:
            framing.decode_frame(b.recv_bytes())
        assert exc.value.context["reason"] == "checksum"

    def test_truncated_pipe_frame_raises_corruption(self, pipe):
        a, b = pipe
        raw = framing.encode_frame(framing.DATA, 0, 1, 3, b"abcdef")
        a.send_bytes(raw[: framing.HEADER_SIZE - 4])
        with pytest.raises(MessageCorruption) as exc:
            framing.decode_frame(b.recv_bytes())
        assert exc.value.context["reason"] == "truncated"

    @given(seq=SEQS, payload=PAYLOADS)
    @settings(max_examples=25, deadline=None)
    def test_pipe_round_trip_property(self, seq, payload):
        a, b = multiprocessing.Pipe(duplex=True)
        try:
            a.send_bytes(framing.encode_frame(framing.DATA, 1, 2, seq, payload))
            frame = framing.decode_frame(b.recv_bytes())
            assert frame.seq == seq and frame.payload == payload
        finally:
            a.close()
            b.close()
