"""Wire framing: encode/decode round-trip and corruption detection.

The property tests drive the frame codec over arbitrary payloads and
headers, then over a real OS pipe (the transport the multiprocess backend
uses), including truncated and garbled frames — every malformed input must
surface as :class:`MessageCorruption`, never anything else.
"""

import multiprocessing

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.backends import framing
from repro.resilience.errors import MessageCorruption

KINDS = st.sampled_from(framing.FRAME_KINDS)
RANKS = st.integers(min_value=0, max_value=2**15)
SEQS = st.integers(min_value=0, max_value=2**48)
PAYLOADS = st.binary(max_size=512)


class TestEncodeValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown frame kind"):
            framing.encode_frame(99, 0, 1, 0)

    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError, match="seq"):
            framing.encode_frame(framing.DATA, 0, 1, -1)

    def test_kind_names_cover_all_kinds(self):
        assert sorted(framing.KIND_NAMES) == sorted(framing.FRAME_KINDS)


@given(kind=KINDS, src=RANKS, dst=RANKS, seq=SEQS, payload=PAYLOADS)
@settings(max_examples=120, deadline=None)
def test_round_trip_preserves_every_field(kind, src, dst, seq, payload):
    frame = framing.decode_frame(
        framing.encode_frame(kind, src, dst, seq, payload)
    )
    assert (frame.kind, frame.src, frame.dst, frame.seq) == (kind, src, dst, seq)
    assert frame.payload == payload


@given(payload=PAYLOADS)
@settings(max_examples=60, deadline=None)
def test_float64_payload_round_trips_bitwise(payload):
    # pad to a float64 boundary: the ghost exchange ships float64 arrays
    payload = payload + b"\x00" * (-len(payload) % 8)
    raw = framing.encode_frame(framing.DATA, 0, 1, 7, payload)
    out = framing.decode_frame(raw).payload
    assert np.frombuffer(out, dtype=np.float64).tobytes() == payload


@given(kind=KINDS, seq=SEQS, payload=PAYLOADS, data=st.data())
@settings(max_examples=120, deadline=None)
def test_truncation_always_detected(kind, seq, payload, data):
    raw = framing.encode_frame(kind, 0, 1, seq, payload)
    cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    with pytest.raises(MessageCorruption):
        framing.decode_frame(raw[:cut])


@given(kind=KINDS, seq=SEQS, payload=st.binary(min_size=1, max_size=256),
       data=st.data())
@settings(max_examples=120, deadline=None)
def test_single_flipped_bit_always_detected(kind, seq, payload, data):
    """Any one-bit flip anywhere in the frame fails validation.

    A flip in the header breaks magic/kind/length/crc bookkeeping; a flip
    in the payload breaks the CRC-32.  (Flips inside the src/dst/seq header
    fields are excluded: those alter addressing, not integrity, and are
    caught by the response-matching layer instead.)
    """
    raw = bytearray(framing.encode_frame(kind, 0, 1, seq, payload))
    # byte offsets of src, dst, seq in the header: 4s B ii Q I Q
    addressed = set(range(5, 5 + 4 + 4 + 8))
    pos = data.draw(st.integers(min_value=0, max_value=len(raw) - 1)
                    .filter(lambda p: p not in addressed))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    raw[pos] ^= 1 << bit
    try:
        frame = framing.decode_frame(bytes(raw))
    except MessageCorruption:
        return
    # the only undetectable flips change fields the codec cannot know the
    # intent of; everything content-bearing must have been caught
    assert frame.payload == payload


class TestPipeTransport:
    """The codec over a real OS pipe — what the multiprocess backend ships."""

    @pytest.fixture()
    def pipe(self):
        a, b = multiprocessing.Pipe(duplex=True)
        yield a, b
        a.close()
        b.close()

    def test_frames_survive_a_real_pipe_bitwise(self, pipe):
        a, b = pipe
        payload = np.linspace(-1.0, 1.0, 63).tobytes()
        a.send_bytes(framing.encode_frame(framing.DATA, 2, 0, 41, payload))
        frame = framing.decode_frame(b.recv_bytes())
        assert (frame.src, frame.dst, frame.seq) == (2, 0, 41)
        assert frame.payload == payload

    def test_garbled_pipe_frame_raises_corruption(self, pipe):
        a, b = pipe
        raw = bytearray(framing.encode_frame(framing.DATA, 0, 1, 3, b"abcdef"))
        raw[-2] ^= 0x10  # payload bit flip in transit
        a.send_bytes(bytes(raw))
        with pytest.raises(MessageCorruption) as exc:
            framing.decode_frame(b.recv_bytes())
        assert exc.value.context["reason"] == "checksum"

    def test_truncated_pipe_frame_raises_corruption(self, pipe):
        a, b = pipe
        raw = framing.encode_frame(framing.DATA, 0, 1, 3, b"abcdef")
        a.send_bytes(raw[: framing.HEADER_SIZE - 4])
        with pytest.raises(MessageCorruption) as exc:
            framing.decode_frame(b.recv_bytes())
        assert exc.value.context["reason"] == "truncated"

    @given(seq=SEQS, payload=PAYLOADS)
    @settings(max_examples=25, deadline=None)
    def test_pipe_round_trip_property(self, seq, payload):
        a, b = multiprocessing.Pipe(duplex=True)
        try:
            a.send_bytes(framing.encode_frame(framing.DATA, 1, 2, seq, payload))
            frame = framing.decode_frame(b.recv_bytes())
            assert frame.seq == seq and frame.payload == payload
        finally:
            a.close()
            b.close()
