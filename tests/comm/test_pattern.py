import numpy as np
import pytest

from repro.comm.communicator import Communicator
from repro.comm.pattern import CommunicationPattern, ExchangeSpec


@pytest.fixture()
def two_rank_pattern():
    # rank 0 sends its owned[2] to rank 1's ghost[0]; rank 1 sends owned[0]
    # to rank 0's ghost[1]
    transfers = [
        ExchangeSpec(src=0, dst=1, send_local=np.array([2]), recv_ghost=np.array([0])),
        ExchangeSpec(src=1, dst=0, send_local=np.array([0]), recv_ghost=np.array([1])),
    ]
    return CommunicationPattern(num_ranks=2, transfers=transfers)


class TestCommunicationPattern:
    def test_exchange_moves_values(self, two_rank_pattern):
        comm = Communicator(2)
        owned = [np.array([1.0, 2.0, 3.0]), np.array([10.0, 20.0])]
        ghost = [np.zeros(2), np.zeros(1)]
        two_rank_pattern.exchange(comm, owned, ghost)
        assert ghost[1][0] == 3.0
        assert ghost[0][1] == 10.0

    def test_exchange_charges_messages_and_bytes(self, two_rank_pattern):
        comm = Communicator(2)
        owned = [np.zeros(3), np.zeros(2)]
        ghost = [np.zeros(2), np.zeros(1)]
        two_rank_pattern.exchange(comm, owned, ghost)
        led = comm.ledger
        assert led.total_msgs == 4  # both endpoints of both transfers
        assert led.total_bytes == 4 * 8
        assert led.crit_msgs == 2

    def test_neighbors_of(self, two_rank_pattern):
        assert two_rank_pattern.neighbors_of(0) == [1]
        assert two_rank_pattern.neighbors_of(1) == [0]
        assert two_rank_pattern.max_neighbor_count() == 1

    def test_empty_pattern(self):
        p = CommunicationPattern(num_ranks=3, transfers=[])
        assert p.max_neighbor_count() == 0
        comm = Communicator(3)
        p.exchange(comm, [np.zeros(1)] * 3, [np.zeros(0)] * 3)
        assert comm.ledger.total_msgs == 0


class TestExchangeEdgeCases:
    def test_empty_interface_transfer(self):
        # a zero-length transfer is legal: nothing moves, nothing breaks
        t = ExchangeSpec(
            src=0, dst=1,
            send_local=np.array([], dtype=np.int64),
            recv_ghost=np.array([], dtype=np.int64),
        )
        assert t.count == 0 and t.max_send == -1 and t.max_recv == -1
        p = CommunicationPattern(num_ranks=2, transfers=[t])
        comm = Communicator(2)
        ghost = [np.zeros(0), np.zeros(0)]
        p.exchange(comm, [np.ones(2), np.ones(2)], ghost)
        assert ghost[1].size == 0

    def test_self_only_partition(self):
        # one rank owning everything: no neighbors, exchange is a no-op
        p = CommunicationPattern(num_ranks=1, transfers=[])
        comm = Communicator(1)
        owned = [np.array([1.0, 2.0])]
        p.exchange(comm, owned, [np.zeros(0)])
        assert comm.ledger.total_msgs == 0
        assert owned[0].tolist() == [1.0, 2.0]

    def test_wrong_rank_count_raises_clear_error(self, two_rank_pattern):
        comm = Communicator(2)
        with pytest.raises(ValueError, match="2 ranks"):
            two_rank_pattern.exchange(comm, [np.zeros(3)], [np.zeros(2)] * 2)

    def test_short_ghost_buffer_raises_clear_error(self, two_rank_pattern):
        comm = Communicator(2)
        owned = [np.zeros(3), np.zeros(2)]
        ghost = [np.zeros(2), np.zeros(0)]  # rank 1's ghost is too short
        with pytest.raises(ValueError, match=r"0->1.*ghost"):
            two_rank_pattern.exchange(comm, owned, ghost)

    def test_short_owned_buffer_raises_clear_error(self, two_rank_pattern):
        comm = Communicator(2)
        owned = [np.zeros(2), np.zeros(2)]  # rank 0 sends owned[2]: missing
        ghost = [np.zeros(2), np.zeros(1)]
        with pytest.raises(ValueError, match="owned"):
            two_rank_pattern.exchange(comm, owned, ghost)
