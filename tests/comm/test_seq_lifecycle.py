"""Envelope seq state across recovery, and straggler accounting."""

import numpy as np
import pytest

from repro.comm.communicator import Communicator
from repro.comm.pattern import CommunicationPattern, ExchangeSpec
from repro.faults import FaultPlan, FaultSpec, inject


class TestAdoptSeq:
    def test_surviving_edges_remap_down_past_the_dead_rank(self):
        prev = Communicator(4)
        # edges: 0->1 (seq advanced 3x), 1->3, 3->1
        for _ in range(3):
            prev.next_seq(0, 1)
        prev.next_seq(1, 3)
        prev.next_seq(3, 1)

        comm = Communicator(3)
        comm.adopt_seq(prev, dead_rank=2)
        # ranks 3 -> 2; rank 0/1 unchanged
        assert comm._seq == {(0, 1): 3, (1, 2): 1, (2, 1): 1}
        # the adopted counter keeps climbing monotonically
        assert comm.next_seq(0, 1) == 3
        assert comm.next_seq(0, 1) == 4

    def test_edges_touching_the_dead_rank_are_dropped(self):
        prev = Communicator(3)
        prev.next_seq(0, 1)
        prev.next_seq(0, 2)   # dst dies
        prev.next_seq(2, 1)   # src dies

        comm = Communicator(2)
        comm.adopt_seq(prev, dead_rank=2)
        assert comm._seq == {(0, 1): 1}
        # the dropped edge restarts from zero in the shrunken world
        assert comm.next_seq(0, 1) == 1

    def test_dead_rank_zero_shifts_every_survivor(self):
        prev = Communicator(3)
        prev.next_seq(1, 2)
        prev.next_seq(2, 1)
        comm = Communicator(2)
        comm.adopt_seq(prev, dead_rank=0)
        assert comm._seq == {(0, 1): 1, (1, 0): 1}

    def test_size_mismatch_rejected(self):
        prev = Communicator(4)
        with pytest.raises(ValueError, match="size-4"):
            Communicator(4).adopt_seq(prev, dead_rank=1)
        with pytest.raises(ValueError, match="expected 3"):
            Communicator(2).adopt_seq(prev, dead_rank=1)


class TestStragglerWaits:
    def _pattern(self):
        transfers = [
            ExchangeSpec(0, 1, np.array([0]), np.array([0])),
            ExchangeSpec(1, 0, np.array([0]), np.array([0])),
        ]
        return CommunicationPattern(num_ranks=2, transfers=transfers)

    def test_counter_starts_at_zero_and_appears_in_stats(self):
        comm = Communicator(2)
        assert comm.comm_stats.straggler_waits == 0
        assert comm.comm_stats.as_dict()["straggler_waits"] == 0

    def test_straggler_injection_counts_waits(self):
        pattern = self._pattern()
        comm = Communicator(2)
        owned = [np.ones(1), np.ones(1)]
        ghost = [np.zeros(1), np.zeros(1)]
        plan = FaultPlan(FaultSpec("straggler", rank=0, count=-1, delay=1e-3))
        with inject(plan):
            pattern.exchange(comm, owned, ghost)
        # only rank 0's sends are late: one of the two transfers
        assert comm.comm_stats.straggler_waits == 1
        assert comm.comm_stats.messages == 2

    def test_clean_exchange_counts_no_waits(self):
        pattern = self._pattern()
        comm = Communicator(2)
        pattern.exchange(
            comm, [np.ones(1), np.ones(1)], [np.zeros(1), np.zeros(1)]
        )
        assert comm.comm_stats.straggler_waits == 0
