"""Worker command protocol: payload codec, store semantics, handler parity.

The worker handlers must be bitwise-identical stand-ins for the driver-side
kernels they replace — every test that checks numerics here asserts exact
byte equality, not closeness, because that is the contract the backend
determinism gate enforces end to end.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.comm.backends import framing, worker
from repro.factor.ilu0 import ilu0
from repro.factor.ilut import ilut
from repro.kernels import apply as apply_kernels


def _laplacian(n: int) -> sp.csr_matrix:
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    return sp.diags([off, main, off], [-1, 0, 1], format="csr")


def _load_matrix_payload(key: str, a: sp.csr_matrix) -> bytes:
    return worker.pack_command(
        worker.OP_LOAD_MATRIX,
        {"key": key, "nrows": a.shape[0], "ncols": a.shape[1]},
        [a.indptr, a.indices, a.data],
    )


def _result(payload: bytes) -> tuple[dict, list]:
    _, meta, arrays = worker.unpack_command(payload)
    return meta, arrays


class TestPayloadCodec:
    def test_round_trip(self):
        arrays = [np.arange(4, dtype=np.float64), np.arange(3, dtype=np.int64)]
        raw = worker.pack_command(
            worker.OP_MATVEC, {"key": "abc", "n": 7}, arrays
        )
        op, meta, out = worker.unpack_command(raw)
        assert op == worker.OP_MATVEC
        assert meta == {"key": "abc", "n": 7}
        for got, want in zip(out, arrays):
            assert got.tobytes() == want.tobytes()

    def test_meta_is_canonical_json(self):
        # sort_keys + compact separators: identical dicts encode identically,
        # so retransmitted commands are byte-identical on the wire
        a = worker.pack_command(worker.OP_APPLY, {"b": 1, "a": 2})
        b = worker.pack_command(worker.OP_APPLY, {"a": 2, "b": 1})
        assert a == b

    def test_unknown_opcode_rejected_on_pack(self):
        with pytest.raises(ValueError, match="unknown worker opcode"):
            worker.pack_command(99, {})

    def test_unknown_opcode_rejected_on_unpack(self):
        raw = bytearray(worker.pack_command(worker.OP_APPLY, {}))
        raw[0] = 99
        with pytest.raises(ValueError, match="unknown worker opcode"):
            worker.unpack_command(bytes(raw))

    def test_truncated_payload_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            worker.unpack_command(b"\x04\x00")

    def test_truncated_meta_rejected(self):
        raw = worker.pack_command(worker.OP_APPLY, {"key": "x" * 40})
        with pytest.raises(ValueError, match="meta truncated"):
            worker.unpack_command(raw[: len(raw) - 10])


class TestSubdomainStore:
    def test_load_matrix_stores_and_counts(self):
        store = worker.SubdomainStore()
        a = _laplacian(6)
        meta, _ = _result(worker.execute(store, _load_matrix_payload("k1", a)))
        assert meta["stored"] and not meta["cached"]
        assert store.loads == 1 and store.cached == 0
        assert (store.matrices["k1"][0] != a).nnz == 0

    def test_repeat_load_hits_key_and_skips_storage(self):
        store = worker.SubdomainStore()
        a = _laplacian(6)
        worker.execute(store, _load_matrix_payload("k1", a))
        meta, _ = _result(worker.execute(store, _load_matrix_payload("k1", a)))
        assert meta["cached"]
        assert store.loads == 1 and store.cached == 1

    def test_load_is_idempotent_for_retransmits(self):
        # a retried CMD (same seq, same payload) must produce the same
        # observable state — content addressing makes the second arrival a
        # no-op rather than a duplicate
        store = worker.SubdomainStore()
        payload = _load_matrix_payload("k1", _laplacian(5))
        first = worker.execute(store, payload)
        worker.execute(store, payload)
        assert len(store.matrices) == 1
        meta, _ = _result(first)
        assert meta["key"] == "k1"


class TestHandlerParity:
    """Worker results must be bitwise equal to the driver-side kernels."""

    def test_matvec_matches_driver_kernel_bitwise(self):
        store = worker.SubdomainStore()
        rng = np.random.default_rng(7)
        a = sp.random(9, 9, density=0.4, random_state=3, format="csr")
        x = rng.standard_normal(9)
        worker.execute(store, _load_matrix_payload("m", a))
        meta, arrays = _result(worker.execute(
            store, worker.pack_command(worker.OP_MATVEC, {"key": "m"}, [x])
        ))
        want = apply_kernels.csr_matvec(a, x)
        assert np.asarray(arrays[0]).tobytes() == want.tobytes()
        assert meta["seconds"] >= 0.0 and meta["cpu_seconds"] >= 0.0

    @pytest.mark.parametrize("alg", ["ilu0", "ilut"])
    def test_worker_factorization_is_bitwise_identical(self, alg):
        store = worker.SubdomainStore()
        a = _laplacian(12)
        worker.execute(store, _load_matrix_payload("m", a))
        meta = {"alg": alg, "matrix_key": "m", "factor_key": "f", "shift": 0.0}
        if alg == "ilut":
            meta.update(drop_tol=1e-3, fill=5)
            want = ilut(a, 1e-3, 5)
        else:
            want = ilu0(a)
        out_meta, arrays = _result(worker.execute(
            store, worker.pack_command(worker.OP_FACTOR, meta)
        ))
        got_l = [np.asarray(v) for v in arrays[:3]]
        got_u = [np.asarray(v) for v in arrays[3:6]]
        for got, want_a in zip(
            got_l + got_u,
            [want.l_strict.indptr, want.l_strict.indices, want.l_strict.data,
             want.u_upper.indptr, want.u_upper.indices, want.u_upper.data],
        ):
            assert got.tobytes() == want_a.tobytes()
        assert out_meta["floored_pivots"] == want.stats.floored_pivots

    def test_apply_matches_driver_solve_bitwise(self):
        store = worker.SubdomainStore()
        a = _laplacian(10)
        fac = ilu0(a)
        load = worker.pack_command(
            worker.OP_LOAD_FACTOR,
            {"key": "f", "n": 10, "shift": fac.stats.shift,
             "floored_pivots": fac.stats.floored_pivots},
            [fac.l_strict.indptr, fac.l_strict.indices, fac.l_strict.data,
             fac.u_upper.indptr, fac.u_upper.indices, fac.u_upper.data],
        )
        worker.execute(store, load)
        r = np.linspace(-1.0, 1.0, 10)
        _, arrays = _result(worker.execute(
            store, worker.pack_command(worker.OP_APPLY, {"key": "f"}, [r])
        ))
        assert np.asarray(arrays[0]).tobytes() == fac.solve(r).tobytes()

    def test_apply_round_trips_the_permutation(self):
        store = worker.SubdomainStore()
        n = 10
        rng = np.random.default_rng(0)
        perm = rng.permutation(n).astype(np.int64)
        a = _laplacian(n).tocsc()[perm][:, perm].tocsr()
        fac = ilu0(a)
        load = worker.pack_command(
            worker.OP_LOAD_FACTOR,
            {"key": "f", "n": n, "has_perm": True, "shift": 0.0,
             "floored_pivots": fac.stats.floored_pivots},
            [fac.l_strict.indptr, fac.l_strict.indices, fac.l_strict.data,
             fac.u_upper.indptr, fac.u_upper.indices, fac.u_upper.data,
             perm],
        )
        worker.execute(store, load)
        r = np.linspace(0.5, 2.0, n)
        _, arrays = _result(worker.execute(
            store, worker.pack_command(worker.OP_APPLY, {"key": "f"}, [r])
        ))
        z_p = fac.solve(r[perm])
        want = np.empty_like(z_p)
        want[perm] = z_p
        assert np.asarray(arrays[0]).tobytes() == want.tobytes()

    def test_apply_parks_z_then_ghost_matvec_reuses_it(self):
        store = worker.SubdomainStore()
        n = 8
        fac = ilu0(_laplacian(n))
        worker.execute(store, worker.pack_command(
            worker.OP_LOAD_FACTOR,
            {"key": "f", "n": n, "shift": 0.0, "floored_pivots": 0},
            [fac.l_strict.indptr, fac.l_strict.indices, fac.l_strict.data,
             fac.u_upper.indptr, fac.u_upper.indices, fac.u_upper.data],
        ))
        r = np.ones(n)
        worker.execute(store, worker.pack_command(
            worker.OP_APPLY, {"key": "f"}, [r]
        ))
        z = store.registers["z"]
        # a 4-row block whose columns are [2 own rows; 2 ghosts]
        block = sp.random(4, 4, density=0.9, random_state=1, format="csr")
        ghosts = np.array([3.0, -2.0])
        worker.execute(store, worker.pack_command(
            worker.OP_LOAD_MATRIX,
            {"key": "b", "nrows": 4, "ncols": 4, "block": True},
            [block.indptr, block.indices, block.data,
             np.array([0, 1]), np.array([2, 5]), np.array([2, 3])],
        ))
        _, arrays = _result(worker.execute(
            store,
            worker.pack_command(worker.OP_MATVEC_GHOSTS, {"key": "b"}, [ghosts]),
        ))
        xsub = np.empty(4)
        xsub[[0, 1]] = z[[2, 5]]
        xsub[[2, 3]] = ghosts
        want = apply_kernels.csr_matvec(block, xsub)
        assert np.asarray(arrays[0]).tobytes() == want.tobytes()

    def test_dot_partial_matches_numpy(self):
        store = worker.SubdomainStore()
        rng = np.random.default_rng(11)
        x, y = rng.standard_normal(31), rng.standard_normal(31)
        _, arrays = _result(worker.execute(
            store, worker.pack_command(worker.OP_DOT_PARTIAL, {}, [x, y])
        ))
        assert float(np.asarray(arrays[0])[0]) == float(np.dot(x, y))


class TestErrorBoundary:
    """Exceptions serialize as typed meta; the worker loop never dies."""

    def test_missing_matrix_reports_keyerror(self):
        store = worker.SubdomainStore()
        meta, _ = _result(worker.execute(
            store,
            worker.pack_command(worker.OP_MATVEC, {"key": "nope"}, [np.ones(2)]),
        ))
        assert meta["etype"] == "KeyError"
        assert "not resident" in meta["error"]
        assert meta["seconds"] >= 0.0

    def test_ghost_matvec_without_z_register_reports_valueerror(self):
        store = worker.SubdomainStore()
        block = sp.identity(3, format="csr")
        worker.execute(store, worker.pack_command(
            worker.OP_LOAD_MATRIX,
            {"key": "b", "nrows": 3, "ncols": 3, "block": True},
            [block.indptr, block.indices, block.data,
             np.array([0, 1, 2]), np.array([0, 1, 2]),
             np.empty(0, dtype=np.int64)],
        ))
        meta, _ = _result(worker.execute(
            store,
            worker.pack_command(
                worker.OP_MATVEC_GHOSTS, {"key": "b"},
                [np.empty(0, dtype=np.float64)],
            ),
        ))
        assert meta["etype"] == "ValueError"
        assert "z-register" in meta["error"]

    def test_garbage_payload_still_yields_a_result_frame(self):
        store = worker.SubdomainStore()
        meta, _ = _result(worker.execute(store, b"\xff\x00garbage"))
        assert meta["etype"] == "ValueError"

    def test_factorization_breakdown_travels_as_typed_meta(self):
        from repro.resilience.errors import FactorizationBreakdown

        store = worker.SubdomainStore()
        # explicitly stored zero pivots so the floored-pivot fraction trips
        # the typed breakdown error
        a = sp.csr_matrix((
            np.array([0.0, 1.0, 1.0, 0.0]),
            (np.array([0, 0, 1, 1]), np.array([0, 1, 0, 1])),
        ), shape=(2, 2))
        with pytest.raises(FactorizationBreakdown):
            ilu0(a, breakdown_frac=0.1)
        worker.execute(store, _load_matrix_payload("m", a))
        meta, _ = _result(worker.execute(store, worker.pack_command(
            worker.OP_FACTOR,
            {"alg": "ilu0", "matrix_key": "m", "factor_key": "f",
             "shift": 0.0, "breakdown_frac": 0.1},
        )))
        assert meta["etype"] == "FactorizationBreakdown"
