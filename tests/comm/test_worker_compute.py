"""Driver-side worker-compute session: gating, ship-once, bitwise parity.

These tests drive :class:`repro.comm.compute.WorkerCompute` against a real
multiprocess backend (2 rank processes) without a full solve, plus the
``request_many`` default that sequential backends inherit.
"""

import numpy as np
import pytest

from repro.comm import compute
from repro.comm.backends import InProcessBackend, framing
from repro.comm.communicator import Communicator
from repro.distributed.layout import Layout
from repro.distributed.ops import DistributedOps
from repro.factor.ilu0 import ilu0


def _factor_entry(key: str, n: int):
    import scipy.sparse as sp

    a = sp.diags([-np.ones(n - 1), 2.0 * np.ones(n), -np.ones(n - 1)],
                 [-1, 0, 1], format="csr")
    fac = ilu0(a)
    meta = {"key": key, "n": n, "shift": fac.stats.shift,
            "floored_pivots": fac.stats.floored_pivots}
    arrays = [fac.l_strict.indptr, fac.l_strict.indices, fac.l_strict.data,
              fac.u_upper.indptr, fac.u_upper.indices, fac.u_upper.data]
    return key, meta, arrays, fac


@pytest.fixture(scope="module")
def mp_comm():
    comm = Communicator(2, backend="multiprocess")
    yield comm
    comm.close()


class TestSessionGating:
    def test_inprocess_backend_gets_no_session(self):
        comm = Communicator(2)
        try:
            assert compute.session(comm) is None
        finally:
            comm.close()

    def test_env_gate_disables_worker_compute(self, mp_comm, monkeypatch):
        monkeypatch.setenv(compute.COMPUTE_ENV, "0")
        assert compute.session(mp_comm) is None

    def test_session_is_cached_per_backend(self, mp_comm, monkeypatch):
        monkeypatch.delenv(compute.COMPUTE_ENV, raising=False)
        wc = compute.session(mp_comm)
        assert wc is not None
        assert compute.session(mp_comm) is wc
        assert wc.backend is mp_comm.backend

    def test_dot_partials_are_opt_in(self, monkeypatch):
        monkeypatch.delenv(compute.DOT_ENV, raising=False)
        assert not compute.dot_enabled()
        monkeypatch.setenv(compute.DOT_ENV, "1")
        assert compute.dot_enabled()


class TestShipOnce:
    def test_factors_ship_exactly_once(self, mp_comm):
        wc = compute.session(mp_comm)
        entries = {}
        for rank in range(2):
            key, meta, arrays, _ = _factor_entry(f"ship-once-{rank}", 6)
            entries[rank] = (key, meta, arrays)
        assert wc.ensure_factors(entries) == 2
        assert wc.is_shipped(0, "ship-once-0")
        assert wc.is_shipped(1, "ship-once-1")
        # same content key: nothing moves the second time
        assert wc.ensure_factors(entries) == 0

    def test_new_session_reships(self, mp_comm):
        """An ``absorb_rank`` recovery builds a fresh session with an empty
        shipped set — state must move again (the workers' own key check
        makes the arrival idempotent)."""
        wc = compute.WorkerCompute(mp_comm)
        key, meta, arrays, _ = _factor_entry("ship-once-0", 6)
        assert not wc.is_shipped(0, key)
        assert wc.ensure_factors({0: (key, meta, arrays)}) == 1


class TestBitwiseParity:
    def test_apply_factors_matches_driver_sweeps(self, mp_comm):
        wc = compute.session(mp_comm)
        layout = Layout.from_sizes([6, 6])
        keys, facs = {}, {}
        entries = {}
        for rank in range(2):
            key, meta, arrays, fac = _factor_entry(f"parity-{rank}", 6)
            entries[rank] = (key, meta, arrays)
            keys[rank], facs[rank] = key, fac
        wc.ensure_factors(entries)
        rng = np.random.default_rng(5)
        r = rng.standard_normal(12)
        z = wc.apply_factors(keys, layout, r)
        want = np.empty_like(r)
        for rank in range(2):
            sl = layout.local_slice(rank)
            want[sl] = facs[rank].solve(r[sl])
        assert z.tobytes() == want.tobytes()
        assert wc._z_last is z  # parked for a fused ghost matvec

    def test_dot_partials_match_driver_partials(self, mp_comm):
        wc = compute.session(mp_comm)
        layout = Layout.from_sizes([5, 8])
        rng = np.random.default_rng(9)
        x, y = rng.standard_normal(13), rng.standard_normal(13)
        parts = wc.dot_partials(layout, x, y)
        want = [float(np.dot(x[layout.local_slice(r)],
                             y[layout.local_slice(r)])) for r in range(2)]
        assert parts == want

    def test_distributed_dot_identical_either_transport(self, mp_comm,
                                                        monkeypatch):
        layout = Layout.from_sizes([5, 8])
        ops = DistributedOps(mp_comm, layout)
        rng = np.random.default_rng(3)
        x, y = rng.standard_normal(13), rng.standard_normal(13)
        monkeypatch.delenv(compute.DOT_ENV, raising=False)
        local = ops.dot(x, y)
        monkeypatch.setenv(compute.DOT_ENV, "1")
        shipped = ops.dot(x, y)
        assert local == shipped  # bitwise: same partials, same tree


class TestRequestManyDefault:
    def test_sequential_fallback_answers_every_rank(self):
        backend = InProcessBackend(3)
        try:
            messages = {
                r: framing.encode_frame(framing.PING, r, r, 10 + r)
                for r in range(3)
            }
            out = backend.request_many(messages, timeout=1.0)
            assert sorted(out) == [0, 1, 2]
            for r, raw in out.items():
                frame = framing.decode_frame(raw)
                assert frame.kind == framing.PONG and frame.seq == 10 + r
        finally:
            backend.shutdown()

    def test_failures_are_values_not_raises(self, mp_comm):
        # an undeliverable message must come back as an exception *value*
        # so one bad rank cannot mask the other ranks' results
        backend = mp_comm.backend
        good = framing.encode_frame(framing.PING, 0, 0, 999)
        out = backend.request_many({0: good}, timeout=2.0)
        assert framing.decode_frame(out[0]).kind == framing.PONG
