"""The ghost-exchange integrity envelope: seq numbers, retry, typed faults."""

import numpy as np
import pytest

from repro import faults, obs
from repro.comm.communicator import Communicator, RetryPolicy
from repro.comm.pattern import CommunicationPattern, ExchangeSpec
from repro.perfmodel.machine import machine_by_name
from repro.resilience.errors import (
    MessageCorruption,
    MessageTimeout,
    RankDeadError,
)


@pytest.fixture()
def pattern():
    transfers = [
        ExchangeSpec(src=0, dst=1, send_local=np.array([2]), recv_ghost=np.array([0])),
        ExchangeSpec(src=1, dst=0, send_local=np.array([0]), recv_ghost=np.array([1])),
    ]
    return CommunicationPattern(num_ranks=2, transfers=transfers)


def _buffers():
    owned = [np.array([1.0, 2.0, 3.0]), np.array([10.0, 20.0])]
    ghost = [np.zeros(2), np.zeros(1)]
    return owned, ghost


def _events(tracer, name):
    evs = [e for e in tracer.orphan_events if e["name"] == name]
    for s in tracer.spans:
        evs.extend(e for e in s.events if e["name"] == name)
    return evs


class TestRetryPolicy:
    def test_defaults_are_bounded(self):
        p = RetryPolicy()
        assert p.max_retries >= 1 and p.timeout > 0 and p.backoff >= 1.0

    def test_backoff_grows(self):
        p = RetryPolicy(max_retries=3, timeout=1e-3, backoff=2.0)
        assert p.wait(1) == pytest.approx(2e-3)
        assert p.wait(2) == pytest.approx(4e-3)

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_retries": -1}, {"timeout": -1e-3}, {"backoff": 0.5}],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestSequenceNumbers:
    def test_monotone_per_pair(self):
        comm = Communicator(2)
        assert [comm.next_seq(0, 1) for _ in range(3)] == [0, 1, 2]
        # independent channels do not share counters
        assert comm.next_seq(1, 0) == 0

    def test_message_count_tracked(self, pattern):
        comm = Communicator(2)
        owned, ghost = _buffers()
        pattern.exchange(comm, owned, ghost)
        pattern.exchange(comm, owned, ghost)
        assert comm.comm_stats.messages == 4
        assert comm.comm_stats.retries == 0


class TestDropAndCorrupt:
    def test_drop_is_retried_transparently(self, pattern):
        comm = Communicator(2)
        owned, ghost = _buffers()
        plan = faults.FaultPlan(faults.FaultSpec("message-drop", count=1))
        with obs.tracing() as tracer, faults.inject(plan):
            pattern.exchange(comm, owned, ghost)
        # the data still arrived
        assert ghost[1][0] == 3.0 and ghost[0][1] == 10.0
        assert comm.comm_stats.retries == 1
        assert comm.comm_stats.timeouts == 1
        retries = _events(tracer, "resilience.comm.retry")
        assert len(retries) == 1 and retries[0]["attrs"]["reason"] == "timeout"
        # the failed attempt burned its timeout window on the ledger
        assert comm.ledger.delay_seconds > 0.0

    def test_corrupt_detected_by_checksum(self, pattern):
        comm = Communicator(2)
        owned, ghost = _buffers()
        plan = faults.FaultPlan(faults.FaultSpec("message-corrupt", count=1))
        with obs.tracing() as tracer, faults.inject(plan):
            pattern.exchange(comm, owned, ghost)
        assert ghost[1][0] == 3.0
        assert comm.comm_stats.checksum_failures == 1
        (ev,) = _events(tracer, "resilience.comm.retry")
        assert ev["attrs"]["reason"] == "checksum"
        assert ev["attrs"]["expected"] != ev["attrs"]["got"]

    def test_underscore_kind_alias(self):
        assert faults.FaultSpec("message_drop").kind == "message-drop"

    def test_drop_exhaustion_raises_timeout(self, pattern):
        comm = Communicator(2, retry_policy=RetryPolicy(max_retries=2, timeout=1e-3))
        owned, ghost = _buffers()
        plan = faults.FaultPlan(faults.FaultSpec("message-drop", count=-1))
        with faults.inject(plan), pytest.raises(MessageTimeout) as exc:
            pattern.exchange(comm, owned, ghost)
        assert exc.value.status == "diverged"
        assert exc.value.context["attempts"] == 3
        assert comm.comm_stats.timeouts == 3

    def test_corrupt_exhaustion_raises_corruption(self, pattern):
        comm = Communicator(2, retry_policy=RetryPolicy(max_retries=1, timeout=1e-3))
        owned, ghost = _buffers()
        plan = faults.FaultPlan(faults.FaultSpec("message-corrupt", count=-1))
        with obs.tracing() as tracer, faults.inject(plan), \
                pytest.raises(MessageCorruption):
            pattern.exchange(comm, owned, ghost)
        assert _events(tracer, "resilience.comm.give_up")

    def test_rank_filter(self, pattern):
        # a drop spec aimed at rank 7 never matches a 2-rank exchange
        comm = Communicator(2)
        owned, ghost = _buffers()
        plan = faults.FaultPlan(faults.FaultSpec("message-drop", count=-1, rank=7))
        with faults.inject(plan):
            pattern.exchange(comm, owned, ghost)
        assert comm.comm_stats.retries == 0 and ghost[1][0] == 3.0


class TestRankDead:
    def test_rank_dead_needs_rank(self):
        with pytest.raises(ValueError, match="rank"):
            faults.FaultSpec("rank-dead")

    def test_confirmed_dead_raises(self, pattern):
        comm = Communicator(2, retry_policy=RetryPolicy(max_retries=1, timeout=1e-3))
        owned, ghost = _buffers()
        plan = faults.FaultPlan(faults.FaultSpec("rank-dead", rank=1))
        with obs.tracing() as tracer, faults.inject(plan), \
                pytest.raises(RankDeadError) as exc:
            pattern.exchange(comm, owned, ghost)
        assert exc.value.rank == 1
        assert exc.value.status == "breakdown"
        assert comm.comm_stats.rank_dead == 1
        assert _events(tracer, "resilience.comm.rank_dead")
        # every attempt burned a timeout window before the sender gave up
        assert comm.ledger.delay_seconds > 0.0

    def test_start_aims_at_kth_exchange(self, pattern):
        comm = Communicator(2)
        owned, ghost = _buffers()
        plan = faults.FaultPlan(faults.FaultSpec("rank-dead", rank=0, start=2))
        with faults.inject(plan):
            pattern.exchange(comm, owned, ghost)  # exchange 0: survives
            pattern.exchange(comm, owned, ghost)  # exchange 1: survives
            with pytest.raises(RankDeadError):
                pattern.exchange(comm, owned, ghost)  # exchange 2: dies

    def test_mark_recovered_clears_the_dead_set(self, pattern):
        comm = Communicator(2, retry_policy=RetryPolicy(max_retries=1, timeout=1e-3))
        owned, ghost = _buffers()
        plan = faults.FaultPlan(faults.FaultSpec("rank-dead", rank=1))
        with faults.inject(plan):
            with pytest.raises(RankDeadError):
                pattern.exchange(comm, owned, ghost)
            plan.mark_recovered(1)
            pattern.exchange(comm, owned, ghost)  # the remapped world works
        assert ghost[1][0] == 3.0


class TestStraggler:
    def test_delay_lands_on_ledger_and_machine_time(self, pattern):
        comm = Communicator(2)
        owned, ghost = _buffers()
        plan = faults.FaultPlan(
            faults.FaultSpec("straggler", count=-1, rank=0, delay=0.01)
        )
        with faults.inject(plan):
            pattern.exchange(comm, owned, ghost)
        # only the 0->1 transfer is slowed; data still correct
        assert ghost[1][0] == 3.0 and ghost[0][1] == 10.0
        assert comm.ledger.delay_seconds == pytest.approx(0.01)
        machine = machine_by_name("linux-cluster")
        assert machine.time(comm.ledger) >= 0.01

    def test_delays_accumulate_across_exchanges(self, pattern):
        comm = Communicator(2)
        owned, ghost = _buffers()
        plan = faults.FaultPlan(
            faults.FaultSpec("straggler", count=-1, delay=2e-3)
        )
        with faults.inject(plan):
            pattern.exchange(comm, owned, ghost)
            pattern.exchange(comm, owned, ghost)
        # both transfers of both exchanges fire (no rank filter)
        assert comm.ledger.delay_seconds == pytest.approx(4 * 2e-3)


class TestDeterminism:
    def test_same_plan_same_faults(self, pattern):
        def run():
            comm = Communicator(2)
            owned, ghost = _buffers()
            plan = faults.FaultPlan(
                [
                    faults.FaultSpec("message-drop", count=2, start=1),
                    faults.FaultSpec("straggler", count=3, delay=1e-3),
                ],
                seed=7,
            )
            with faults.inject(plan):
                for _ in range(4):
                    pattern.exchange(comm, owned, ghost)
            return plan.injected, comm.comm_stats.as_dict(), comm.ledger.delay_seconds

        first, second = run(), run()
        assert first == second
