import numpy as np
import pytest

from repro.comm.collectives import allgather_concat, allreduce_sum
from repro.comm.communicator import Communicator


class TestAllreduceSum:
    def test_sums_partials(self):
        comm = Communicator(3)
        assert allreduce_sum(comm, [1.0, 2.0, 3.5]) == 6.5

    def test_charges_one_allreduce(self):
        comm = Communicator(3)
        allreduce_sum(comm, [0.0, 0.0, 0.0])
        assert comm.ledger.allreduces == 1
        assert comm.ledger.allreduce_bytes == 8

    def test_wrong_count_raises(self):
        with pytest.raises(ValueError):
            allreduce_sum(Communicator(2), [1.0])


class TestAllgatherConcat:
    def test_concatenates_in_rank_order(self):
        comm = Communicator(2)
        out = allgather_concat(comm, [np.array([1.0]), np.array([2.0, 3.0])])
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_charges_payload_bytes(self):
        comm = Communicator(2)
        allgather_concat(comm, [np.zeros(3), np.zeros(5)])
        assert comm.ledger.allreduce_bytes == 8 * 8

    def test_wrong_count_raises(self):
        with pytest.raises(ValueError):
            allgather_concat(Communicator(3), [np.zeros(1)])
