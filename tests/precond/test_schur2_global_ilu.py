"""Tests for the true global distributed ILU(0) option of Schur 2."""

import numpy as np
import pytest

from repro.comm.communicator import Communicator
from repro.krylov.fgmres import fgmres
from repro.precond.schur2 import Schur2Preconditioner


class TestGlobalIlu:
    def test_global_mode_converges(self, partitioned_poisson):
        pm, dmat, rhs, exact = partitioned_poisson
        comm = Communicator(pm.num_ranks)
        M = Schur2Preconditioner(dmat, comm, global_ilu="global")
        res = fgmres(lambda v: dmat.matvec(comm, v), pm.to_distributed(rhs),
                     apply_m=M.apply, rtol=1e-8, maxiter=100)
        assert res.converged
        assert np.abs(pm.to_global(res.x) - exact).max() < 5e-4

    def test_global_not_weaker_than_block(self, partitioned_poisson):
        """Including the interdomain couplings can only strengthen ILU(0)."""
        pm, dmat, rhs, _ = partitioned_poisson
        bd = pm.to_distributed(rhs)
        iters = {}
        for mode in ("block", "global"):
            comm = Communicator(pm.num_ranks)
            M = Schur2Preconditioner(dmat, comm, global_ilu=mode)
            res = fgmres(lambda v: dmat.matvec(comm, v), bd, apply_m=M.apply,
                         rtol=1e-6, maxiter=100)
            iters[mode] = res.iterations
        assert iters["global"] <= iters["block"]

    def test_global_assembly_covers_interdomain_couplings(self, partitioned_poisson):
        pm, dmat, _, _ = partitioned_poisson
        comm = Communicator(pm.num_ranks)
        M = Schur2Preconditioner(dmat, comm, global_ilu="global")
        s_global = M._assemble_global_expanded()
        # off-(block-)diagonal entries must exist wherever ghost couplings do
        offsets = M._exp_layout.rank_ptr
        coo = s_global.tocoo()
        rank_of = np.searchsorted(offsets, coo.row, side="right") - 1
        rank_of_col = np.searchsorted(offsets, coo.col, side="right") - 1
        cross = (rank_of != rank_of_col).sum()
        total_ghost_nnz = sum(g.nnz for g in dmat.ghost_coupling)
        assert cross == total_ghost_nnz

    def test_global_mode_charges_sweep_exchanges(self, partitioned_poisson, rng):
        pm, dmat, _, _ = partitioned_poisson
        comm = Communicator(pm.num_ranks)
        M = Schur2Preconditioner(dmat, comm, global_ilu="global")
        comm.reset_ledger()
        M.apply(rng.random(pm.layout.total))
        assert comm.ledger.total_msgs > 0

    def test_invalid_mode(self, partitioned_poisson):
        pm, dmat, _, _ = partitioned_poisson
        with pytest.raises(ValueError):
            Schur2Preconditioner(dmat, Communicator(pm.num_ranks), global_ilu="half")
