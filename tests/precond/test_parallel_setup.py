"""Concurrent subdomain factorization must be invisible in the results:
same factors bit-for-bit, same setup accounting, serial under fault plans."""

import numpy as np
import pytest

from repro import faults, obs
from repro.comm.communicator import Communicator
from repro.factor import cache as factor_cache
from repro.precond.block_jacobi import block1, block2
from repro.precond.schwarz import AdditiveSchwarzPreconditioner
from repro.utils.parallel import parallel_map, setup_workers


@pytest.fixture(autouse=True)
def _no_cache():
    """Disable the factor cache so both builds genuinely recompute."""
    factor_cache.configure(enabled=False)
    yield
    factor_cache.configure(enabled=True)


def _build_with_workers(monkeypatch, workers, builder):
    monkeypatch.setenv("REPRO_SETUP_WORKERS", str(workers))
    return builder()


class TestParallelSetupEquivalence:
    @pytest.mark.parametrize("factory", [block1, block2])
    def test_block_factors_identical_serial_vs_pool(
        self, monkeypatch, partitioned_poisson, factory
    ):
        pm, dmat, _, _ = partitioned_poisson
        comm = Communicator(4)
        serial = _build_with_workers(
            monkeypatch, 1, lambda: factory(dmat, comm)
        )
        pooled = _build_with_workers(
            monkeypatch, 4, lambda: factory(dmat, comm)
        )
        for fs, fp in zip(serial.factors, pooled.factors):
            assert np.array_equal(fs.l_strict.data, fp.l_strict.data)
            assert np.array_equal(fs.l_strict.indices, fp.l_strict.indices)
            assert np.array_equal(fs.u_upper.data, fp.u_upper.data)
            assert fs.stats.floored_pivots == fp.stats.floored_pivots

    def test_schwarz_application_identical(
        self, monkeypatch, partitioned_poisson, small_mesh, poisson_system
    ):
        pm, dmat, rhs, _ = partitioned_poisson
        a, _, _ = poisson_system
        comm = Communicator(4)

        def build():
            return AdditiveSchwarzPreconditioner(
                dmat, comm, small_mesh, a, overlap_frac=0.08
            )

        serial = _build_with_workers(monkeypatch, 1, build)
        pooled = _build_with_workers(monkeypatch, 4, build)
        r = pm.to_distributed(rhs)
        zs = serial.apply(r)
        zp = pooled.apply(r)
        for x, y in zip(zs, zp):
            assert np.array_equal(x, y)

    def test_setup_span_records_worker_count(
        self, monkeypatch, partitioned_poisson
    ):
        _, dmat, _, _ = partitioned_poisson
        monkeypatch.setenv("REPRO_SETUP_WORKERS", "4")
        with obs.tracing() as tracer:
            block1(dmat, Communicator(4))
        spans = [s for s in tracer.spans if s.name == "precond.setup"]
        assert spans and spans[0].attrs["workers"] == min(4, setup_workers(4, 4))


class TestParallelMapPolicy:
    def test_preserves_order(self):
        assert parallel_map(lambda x: x * x, range(8), 4) == [
            x * x for x in range(8)
        ]

    def test_first_exception_wins(self):
        def boom(x):
            if x >= 2:
                raise ValueError(f"item {x}")
            return x

        with pytest.raises(ValueError, match="item 2"):
            parallel_map(boom, range(6), 4)

    def test_serial_under_active_fault_plan(self):
        """Injection counters mutate in elimination order; the pool must
        step aside whenever any plan is active."""
        import threading

        seen = set()

        def record(x):
            seen.add(threading.current_thread().name)
            return x

        plan = faults.FaultPlan(faults.FaultSpec("ghost-drop", count=1))
        with faults.inject(plan):
            parallel_map(record, range(8), 4)
        assert seen == {threading.main_thread().name}

    def test_env_override_forces_serial(self, monkeypatch):
        import threading

        monkeypatch.setenv("REPRO_SETUP_WORKERS", "1")
        seen = set()
        parallel_map(lambda x: seen.add(threading.current_thread().name), range(8), 4)
        assert seen == {threading.main_thread().name}

    def test_setup_workers_clamped(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_SETUP_WORKERS", raising=False)
        assert setup_workers(4, 100) <= 4
        assert setup_workers(0, 4) == 1
        monkeypatch.setenv("REPRO_SETUP_WORKERS", "2")
        # the explicit request still bows to the physical core count
        assert setup_workers(8, 8) == max(1, min(2, os.cpu_count() or 1))
