import numpy as np
import pytest

from repro.comm.communicator import Communicator
from repro.krylov.fgmres import fgmres
from repro.precond.schur1 import Schur1Preconditioner


@pytest.fixture()
def setup(partitioned_poisson):
    pm, dmat, rhs, exact = partitioned_poisson
    comm = Communicator(pm.num_ranks)
    M = Schur1Preconditioner(dmat, comm)
    return pm, dmat, rhs, exact, comm, M


class TestSchur1:
    def test_converges_in_few_outer_iterations(self, setup):
        pm, dmat, rhs, exact, comm, M = setup
        bd = pm.to_distributed(rhs)
        res = fgmres(lambda v: dmat.matvec(comm, v), bd, apply_m=M.apply, rtol=1e-6, maxiter=100)
        assert res.converged
        assert res.iterations <= 15  # dramatically fewer than Block 1/2

    def test_solution_accuracy(self, setup):
        pm, dmat, rhs, exact, comm, M = setup
        bd = pm.to_distributed(rhs)
        res = fgmres(lambda v: dmat.matvec(comm, v), bd, apply_m=M.apply, rtol=1e-8, maxiter=100)
        x = pm.to_global(res.x)
        assert np.abs(x - exact).max() < 5e-4  # discretization level

    def test_apply_charges_messages_and_allreduces(self, setup):
        """The global Schur GMRES communicates: neighbor exchanges + dots."""
        pm, _, _, _, comm, M = setup
        comm.reset_ledger()
        rng = np.random.default_rng(0)
        M.apply(rng.random(pm.layout.total))
        assert comm.ledger.total_msgs > 0
        assert comm.ledger.allreduces > 0

    def test_interface_part_of_output_solves_schur_system(self, setup, rng):
        """After apply, z's interface block is the approximate Schur solution:
        applying M to A x* recovers x* approximately (quality check)."""
        pm, dmat, _, _, comm, M = setup
        x = rng.random(pm.layout.total)
        r = dmat.matvec(comm, x)
        z = M.apply(r)
        # M ≈ A^{-1}: relative error well below 1 (it is a strong precond)
        rel = np.linalg.norm(z - x) / np.linalg.norm(x)
        assert rel < 0.7

    def test_schur_matvec_consistency(self, setup, rng):
        """S y computed through the preconditioner's operator agrees with the
        algebraic definition using exact B solves (up to ILU inexactness)."""
        pm, dmat, _, _, comm, M = setup
        y = rng.random(pm.interface_layout.total)
        sy = M._schur_matvec(y)
        # reference: assemble the exact global Schur action
        import numpy.linalg as la

        ref = np.empty_like(sy)
        ghosts = {}
        for r, sd in enumerate(pm.subdomains):
            ghosts[r] = np.zeros(len(sd.ghost))
        owned = pm.interface_layout.split(y)
        from repro.comm.communicator import Communicator as C

        pm.interface_pattern.exchange(C(pm.num_ranks), owned, [ghosts[r] for r in range(pm.num_ranks)])
        for r, sd in enumerate(pm.subdomains):
            blocks = dmat.blocks[r]
            yi = owned[r]
            b_dense = blocks.B.toarray()
            s_exact = blocks.C @ yi - blocks.E @ la.solve(b_dense, blocks.F @ yi)
            if dmat.ghost_coupling[r].shape[1]:
                s_exact = s_exact + dmat.ghost_coupling[r] @ ghosts[r]
            pm.interface_layout.local(ref, r)[:] = s_exact
        rel = np.linalg.norm(sy - ref) / max(np.linalg.norm(ref), 1e-30)
        assert rel < 0.3

    def test_iteration_parameters_validated(self, partitioned_poisson):
        pm, dmat = partitioned_poisson[0], partitioned_poisson[1]
        with pytest.raises(ValueError):
            Schur1Preconditioner(dmat, Communicator(pm.num_ranks), global_iterations=0)

    def test_more_global_iterations_not_worse(self, partitioned_poisson):
        pm, dmat, rhs, _ = partitioned_poisson
        bd = pm.to_distributed(rhs)
        iters = []
        for n_glob in (2, 8):
            comm = Communicator(pm.num_ranks)
            M = Schur1Preconditioner(dmat, comm, global_iterations=n_glob)
            res = fgmres(
                lambda v: dmat.matvec(comm, v), bd, apply_m=M.apply, rtol=1e-6, maxiter=100
            )
            iters.append(res.iterations)
        assert iters[1] <= iters[0]

    def test_name(self, setup):
        assert setup[5].name == "Schur 1"
