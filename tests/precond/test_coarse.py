import numpy as np
import pytest

from repro.precond.coarse import CoarseGridCorrection, bilinear_interpolation


class TestBilinearInterpolation:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        pts = rng.random((50, 2))
        p = bilinear_interpolation(pts, (5, 5))
        assert np.allclose(np.asarray(p.sum(axis=1)).ravel(), 1.0)

    def test_reproduces_bilinear_functions(self):
        """P interpolates coarse nodal values of f(x,y)=a+bx+cy+dxy exactly."""
        rng = np.random.default_rng(1)
        pts = rng.random((40, 2))
        ncx, ncy = 6, 4
        p = bilinear_interpolation(pts, (ncx, ncy))
        xs = np.linspace(0, 1, ncx)
        ys = np.linspace(0, 1, ncy)
        X, Y = np.meshgrid(xs, ys, indexing="xy")
        f = lambda x, y: 1.0 + 2 * x - 3 * y + 0.5 * x * y
        coarse_vals = f(X, Y).ravel()
        fine_vals = p @ coarse_vals
        assert np.allclose(fine_vals, f(pts[:, 0], pts[:, 1]), atol=1e-12)

    def test_coarse_nodes_map_to_themselves(self):
        ncx, ncy = 4, 4
        xs = np.linspace(0, 1, ncx)
        X, Y = np.meshgrid(xs, xs, indexing="xy")
        pts = np.column_stack([X.ravel(), Y.ravel()])
        p = bilinear_interpolation(pts, (ncx, ncy))
        assert np.allclose(p.toarray(), np.eye(16), atol=1e-12)

    def test_too_small_coarse_grid(self):
        with pytest.raises(ValueError):
            bilinear_interpolation(np.zeros((3, 2)), (1, 4))


class TestCoarseGridCorrection:
    def test_exactly_solves_coarse_space_components(self, poisson_system, small_mesh):
        """For residuals of the form A P w, the CGC recovers P w exactly
        (Galerkin property: Pᵀ A P w = Pᵀ (A P w))."""
        a, _, _ = poisson_system
        cgc = CoarseGridCorrection(a, small_mesh.points, (5, 5))
        rng = np.random.default_rng(2)
        w = rng.random(cgc.n_coarse)
        z = cgc.apply(a @ (cgc.p @ w))
        assert np.allclose(z, cgc.p @ w, atol=1e-8)

    def test_flops_positive(self, poisson_system, small_mesh):
        a, _, _ = poisson_system
        cgc = CoarseGridCorrection(a, small_mesh.points, (4, 4))
        assert cgc.flops() > 0

    def test_improves_cg_convergence_as_preconditioner(self, poisson_system, small_mesh):
        """Adding the coarse correction to Jacobi reduces CG iterations."""
        from repro.krylov.cg import cg

        a, rhs, _ = poisson_system
        d = a.diagonal()
        cgc = CoarseGridCorrection(a, small_mesh.points, (5, 5))
        jacobi = cg(lambda v: a @ v, rhs, apply_m=lambda r: r / d, rtol=1e-8, maxiter=500)
        two_level = cg(
            lambda v: a @ v,
            rhs,
            apply_m=lambda r: r / d + cgc.apply(r),
            rtol=1e-8,
            maxiter=500,
        )
        assert two_level.converged
        assert two_level.iterations < jacobi.iterations
