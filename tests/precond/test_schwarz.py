import numpy as np
import pytest

from repro.comm.communicator import Communicator
from repro.krylov.fgmres import fgmres
from repro.precond.schwarz import AdditiveSchwarzPreconditioner


@pytest.fixture()
def setup(partitioned_poisson, small_mesh, poisson_system):
    pm, dmat, rhs, exact = partitioned_poisson
    a, _, _ = poisson_system
    return pm, dmat, rhs, exact, a, small_mesh


def build(pm, dmat, mesh, a, coarse=None, overlap=0.08):
    comm = Communicator(pm.num_ranks)
    M = AdditiveSchwarzPreconditioner(
        dmat, comm, mesh, a, overlap_frac=overlap, coarse_shape=coarse
    )
    return comm, M


class TestAdditiveSchwarz:
    def test_converges(self, setup):
        pm, dmat, rhs, exact, a, mesh = setup
        comm, M = build(pm, dmat, mesh, a)
        bd = pm.to_distributed(rhs)
        res = fgmres(lambda v: dmat.matvec(comm, v), bd, apply_m=M.apply, rtol=1e-6, maxiter=300)
        assert res.converged
        assert np.abs(pm.to_global(res.x) - exact).max() < 5e-4

    def test_cgc_flattens_iteration_growth(self):
        """Paper Sec. 5.2: without CGC iteration counts grow dangerously
        with P; with CGC they stay flat.  (At small P the coarse space can
        even be slightly counterproductive — the claim is about growth.)"""
        from repro.cases.poisson2d import poisson2d_case
        from repro.core.driver import solve_case

        case = poisson2d_case(n=33)
        without = [solve_case(case, "as", nparts=p, maxiter=400).iterations for p in (4, 16)]
        with_cgc = [
            solve_case(case, "as+cgc", nparts=p, maxiter=400).iterations for p in (4, 16)
        ]
        assert without[1] > without[0]  # growth without CGC
        assert with_cgc[1] <= with_cgc[0] + 2  # flat with CGC
        assert with_cgc[1] <= without[1]  # CGC wins at larger P

    def test_boxes_cover_grid_with_overlap(self, setup):
        pm, dmat, _, _, a, mesh = setup
        _, M = build(pm, dmat, mesh, a)
        covered = np.zeros(mesh.num_points, dtype=int)
        for box in M.boxes:
            covered[box.ids] += 1
        assert np.all(covered >= 1)
        assert covered.max() >= 2  # overlap regions exist

    def test_apply_symmetric_for_symmetric_operator(self, setup, rng):
        """Σ RᵀÃ⁻¹R with one CG step is symmetric: ⟨Mx, y⟩ = ⟨x, My⟩...
        one CG step is x-dependent (nonlinear), so instead check linear-
        operator consistency on scaled inputs."""
        pm, dmat, _, _, a, mesh = setup
        _, M = build(pm, dmat, mesh, a)
        r = rng.random(pm.layout.total)
        z1 = M.apply(r)
        z2 = M.apply(2.0 * r)
        assert np.allclose(z2, 2.0 * z1, atol=1e-10)

    def test_requires_structured_mesh(self, setup):
        from repro.mesh.unstructured import plate_with_hole

        pm, dmat, _, _, a, _ = setup
        bad = plate_with_hole(0.1)
        with pytest.raises(ValueError):
            build(pm, dmat, bad, a)

    def test_overlap_bounds_validated(self, setup):
        pm, dmat, _, _, a, mesh = setup
        with pytest.raises(ValueError):
            build(pm, dmat, mesh, a, overlap=0.7)

    def test_names(self, setup):
        pm, dmat, _, _, a, mesh = setup
        _, plain = build(pm, dmat, mesh, a)
        _, with_cgc = build(pm, dmat, mesh, a, coarse=(5, 5))
        assert plain.name == "AS"
        assert with_cgc.name == "AS+CGC"

    def test_apply_charges_comm(self, setup, rng):
        pm, dmat, _, _, a, mesh = setup
        comm, M = build(pm, dmat, mesh, a, coarse=(5, 5))
        comm.reset_ledger()
        M.apply(rng.random(pm.layout.total))
        assert comm.ledger.total_msgs > 0
        assert comm.ledger.allreduces > 0  # the coarse gather
