import numpy as np
import pytest

from repro.comm.communicator import Communicator
from repro.krylov.fgmres import fgmres
from repro.precond.overlapping_block import OverlappingBlockPreconditioner, _expand_by_levels


class TestExpandByLevels:
    def test_zero_levels_identity(self, poisson_system):
        a, _, _ = poisson_system
        ids = np.array([5, 6, 7])
        assert np.array_equal(_expand_by_levels(a, ids, 0), ids)

    def test_one_level_adds_neighbors(self, poisson_system):
        a, _, _ = poisson_system
        ids = np.array([40])
        ext = _expand_by_levels(a, ids, 1)
        expected = np.unique(np.concatenate([[40], a[40].indices]))
        assert np.array_equal(ext, expected)

    def test_monotone_in_levels(self, poisson_system):
        a, _, _ = poisson_system
        ids = np.arange(10)
        sizes = [len(_expand_by_levels(a, ids, k)) for k in range(4)]
        assert sizes == sorted(sizes)


class TestOverlappingBlock:
    def build(self, partitioned_poisson, poisson_system, overlap):
        pm, dmat, rhs, exact = partitioned_poisson
        a, _, _ = poisson_system
        comm = Communicator(pm.num_ranks)
        M = OverlappingBlockPreconditioner(dmat, comm, a, overlap=overlap)
        return pm, dmat, rhs, exact, comm, M

    def test_zero_overlap_matches_block_jacobi_iterations(
        self, partitioned_poisson, poisson_system
    ):
        from repro.precond.block_jacobi import block2

        pm, dmat, rhs, _, comm, M0 = self.build(partitioned_poisson, poisson_system, 0)
        bd = pm.to_distributed(rhs)
        r_overlap = fgmres(lambda v: dmat.matvec(comm, v), bd, apply_m=M0.apply,
                           rtol=1e-6, maxiter=500)
        comm2 = Communicator(pm.num_ranks)
        M_bj = block2(dmat, comm2)
        r_bj = fgmres(lambda v: dmat.matvec(comm2, v), bd, apply_m=M_bj.apply,
                      rtol=1e-6, maxiter=500)
        assert r_overlap.iterations == r_bj.iterations

    def test_converges_and_accurate(self, partitioned_poisson, poisson_system):
        pm, dmat, rhs, exact, comm, M = self.build(partitioned_poisson, poisson_system, 2)
        bd = pm.to_distributed(rhs)
        res = fgmres(lambda v: dmat.matvec(comm, v), bd, apply_m=M.apply,
                     rtol=1e-8, maxiter=500)
        assert res.converged
        assert np.abs(pm.to_global(res.x) - exact).max() < 5e-4

    def test_more_overlap_fewer_iterations(self, partitioned_poisson, poisson_system):
        """Paper Sec. 1.1: increased overlap can improve the preconditioner."""
        pm, dmat, rhs, _, _, _ = self.build(partitioned_poisson, poisson_system, 0)
        bd = pm.to_distributed(rhs)
        iters = []
        for ov in (0, 2, 4):
            pmx, dmatx, rhsx, exactx, comm, M = self.build(
                partitioned_poisson, poisson_system, ov
            )
            res = fgmres(lambda v: dmatx.matvec(comm, v), bd, apply_m=M.apply,
                         rtol=1e-6, maxiter=500)
            iters.append(res.iterations)
        assert iters[2] < iters[0]
        assert iters[1] <= iters[0]

    def test_apply_charges_overlap_exchange(self, partitioned_poisson, poisson_system, rng):
        pm, _, _, _, comm, M = self.build(partitioned_poisson, poisson_system, 1)
        comm.reset_ledger()
        M.apply(rng.random(pm.layout.total))
        assert comm.ledger.total_bytes > 0
        assert comm.ledger.total_msgs > 0

    def test_invalid_overlap(self, partitioned_poisson, poisson_system):
        with pytest.raises(ValueError):
            self.build(partitioned_poisson, poisson_system, -1)

    def test_registry_blocko(self, tiny_case):
        from repro.core.driver import solve_case

        out = solve_case(tiny_case, "blocko", nparts=4, maxiter=400)
        assert out.converged
        assert out.precond == "Block O1"
