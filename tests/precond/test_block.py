import numpy as np
import pytest

from repro.comm.communicator import Communicator
from repro.krylov.fgmres import fgmres
from repro.precond.block_jacobi import BlockPreconditioner, block1, block2, block_krylov


def make(partitioned_poisson, factory):
    pm, dmat, rhs, exact = partitioned_poisson
    comm = Communicator(pm.num_ranks)
    return pm, dmat, rhs, exact, comm, factory(dmat, comm)


class TestBlockPreconditioners:
    def test_block1_accelerates_fgmres(self, partitioned_poisson):
        pm, dmat, rhs, exact, comm, M = make(partitioned_poisson, block1)
        bd = pm.to_distributed(rhs)
        plain = fgmres(lambda v: dmat.matvec(comm, v), bd, rtol=1e-8, maxiter=500)
        pre = fgmres(lambda v: dmat.matvec(comm, v), bd, apply_m=M.apply, rtol=1e-8, maxiter=500)
        assert pre.converged
        assert pre.iterations < 0.6 * plain.iterations

    def test_block2_converges_faster_than_block1(self, partitioned_poisson):
        pm, dmat, rhs, _, comm, M1 = make(partitioned_poisson, block1)
        M2 = block2(dmat, comm)
        bd = pm.to_distributed(rhs)
        r1 = fgmres(lambda v: dmat.matvec(comm, v), bd, apply_m=M1.apply, rtol=1e-6, maxiter=500)
        r2 = fgmres(lambda v: dmat.matvec(comm, v), bd, apply_m=M2.apply, rtol=1e-6, maxiter=500)
        assert r2.iterations <= r1.iterations

    def test_apply_is_block_diagonal_action(self, partitioned_poisson, rng):
        """z on rank r depends only on r's slice of the residual."""
        pm, dmat, _, _, comm, M = make(partitioned_poisson, block1)
        r = rng.random(pm.layout.total)
        z = M.apply(r)
        r2 = r.copy()
        other = pm.layout.local_slice(1)
        r2[other] = 0.0
        z2 = M.apply(r2)
        mine = pm.layout.local_slice(0)
        assert np.allclose(z[mine], z2[mine])

    def test_apply_charges_no_messages(self, partitioned_poisson, rng):
        """Block preconditioners are communication-free per application."""
        pm, dmat, _, _, comm, M = make(partitioned_poisson, block1)
        comm.reset_ledger()
        M.apply(rng.random(pm.layout.total))
        assert comm.ledger.total_msgs == 0
        assert comm.ledger.allreduces == 0
        assert comm.ledger.crit_flops > 0

    def test_single_apply_matches_local_ilu_solve(self, partitioned_poisson, rng):
        pm, dmat, _, _, comm, M = make(partitioned_poisson, block1)
        r = rng.random(pm.layout.total)
        z = M.apply(r)
        for rank in range(pm.num_ranks):
            loc = pm.layout.local_slice(rank)
            assert np.allclose(z[loc], M.factors[rank].solve(r[loc]))

    def test_block_krylov_variant_converges(self, partitioned_poisson):
        pm, dmat, rhs, _, comm, M = make(
            partitioned_poisson, lambda d, c: block_krylov(d, c, inner_iterations=3)
        )
        bd = pm.to_distributed(rhs)
        res = fgmres(lambda v: dmat.matvec(comm, v), bd, apply_m=M.apply, rtol=1e-6, maxiter=300)
        assert res.converged

    def test_setup_charged_to_ledger(self, partitioned_poisson):
        pm, dmat = partitioned_poisson[0], partitioned_poisson[1]
        comm = Communicator(pm.num_ranks)
        block2(dmat, comm)
        assert comm.ledger.crit_flops > 0

    def test_invalid_variant(self, partitioned_poisson):
        pm, dmat = partitioned_poisson[0], partitioned_poisson[1]
        with pytest.raises(ValueError):
            BlockPreconditioner(dmat, Communicator(pm.num_ranks), variant="nope")

    def test_names_match_paper(self, partitioned_poisson):
        pm, dmat = partitioned_poisson[0], partitioned_poisson[1]
        comm = Communicator(pm.num_ranks)
        assert block1(dmat, comm).name == "Block 1"
        assert block2(dmat, comm).name == "Block 2"
