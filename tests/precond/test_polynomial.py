import numpy as np
import pytest

from repro.comm.communicator import Communicator
from repro.krylov.fgmres import fgmres
from repro.precond.polynomial import ChebyshevPreconditioner


class TestChebyshevPreconditioner:
    def build(self, partitioned_poisson, **kw):
        pm, dmat, rhs, exact = partitioned_poisson
        comm = Communicator(pm.num_ranks)
        M = ChebyshevPreconditioner(dmat, comm, **kw)
        return pm, dmat, rhs, exact, comm, M

    def test_accelerates_fgmres(self, partitioned_poisson):
        pm, dmat, rhs, exact, comm, M = self.build(partitioned_poisson, degree=8)
        bd = pm.to_distributed(rhs)
        plain = fgmres(lambda v: dmat.matvec(comm, v), bd, rtol=1e-8, maxiter=600)
        pre = fgmres(lambda v: dmat.matvec(comm, v), bd, apply_m=M.apply,
                     rtol=1e-8, maxiter=600)
        assert pre.converged
        assert pre.iterations < 0.4 * plain.iterations
        assert np.abs(pm.to_global(pre.x) - exact).max() < 5e-4

    def test_linear_operator(self, partitioned_poisson, rng):
        """p(A) is a fixed polynomial: applications must be exactly linear."""
        _, _, _, _, _, M = self.build(partitioned_poisson, degree=5)
        r1 = rng.random(M.pm.layout.total)
        r2 = rng.random(M.pm.layout.total)
        z = M.apply(2.0 * r1 - 3.0 * r2)
        assert np.allclose(z, 2.0 * M.apply(r1) - 3.0 * M.apply(r2), atol=1e-9)

    def test_higher_degree_stronger(self, partitioned_poisson):
        pm, dmat, rhs, _, _, _ = self.build(partitioned_poisson)
        bd = pm.to_distributed(rhs)
        iters = []
        for deg in (2, 12):
            comm = Communicator(pm.num_ranks)
            M = ChebyshevPreconditioner(dmat, comm, degree=deg)
            res = fgmres(lambda v: dmat.matvec(comm, v), bd, apply_m=M.apply,
                         rtol=1e-8, maxiter=600)
            iters.append(res.iterations)
        assert iters[1] < iters[0]

    def test_no_allreduces_per_apply(self, partitioned_poisson, rng):
        """The defining property: applications synchronize only via the
        matvec ghost exchanges — no inner products at all."""
        pm, _, _, _, comm, M = self.build(partitioned_poisson, degree=6)
        comm.reset_ledger()
        M.apply(rng.random(pm.layout.total))
        assert comm.ledger.allreduces == 0
        assert comm.ledger.total_msgs > 0  # matvec exchanges remain

    def test_explicit_interval(self, partitioned_poisson):
        pm, dmat, rhs, _, comm, M = self.build(
            partitioned_poisson, degree=6, interval=(0.05, 8.5)
        )
        res = fgmres(lambda v: dmat.matvec(comm, v), pm.to_distributed(rhs),
                     apply_m=M.apply, rtol=1e-6, maxiter=600)
        assert res.converged

    def test_invalid_parameters(self, partitioned_poisson):
        pm, dmat, _, _ = partitioned_poisson
        with pytest.raises(ValueError):
            ChebyshevPreconditioner(dmat, Communicator(pm.num_ranks), degree=0)
        with pytest.raises(ValueError):
            ChebyshevPreconditioner(
                dmat, Communicator(pm.num_ranks), interval=(-1.0, 2.0)
            )

    def test_registry(self, tiny_case):
        from repro.core.driver import solve_case

        out = solve_case(tiny_case, "cheb", nparts=3, maxiter=500)
        assert out.converged
        assert out.precond.startswith("Cheb")
