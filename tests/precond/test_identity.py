import numpy as np

from repro.comm.communicator import Communicator
from repro.precond.identity import IdentityPreconditioner


class TestIdentity:
    def test_returns_copy(self, partitioned_poisson, rng):
        pm, dmat, _, _ = partitioned_poisson
        M = IdentityPreconditioner(dmat, Communicator(pm.num_ranks))
        r = rng.random(pm.layout.total)
        z = M.apply(r)
        assert np.array_equal(z, r)
        z[0] += 1.0
        assert z[0] != r[0]  # a copy, not a view

    def test_comm_size_mismatch_raises(self, partitioned_poisson):
        import pytest

        pm, dmat, _, _ = partitioned_poisson
        with pytest.raises(ValueError):
            IdentityPreconditioner(dmat, Communicator(pm.num_ranks + 1))
