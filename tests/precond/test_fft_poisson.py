import numpy as np
import pytest
import scipy.sparse as sp

from repro.precond.fft_poisson import FFTPoissonSolver


def five_point_matrix(mx, my):
    """The stencil [−1; −1, 4, −1; −1] with Dirichlet outside the box."""
    ex = np.ones(mx)
    ey = np.ones(my)
    tx = sp.diags([-ex[:-1], 2 * ex, -ex[:-1]], [-1, 0, 1])
    ty = sp.diags([-ey[:-1], 2 * ey, -ey[:-1]], [-1, 0, 1])
    return (sp.kron(tx, sp.eye(my)) + sp.kron(sp.eye(mx), ty)).tocsr()


class TestFFTPoissonSolver:
    @pytest.mark.parametrize("mx,my", [(1, 1), (4, 4), (7, 5), (16, 9)])
    def test_exactly_inverts_five_point_stencil(self, mx, my, rng):
        a = five_point_matrix(mx, my)
        solver = FFTPoissonSolver(mx, my)
        x = rng.random(mx * my)
        assert np.allclose(solver.solve(a @ x), x, atol=1e-10)

    def test_scale_parameter(self, rng):
        a = five_point_matrix(5, 5)
        s = FFTPoissonSolver(5, 5, scale=2.0)
        x = rng.random(25)
        assert np.allclose(s.solve(2.0 * (a @ x)), x, atol=1e-10)

    def test_accepts_2d_input(self, rng):
        s = FFTPoissonSolver(4, 6)
        w = rng.random((4, 6))
        assert np.allclose(s.solve(w), s.solve(w.ravel()))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            FFTPoissonSolver(4, 4).solve(np.zeros(15))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FFTPoissonSolver(0, 4)
        with pytest.raises(ValueError):
            FFTPoissonSolver(4, 4, scale=0.0)

    def test_flops_positive(self):
        assert FFTPoissonSolver(8, 8).flops() > 0

    def test_matches_fe_interior_operator(self):
        """The P1 stiffness on a uniform square grid restricted to the
        interior IS the 5-point stencil the FFT solver inverts."""
        from repro.fem.assembly import assemble_stiffness
        from repro.mesh.grid2d import structured_rectangle

        n = 9
        mesh = structured_rectangle(n, n)
        k = assemble_stiffness(mesh)
        interior = np.setdiff1d(np.arange(n * n), mesh.all_boundary_nodes())
        k_int = k[interior][:, interior].toarray()
        a5 = five_point_matrix(n - 2, n - 2).toarray()
        assert np.abs(k_int - a5).max() < 1e-12
