import numpy as np
import pytest

from repro.comm.communicator import Communicator
from repro.krylov.fgmres import fgmres
from repro.precond.schur2 import Schur2Preconditioner


@pytest.fixture()
def setup(partitioned_poisson):
    pm, dmat, rhs, exact = partitioned_poisson
    comm = Communicator(pm.num_ranks)
    M = Schur2Preconditioner(dmat, comm)
    return pm, dmat, rhs, exact, comm, M


class TestSchur2:
    def test_converges_in_few_outer_iterations(self, setup):
        pm, dmat, rhs, _, comm, M = setup
        bd = pm.to_distributed(rhs)
        res = fgmres(lambda v: dmat.matvec(comm, v), bd, apply_m=M.apply, rtol=1e-6, maxiter=100)
        assert res.converged
        assert res.iterations <= 15

    def test_solution_accuracy(self, setup):
        pm, dmat, rhs, exact, comm, M = setup
        bd = pm.to_distributed(rhs)
        res = fgmres(lambda v: dmat.matvec(comm, v), bd, apply_m=M.apply, rtol=1e-8, maxiter=100)
        assert np.abs(pm.to_global(res.x) - exact).max() < 5e-4

    def test_expanded_interface_includes_interdomain(self, setup):
        pm, _, _, _, _, M = setup
        for r, sd in enumerate(pm.subdomains):
            assert M.arms[r].n_interdomain == sd.n_interface
            assert M.arms[r].n_expanded >= sd.n_interface

    def test_expanded_system_larger_than_plain_interface(self, setup):
        """The 'expanded' Schur complement also covers local interfaces."""
        pm, _, _, _, _, M = setup
        exp_total = M._exp_layout.total
        ifc_total = pm.interface_layout.total
        assert exp_total > ifc_total

    def test_apply_charges_comm(self, setup, rng):
        pm, _, _, _, comm, M = setup
        comm.reset_ledger()
        M.apply(rng.random(pm.layout.total))
        assert comm.ledger.allreduces > 0
        assert comm.ledger.total_msgs > 0

    def test_quality_as_approximate_inverse(self, setup, rng):
        pm, dmat, _, _, comm, M = setup
        x = rng.random(pm.layout.total)
        r = dmat.matvec(comm, x)
        z = M.apply(r)
        rel = np.linalg.norm(z - x) / np.linalg.norm(x)
        assert rel < 0.7

    def test_deterministic_given_seed(self, partitioned_poisson, rng):
        pm, dmat, rhs, _ = partitioned_poisson
        r = rng.random(pm.layout.total)
        z1 = Schur2Preconditioner(dmat, Communicator(pm.num_ranks), seed=3).apply(r)
        z2 = Schur2Preconditioner(dmat, Communicator(pm.num_ranks), seed=3).apply(r)
        assert np.array_equal(z1, z2)

    def test_group_size_affects_expansion(self, partitioned_poisson):
        pm, dmat = partitioned_poisson[0], partitioned_poisson[1]
        small = Schur2Preconditioner(dmat, Communicator(pm.num_ranks), group_size=4)
        large = Schur2Preconditioner(dmat, Communicator(pm.num_ranks), group_size=40)
        # bigger groups absorb more unknowns → smaller expanded system
        assert large._exp_layout.total <= small._exp_layout.total

    def test_invalid_iterations(self, partitioned_poisson):
        pm, dmat = partitioned_poisson[0], partitioned_poisson[1]
        with pytest.raises(ValueError):
            Schur2Preconditioner(dmat, Communicator(pm.num_ranks), global_iterations=0)

    def test_name(self, setup):
        assert setup[5].name == "Schur 2"
