"""Tests for the Restricted Additive Schwarz (RAS) extension."""

import numpy as np
import pytest

from repro.comm.communicator import Communicator
from repro.krylov.fgmres import fgmres
from repro.precond.schwarz import AdditiveSchwarzPreconditioner


def build(pm, dmat, mesh, a, restricted, coarse=None):
    comm = Communicator(pm.num_ranks)
    M = AdditiveSchwarzPreconditioner(
        dmat, comm, mesh, a, overlap_frac=0.08, coarse_shape=coarse,
        restricted=restricted,
    )
    return comm, M


class TestRestrictedAdditiveSchwarz:
    def test_cores_tile_grid_exactly_once(self, partitioned_poisson, small_mesh, poisson_system):
        pm, dmat, _, _ = partitioned_poisson
        a, _, _ = poisson_system
        _, M = build(pm, dmat, small_mesh, a, restricted=True)
        covered = np.zeros(small_mesh.num_points, dtype=int)
        for box in M.boxes:
            covered[box.ids[box.core_mask]] += 1
        assert np.all(covered == 1)

    def test_converges(self, partitioned_poisson, small_mesh, poisson_system):
        pm, dmat, rhs, exact = partitioned_poisson
        a, _, _ = poisson_system
        comm, M = build(pm, dmat, small_mesh, a, restricted=True)
        res = fgmres(
            lambda v: dmat.matvec(comm, v),
            pm.to_distributed(rhs),
            apply_m=M.apply,
            rtol=1e-6,
            maxiter=400,
        )
        assert res.converged
        assert np.abs(pm.to_global(res.x) - exact).max() < 5e-4

    def test_ras_not_slower_than_classical_as(self):
        """The classical RAS result: fewer (or equal) iterations than AS with
        half the exchange volume."""
        from repro.cases.poisson2d import poisson2d_case
        from repro.core.driver import solve_case

        case = poisson2d_case(n=33)
        ras = solve_case(case, "ras", nparts=16, maxiter=400)
        plain = solve_case(case, "as", nparts=16, maxiter=400)
        assert ras.converged
        assert ras.iterations <= plain.iterations + 2
        assert ras.solve_ledger.total_bytes < plain.solve_ledger.total_bytes

    def test_names(self, partitioned_poisson, small_mesh, poisson_system):
        pm, dmat, _, _ = partitioned_poisson
        a, _, _ = poisson_system
        assert build(pm, dmat, small_mesh, a, True)[1].name == "RAS"
        assert build(pm, dmat, small_mesh, a, True, coarse=(5, 5))[1].name == "RAS+CGC"

    def test_registry_names(self, tiny_case):
        from repro.core.driver import solve_case

        for name in ("ras", "ras+cgc"):
            out = solve_case(tiny_case, name, nparts=4, maxiter=400)
            assert out.converged, name
