"""repro.ckpt.v1 format: round trip, corruption detection, retention."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.checkpoint import (
    FORMAT,
    CheckpointCorruption,
    CheckpointManager,
    CheckpointNotFound,
    read_checkpoint,
    write_checkpoint,
)


def _arrays():
    return {
        "x": np.linspace(0.0, 1.0, 37),
        "mask": np.array([1, 0, 1], dtype=np.int64),
    }


class TestRoundTrip:
    def test_arrays_and_meta_survive(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_checkpoint(path, _arrays(), meta={"step": 3, "case": "tc1"})
        ckpt = read_checkpoint(path)
        assert ckpt.meta == {"step": 3, "case": "tc1"}
        np.testing.assert_array_equal(ckpt["x"], _arrays()["x"])
        assert ckpt["mask"].dtype == np.int64

    def test_magic_line_is_versioned(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_checkpoint(path, _arrays())
        assert path.read_bytes().startswith(FORMAT.encode())

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_checkpoint(path, {"x": np.zeros(3)}, meta={"v": 1})
        write_checkpoint(path, {"x": np.ones(3)}, meta={"v": 2})
        assert read_checkpoint(path).meta == {"v": 2}
        assert list(tmp_path.iterdir()) == [path]  # no temp litter

    def test_empty_arrays_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="at least one array"):
            write_checkpoint(tmp_path / "a.ckpt", {})

    def test_missing_file_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_checkpoint(tmp_path / "nope.ckpt")


class TestCorruptionDetection:
    """Any single corrupted byte must be detected — never silently loaded."""

    @settings(max_examples=60, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=10_000),
           flip=st.integers(min_value=1, max_value=255))
    def test_one_flipped_byte_always_detected(self, tmp_path_factory, offset, flip):
        tmp_path = tmp_path_factory.mktemp("ckpt")
        path = tmp_path / "a.ckpt"
        write_checkpoint(path, _arrays(), meta={"step": 1})
        raw = bytearray(path.read_bytes())
        raw[offset % len(raw)] ^= flip
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorruption):
            read_checkpoint(path)

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_checkpoint(path, _arrays())
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 7])
        with pytest.raises(CheckpointCorruption, match="truncated"):
            read_checkpoint(path)

    def test_wrong_magic_detected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        path.write_bytes(b"not.a.checkpoint 1 2 3 4\nxxxx")
        with pytest.raises(CheckpointCorruption, match="magic"):
            read_checkpoint(path)

    def test_error_carries_path_context(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_checkpoint(path, _arrays())
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorruption) as exc:
            read_checkpoint(path)
        assert exc.value.context["path"] == str(path)


class TestCheckpointManager:
    def test_save_load_specific_step(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(4, {"u": np.arange(3.0)}, meta={"kind": "t"})
        ckpt = mgr.load(4)
        assert ckpt.meta["step"] == 4 and ckpt.meta["kind"] == "t"
        with pytest.raises(CheckpointNotFound):
            mgr.load(5)

    def test_retention_prunes_oldest(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=2)
        for step in range(5):
            mgr.save(step, {"u": np.full(2, float(step))})
        assert mgr.steps() == [3, 4]

    def test_load_latest_skips_corrupt(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=0)
        mgr.save(1, {"u": np.array([1.0])})
        mgr.save(2, {"u": np.array([2.0])})
        raw = bytearray(mgr.path_for(2).read_bytes())
        raw[-1] ^= 0xFF
        mgr.path_for(2).write_bytes(bytes(raw))
        with obs.tracing() as tracer:
            ckpt = mgr.load_latest()
        assert ckpt.meta["step"] == 1 and ckpt["u"][0] == 1.0
        names = [e["name"] for e in tracer.orphan_events]
        assert "resilience.ckpt.corrupt" in names
        assert "resilience.ckpt.restore" in names

    def test_load_latest_empty_dir(self, tmp_path):
        assert CheckpointManager(tmp_path / "missing").load_latest() is None

    def test_prefixes_partition_a_directory(self, tmp_path):
        a = CheckpointManager(tmp_path, prefix="solve")
        b = CheckpointManager(tmp_path, prefix="transient")
        a.save(1, {"x": np.zeros(1)})
        b.save(9, {"u": np.zeros(1)})
        assert a.steps() == [1] and b.steps() == [9]

    def test_bad_prefix_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="filename-safe"):
            CheckpointManager(tmp_path, prefix="a/b")


class TestConcurrentWriterRace:
    """Restore racing a live writer must land on a complete CRC-valid
    snapshot — the drain/resume handoff depends on this."""

    def test_restore_during_concurrent_saves(self, tmp_path):
        import threading

        writer = CheckpointManager(tmp_path, keep=2)
        reader = CheckpointManager(tmp_path, keep=2)
        writer.save(0, {"u": np.full(4, 0.0)}, meta={"tag": "race"})
        stop = threading.Event()
        failures: list[str] = []

        def write_loop():
            step = 1
            while not stop.is_set() and step < 400:
                writer.save(step, {"u": np.full(4, float(step))})
                step += 1

        t = threading.Thread(target=write_loop)
        t.start()
        try:
            for _ in range(200):
                ckpt = reader.load_latest()
                # the writer prunes old steps mid-walk, so individual reads
                # may skip vanished files — but some intact snapshot must
                # always be found, and its payload must match its step
                if ckpt is None:
                    failures.append("no intact snapshot found")
                    break
                if ckpt["u"][0] != float(ckpt.meta["step"]):
                    failures.append(
                        f"torn read: step {ckpt.meta['step']} "
                        f"payload {ckpt['u'][0]}"
                    )
                    break
        finally:
            stop.set()
            t.join(30.0)
        assert not failures, failures[0]

    def test_reader_falls_back_past_corrupt_newest_to_last_valid(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=0)
        for step in range(3):
            mgr.save(step, {"u": np.full(2, float(step))})
        # a writer crash mid-rename cannot happen (atomic), but a bad disk
        # can corrupt the newest file after the fact: flip one byte
        raw = bytearray(mgr.path_for(2).read_bytes())
        raw[len(raw) // 2] ^= 0x01
        mgr.path_for(2).write_bytes(bytes(raw))
        ckpt = mgr.load_latest()
        assert ckpt.meta["step"] == 1 and ckpt["u"][0] == 1.0

    def test_tmp_files_of_inflight_saves_invisible(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(1, {"u": np.zeros(1)})
        # a concurrent save's half-written temp file must not be listed as
        # a restorable step
        (tmp_path / f"{mgr.prefix}_00000002.ckpt.tmp").write_bytes(b"partial")
        assert mgr.steps() == [1]
        assert mgr.load_latest().meta["step"] == 1

    def test_snapshot_vanishing_mid_walk_is_skipped(self, tmp_path, monkeypatch):
        from repro.checkpoint import manager as manager_mod

        mgr = CheckpointManager(tmp_path, keep=0)
        mgr.save(1, {"u": np.full(1, 1.0)})
        mgr.save(2, {"u": np.full(1, 2.0)})
        real_read = manager_mod.read_checkpoint

        def read_with_prune(path):
            # simulate the writer's retention pruning deleting the newest
            # file between the directory listing and the read
            if path.name.endswith("00000002.ckpt"):
                path.unlink(missing_ok=True)
            return real_read(path)

        monkeypatch.setattr(manager_mod, "read_checkpoint", read_with_prune)
        ckpt = mgr.load_latest()
        assert ckpt is not None and ckpt.meta["step"] == 1
