"""Shared fixtures: small meshes, systems and partitions reused across tests."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cases.poisson2d import poisson2d_case
from repro.distributed.matrix import distribute_matrix
from repro.distributed.partition_map import PartitionMap
from repro.fem.assembly import assemble_load, assemble_stiffness
from repro.fem.boundary import apply_dirichlet
from repro.graph.adjacency import graph_from_elements
from repro.graph.partitioner import partition_graph
from repro.mesh.grid2d import structured_rectangle


@pytest.fixture(scope="session")
def small_mesh():
    """A 17x17 unit-square triangulation."""
    return structured_rectangle(17, 17)


@pytest.fixture(scope="session")
def poisson_system(small_mesh):
    """(A, b, exact) for the TC1 Poisson problem on the small mesh."""
    mesh = small_mesh
    raw = assemble_stiffness(mesh)
    exact = mesh.points[:, 0] * np.exp(mesh.points[:, 1])
    b = -assemble_load(mesh, lambda p: p[:, 0] * np.exp(p[:, 1]))
    bn = mesh.all_boundary_nodes()
    a, rhs = apply_dirichlet(raw, b, bn, exact[bn])
    return a, rhs, exact


@pytest.fixture(scope="session")
def partitioned_poisson(small_mesh, poisson_system):
    """(pm, dmat, rhs, exact) for the small Poisson problem over 4 ranks."""
    a, rhs, exact = poisson_system
    g = graph_from_elements(small_mesh.num_points, small_mesh.elements)
    mem = partition_graph(g, 4, seed=0)
    pm = PartitionMap(g, mem, num_ranks=4)
    dmat = distribute_matrix(a, pm)
    return pm, dmat, rhs, exact


@pytest.fixture(scope="session")
def tiny_case():
    """A fully-built TC1 case small enough for exhaustive checks."""
    return poisson2d_case(n=17)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


def random_spd_csr(n: int, density: float, seed: int) -> sp.csr_matrix:
    """Random symmetric positive definite CSR (diagonally dominant)."""
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density, random_state=rng.integers(2**31), format="csr")
    a = (a + a.T) * 0.5
    a = a + sp.diags(np.asarray(np.abs(a).sum(axis=1)).ravel() + 1.0)
    return a.tocsr()


def random_nonsymmetric_csr(n: int, density: float, seed: int) -> sp.csr_matrix:
    """Random diagonally dominant unsymmetric CSR."""
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density, random_state=rng.integers(2**31), format="csr")
    a = a + sp.diags(np.asarray(np.abs(a).sum(axis=1)).ravel() + 1.0)
    return a.tocsr()
