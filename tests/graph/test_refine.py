import numpy as np

from repro.graph.adjacency import graph_from_elements
from repro.graph.partitioner import edge_cut
from repro.graph.refine import boundary_vertices, refine_bisection
from repro.mesh.grid2d import structured_rectangle


def grid_graph(n=12):
    mesh = structured_rectangle(n, n)
    return graph_from_elements(mesh.num_points, mesh.elements)


class TestBoundaryVertices:
    def test_detects_cut_vertices(self):
        g = grid_graph(4)
        part = np.zeros(16, dtype=np.int64)
        part[8:] = 1  # split at y midline
        bv = set(boundary_vertices(g, part).tolist())
        assert 4 in bv and 8 in bv  # rows adjacent to the cut
        assert 0 not in bv

    def test_empty_for_uniform_partition(self):
        g = grid_graph(4)
        assert boundary_vertices(g, np.zeros(16, dtype=np.int64)).size == 0


class TestRefineBisection:
    def test_never_increases_cut(self):
        g = grid_graph()
        rng = np.random.default_rng(0)
        part = rng.integers(0, 2, g.num_vertices)
        target = g.total_vertex_weight() / 2
        refined = refine_bisection(g, part, target, rng=0)
        assert edge_cut(g, refined) <= edge_cut(g, part)

    def test_substantially_improves_random_cut(self):
        g = grid_graph()
        rng = np.random.default_rng(1)
        part = rng.integers(0, 2, g.num_vertices)
        target = g.total_vertex_weight() / 2
        refined = refine_bisection(g, part, target, rng=0)
        assert edge_cut(g, refined) < 0.7 * edge_cut(g, part)

    def test_respects_balance_constraint(self):
        g = grid_graph()
        rng = np.random.default_rng(2)
        part = rng.integers(0, 2, g.num_vertices)
        total = g.total_vertex_weight()
        target = total / 2
        refined = refine_bisection(g, part, target, imbalance=0.05, rng=0)
        w0 = float(g.vertex_weights[refined == 0].sum())
        start_w0 = float(g.vertex_weights[part == 0].sum())
        lo = min(target - 0.05 * total, start_w0)
        hi = max(target + 0.05 * total, start_w0)
        assert lo <= w0 <= hi

    def test_does_not_mutate_input(self):
        g = grid_graph(6)
        part = np.zeros(36, dtype=np.int64)
        part[18:] = 1
        orig = part.copy()
        refine_bisection(g, part, 18.0, rng=0)
        assert np.array_equal(part, orig)
