import numpy as np
import pytest

from repro.graph.adjacency import graph_from_elements
from repro.graph.partitioner import edge_cut, partition_graph, partition_sizes
from repro.graph.spectral import fiedler_vector, spectral_bisect, spectral_partition
from repro.mesh.grid2d import structured_rectangle


def grid_graph(n=15):
    mesh = structured_rectangle(n, n)
    return graph_from_elements(mesh.num_points, mesh.elements)


class TestFiedlerVector:
    def test_orthogonal_to_constants(self):
        g = grid_graph(9)
        fv = fiedler_vector(g, seed=0)
        assert abs(fv.sum()) < 1e-6 * np.abs(fv).sum()

    def test_separates_a_path_graph_at_the_middle(self):
        import scipy.sparse as sp

        from repro.graph.adjacency import Graph

        n = 20
        a = sp.diags([np.ones(n - 1), np.ones(n - 1)], [-1, 1]).tocsr()
        g = Graph(a.indptr.astype(np.int64), a.indices.astype(np.int64), a.data)
        fv = fiedler_vector(g, seed=0)
        signs = fv > np.median(fv)
        # one sign change, at the middle
        changes = np.flatnonzero(np.diff(signs.astype(int)))
        assert len(changes) == 1
        assert abs(changes[0] - n // 2) <= 1


class TestSpectralBisect:
    def test_balanced(self):
        g = grid_graph()
        part = spectral_bisect(g, seed=0)
        sizes = np.bincount(part, minlength=2)
        assert abs(sizes[0] - sizes[1]) <= 0.2 * g.num_vertices

    def test_cut_competitive_with_multilevel(self):
        g = grid_graph()
        spectral_cut = edge_cut(g, spectral_bisect(g, seed=0))
        ml_cut = edge_cut(g, partition_graph(g, 2, seed=0))
        assert spectral_cut <= 1.5 * ml_cut


class TestSpectralPartition:
    @pytest.mark.parametrize("nparts", [2, 4, 8])
    def test_covers_and_balances(self, nparts):
        g = grid_graph()
        mem = spectral_partition(g, nparts, seed=0)
        sizes = partition_sizes(mem, nparts)
        assert sizes.sum() == g.num_vertices
        assert np.all(sizes > 0)
        assert sizes.max() <= 1.8 * g.num_vertices / nparts

    def test_solve_case_scheme_spectral(self, tiny_case):
        from repro.core.driver import solve_case

        out = solve_case(tiny_case, "block2", nparts=4, scheme="spectral", maxiter=400)
        assert out.converged

    def test_tiny_graphs(self):
        import scipy.sparse as sp

        from repro.graph.adjacency import Graph

        a = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        g = Graph(a.indptr.astype(np.int64), a.indices.astype(np.int64), a.data)
        mem = spectral_partition(g, 2, seed=0)
        assert sorted(mem.tolist()) == [0, 1]
