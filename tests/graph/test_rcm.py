import numpy as np
import pytest

from repro.graph.adjacency import graph_from_elements, graph_from_matrix
from repro.graph.rcm import bandwidth, reverse_cuthill_mckee
from repro.mesh.grid2d import structured_rectangle


def grid_graph(n=12):
    mesh = structured_rectangle(n, n)
    return graph_from_elements(mesh.num_points, mesh.elements)


class TestReverseCuthillMckee:
    def test_is_a_permutation(self):
        g = grid_graph()
        perm = reverse_cuthill_mckee(g)
        assert sorted(perm.tolist()) == list(range(g.num_vertices))

    def test_reduces_bandwidth_of_shuffled_graph(self, rng):
        """Shuffle a grid's numbering, then RCM must restore a small band."""
        import scipy.sparse as sp

        g = grid_graph()
        n = g.num_vertices
        shuffle = rng.permutation(n)
        rows = np.repeat(np.arange(n), np.diff(g.indptr))
        a = sp.coo_matrix(
            (np.ones(len(g.indices)), (shuffle[rows], shuffle[g.indices])),
            shape=(n, n),
        ).tocsr()
        gs = graph_from_matrix(a)
        bw_before = bandwidth(gs)
        perm = reverse_cuthill_mckee(gs)
        bw_after = bandwidth(gs, perm)
        assert bw_after < 0.3 * bw_before

    def test_handles_disconnected_components(self):
        import scipy.sparse as sp

        a = sp.block_diag(
            [sp.diags([np.ones(4), np.ones(4)], [-1, 1], shape=(5, 5))] * 2
        ).tocsr()
        g = graph_from_matrix(a)
        perm = reverse_cuthill_mckee(g)
        assert sorted(perm.tolist()) == list(range(10))

    def test_path_graph_bandwidth_one(self):
        import scipy.sparse as sp

        n = 15
        a = sp.diags([np.ones(n - 1), np.ones(n - 1)], [-1, 1]).tocsr()
        g = graph_from_matrix(a)
        perm = reverse_cuthill_mckee(g)
        assert bandwidth(g, perm) == 1

    def test_empty_graph(self):
        import scipy.sparse as sp

        g = graph_from_matrix(sp.eye(3, format="csr"))
        perm = reverse_cuthill_mckee(g)
        assert sorted(perm.tolist()) == [0, 1, 2]
        assert bandwidth(g) == 0


class TestRcmBlockPreconditioner:
    def test_rcm_ordering_converges(self, partitioned_poisson):
        from repro.comm.communicator import Communicator
        from repro.krylov.fgmres import fgmres
        from repro.precond.block_jacobi import BlockPreconditioner

        pm, dmat, rhs, exact = partitioned_poisson
        comm = Communicator(pm.num_ranks)
        M = BlockPreconditioner(dmat, comm, variant="ilut", ordering="rcm")
        assert "(RCM)" in M.name
        res = fgmres(
            lambda v: dmat.matvec(comm, v),
            pm.to_distributed(rhs),
            apply_m=M.apply,
            rtol=1e-8,
            maxiter=500,
        )
        assert res.converged
        assert np.abs(pm.to_global(res.x) - exact).max() < 5e-4

    def test_rcm_not_worse_on_shuffled_problem(self):
        """RCM's value shows when the native numbering is bad: iterate a
        randomly-permuted Poisson system with fixed-fill ILUT."""
        import scipy.sparse as sp

        from repro.factor.ilut import ilut
        from repro.graph.rcm import reverse_cuthill_mckee
        from repro.krylov.fgmres import fgmres
        from repro.sparse.reorder import apply_symmetric_permutation

        from repro.fem.assembly import assemble_stiffness
        from repro.fem.boundary import apply_dirichlet
        from repro.mesh.grid2d import structured_rectangle

        mesh = structured_rectangle(21, 21)
        raw = assemble_stiffness(mesh)
        a, rhs = apply_dirichlet(
            raw, np.ones(mesh.num_points), mesh.all_boundary_nodes(), 0.0
        )
        rng = np.random.default_rng(3)
        shuffle = rng.permutation(a.shape[0])
        a_shuf = apply_symmetric_permutation(a, shuffle)
        b_shuf = rhs[shuffle]

        def iters(mat):
            fac = ilut(mat, 1e-3, 8)
            return fgmres(lambda v: mat @ v, b_shuf, apply_m=fac.solve,
                          rtol=1e-8, maxiter=500).iterations

        shuffled_iters = iters(a_shuf)
        perm = reverse_cuthill_mckee(graph_from_matrix(a_shuf))
        a_rcm = apply_symmetric_permutation(a_shuf, perm)
        fac = ilut(a_rcm, 1e-3, 8)
        res = fgmres(
            lambda v: a_rcm @ v, b_shuf[perm], apply_m=fac.solve,
            rtol=1e-8, maxiter=500,
        )
        assert res.iterations <= shuffled_iters

    def test_invalid_ordering(self, partitioned_poisson):
        from repro.comm.communicator import Communicator
        from repro.precond.block_jacobi import BlockPreconditioner

        pm, dmat, _, _ = partitioned_poisson
        with pytest.raises(ValueError):
            BlockPreconditioner(dmat, Communicator(pm.num_ranks), ordering="amd")
