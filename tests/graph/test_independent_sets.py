import numpy as np
import pytest

from repro.graph.adjacency import graph_from_elements
from repro.graph.independent_sets import (
    find_group_independent_sets,
    verify_group_independence,
)
from repro.mesh.grid2d import structured_rectangle


def grid_graph(n=15):
    mesh = structured_rectangle(n, n)
    return graph_from_elements(mesh.num_points, mesh.elements)


class TestGroupIndependentSets:
    def test_no_coupling_between_groups(self):
        g = grid_graph()
        gis = find_group_independent_sets(g, max_group_size=10, seed=0)
        assert verify_group_independence(g, gis)

    @pytest.mark.parametrize("gmax", [1, 5, 20, 100])
    def test_group_size_bound_respected(self, gmax):
        g = grid_graph()
        gis = find_group_independent_sets(g, max_group_size=gmax, seed=0)
        assert all(len(grp) <= gmax for grp in gis.groups)

    def test_groups_and_separator_partition_vertices(self):
        g = grid_graph()
        gis = find_group_independent_sets(g, max_group_size=12, seed=0)
        all_ids = np.concatenate([*gis.groups, gis.separator])
        assert sorted(all_ids.tolist()) == list(range(g.num_vertices))

    def test_permutation_orders_groups_then_separator(self):
        g = grid_graph(8)
        gis = find_group_independent_sets(g, max_group_size=6, seed=0)
        assert len(gis.permutation) == g.num_vertices
        assert gis.group_ptr[-1] == gis.num_grouped
        assert np.array_equal(gis.permutation[gis.num_grouped :], gis.separator)

    def test_candidates_restriction(self):
        """Interface vertices excluded from candidacy land in the separator."""
        g = grid_graph(8)
        candidates = np.arange(30)
        gis = find_group_independent_sets(g, 10, candidates=candidates, seed=0)
        grouped = np.concatenate(gis.groups) if gis.groups else np.empty(0)
        assert np.all(grouped < 30)
        assert set(range(30, g.num_vertices)).issubset(set(gis.separator.tolist()))

    def test_max_group_size_one_is_classical_independent_set(self):
        g = grid_graph(8)
        gis = find_group_independent_sets(g, max_group_size=1, seed=0)
        grouped = np.concatenate(gis.groups)
        gs = set(grouped.tolist())
        for v in grouped:
            assert not any(int(u) in gs for u in g.neighbors(int(v)))

    def test_grouped_fraction_substantial(self):
        """ARMS only pays off if most unknowns are eliminated in level one."""
        g = grid_graph(20)
        gis = find_group_independent_sets(g, max_group_size=20, seed=0)
        assert gis.num_grouped > 0.4 * g.num_vertices

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            find_group_independent_sets(grid_graph(4), 0)

    def test_deterministic_for_seed(self):
        g = grid_graph(8)
        a = find_group_independent_sets(g, 8, seed=5)
        b = find_group_independent_sets(g, 8, seed=5)
        assert np.array_equal(a.permutation, b.permutation)
