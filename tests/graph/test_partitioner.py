import numpy as np
import pytest

from repro.graph.adjacency import graph_from_elements
from repro.graph.partitioner import edge_cut, partition_graph, partition_sizes
from repro.mesh.grid2d import structured_rectangle


def grid_graph(n=17):
    mesh = structured_rectangle(n, n)
    return graph_from_elements(mesh.num_points, mesh.elements)


class TestPartitionGraph:
    @pytest.mark.parametrize("nparts", [1, 2, 3, 4, 7, 8, 16])
    def test_every_part_nonempty_and_covering(self, nparts):
        g = grid_graph()
        mem = partition_graph(g, nparts, seed=0)
        sizes = partition_sizes(mem, nparts)
        assert sizes.sum() == g.num_vertices
        assert np.all(sizes > 0)

    @pytest.mark.parametrize("nparts", [2, 4, 8])
    def test_balance_within_tolerance(self, nparts):
        g = grid_graph()
        mem = partition_graph(g, nparts, seed=0)
        sizes = partition_sizes(mem, nparts)
        mean = g.num_vertices / nparts
        assert sizes.max() <= 1.6 * mean
        assert sizes.min() >= 0.4 * mean

    def test_cut_beats_random_partition(self):
        g = grid_graph()
        mem = partition_graph(g, 4, seed=0)
        rng = np.random.default_rng(0)
        random_mem = rng.integers(0, 4, g.num_vertices)
        assert edge_cut(g, mem) < 0.5 * edge_cut(g, random_mem)

    def test_cut_scales_like_perimeter(self):
        """For a planar grid, a 4-way cut should be O(n), not O(n^2)."""
        n = 25
        g = grid_graph(n)
        mem = partition_graph(g, 4, seed=0)
        assert edge_cut(g, mem) < 12 * n

    def test_deterministic_for_fixed_seed(self):
        g = grid_graph(9)
        a = partition_graph(g, 4, seed=3)
        b = partition_graph(g, 4, seed=3)
        assert np.array_equal(a, b)

    def test_seed_changes_partition(self):
        """The paper's RNG-sensitivity: different seeds, different partitions."""
        g = grid_graph()
        a = partition_graph(g, 8, seed=0)
        b = partition_graph(g, 8, seed=1)
        assert not np.array_equal(a, b)

    def test_single_part_is_trivial(self):
        g = grid_graph(5)
        assert np.all(partition_graph(g, 1) == 0)

    def test_invalid_nparts_raises(self):
        with pytest.raises(ValueError):
            partition_graph(grid_graph(5), 0)

    def test_parts_are_mostly_connected(self):
        """A quality partitioner produces (nearly) connected subdomains."""
        import networkx as nx

        g = grid_graph()
        mem = partition_graph(g, 4, seed=0)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.num_vertices))
        for v in range(g.num_vertices):
            for u in g.neighbors(v):
                if mem[u] == mem[v]:
                    nxg.add_edge(v, u)
        n_components = sum(
            len(list(nx.connected_components(nxg.subgraph(np.flatnonzero(mem == p)))))
            for p in range(4)
        )
        assert n_components <= 8  # allow a couple of stray fragments


class TestEdgeCut:
    def test_zero_for_single_part(self):
        g = grid_graph(5)
        assert edge_cut(g, np.zeros(g.num_vertices, dtype=int)) == 0.0

    def test_counts_each_edge_once(self):
        g = graph_from_elements(2, np.empty((0, 3), dtype=int))
        # manual 2-vertex graph with one edge
        import scipy.sparse as sp

        from repro.graph.adjacency import Graph

        a = sp.csr_matrix(np.array([[0.0, 2.0], [2.0, 0.0]]))
        g = Graph(a.indptr.astype(np.int64), a.indices.astype(np.int64), a.data)
        assert edge_cut(g, np.array([0, 1])) == 2.0
