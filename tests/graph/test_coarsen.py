import numpy as np

from repro.graph.adjacency import graph_from_elements
from repro.graph.coarsen import coarsen_graph, heavy_edge_matching
from repro.mesh.grid2d import structured_rectangle
from repro.utils.rng import make_rng


def grid_graph(n=10):
    mesh = structured_rectangle(n, n)
    return graph_from_elements(mesh.num_points, mesh.elements)


class TestHeavyEdgeMatching:
    def test_matching_is_symmetric(self):
        g = grid_graph()
        match = heavy_edge_matching(g, make_rng(0))
        for v in range(g.num_vertices):
            assert match[match[v]] == v

    def test_matched_pairs_are_adjacent(self):
        g = grid_graph()
        match = heavy_edge_matching(g, make_rng(1))
        for v in range(g.num_vertices):
            u = match[v]
            if u != v:
                assert u in g.neighbors(v)

    def test_prefers_heavy_edges(self):
        # path 0-1-2 with weights 1 and 100: 1 must match 2
        import scipy.sparse as sp

        a = sp.csr_matrix(
            np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 100.0], [0.0, 100.0, 0.0]])
        )
        from repro.graph.adjacency import Graph

        g = Graph(a.indptr.astype(np.int64), a.indices.astype(np.int64), a.data)
        match = heavy_edge_matching(g, make_rng(0))
        assert match[1] == 2 and match[2] == 1


class TestCoarsenGraph:
    def test_shrinks_vertex_count(self):
        g = grid_graph()
        level = coarsen_graph(g, 0)
        assert level.graph.num_vertices < g.num_vertices
        assert level.graph.num_vertices >= g.num_vertices / 2

    def test_vertex_weight_conserved(self):
        g = grid_graph()
        level = coarsen_graph(g, 0)
        assert level.graph.total_vertex_weight() == g.total_vertex_weight()

    def test_fine_to_coarse_total(self):
        g = grid_graph()
        level = coarsen_graph(g, 0)
        assert level.fine_to_coarse.min() == 0
        assert level.fine_to_coarse.max() == level.graph.num_vertices - 1

    def test_no_self_loops_in_coarse_graph(self):
        g = grid_graph()
        level = coarsen_graph(g, 0)
        cg = level.graph
        for v in range(cg.num_vertices):
            assert v not in cg.neighbors(v)

    def test_coarse_edges_reflect_fine_edges(self):
        """Two coarse vertices are adjacent iff some fine edge crosses them."""
        g = grid_graph(6)
        level = coarsen_graph(g, 3)
        f2c = level.fine_to_coarse
        expected = set()
        for v in range(g.num_vertices):
            for u in g.neighbors(v):
                if f2c[u] != f2c[v]:
                    expected.add((min(f2c[u], f2c[v]), max(f2c[u], f2c[v])))
        actual = set()
        cg = level.graph
        for v in range(cg.num_vertices):
            for u in cg.neighbors(v):
                actual.add((min(u, v), max(u, v)))
        assert actual == expected
