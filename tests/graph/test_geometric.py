import numpy as np
import pytest

from repro.graph.geometric import (
    box_partition_2d,
    box_partition_3d,
    factor_processor_count,
)


class TestFactorProcessorCount:
    @pytest.mark.parametrize(
        "p,ndim,expected",
        [
            (1, 2, (1, 1)),
            (4, 2, (2, 2)),
            (16, 2, (4, 4)),
            (6, 2, (3, 2)),
            (8, 3, (2, 2, 2)),
            (12, 3, (3, 2, 2)),
            (7, 2, (7, 1)),
        ],
    )
    def test_balanced_factorizations(self, p, ndim, expected):
        assert factor_processor_count(p, ndim) == expected

    @pytest.mark.parametrize("p", range(1, 65))
    def test_product_is_p(self, p):
        fx, fy = factor_processor_count(p, 2)
        assert fx * fy == p

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            factor_processor_count(0, 2)


class TestBoxPartition2d:
    def test_covers_all_points_evenly(self):
        mem = box_partition_2d(16, 16, 4)
        sizes = np.bincount(mem, minlength=4)
        assert sizes.sum() == 256
        assert np.all(sizes == 64)

    def test_boxes_are_contiguous_rectangles(self):
        nx = ny = 12
        mem = box_partition_2d(nx, ny, 4)
        grid = mem.reshape(ny, nx)
        for p in range(4):
            ys, xs = np.nonzero(grid == p)
            # a rectangle: the bounding box is fully owned
            assert (ys.max() - ys.min() + 1) * (xs.max() - xs.min() + 1) == len(xs)

    def test_uneven_divisions_still_cover(self):
        mem = box_partition_2d(10, 7, 3)
        assert np.bincount(mem, minlength=3).sum() == 70
        assert np.all(np.bincount(mem, minlength=3) > 0)


class TestBoxPartition3d:
    def test_covers_all_points(self):
        mem = box_partition_3d(8, 8, 8, 8)
        sizes = np.bincount(mem, minlength=8)
        assert sizes.sum() == 512
        assert np.all(sizes == 64)

    def test_boxes_are_contiguous_boxes(self):
        mem = box_partition_3d(6, 6, 6, 8)
        grid = mem.reshape(6, 6, 6)
        for p in range(8):
            zs, ys, xs = np.nonzero(grid == p)
            vol = (
                (zs.max() - zs.min() + 1)
                * (ys.max() - ys.min() + 1)
                * (xs.max() - xs.min() + 1)
            )
            assert vol == len(xs)
