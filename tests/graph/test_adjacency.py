import numpy as np
import scipy.sparse as sp

from repro.graph.adjacency import Graph, graph_from_elements, graph_from_matrix
from repro.mesh.grid2d import structured_rectangle


class TestGraphFromMatrix:
    def test_symmetrizes_pattern(self):
        a = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 1.0]]))
        g = graph_from_matrix(a)
        assert set(g.neighbors(0)) == {1}
        assert set(g.neighbors(1)) == {0}

    def test_excludes_diagonal(self):
        g = graph_from_matrix(sp.eye(5, format="csr"))
        assert all(g.degree(v) == 0 for v in range(5))

    def test_keeps_structural_zero_couplings(self):
        """Explicitly-stored zeros are couplings (the uniform-grid Poisson
        cross terms are exactly zero but structurally present)."""
        a = sp.csr_matrix(
            (np.array([1.0, 0.0, 1.0]), np.array([0, 1, 1]), np.array([0, 2, 3])),
            shape=(2, 2),
        )
        g = graph_from_matrix(a)
        assert set(g.neighbors(0)) == {1}


class TestGraphFromElements:
    def test_single_triangle_is_complete(self):
        g = graph_from_elements(3, np.array([[0, 1, 2]]))
        for v in range(3):
            assert set(g.neighbors(v)) == {0, 1, 2} - {v}

    def test_matches_fe_matrix_pattern(self):
        mesh = structured_rectangle(6, 6)
        g = graph_from_elements(mesh.num_points, mesh.elements)
        # interior point of a right-triangulated grid has 6 neighbors
        interior = 2 * 6 + 2  # (ix=2, iy=2)
        assert g.degree(interior) == 6

    def test_shared_edges_deduplicated(self):
        g = graph_from_elements(4, np.array([[0, 1, 2], [1, 2, 3]]))
        assert set(g.neighbors(1)) == {0, 2, 3}
        assert g.degree(1) == 3


class TestSubgraph:
    def test_induced_edges_only(self):
        g = graph_from_elements(4, np.array([[0, 1, 2], [1, 2, 3]]))
        sub, mapping = g.subgraph(np.array([0, 3]))
        assert sub.num_vertices == 2
        assert sub.degree(0) == 0  # 0 and 3 are not adjacent
        assert mapping.tolist() == [0, 3]

    def test_vertex_weights_carried(self):
        g = graph_from_elements(3, np.array([[0, 1, 2]]))
        g.vertex_weights = np.array([1.0, 2.0, 3.0])
        sub, _ = g.subgraph(np.array([1, 2]))
        assert sub.vertex_weights.tolist() == [2.0, 3.0]

    def test_total_vertex_weight(self):
        g = graph_from_elements(3, np.array([[0, 1, 2]]))
        assert g.total_vertex_weight() == 3.0
