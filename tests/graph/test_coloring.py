import numpy as np

from repro.graph.adjacency import graph_from_elements
from repro.graph.coloring import greedy_coloring
from repro.mesh.grid2d import structured_rectangle


def grid_graph(n=10):
    mesh = structured_rectangle(n, n)
    return graph_from_elements(mesh.num_points, mesh.elements)


class TestGreedyColoring:
    def test_proper_coloring(self):
        g = grid_graph()
        colors = greedy_coloring(g)
        for v in range(g.num_vertices):
            for u in g.neighbors(v):
                assert colors[u] != colors[v]

    def test_all_vertices_colored(self):
        g = grid_graph()
        colors = greedy_coloring(g)
        assert np.all(colors >= 0)

    def test_color_count_bounded_by_degree(self):
        g = grid_graph()
        colors = greedy_coloring(g)
        max_deg = max(g.degree(v) for v in range(g.num_vertices))
        assert colors.max() <= max_deg

    def test_custom_order_respected(self):
        g = grid_graph(5)
        colors = greedy_coloring(g, order=np.arange(g.num_vertices)[::-1])
        for v in range(g.num_vertices):
            for u in g.neighbors(v):
                assert colors[u] != colors[v]
