"""ResilientSolver rank-failure recovery and the cg/bicgstab solve paths."""

import numpy as np
import pytest

from repro import faults, obs
from repro.cases.poisson2d import poisson2d_case
from repro.resilience import RankDeadError, ResilientSolver


@pytest.fixture()
def case():
    return poisson2d_case(n=16)


def _events(tracer, name):
    evs = [e for e in tracer.orphan_events if e["name"] == name]
    for s in tracer.spans:
        evs.extend(e for e in s.events if e["name"] == name)
    return evs


class TestRankRecovery:
    def test_dead_rank_absorbed_and_solve_resumes(self, case):
        plan = faults.FaultPlan(faults.FaultSpec("rank-dead", rank=2, start=4))
        with obs.tracing() as tracer, faults.inject(plan):
            res = ResilientSolver().solve(case, precond="schur1", nparts=3)
        assert res.recovered
        assert [a.kind for a in res.attempts] == ["primary", "rank-recovery"]
        assert res.attempts[0].status == "breakdown"
        assert isinstance(res.attempts[0].error, RankDeadError)
        # the re-solve ran on the shrunk world
        assert res.outcome.nparts == 2
        assert res.outcome.error is not None and res.outcome.error < 1e-3
        # recovery is visible in the trace
        spans = [s for s in tracer.spans if s.name == "resilience.comm.recover"]
        assert len(spans) == 1 and spans[0].attrs["rank"] == 2

    def test_recovery_restores_from_checkpoint(self, case, tmp_path):
        # a tight tolerance and short restart force several FGMRES cycles,
        # so checkpoints exist before the rank dies; the recovery attempt
        # restores the iterate from disk and finishes the *original* job
        # (the saved target becomes the restored solve's absolute goal)
        plan = faults.FaultPlan(faults.FaultSpec("rank-dead", rank=1, start=30))
        with obs.tracing() as tracer, faults.inject(plan):
            res = ResilientSolver().solve(
                case, precond="schur1", nparts=3, rtol=1e-12, restart=3,
                checkpoint_dir=str(tmp_path),
            )
        assert res.recovered
        assert [a.kind for a in res.attempts] == ["primary", "rank-recovery"]
        assert _events(tracer, "resilience.ckpt.save")
        assert _events(tracer, "resilience.ckpt.restore")

    def test_world_can_shrink_to_one_rank(self, case):
        # a 2-rank world recovers into a serial solve: the survivor owns
        # everything and there is nothing left to exchange (or to kill)
        plan = faults.FaultPlan(faults.FaultSpec("rank-dead", rank=1, start=2))
        with faults.inject(plan):
            res = ResilientSolver().solve(case, precond="schur1", nparts=2)
        assert res.recovered
        assert res.outcome.nparts == 1

    def test_injection_is_deterministic(self, case):
        def run():
            plan = faults.FaultPlan(faults.FaultSpec("rank-dead", rank=2, start=4))
            with faults.inject(plan):
                res = ResilientSolver().solve(case, precond="schur1", nparts=3)
            return (
                plan.injected,
                [(a.kind, a.status, a.iterations) for a in res.attempts],
                res.outcome.iterations,
            )

        assert run() == run()


class TestAlternateSolverPaths:
    """ResilientSolver retry/fallback rides solve_case's solver= parameter."""

    def test_cg_clean_run(self, case):
        res = ResilientSolver().solve(case, precond="jacobi", nparts=2, solver="cg")
        assert res.converged and [a.kind for a in res.attempts] == ["primary"]

    def test_bicgstab_clean_run(self, case):
        res = ResilientSolver().solve(
            case, precond="block1", nparts=2, solver="bicgstab"
        )
        assert res.converged

    def test_cg_rank_dead_recovers(self, case):
        plan = faults.FaultPlan(faults.FaultSpec("rank-dead", rank=1, start=3))
        with faults.inject(plan):
            res = ResilientSolver().solve(
                case, precond="schur1", nparts=2, solver="cg"
            )
        assert res.recovered
        assert res.attempts[-1].kind == "rank-recovery"

    def test_bicgstab_breakdown_retries_then_falls_back(self, case):
        # zero every block1 ILU pivot: the primary and the shifted retry
        # both break down, then the chain recovers under bicgstab
        plan = faults.FaultPlan(
            faults.FaultSpec("bad-pivot", count=-1, target=("block1",))
        )
        with faults.inject(plan):
            res = ResilientSolver(
                fallback_chain=("jacobi",), max_retries=1
            ).solve(case, precond="block1", nparts=2, solver="bicgstab")
        assert res.recovered
        kinds = [a.kind for a in res.attempts]
        assert kinds == ["primary", "retry", "fallback"]
        assert res.final_precond == "jacobi"

    def test_unknown_solver_rejected(self, case):
        with pytest.raises(ValueError, match="unknown solver"):
            ResilientSolver().solve(case, precond="jacobi", solver="sor")
