"""The typed failure taxonomy (docs/robustness.md)."""

import pytest

from repro.krylov import STATUSES
from repro.resilience import (
    FactorizationBreakdown,
    InnerSolveDivergence,
    NumericalFault,
    SolverFault,
)


class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(FactorizationBreakdown, SolverFault)
        assert issubclass(NumericalFault, SolverFault)
        assert issubclass(InnerSolveDivergence, SolverFault)
        assert issubclass(SolverFault, RuntimeError)

    def test_statuses_are_valid(self):
        for cls in (SolverFault, FactorizationBreakdown, NumericalFault,
                    InnerSolveDivergence):
            assert cls.status in STATUSES

    def test_breakdown_maps_to_breakdown_status(self):
        assert FactorizationBreakdown.status == "breakdown"
        assert NumericalFault.status == "diverged"
        assert InnerSolveDivergence.status == "diverged"

    def test_context_lands_in_message(self):
        exc = NumericalFault("matvec exploded", where="dist.matvec", bad=3)
        assert exc.context == {"where": "dist.matvec", "bad": 3}
        text = str(exc)
        assert "matvec exploded" in text
        assert "where=dist.matvec" in text and "bad=3" in text

    def test_catchable_as_runtime_error(self):
        with pytest.raises(RuntimeError):
            raise FactorizationBreakdown("collapsed", floored=9, n=10)
