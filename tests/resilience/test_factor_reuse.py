"""The fallback chain on a cached operator performs zero redundant
factorizations (the factor-cache acceptance criterion of ISSUE 4)."""

import pytest

from repro import faults
from repro.cases.poisson2d import poisson2d_case
from repro.factor import cache as factor_cache
from repro.resilience import ResilientSolver


@pytest.fixture()
def case():
    return poisson2d_case(n=16)


@pytest.fixture(autouse=True)
def fresh_cache():
    cache = factor_cache.configure(enabled=True)
    cache.clear()
    cache.reset_stats()
    yield cache
    cache.clear()
    cache.reset_stats()


class TestZeroRedundantFactorizations:
    def test_fallback_reuses_primary_factors(self, case, fresh_cache):
        """Block K and Block 2 issue identical ILUT calls on the same owned
        blocks, so after Block K diverges on a transient matvec NaN, the
        Block 2 fallback must find every factor in the cache — the operator
        has not changed, and re-factoring it would be pure waste."""
        nparts = 4
        plan = faults.FaultPlan(faults.FaultSpec("nan-kernel", count=1))
        solver = ResilientSolver(max_retries=0, fallback_chain=("block2",))
        with faults.inject(plan):
            res = solver.solve(case, precond="blockk", nparts=nparts)

        assert res.recovered
        assert [a.kind for a in res.attempts] == ["primary", "fallback"]
        assert res.final_precond == "block2"

        s = fresh_cache.stats()
        # primary setup factored each subdomain block once (all misses);
        # the fallback's setup was served entirely from the cache
        assert s["misses"] == nparts
        assert s["hits"] == nparts
        assert s["bypasses"] == 0

    def test_same_precond_repeat_solve_is_all_hits(self, case, fresh_cache):
        """A clean re-solve of an unchanged operator re-factors nothing."""
        solver = ResilientSolver(max_retries=0, fallback_chain=())
        res1 = solver.solve(case, precond="block2", nparts=4)
        assert res1.converged
        misses_after_first = fresh_cache.stats()["misses"]
        assert misses_after_first == 4

        res2 = solver.solve(case, precond="block2", nparts=4)
        assert res2.converged
        s = fresh_cache.stats()
        assert s["misses"] == misses_after_first  # no new factorizations
        assert s["hits"] == 4

    def test_retry_with_remedies_is_an_honest_miss(self, case, fresh_cache):
        """The shifted retry factors a different operator (A + sigma*I with
        tightened dropping), so it must NOT be served from the cache."""
        plan = faults.FaultPlan(
            faults.FaultSpec("tiny-pivot", count=-1, target="block2",
                             stride=100)
        )
        solver = ResilientSolver(max_retries=1, fallback_chain=())
        with faults.inject(plan):
            res = solver.solve(
                case, precond="block2", nparts=4,
                precond_params={"drop_tol": 1e-3},
            )
        kinds = [a.kind for a in res.attempts]
        assert kinds[0] == "primary"
        assert "retry" in kinds
        s = fresh_cache.stats()
        # the unbounded live pivot spec keeps every block2 factorization on
        # the bypass path; nothing is cached, nothing is wrongly reused
        assert s["hits"] == 0
        assert s["bypasses"] >= 8  # primary + retry, 4 blocks each
