"""Detection: NaN/Inf guards, divergence/stagnation detectors, statuses."""

import numpy as np
import pytest

from repro.cases.poisson2d import poisson2d_case
from repro.comm.communicator import Communicator
from repro.core.driver import solve_case
from repro.distributed.partition_map import PartitionMap
from repro.distributed.matrix import distribute_matrix
from repro.krylov import STATUSES
from repro.krylov.fgmres import fgmres
from repro.krylov.monitors import ConvergenceMonitor, KrylovResult
from repro.precond.base import ParallelPreconditioner
from repro.resilience import NumericalFault


class TestKrylovResultStatus:
    def test_status_validated(self):
        with pytest.raises(ValueError, match="unknown status"):
            KrylovResult(np.zeros(1), 0, "exploded", [1.0])

    def test_converged_property_derives_from_status(self):
        for status in STATUSES:
            res = KrylovResult(np.zeros(1), 1, status, [1.0])
            assert res.converged == (status == "converged")


class TestMonitorDetectors:
    def _monitor(self, residuals, **kw):
        mon = ConvergenceMonitor(**kw)
        mon.start(residuals[0])
        for r in residuals[1:]:
            mon.check(r)
        return mon

    def test_nonfinite_residual_is_divergence(self):
        mon = self._monitor([1.0, 0.5, float("nan")])
        assert mon.diverged() and mon.verdict() == "diverged"

    def test_residual_explosion_is_divergence(self):
        mon = self._monitor([1.0, 1e11], divtol=1e10)
        assert mon.diverged()

    def test_divtol_none_disables_growth_test(self):
        mon = self._monitor([1.0, 1e30], divtol=None)
        assert not mon.diverged()

    def test_stagnation_needs_window(self):
        flat = [1.0] + [0.9] * 10
        assert not self._monitor(flat).stagnated()  # disabled by default
        mon = self._monitor(flat, stall_window=4)
        assert mon.stagnated() and mon.verdict() == "stagnated"

    def test_progress_is_not_stagnation(self):
        halving = [1.0 * 0.5**k for k in range(10)]
        assert not self._monitor(halving, stall_window=4).stagnated()


class TestFgmresDivergenceDetection:
    def test_nan_operator_yields_diverged_with_finite_iterate(self):
        # the operator output goes NaN on the 3rd application: the solver
        # must classify the run instead of crashing or returning NaN
        n = 8
        a = np.diag(np.arange(1.0, n + 1))
        calls = {"k": 0}

        def apply_a(v):
            calls["k"] += 1
            y = a @ v
            if calls["k"] >= 3:
                y[0] = np.nan
            return y

        res = fgmres(apply_a, np.ones(n), restart=4, maxiter=20)
        assert res.status == "diverged"
        assert not res.converged
        assert np.all(np.isfinite(res.x))

    def test_nonfinite_initial_residual_diverges_immediately(self):
        def apply_a(v):
            return np.full_like(v, np.nan)

        res = fgmres(apply_a, np.ones(4), restart=4, maxiter=10)
        assert res.status == "diverged" and res.iterations == 0

    def test_maxiter_is_not_divergence(self):
        a = np.diag(np.linspace(1, 100, 30))
        res = fgmres(lambda v: a @ v, np.ones(30), restart=3, maxiter=3)
        assert res.status == "maxiter"
        assert not res.converged


class TestDistributedGuards:
    def _dist_setup(self, nparts=2):
        case = poisson2d_case(n=10)
        membership = case.membership(nparts, seed=0)
        pm = PartitionMap(case.coupling_graph, membership, num_ranks=nparts)
        return distribute_matrix(case.matrix, pm), Communicator(nparts), pm

    def test_matvec_guard_raises_numerical_fault(self):
        dmat, comm, pm = self._dist_setup()
        x = np.full(pm.layout.total, np.nan)
        with pytest.raises(NumericalFault, match="matvec"):
            dmat.matvec(comm, x)

    def test_matvec_clean_input_passes(self):
        dmat, comm, pm = self._dist_setup()
        y = dmat.matvec(comm, np.ones(pm.layout.total))
        assert np.all(np.isfinite(y))

    def test_precond_apply_guard(self):
        dmat, comm, pm = self._dist_setup()

        class BadPreconditioner(ParallelPreconditioner):
            name = "bad"

            def apply(self, r):
                z = r.copy()
                z[0] = np.inf
                return z

        bad = BadPreconditioner(dmat, comm)
        with pytest.raises(NumericalFault, match="bad preconditioner"):
            bad(np.ones(pm.layout.total))
        # calling .apply directly skips the guard (documented contract)
        assert np.isinf(bad.apply(np.ones(pm.layout.total))[0])


class TestSolveOutcomeStatus:
    def test_solve_outcome_carries_status(self):
        out = solve_case(poisson2d_case(n=12), precond="block1", nparts=2)
        assert out.status == "converged" and out.converged

    def test_budget_exhaustion_is_maxiter(self):
        out = solve_case(
            poisson2d_case(n=24), precond="none", nparts=2, maxiter=3
        )
        assert out.status == "maxiter" and not out.converged
