"""The retry/fallback chain recovers (or honestly classifies) each fault class."""

import numpy as np
import pytest

from repro import faults, obs
from repro.cases.poisson2d import poisson2d_case
from repro.resilience import FALLBACK_CHAIN, ResilientSolver


@pytest.fixture()
def case():
    return poisson2d_case(n=16)


def _events(tracer, name):
    evs = [e for e in tracer.orphan_events if e["name"] == name]
    for s in tracer.spans:
        evs.extend(e for e in s.events if e["name"] == name)
    return evs


class TestChainConfiguration:
    def test_chain_ends_in_jacobi(self):
        assert FALLBACK_CHAIN[-1] == "jacobi"

    def test_unknown_fallback_rejected(self):
        with pytest.raises(ValueError, match="unknown fallback"):
            ResilientSolver(fallback_chain=("schur1", "turbo"))

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ResilientSolver(max_retries=-1)


class TestCleanRun:
    def test_converged_first_try_has_one_attempt(self, case):
        res = ResilientSolver().solve(case, precond="schur1", nparts=2)
        assert res.converged and not res.recovered
        assert [a.kind for a in res.attempts] == ["primary"]
        assert res.final_precond == "schur1"


class TestFaultRecovery:
    """One scenario per fault class (the acceptance matrix of ISSUE.md)."""

    def test_bad_pivot_breakdown_falls_back(self, case):
        # every schur1 ILUT pivot zeroed: FactorizationBreakdown on the
        # primary AND the shifted retry, then the chain takes over
        plan = faults.FaultPlan(
            faults.FaultSpec("bad-pivot", count=-1, target="schur1")
        )
        with obs.tracing() as tracer, faults.inject(plan):
            res = ResilientSolver().solve(case, precond="schur1", nparts=2)
        assert res.recovered
        assert res.attempts[0].status == "breakdown"
        assert "pivots collapsed" in res.attempts[0].fault
        assert res.final_precond != "schur1"
        assert _events(tracer, "resilience.retry")
        assert _events(tracer, "resilience.fallback")
        assert _events(tracer, "faults.injected")

    def test_nan_kernel_recovers_on_retry(self, case):
        # one NaN in a matvec output: the guard classifies, the retry is
        # clean because the fault budget (count=1) is spent
        plan = faults.FaultPlan(faults.FaultSpec("nan-kernel", count=1))
        with obs.tracing() as tracer, faults.inject(plan):
            res = ResilientSolver().solve(case, precond="schur1", nparts=2)
        assert res.recovered
        assert res.attempts[0].status == "diverged"
        assert [a.kind for a in res.attempts] == ["primary", "retry"]
        retry_events = _events(tracer, "resilience.retry")
        assert retry_events and retry_events[0]["attrs"]["precond"] == "schur1"

    def test_corrupted_ghost_exchange_recovers(self, case):
        # NaN ghost values poison the inner interface solve
        plan = faults.FaultPlan(faults.FaultSpec("ghost-corrupt", count=3))
        with obs.tracing() as tracer, faults.inject(plan):
            res = ResilientSolver().solve(case, precond="schur1", nparts=2)
        assert res.recovered
        assert res.attempts[0].status == "diverged"
        assert _events(tracer, "resilience.retry")

    def test_divergent_inner_solve_walks_chain(self, case):
        # unlimited tiny pivots corrupt every schur1 factorization (primary
        # and retry): recovery must come from a different preconditioner
        plan = faults.FaultPlan(
            faults.FaultSpec("tiny-pivot", count=-1, target="schur1")
        )
        with obs.tracing() as tracer, faults.inject(plan):
            res = ResilientSolver().solve(case, precond="schur1", nparts=2)
        assert res.recovered
        assert res.final_precond != "schur1"
        fallback_events = _events(tracer, "resilience.fallback")
        assert fallback_events and fallback_events[0]["attrs"]["to"] != "schur1"
        # every attempt is classified, never silently swallowed
        assert all(a.status for a in res.attempts)

    def test_recovered_solution_is_correct(self, case):
        plan = faults.FaultPlan(faults.FaultSpec("nan-kernel", count=1))
        with faults.inject(plan):
            res = ResilientSolver().solve(case, precond="schur1", nparts=2)
        assert res.recovered
        out = res.outcome
        r = case.rhs - case.matrix @ out.x_global
        assert np.linalg.norm(r) <= 1e-5 * np.linalg.norm(case.rhs)


class TestChainExhaustion:
    def test_unbreakable_jacobi_survives_targeted_factor_faults(self, case):
        # fault every ILU factorization everywhere: only Jacobi (no
        # factorization at all) can complete
        plan = faults.FaultPlan(
            faults.FaultSpec(
                "bad-pivot", count=-1,
                target="schur1,schur2,block1,block2,blockk",
            )
        )
        with faults.inject(plan):
            res = ResilientSolver().solve(
                case, precond="schur1", nparts=2, maxiter=300
            )
        assert res.converged
        assert res.final_precond == "jacobi"

    def test_exhausted_chain_reports_last_failure(self, case):
        plan = faults.FaultPlan(faults.FaultSpec("nan-kernel", count=-1))
        solver = ResilientSolver(max_retries=0, fallback_chain=("block1",))
        with faults.inject(plan):
            res = solver.solve(case, precond="block1", nparts=2)
        assert not res.converged
        assert res.status == "diverged"
        assert res.outcome is None
        assert all(a.status == "diverged" for a in res.attempts)
