"""CLI surface of the resilience layer: status exit codes, the faults command."""

import json

import pytest

from repro.cli import main


class TestSolveStatusReporting:
    def test_failure_prints_classified_status(self, capsys):
        rc = main(["solve", "--case", "tc1", "--size", "17", "--precond",
                   "none", "--maxiter", "3", "--nparts", "2"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "NOT CONVERGED" in out
        assert "maxiter" in out

    def test_resilient_flag_on_clean_run(self, capsys):
        rc = main(["solve", "--case", "tc1", "--size", "17", "--precond",
                   "schur1", "--nparts", "2", "--resilient"])
        assert rc == 0
        assert "converged" in capsys.readouterr().out


class TestFaultsCommand:
    def test_bad_pivot_recovery_reported(self, capsys):
        rc = main(["faults", "tc1", "--size", "17", "--precond", "schur1",
                   "--nparts", "2", "--kind", "bad-pivot", "--count", "-1",
                   "--target", "schur1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "injected bad-pivot" in out
        assert "[primary] schur1" in out
        assert "recovered" in out

    def test_nan_kernel_retry(self, capsys):
        rc = main(["faults", "tc1", "--size", "17", "--precond", "schur1",
                   "--nparts", "2", "--kind", "nan-kernel"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "injected nan-kernel" in out
        assert "[retry] schur1" in out

    def test_trace_output_includes_resilience_events(self, tmp_path, capsys):
        out_path = tmp_path / "faulted.json"
        rc = main(["faults", "tc1", "--size", "17", "--precond", "schur1",
                   "--nparts", "2", "--kind", "ghost-corrupt", "--count", "3",
                   "--out", str(out_path)])
        assert rc == 0
        doc = json.loads(out_path.read_text())
        assert doc["meta"]["recovered"] is True
        assert doc["meta"]["injected"]
        names = set()
        for span in doc["spans"]:
            names.update(e["name"] for e in span["events"])
        assert "faults.injected" in names
        assert "resilience.retry" in names

    def test_unknown_kind_rejected(self):
        with pytest.raises(SystemExit):
            main(["faults", "tc1", "--kind", "meteor-strike"])
