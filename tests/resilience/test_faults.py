"""Deterministic fault injection: counters, targeting, reproducibility."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import faults
from repro.cases.poisson2d import poisson2d_case
from repro.core.driver import solve_case
from repro.factor.ilu0 import ilu0
from repro.factor.ilut import ilut
from repro.resilience import FactorizationBreakdown


def _spd(n=12, seed=0):
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density=0.3, random_state=rng, format="csr")
    return sp.csr_matrix(a + a.T + n * sp.eye(n))


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.FaultSpec("meteor-strike")

    def test_target_string_normalized(self):
        spec = faults.FaultSpec("bad-pivot", target="schur1,block1")
        assert spec.target == ("schur1", "block1")

    def test_counter_logic(self):
        # count=2, start=1, stride=2: fires on opportunities 1 and 3 only
        plan = faults.FaultPlan(
            faults.FaultSpec("bad-pivot", count=2, start=1, stride=2)
        )
        fired = [plan.pivot_pre(i, 5.0) == 0.0 for i in range(6)]
        assert fired == [False, True, False, True, False, False]

    def test_scope_targeting(self):
        plan = faults.FaultPlan(
            faults.FaultSpec("bad-pivot", count=-1, target="schur1")
        )
        with faults.inject(plan):
            assert plan.pivot_pre(0, 5.0) == 5.0  # no scope: spec inert
            with faults.scope("schur1"):
                assert plan.pivot_pre(0, 5.0) == 0.0
            with faults.scope("block1"):
                assert plan.pivot_pre(0, 5.0) == 5.0


class TestInjectionContext:
    def test_off_by_default(self):
        assert faults.active() is None and not faults.enabled()

    def test_inject_activates_and_restores(self):
        plan = faults.FaultPlan(faults.FaultSpec("nan-kernel"))
        with faults.inject(plan) as active:
            assert active is plan and faults.active() is plan
        assert faults.active() is None

    def test_not_reentrant(self):
        plan = faults.FaultPlan(faults.FaultSpec("nan-kernel"))
        with faults.inject(plan):
            with pytest.raises(RuntimeError, match="already active"):
                with faults.inject(plan):
                    pass


class TestDeterminism:
    def _run(self):
        case = poisson2d_case(n=14)
        plan = faults.FaultPlan(
            faults.FaultSpec("nan-kernel", count=1, start=3), seed=7
        )
        with faults.inject(plan):
            try:
                out = solve_case(case, precond="block1", nparts=2, maxiter=50)
                status = out.status
            except RuntimeError as exc:
                status = getattr(exc, "status", "raised")
        return plan.injected, status

    def test_same_plan_injects_identical_faults(self):
        first, status1 = self._run()
        second, status2 = self._run()
        assert first == second
        assert status1 == status2
        assert len(first) == 1
        assert first[0]["kernel"] == "dist.matvec"


class TestFactorizationFaults:
    def test_bad_pivot_trips_breakdown_detector(self):
        a = _spd(16)
        with faults.inject(faults.FaultPlan(faults.FaultSpec("bad-pivot", count=-1))):
            with pytest.raises(FactorizationBreakdown, match="pivots collapsed"):
                ilu0(a, breakdown_frac=0.25)

    def test_breakdown_context_counts(self):
        a = _spd(16)
        with faults.inject(faults.FaultPlan(faults.FaultSpec("bad-pivot", count=-1))):
            with pytest.raises(FactorizationBreakdown) as info:
                ilut(a, breakdown_frac=0.25)
        assert info.value.context["floored"] == 16
        assert info.value.context["n"] == 16

    def test_no_breakdown_frac_never_raises(self):
        # raw factorizations keep the historical floor-and-continue contract
        a = _spd(16)
        with faults.inject(faults.FaultPlan(faults.FaultSpec("bad-pivot", count=-1))):
            fac = ilu0(a)
        assert fac.stats.floored_pivots == 16

    def test_tiny_pivot_survives_floor(self):
        # a diagonal matrix: no fill updates, the corrupted pivot is stored
        # verbatim — the floor safeguard cannot see it (it fires post-floor)
        a = sp.csr_matrix(2.0 * sp.eye(5))
        spec = faults.FaultSpec("tiny-pivot", count=1, value=1e-300)
        plan = faults.FaultPlan(spec)
        with faults.inject(plan):
            fac = ilu0(a)
        assert plan.summary() == {"tiny-pivot": 1}
        assert np.abs(fac.u_upper.diagonal()).min() == pytest.approx(1e-300)


class TestFactorStats:
    def test_clean_factorization_has_zero_floored(self):
        fac = ilut(_spd(16), 1e-3, 10)
        assert fac.stats.floored_pivots == 0
        assert fac.stats.n == 16
        assert fac.stats.floored_fraction == 0.0
        assert "floored" not in repr(fac)

    def test_floored_pivots_counted_and_shown(self):
        # an explicitly stored zero diagonal with no fill reaching it
        data = np.array([1.0, 1.0, 0.0, 1.0, 1.0])
        diag = np.arange(5)
        a = sp.csr_matrix((data, (diag, diag)), shape=(5, 5))
        fac = ilu0(a)
        assert fac.stats.floored_pivots == 1
        assert fac.stats.floored_fraction == pytest.approx(0.2)
        assert "floored_pivots=1" in repr(fac)

    def test_shift_recorded_in_stats(self):
        fac = ilut(_spd(16), 1e-3, 10, shift=0.5)
        assert fac.stats.shift == 0.5
