"""Process-level fault kinds: real signals on real backends, graceful
degradation to simulated rank-death everywhere else."""

import os

import pytest

from repro import faults
from repro.cases import poisson2d_case
from repro.comm.backends import InProcessBackend, MultiprocessBackend
from repro.comm.backends.supervisor import HeartbeatPolicy
from repro.faults import FaultPlan, FaultSpec
from repro.resilience import ResilientSolver


@pytest.fixture(scope="module")
def case():
    return poisson2d_case(12)


class TestSpecValidation:
    @pytest.mark.parametrize("kind", ["proc-kill", "proc-hang"])
    def test_proc_kinds_require_a_rank(self, kind):
        with pytest.raises(ValueError, match="explicit rank"):
            FaultSpec(kind)
        assert FaultSpec(kind, rank=1).rank == 1

    def test_underscore_alias(self):
        assert FaultSpec("proc_kill", rank=0).kind == "proc-kill"


class TestDegradedInProcess:
    """Without real processes the proc kinds play dead, so the same fault
    plan exercises recovery on every backend."""

    @pytest.mark.parametrize("kind", ["proc-kill", "proc-hang"])
    def test_degrades_to_simulated_rank_death(self, kind):
        plan = FaultPlan(FaultSpec(kind, rank=1))
        plan.exchange_begin(backend=InProcessBackend(3))
        assert plan.dead_ranks == {1}
        (rec,) = plan.injected
        assert rec["kind"] == kind
        assert rec["degraded"] is True

    def test_no_backend_also_degrades(self):
        plan = FaultPlan(FaultSpec("proc-kill", rank=0))
        plan.exchange_begin()
        assert plan.dead_ranks == {0}
        assert plan.injected[0]["degraded"] is True

    def test_degraded_solve_recovers(self, case):
        plan = FaultPlan(FaultSpec("proc-kill", rank=2, start=4))
        with faults.inject(plan):
            res = ResilientSolver().solve(case, precond="schur1", nparts=3)
        assert res.recovered
        assert [a.kind for a in res.attempts] == ["primary", "rank-recovery"]


class TestRealBackend:
    def _backend(self):
        return MultiprocessBackend(
            3, heartbeat=HeartbeatPolicy(probe_timeout=0.2, fence_after=2)
        )

    def test_proc_kill_sends_a_real_sigkill(self):
        backend = self._backend()
        try:
            backend.ensure_started()
            pid = backend.rank_pid(1)
            plan = FaultPlan(FaultSpec("proc-kill", rank=1))
            plan.exchange_begin(backend=backend)
            # the process is genuinely gone, not simulated dead
            assert plan.dead_ranks == set()
            assert plan.injected[0]["degraded"] is False
            backend._procs[1].join(5.0)
            assert backend._procs[1].exitcode == -9
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        finally:
            backend.shutdown()

    def test_proc_hang_sigstops_until_resumed(self):
        backend = self._backend()
        try:
            backend.ensure_started()
            plan = FaultPlan(FaultSpec("proc-hang", rank=2))
            plan.exchange_begin(backend=backend)
            assert not backend.probe(2, timeout=0.15)   # stopped: no PONG
            assert backend.check_alive(2)               # ...but not dead
            backend.resume_rank(2)
            assert backend.probe(2, timeout=2.0)
        finally:
            backend.shutdown()

    def test_spec_fires_once_per_plan(self):
        backend = self._backend()
        try:
            backend.ensure_started()
            plan = FaultPlan(FaultSpec("proc-kill", rank=0))
            plan.exchange_begin(backend=backend)
            plan.exchange_begin(backend=backend)
            assert len(plan.injected) == 1
        finally:
            backend.shutdown()
