import numpy as np
import pytest

from repro.krylov.monitors import ConvergenceMonitor, KrylovResult


class TestConvergenceMonitor:
    def test_paper_criterion_relative_reduction(self):
        mon = ConvergenceMonitor(rtol=1e-6)
        assert not mon.start(1.0)
        assert not mon.check(1e-5)
        assert mon.check(9.9e-7)

    def test_threshold_uses_initial_residual(self):
        mon = ConvergenceMonitor(rtol=1e-6)
        mon.start(100.0)
        assert mon.threshold == pytest.approx(1e-4)

    def test_atol_floor(self):
        mon = ConvergenceMonitor(rtol=1e-6, atol=1e-3)
        mon.start(10.0)
        assert mon.threshold == 1e-3

    def test_zero_initial_residual_converges_immediately(self):
        mon = ConvergenceMonitor(rtol=1e-6, atol=1e-30)
        assert mon.start(0.0)

    def test_history_recorded(self):
        mon = ConvergenceMonitor()
        mon.start(1.0)
        mon.check(0.5)
        mon.check(0.25)
        assert mon.residuals == [1.0, 0.5, 0.25]

    def test_check_before_start_raises(self):
        with pytest.raises(RuntimeError):
            ConvergenceMonitor().check(1.0)


class TestKrylovResult:
    def test_reduction(self):
        r = KrylovResult(np.zeros(1), 3, "converged", [10.0, 1.0, 0.1])
        assert r.reduction == pytest.approx(0.01)
        assert r.final_residual == 0.1

    def test_empty_history_is_nan_not_perfect(self):
        # no residuals recorded -> no reduction claim can be made; 0.0 would
        # read as a perfect reduction
        r = KrylovResult(np.zeros(1), 0, "converged", [])
        assert np.isnan(r.final_residual)
        assert np.isnan(r.reduction)

    def test_zero_initial_residual(self):
        # solved exactly before the first iteration: ratio taken as its limit
        r = KrylovResult(np.zeros(1), 0, "converged", [0.0])
        assert r.reduction == 0.0

    def test_single_entry_history(self):
        # only r_0 recorded (initial guess already met the tolerance):
        # genuinely "no reduction performed"
        r = KrylovResult(np.zeros(1), 0, "converged", [3.5])
        assert r.reduction == 1.0
        assert r.final_residual == 3.5
