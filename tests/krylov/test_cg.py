import numpy as np
import pytest

from repro.krylov.cg import cg
from tests.conftest import random_spd_csr


class TestCg:
    def test_solves_spd_system(self, rng):
        a = random_spd_csr(50, 0.1, 0)
        x = rng.random(50)
        res = cg(lambda v: a @ v, a @ x, rtol=1e-10, maxiter=300)
        assert res.converged
        assert np.allclose(res.x, x, atol=1e-6)

    def test_exact_in_n_iterations(self, rng):
        """CG terminates in at most n steps in exact arithmetic."""
        n = 12
        d = np.diag(rng.uniform(1.0, 10.0, n))
        res = cg(lambda v: d @ v, rng.random(n), rtol=1e-12, maxiter=n + 2)
        assert res.converged
        assert res.iterations <= n + 1

    def test_preconditioning_reduces_iterations(self, poisson_system):
        from repro.factor.ilu0 import ilu0

        a, rhs, _ = poisson_system
        plain = cg(lambda v: a @ v, rhs, rtol=1e-8, maxiter=500)
        fac = ilu0(a)
        pre = cg(lambda v: a @ v, rhs, apply_m=fac.solve, rtol=1e-8, maxiter=500)
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_one_iteration_budget(self, poisson_system):
        """maxiter=1 gives exactly one CG step (the Schwarz subdomain solve)."""
        a, rhs, _ = poisson_system
        res = cg(lambda v: a @ v, rhs, rtol=1e-14, maxiter=1)
        assert res.iterations == 1
        assert not res.converged
        # one step still reduces the residual
        assert res.residuals[-1] < res.residuals[0]

    def test_x0_initial_guess(self, rng):
        a = random_spd_csr(30, 0.15, 1)
        x = rng.random(30)
        res = cg(lambda v: a @ v, a @ x, x0=x, rtol=1e-8)
        assert res.iterations == 0

    def test_zero_rhs(self):
        res = cg(lambda v: 2 * v, np.zeros(4))
        assert res.converged and np.all(res.x == 0)

    def test_non_spd_bails_honestly(self):
        a = np.array([[1.0, 0.0], [0.0, -1.0]])  # indefinite
        res = cg(lambda v: a @ v, np.array([1.0, 1.0]), rtol=1e-12, maxiter=10)
        assert not res.converged or np.allclose(a @ res.x, [1.0, 1.0])
