"""Fixed-order pairwise tree reduction: the deterministic-dot contract."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.krylov.ops import fixed_tree_sum

FLOATS = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e12, max_value=1e12)


class TestFixedTreeSum:
    def test_empty_is_zero(self):
        assert fixed_tree_sum([]) == 0.0

    def test_single_partial_passes_through_bitwise(self):
        # p = 1 must reproduce the historical whole-vector dot bit for bit
        v = 0.1 + 0.2
        assert fixed_tree_sum([v]) == v

    def test_combination_order_is_ascending_pairwise(self):
        # ((p0+p1) + (p2+p3)) — not left-to-right accumulation
        p = [1e16, 1.0, -1e16, 1.0]
        assert fixed_tree_sum(p) == (p[0] + p[1]) + (p[2] + p[3])

    def test_odd_tail_passes_through_each_level(self):
        p = [1.0, 2.0, 3.0]
        assert fixed_tree_sum(p) == (p[0] + p[1]) + p[2]
        p5 = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert fixed_tree_sum(p5) == ((p5[0] + p5[1]) + (p5[2] + p5[3])) + p5[4]

    @given(parts=st.lists(FLOATS, max_size=16))
    @settings(max_examples=200, deadline=None)
    def test_deterministic_function_of_the_partials(self, parts):
        a = fixed_tree_sum(parts)
        b = fixed_tree_sum(list(parts))
        assert a == b or (np.isnan(a) and np.isnan(b))

    @given(parts=st.lists(FLOATS, min_size=1, max_size=16))
    @settings(max_examples=200, deadline=None)
    def test_matches_explicit_tree(self, parts):
        vals = list(parts)
        while len(vals) > 1:
            nxt = [vals[i] + vals[i + 1] for i in range(0, len(vals) - 1, 2)]
            if len(vals) % 2:
                nxt.append(vals[-1])
            vals = nxt
        assert fixed_tree_sum(parts) == vals[0]
