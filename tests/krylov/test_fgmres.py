import numpy as np
import pytest
import scipy.sparse as sp

from repro.krylov.fgmres import fgmres
from repro.krylov.ops import CountingOps
from tests.conftest import random_nonsymmetric_csr


class TestFgmresBasics:
    def test_solves_small_dense_system(self, rng):
        a = rng.random((20, 20)) + 20 * np.eye(20)
        x = rng.random(20)
        res = fgmres(lambda v: a @ v, a @ x, rtol=1e-10, maxiter=200)
        assert res.converged
        assert np.allclose(res.x, x, atol=1e-6)

    def test_identity_converges_in_one_iteration(self):
        b = np.arange(1.0, 6.0)
        res = fgmres(lambda v: v, b, rtol=1e-12)
        assert res.converged
        assert res.iterations <= 1
        assert np.allclose(res.x, b)

    def test_diagonal_system(self):
        d = np.array([1.0, 2.0, 4.0, 8.0])
        res = fgmres(lambda v: d * v, np.ones(4), rtol=1e-12, maxiter=50)
        assert res.converged
        assert np.allclose(res.x, 1.0 / d, atol=1e-9)

    def test_x0_respected(self, rng):
        a = random_nonsymmetric_csr(40, 0.2, 0)
        x = rng.random(40)
        res = fgmres(lambda v: a @ v, a @ x, x0=x, rtol=1e-6)
        assert res.converged
        assert res.iterations == 0

    def test_zero_rhs_zero_solution(self):
        res = fgmres(lambda v: 2 * v, np.zeros(5), rtol=1e-6)
        assert res.converged
        assert np.all(res.x == 0)

    def test_maxiter_respected_and_reported(self, rng):
        a = random_nonsymmetric_csr(80, 0.1, 1)
        # make it hard: no preconditioner, tight tolerance, tiny budget
        res = fgmres(lambda v: a @ v, rng.random(80), rtol=1e-14, maxiter=5)
        assert res.iterations <= 5
        assert not res.converged

    def test_invalid_restart(self):
        with pytest.raises(ValueError):
            fgmres(lambda v: v, np.ones(2), restart=0)


class TestFgmresConvergence:
    def test_residual_history_monotone_within_cycle(self, rng):
        """GMRES minimizes the residual: the estimate never increases."""
        a = random_nonsymmetric_csr(60, 0.15, 2)
        res = fgmres(lambda v: a @ v, rng.random(60), restart=60, rtol=1e-10, maxiter=60)
        r = np.asarray(res.residuals)
        assert np.all(np.diff(r) <= 1e-9 * r[0])

    def test_final_true_residual_meets_tolerance(self, rng):
        a = random_nonsymmetric_csr(100, 0.08, 3)
        b = rng.random(100)
        res = fgmres(lambda v: a @ v, b, restart=20, rtol=1e-8, maxiter=400)
        assert res.converged
        true_res = np.linalg.norm(b - a @ res.x)
        assert true_res <= 1.01e-8 * np.linalg.norm(b - a @ np.zeros(100)) + 1e-14

    def test_restart_equals_full_for_small_problems(self, rng):
        a = rng.random((15, 15)) + 15 * np.eye(15)
        b = rng.random(15)
        full = fgmres(lambda v: a @ v, b, restart=15, rtol=1e-10)
        assert full.converged
        assert full.iterations <= 15

    def test_right_preconditioning_reduces_iterations(self, poisson_system):
        from repro.factor.ilut import ilut

        a, rhs, _ = poisson_system
        plain = fgmres(lambda v: a @ v, rhs, rtol=1e-8, maxiter=500)
        fac = ilut(a, 1e-3, 10)
        pre = fgmres(lambda v: a @ v, rhs, apply_m=fac.solve, rtol=1e-8, maxiter=500)
        assert pre.converged
        assert pre.iterations < 0.3 * plain.iterations

    def test_flexible_with_varying_preconditioner(self, poisson_system):
        """An inner-GMRES preconditioner (changing per application) still
        converges — the defining FGMRES capability."""
        a, rhs, _ = poisson_system
        from repro.factor.ilu0 import ilu0

        fac = ilu0(a)
        calls = {"n": 0}

        def varying_m(r):
            calls["n"] += 1
            inner = fgmres(lambda v: a @ v, r, apply_m=fac.solve, rtol=1e-12,
                           maxiter=2 + calls["n"] % 3, restart=5)
            return inner.x

        res = fgmres(lambda v: a @ v, rhs, apply_m=varying_m, rtol=1e-8, maxiter=100)
        assert res.converged
        assert res.iterations < 30

    def test_counting_ops_accumulates(self, rng):
        a = random_nonsymmetric_csr(30, 0.2, 4)
        ops = CountingOps(30)
        fgmres(lambda v: a @ v, rng.random(30), rtol=1e-8, maxiter=50, ops=ops)
        assert ops.flops > 0

    def test_singular_consistent_system_breakdown_handled(self):
        """A x = b with singular A but b in range: lucky breakdown path."""
        a = np.diag([1.0, 2.0, 0.0])
        b = np.array([1.0, 2.0, 0.0])
        res = fgmres(lambda v: a @ v, b, rtol=1e-10, maxiter=10)
        assert np.allclose(a @ res.x, b, atol=1e-8)
