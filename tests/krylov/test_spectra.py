import numpy as np
import pytest

from repro.krylov.spectra import (
    condition_estimate,
    lanczos_extremes,
    power_method,
    preconditioned_condition_estimate,
)


class TestPowerMethod:
    def test_dominant_eigenvalue_of_diagonal(self):
        d = np.array([1.0, 3.0, 7.0, 2.0])
        lam = power_method(lambda v: d * v, 4, iterations=100, seed=0)
        assert lam == pytest.approx(7.0, rel=1e-6)

    def test_zero_operator(self):
        assert power_method(lambda v: 0 * v, 5, seed=0) == 0.0

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            power_method(lambda v: v, 3, iterations=0)


class TestLanczos:
    def test_extremes_of_known_spectrum(self, rng):
        d = np.linspace(0.5, 9.5, 60)
        lmin, lmax = lanczos_extremes(lambda v: d * v, 60, steps=60, seed=1)
        assert lmin == pytest.approx(0.5, rel=1e-4)
        assert lmax == pytest.approx(9.5, rel=1e-4)

    def test_partial_sweep_brackets_spectrum(self):
        d = np.linspace(1.0, 100.0, 200)
        lmin, lmax = lanczos_extremes(lambda v: d * v, 200, steps=40, seed=0)
        assert 0.9 <= lmin <= 3.0
        assert 90.0 <= lmax <= 100.1

    def test_one_step(self):
        lmin, lmax = lanczos_extremes(lambda v: 2.0 * v, 10, steps=1, seed=0)
        assert lmin == pytest.approx(lmax)


class TestConditionEstimates:
    def test_poisson_condition_scales_like_h_minus_2(self):
        """Paper Sec. 1.2: κ(A) = O(h⁻²) for elliptic problems."""
        from repro.fem.assembly import assemble_stiffness
        from repro.fem.boundary import apply_dirichlet
        from repro.mesh.grid2d import structured_rectangle

        kappas = []
        for n in (9, 17, 33):
            mesh = structured_rectangle(n, n)
            a, _ = apply_dirichlet(
                assemble_stiffness(mesh),
                np.zeros(mesh.num_points),
                mesh.all_boundary_nodes(),
                0.0,
            )
            kappas.append(
                condition_estimate(lambda v: a @ v, a.shape[0], steps=60, seed=0)
            )
        # halving h quadruples κ (within Lanczos estimation slack)
        assert kappas[1] / kappas[0] == pytest.approx(4.0, rel=0.4)
        assert kappas[2] / kappas[1] == pytest.approx(4.0, rel=0.4)

    def test_preconditioning_shrinks_condition(self, poisson_system):
        from repro.factor.ilu0 import ilu0

        a, _, _ = poisson_system
        n = a.shape[0]
        plain = condition_estimate(lambda v: a @ v, n, steps=50, seed=0)
        fac = ilu0(a)
        pre = preconditioned_condition_estimate(
            lambda v: a @ v, fac.solve, n, steps=50, seed=0
        )
        assert pre < 0.3 * plain

    def test_indefinite_returns_inf(self):
        d = np.array([-1.0, 1.0, 2.0])
        assert condition_estimate(lambda v: d * v, 3, steps=3, seed=0) == float("inf")
