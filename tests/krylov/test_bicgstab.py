import numpy as np
import pytest

from repro.krylov.bicgstab import bicgstab
from tests.conftest import random_nonsymmetric_csr, random_spd_csr


class TestBicgstab:
    def test_solves_unsymmetric_system(self, rng):
        a = random_nonsymmetric_csr(80, 0.1, 0)
        x = rng.random(80)
        res = bicgstab(lambda v: a @ v, a @ x, rtol=1e-10, maxiter=400)
        assert res.converged
        assert np.allclose(res.x, x, atol=1e-6)

    def test_solves_spd_system(self, rng):
        a = random_spd_csr(60, 0.1, 1)
        x = rng.random(60)
        res = bicgstab(lambda v: a @ v, a @ x, rtol=1e-10, maxiter=400)
        assert res.converged
        assert np.allclose(res.x, x, atol=1e-6)

    def test_final_residual_meets_tolerance(self, rng):
        a = random_nonsymmetric_csr(100, 0.08, 2)
        b = rng.random(100)
        res = bicgstab(lambda v: a @ v, b, rtol=1e-8, maxiter=500)
        assert res.converged
        assert np.linalg.norm(b - a @ res.x) <= 1.1e-8 * np.linalg.norm(b) + 1e-13

    def test_preconditioning_reduces_iterations(self, poisson_system):
        from repro.factor.ilut import ilut

        a, rhs, _ = poisson_system
        plain = bicgstab(lambda v: a @ v, rhs, rtol=1e-8, maxiter=500)
        fac = ilut(a, 1e-3, 10)
        pre = bicgstab(lambda v: a @ v, rhs, apply_m=fac.solve, rtol=1e-8, maxiter=500)
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_x0_respected(self, rng):
        a = random_nonsymmetric_csr(40, 0.2, 3)
        x = rng.random(40)
        res = bicgstab(lambda v: a @ v, a @ x, x0=x)
        assert res.converged
        assert res.iterations == 0

    def test_zero_rhs(self):
        res = bicgstab(lambda v: 3 * v, np.zeros(5))
        assert res.converged
        assert np.all(res.x == 0)

    def test_identity_one_iteration(self):
        b = np.arange(1.0, 5.0)
        res = bicgstab(lambda v: v, b, rtol=1e-12)
        assert res.converged
        assert res.iterations <= 1
        assert np.allclose(res.x, b)

    def test_breakdown_returns_honest_flag(self):
        """A rotation matrix drives BiCGStab toward breakdown (rho ≈ 0);
        whatever happens, a non-converged result must not claim otherwise."""
        a = np.array([[0.0, -1.0], [1.0, 0.0]])
        b = np.array([1.0, 0.0])
        res = bicgstab(lambda v: a @ v, b, rtol=1e-12, maxiter=50)
        final = np.linalg.norm(b - a @ res.x)
        if res.converged:
            assert final <= 1e-10
        else:
            assert final >= 0.0  # honest failure, finite answer
        assert np.all(np.isfinite(res.x))

    def test_distributed_solve_matches_serial(self, partitioned_poisson):
        from repro.comm.communicator import Communicator
        from repro.distributed.ops import DistributedOps
        from repro.precond.block_jacobi import block2

        pm, dmat, rhs, exact = partitioned_poisson
        comm = Communicator(pm.num_ranks)
        M = block2(dmat, comm)
        ops = DistributedOps(comm, pm.layout)
        res = bicgstab(
            lambda v: dmat.matvec(comm, v),
            pm.to_distributed(rhs),
            apply_m=M.apply,
            rtol=1e-8,
            maxiter=500,
            ops=ops,
        )
        assert res.converged
        assert np.abs(pm.to_global(res.x) - exact).max() < 5e-4
        assert comm.ledger.allreduces > 0  # dots were distributed
