import numpy as np

from repro.krylov.fgmres import fgmres
from repro.krylov.gmres import gmres
from tests.conftest import random_nonsymmetric_csr


class TestGmres:
    def test_identical_to_fgmres_with_fixed_preconditioner(self, rng):
        """With a fixed M, GMRES and FGMRES generate the same iterates."""
        from repro.factor.ilu0 import ilu0

        a = random_nonsymmetric_csr(60, 0.12, 0)
        b = rng.random(60)
        fac = ilu0(a)
        r1 = gmres(lambda v: a @ v, b, apply_m=fac.solve, rtol=1e-9, maxiter=100)
        r2 = fgmres(lambda v: a @ v, b, apply_m=fac.solve, rtol=1e-9, maxiter=100)
        assert r1.iterations == r2.iterations
        assert np.allclose(r1.x, r2.x)

    def test_fixed_iteration_budget_mode(self, rng):
        """The Schur preconditioners run GMRES for an exact iteration budget
        (rtol tiny): iterations == maxiter when unconverged."""
        a = random_nonsymmetric_csr(80, 0.1, 1)
        res = gmres(lambda v: a @ v, rng.random(80), rtol=1e-14, maxiter=5, restart=5)
        assert res.iterations == 5

    def test_matches_scipy_gmres_quality(self, rng):
        import scipy.sparse.linalg as spla

        a = random_nonsymmetric_csr(100, 0.08, 2)
        b = rng.random(100)
        ours = gmres(lambda v: a @ v, b, restart=20, rtol=1e-8, maxiter=400)
        x_sp, info = spla.gmres(a, b, restart=20, rtol=1e-8, maxiter=400)
        assert ours.converged and info == 0
        assert np.linalg.norm(b - a @ ours.x) <= 1.5 * max(
            np.linalg.norm(b - a @ x_sp), 1e-8 * np.linalg.norm(b)
        )
