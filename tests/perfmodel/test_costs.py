import numpy as np
import pytest

from repro.perfmodel.costs import CostLedger


class TestCostLedger:
    def test_phase_accumulates_max_and_total(self):
        led = CostLedger(2)
        led.add_phase(np.array([10.0, 30.0]))
        led.add_phase(np.array([20.0, 5.0]))
        assert led.crit_flops == 50.0  # 30 + 20
        assert led.total_flops == 65.0
        assert led.phases == 2

    def test_scalar_broadcast(self):
        led = CostLedger(4)
        led.add_phase(7.0)
        assert led.crit_flops == 7.0
        assert led.total_flops == 28.0

    def test_comm_fields(self):
        led = CostLedger(2)
        led.add_phase(0.0, msgs_per_rank=np.array([1.0, 3.0]), bytes_per_rank=np.array([8.0, 24.0]))
        assert led.crit_msgs == 3.0
        assert led.crit_bytes == 24.0
        assert led.total_msgs == 4.0

    def test_allreduce_counting(self):
        led = CostLedger(2)
        led.add_allreduce()
        led.add_allreduce(nbytes=64)
        assert led.allreduces == 2
        assert led.allreduce_bytes == 72

    def test_merge(self):
        a = CostLedger(2)
        a.add_phase(np.array([1.0, 2.0]))
        b = CostLedger(2)
        b.add_phase(np.array([3.0, 1.0]))
        b.add_allreduce()
        a.merge(b)
        assert a.crit_flops == 5.0
        assert a.allreduces == 1
        assert a.per_rank_flops.tolist() == [4.0, 3.0]

    def test_merge_rank_mismatch_raises(self):
        with pytest.raises(ValueError):
            CostLedger(2).merge(CostLedger(3))

    def test_load_imbalance(self):
        led = CostLedger(2)
        led.add_phase(np.array([10.0, 30.0]))
        assert led.load_imbalance == pytest.approx(1.5)
        assert CostLedger(3).load_imbalance == 1.0

    def test_invalid_rank_count(self):
        with pytest.raises(ValueError):
            CostLedger(0)
