"""Tests for the cache-threshold machine extension (paper Sec. 4.3)."""

import numpy as np
import pytest

from repro.perfmodel.costs import CostLedger
from repro.perfmodel.machine import LINUX_CLUSTER, LINUX_CLUSTER_CACHED, Machine


class TestCacheModel:
    def make_ledger(self, ws):
        led = CostLedger(2)
        led.add_phase(np.array([1e6, 1e6]))
        led.working_set_bytes = np.asarray(ws)
        return led

    def test_boost_when_fits(self):
        led = self.make_ledger([100e3, 100e3])
        assert (
            LINUX_CLUSTER_CACHED.effective_flop_rate(led)
            == LINUX_CLUSTER_CACHED.flop_rate * LINUX_CLUSTER_CACHED.cache_speedup
        )
        assert LINUX_CLUSTER_CACHED.time(led) < LINUX_CLUSTER.time(led)

    def test_no_boost_when_largest_rank_spills(self):
        led = self.make_ledger([100e3, 300e3])
        assert LINUX_CLUSTER_CACHED.effective_flop_rate(led) == LINUX_CLUSTER_CACHED.flop_rate

    def test_no_boost_without_working_set_info(self):
        led = CostLedger(2)
        led.add_phase(np.array([1e6, 1e6]))
        assert LINUX_CLUSTER_CACHED.effective_flop_rate(led) == LINUX_CLUSTER_CACHED.flop_rate

    def test_plain_machines_unaffected(self):
        led = self.make_ledger([1.0, 1.0])
        assert LINUX_CLUSTER.effective_flop_rate(led) == LINUX_CLUSTER.flop_rate

    def test_invalid_cache_parameters(self):
        with pytest.raises(ValueError):
            Machine("bad", 1e6, 1e-6, 1e6, cache_speedup=0.5)
        with pytest.raises(ValueError):
            Machine("bad", 1e6, 1e-6, 1e6, cache_bytes=-1.0)

    def test_driver_populates_working_set(self, tiny_case):
        from repro.core.driver import solve_case

        out = solve_case(tiny_case, "block1", nparts=2, maxiter=300)
        assert out.solve_ledger.working_set_bytes is not None
        assert np.all(out.solve_ledger.working_set_bytes > 0)

    def test_cache_machine_superlinear_region(self, tiny_case):
        """Once subdomains fit in cache, the cached machine's fixed-size
        speedup exceeds the plain machine's at the same P."""
        from repro.core.driver import solve_case

        out1 = solve_case(tiny_case, "block1", nparts=1, maxiter=400)
        out4 = solve_case(tiny_case, "block1", nparts=4, maxiter=400)
        # at 17x17 everything fits in 256KB even at P=1, so compare the
        # machines directly: cached is uniformly faster but the *ratio*
        # matters only when the fit flips; emulate the flip by hand
        big_ws = out1.solve_ledger.working_set_bytes * 1e3
        out1.solve_ledger.working_set_bytes = big_ws  # force spill at P=1
        sp_plain = LINUX_CLUSTER.time(out1.solve_ledger) / LINUX_CLUSTER.time(out4.solve_ledger)
        sp_cached = LINUX_CLUSTER_CACHED.time(out1.solve_ledger) / LINUX_CLUSTER_CACHED.time(
            out4.solve_ledger
        )
        assert sp_cached > sp_plain
