import numpy as np
import pytest

from repro.perfmodel.costs import CostLedger
from repro.perfmodel.machine import (
    LINUX_CLUSTER,
    ORIGIN_3800,
    ORIGIN_3800_LOADED,
    Machine,
    machine_by_name,
)


class TestMachine:
    def test_flops_only_time(self):
        m = Machine("t", flop_rate=1e6, latency=0.0, bandwidth=1e9)
        led = CostLedger(2)
        led.add_phase(np.array([1e6, 5e5]))
        assert m.time(led) == pytest.approx(1.0)

    def test_latency_dominates_small_messages(self):
        m = Machine("t", flop_rate=1e9, latency=1e-3, bandwidth=1e9)
        led = CostLedger(2)
        led.add_phase(0.0, msgs_per_rank=np.array([10.0, 0.0]))
        assert m.time(led) == pytest.approx(1e-2)

    def test_allreduce_scales_logarithmically(self):
        m = Machine("t", flop_rate=1e9, latency=1e-4, bandwidth=1e9)
        t4 = m.allreduce_time(4)
        t16 = m.allreduce_time(16)
        assert t16 == pytest.approx(2.0 * t4)
        assert m.allreduce_time(1) == 0.0

    def test_load_factor_multiplies(self):
        led = CostLedger(2)
        led.add_phase(np.array([1e6, 1e6]))
        base = ORIGIN_3800.time(led)
        loaded = ORIGIN_3800_LOADED.time(led)
        assert loaded == pytest.approx(6.0 * base)

    def test_cluster_slower_than_origin_on_comm(self):
        led = CostLedger(8)
        led.add_phase(0.0, msgs_per_rank=4.0, bytes_per_rank=1e5)
        for _ in range(10):
            led.add_allreduce()
        assert LINUX_CLUSTER.time(led) > ORIGIN_3800.time(led)

    def test_speedup_definition(self):
        m = Machine("t", flop_rate=1e6, latency=0.0, bandwidth=1e9)
        led = CostLedger(4)
        led.add_phase(np.full(4, 1e6))  # perfectly parallel
        assert m.speedup(led) == pytest.approx(4.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Machine("bad", flop_rate=0.0, latency=1e-6, bandwidth=1e6)
        with pytest.raises(ValueError):
            Machine("bad", flop_rate=1e6, latency=1e-6, bandwidth=1e6, load_factor=0.5)

    def test_machine_by_name(self):
        assert machine_by_name("linux-cluster") is LINUX_CLUSTER
        with pytest.raises(KeyError):
            machine_by_name("cray")
