"""Driver-side session for worker-resident subdomain compute.

:mod:`repro.comm.backends.worker` defines what a rank process can execute;
this module is the driver's half: a :class:`WorkerCompute` session bound to
one communicator + real backend that ships each rank its subdomain state
**once** (content-hash keyed, the PR 4 factor-cache identity) and then
drives the per-iteration hot path — triangular-sweep APPLY, ghost-only
MATVEC, dot partials — through batched ``CMD`` rounds.

A **round** sends one command frame to every participating rank through
:meth:`ExecutionBackend.request_many` (all frames hit the pipes before the
driver blocks on the first response, so rank processes overlap their
compute), then retries per-rank failures under the communicator's
:class:`~repro.comm.communicator.RetryPolicy` exactly like the ghost
exchange: timeouts feed the supervisor's miss accounting (fencing), NAKs
and garbled frames count checksum failures and retransmit (every worker op
is idempotent, so a duplicate command re-executes bitwise identically),
and exhausted budgets classify through the supervisor into the typed
:class:`~repro.resilience.errors.CommFault` taxonomy — which is what lets
``absorb_rank`` + :class:`ResilientSolver` recover from a rank killed
mid-MATVEC.  After recovery the fresh communicator gets a fresh session
whose shipped-key set is empty, so surviving ranks are transparently
re-shipped their (re-partitioned) subdomains.

Every round fires the active fault plan's ``exchange_begin`` hook (worker
rounds are delivery opportunities like ghost exchanges) and emits one
``comm.worker.round`` event carrying each rank's *worker-measured* wall and
CPU seconds — the raw material for ``repro trace``'s per-rank attribution
and the scaling bench's critical-path model (``docs/performance.md``).

Env gates: ``REPRO_WORKER_COMPUTE=0`` disables the session entirely
(multiprocess ranks fall back to validate-and-echo, the PR 7 behavior);
``REPRO_WORKER_DOT=1`` additionally routes dot partials through the
workers (off by default — partials are driver-local memory reads, and the
fixed-order tree contract makes both transports bitwise equal anyway).
"""

from __future__ import annotations

import os
from time import perf_counter

import numpy as np

from repro import faults, obs
from repro.comm.backends import framing
from repro.comm.backends.base import TransportBroken, TransportTimeout
from repro.comm.backends.worker import (
    OP_APPLY,
    OP_DOT_PARTIAL,
    OP_FACTOR,
    OP_LOAD_FACTOR,
    OP_LOAD_MATRIX,
    OP_MATVEC,
    OP_MATVEC_GHOSTS,
    OP_NAMES,
    pack_command,
    unpack_command,
)
from repro.comm.communicator import Communicator
from repro.resilience import errors as _errors
from repro.resilience.errors import MessageCorruption, RankDeadError

#: disable worker-resident compute (fall back to driver compute)
COMPUTE_ENV = "REPRO_WORKER_COMPUTE"
#: opt dot partials into worker-side evaluation
DOT_ENV = "REPRO_WORKER_DOT"

#: per-attempt timeout floors (seconds): retry policies are tuned for
#: microsecond echo traffic; a command that *computes* needs a window
#: matched to the work, or slow-but-healthy ranks would be fenced
HEAVY_FLOOR = 120.0   #: LOAD / FACTOR — ships state or factors a subdomain
LIGHT_FLOOR = 2.0     #: MATVEC / APPLY / DOT — per-iteration ops


class WorkerComputeError(RuntimeError):
    """A worker executed a command and reported a failure the driver cannot
    map onto the typed resilience taxonomy."""


def compute_enabled() -> bool:
    return os.environ.get(COMPUTE_ENV, "1").strip().lower() not in (
        "0", "off", "false", "no",
    )


def dot_enabled() -> bool:
    return os.environ.get(DOT_ENV, "").strip().lower() in ("1", "on", "true", "yes")


def session(comm: Communicator) -> "WorkerCompute | None":
    """The communicator's worker-compute session, or None (driver compute).

    Sessions exist only on real backends with the gate open; they are
    cached on the communicator, so every caller in a solve shares one
    shipped-key set.  A communicator born from ``absorb_rank`` recovery is
    a *new* object with a *new* backend — its session starts empty and
    re-ships state on first use, which is the whole recovery story.
    """
    if not comm.backend.is_real or not compute_enabled():
        return None
    wc = getattr(comm, "_worker_compute", None)
    if wc is None or wc.backend is not comm.backend:
        wc = WorkerCompute(comm)
        comm._worker_compute = wc
    return wc


def _raise_worker_error(rank: int, op: int, meta: dict):
    """Re-raise a worker-reported failure as its typed counterpart.

    The wire carries the exception *name*; anything in the resilience
    taxonomy (``FactorizationBreakdown`` from a worker-side ILU, say)
    comes back as that class so retry/fallback logic upstream is blind to
    where the computation ran.
    """
    msg = (
        f"worker rank {rank} failed {OP_NAMES.get(op, op)}: "
        f"{meta.get('error', 'unknown error')}"
    )
    cls = getattr(_errors, str(meta.get("etype", "")), None)
    if isinstance(cls, type) and issubclass(cls, Exception):
        try:
            raise cls(msg)
        except TypeError:  # taxonomy class with required kwargs
            pass
    raise WorkerComputeError(msg)


class WorkerCompute:
    """One communicator's worker-resident compute session."""

    def __init__(self, comm: Communicator) -> None:
        self.comm = comm
        self.backend = comm.backend
        #: (rank, content-key) pairs confirmed resident in the workers
        self._shipped: set[tuple[int, str]] = set()
        #: the assembled z vector whose per-rank slices sit in the workers'
        #: z-registers (identity-compared: the fused apply→matvec path)
        self._z_last: np.ndarray | None = None
        self.rounds = 0

    def is_shipped(self, rank: int, key: str) -> bool:
        return (rank, key) in self._shipped

    # -- the round primitive ----------------------------------------------

    def _round(
        self, op: int, payloads: dict[int, bytes], floor: float
    ) -> dict[int, tuple[dict, list]]:
        """One batched command round with envelope-grade retry semantics."""
        comm = self.comm
        backend = self.backend
        policy = comm.retry_policy
        stats = comm.comm_stats
        op_name = OP_NAMES[op]
        plan = faults.active()
        if plan is not None:
            # a worker round is a delivery opportunity: proc-kill /
            # proc-hang / rank-dead specs fire here exactly as they do at
            # a ghost exchange
            plan.exchange_begin(backend=backend)
        t0 = perf_counter()
        frames: dict[int, bytes] = {}
        seqs: dict[int, int] = {}
        for rank in sorted(payloads):
            # commands ride the (rank, rank) self-edge of the envelope seq
            # space — ghost-exchange edges keep their own counters
            seq = comm.next_seq(rank, rank)
            frames[rank] = framing.encode_frame(
                framing.CMD, rank, rank, seq, payloads[rank]
            )
            seqs[rank] = seq
        stats.messages += len(frames)
        pending = dict(frames)
        broken: set[int] = set()
        out: dict[int, tuple[dict, list]] = {}
        for attempt in range(policy.max_retries + 1):
            if not pending:
                break
            if attempt:
                stats.retries += len(pending)
            timeout = max(policy.wait(attempt), floor)
            dead_sim = (
                sorted(set(pending) & plan.dead_ranks)
                if plan is not None else []
            )
            for rank in dead_sim:
                # simulated death: the process is healthy but plays dead,
                # so the attempt burns its full window unanswered
                stats.timeouts += 1
                obs.event(
                    "resilience.comm.retry", src=rank, dst=rank,
                    seq=seqs[rank], attempt=attempt, reason="timeout",
                    backend=backend.name, op=op_name,
                )
            live = {
                r: pending[r] for r in sorted(pending) if r not in dead_sim
            }
            results = backend.request_many(live, timeout) if live else {}
            for rank in sorted(results):
                res = results[rank]
                if isinstance(res, TransportTimeout):
                    stats.timeouts += 1
                    state = backend.handle_timeout(rank)
                    obs.event(
                        "resilience.comm.retry", src=rank, dst=rank,
                        seq=seqs[rank], attempt=attempt, reason="timeout",
                        backend=backend.name, peer_state=state, op=op_name,
                    )
                    continue
                if isinstance(res, TransportBroken):
                    # confirmed gone — stop burning retry windows on it,
                    # but keep collecting the other ranks' results
                    pending.pop(rank)
                    broken.add(rank)
                    continue
                if isinstance(res, Exception):  # pragma: no cover - safety
                    pending.pop(rank)
                    broken.add(rank)
                    continue
                try:
                    resp = framing.decode_frame(res)
                except MessageCorruption:
                    stats.checksum_failures += 1
                    obs.event(
                        "resilience.comm.retry", src=rank, dst=rank,
                        seq=seqs[rank], attempt=attempt, reason="checksum",
                        backend=backend.name, op=op_name,
                    )
                    continue
                if resp.kind == framing.NAK:
                    stats.checksum_failures += 1
                    obs.event(
                        "resilience.comm.retry", src=rank, dst=rank,
                        seq=seqs[rank], attempt=attempt, reason="checksum",
                        backend=backend.name, op=op_name,
                        nak=resp.payload.decode(errors="replace"),
                    )
                    continue
                r_op, meta, arrays = unpack_command(resp.payload)
                if "error" in meta:
                    _raise_worker_error(rank, r_op, meta)
                out[rank] = (meta, arrays)
                pending.pop(rank)
                supervisor = getattr(backend, "supervisor", None)
                if supervisor is not None:
                    supervisor.record_ready(rank)
        failed = sorted(set(pending) | broken)
        if failed:
            rank = failed[0]
            if plan is not None and rank in plan.dead_ranks:
                stats.rank_dead += 1
                obs.event(
                    "resilience.comm.rank_dead", rank=rank, src=rank,
                    dst=rank, seq=seqs[rank], backend=backend.name,
                    op=op_name,
                )
                raise RankDeadError(
                    f"rank {rank} stopped responding: worker {op_name} "
                    f"round timed out {policy.max_retries + 1} times",
                    rank=rank, src=rank, dst=rank, seq=seqs[rank],
                    attempts=policy.max_retries + 1,
                )
            fault = backend.classify(rank, src=rank, dst=rank, op=op_name)
            if isinstance(fault, RankDeadError):
                stats.rank_dead += 1
                obs.event(
                    "resilience.comm.rank_dead", rank=fault.rank, src=rank,
                    dst=rank, seq=seqs[rank], backend=backend.name,
                    op=op_name,
                )
            else:
                obs.event(
                    "resilience.comm.give_up", src=rank, dst=rank,
                    seq=seqs[rank], reason="timeout", backend=backend.name,
                    op=op_name,
                )
            raise fault
        self.rounds += 1
        if obs.enabled():
            ranks = sorted(out)
            obs.event(
                "comm.worker.round", op=op_name, backend=backend.name,
                ranks=ranks,
                seconds=[float(out[r][0].get("seconds", 0.0)) for r in ranks],
                cpu_seconds=[
                    float(out[r][0].get("cpu_seconds", 0.0)) for r in ranks
                ],
                driver_seconds=perf_counter() - t0,
                bytes=sum(len(frames[r]) for r in sorted(frames)),
            )
        return out

    # -- state shipping ----------------------------------------------------

    def ensure_matrices(self, entries: dict[int, tuple[str, dict, list]]) -> int:
        """Ship matrices not yet resident; returns how many actually moved.

        ``entries[rank] = (key, meta, arrays)`` with meta/arrays as
        ``OP_LOAD_MATRIX`` expects (``meta['key']`` must equal ``key``).
        """
        payloads = {}
        for rank in sorted(entries):
            key, meta, arrays = entries[rank]
            if (rank, key) in self._shipped:
                continue
            payloads[rank] = pack_command(OP_LOAD_MATRIX, meta, arrays)
        if not payloads:
            return 0
        out = self._round(OP_LOAD_MATRIX, payloads, HEAVY_FLOOR)
        for rank in out:
            self._shipped.add((rank, entries[rank][0]))
        return len(out)

    def ensure_factors(self, entries: dict[int, tuple[str, dict, list]]) -> int:
        """Ship already-computed factors (``OP_LOAD_FACTOR``) not yet resident."""
        payloads = {}
        for rank in sorted(entries):
            key, meta, arrays = entries[rank]
            if (rank, key) in self._shipped:
                continue
            payloads[rank] = pack_command(OP_LOAD_FACTOR, meta, arrays)
        if not payloads:
            return 0
        out = self._round(OP_LOAD_FACTOR, payloads, HEAVY_FLOOR)
        for rank in out:
            self._shipped.add((rank, entries[rank][0]))
        return len(out)

    def factor(
        self, payload_meta: dict[int, dict], perms: dict[int, np.ndarray]
    ) -> dict[int, tuple[dict, list]]:
        """Run ``OP_FACTOR`` on every rank's resident matrix, in one round.

        ``payload_meta[rank]`` is the FACTOR meta (alg/params/matrix_key/
        factor_key); ``perms[rank]`` (optional per rank) is the RCM
        permutation the worker must keep with the factor for APPLY.
        Returns the raw per-rank ``(meta, arrays)`` — L then U in CSR
        triples — for the caller to rebuild driver-side factorizations
        that are bitwise identical to a local factorization.
        """
        payloads = {}
        for rank in sorted(payload_meta):
            meta = dict(payload_meta[rank])
            perm = perms.get(rank)
            arrays = []
            if perm is not None:
                meta["has_perm"] = True
                arrays = [np.asarray(perm, dtype=np.int64)]
            payloads[rank] = pack_command(OP_FACTOR, meta, arrays)
        out = self._round(OP_FACTOR, payloads, HEAVY_FLOOR)
        for rank in out:
            self._shipped.add((rank, payload_meta[rank]["factor_key"]))
        return out

    # -- per-iteration ops -------------------------------------------------

    def matvec(self, dmat, x: np.ndarray) -> np.ndarray:
        """Distributed matvec on the workers; bitwise equal to the fused one.

        Each rank holds a column-compacted row block of the fused operator
        (per-row storage order preserved, so per-row accumulation order —
        and every result bit — matches the driver's single fused product).
        When ``x`` *is* the vector the workers just produced via APPLY
        (the fused ``apply_matvec`` path), only interface ghost values
        travel; otherwise each rank receives its compacted input slice.
        """
        size = self.comm.size
        load_entries = {}
        for rank in range(size):
            blk = dmat.rank_block(rank)
            if (rank, blk.key) not in self._shipped:
                load_entries[rank] = (
                    blk.key,
                    {
                        "key": blk.key, "block": True,
                        "nrows": int(blk.a.shape[0]),
                        "ncols": int(blk.a.shape[1]),
                    },
                    [
                        blk.a.indptr, blk.a.indices, blk.a.data,
                        blk.own_pos, blk.own_sel, blk.ghost_pos,
                    ],
                )
        if load_entries:
            self.ensure_matrices(load_entries)
        registered = self._z_last is x
        payloads = {}
        for rank in range(size):
            blk = dmat.rank_block(rank)
            if registered:
                payloads[rank] = pack_command(
                    OP_MATVEC_GHOSTS, {"key": blk.key}, [x[blk.ghost_cols]]
                )
            else:
                payloads[rank] = pack_command(
                    OP_MATVEC, {"key": blk.key}, [x[blk.cols]]
                )
        out = self._round(
            OP_MATVEC_GHOSTS if registered else OP_MATVEC, payloads, LIGHT_FLOOR
        )
        y = np.empty(dmat.pm.layout.total, dtype=np.float64)
        rank_ptr = dmat.pm.layout.rank_ptr
        for rank in range(size):
            y[rank_ptr[rank] : rank_ptr[rank + 1]] = out[rank][1][0]
        return y

    def apply_factors(
        self, keys: dict[int, str], layout, r: np.ndarray
    ) -> np.ndarray:
        """Per-rank triangular sweeps ``z_r = (L_r U_r)^{-1} r_r`` in one round.

        The workers keep their ``z_r`` in the z-register; the assembled z
        is remembered so an immediately following :meth:`matvec` on the
        same object ships ghosts only.
        """
        payloads = {
            rank: pack_command(
                OP_APPLY, {"key": keys[rank]}, [r[layout.local_slice(rank)]]
            )
            for rank in sorted(keys)
        }
        out = self._round(OP_APPLY, payloads, LIGHT_FLOOR)
        z = np.empty_like(r)
        for rank in sorted(keys):
            z[layout.local_slice(rank)] = out[rank][1][0]
        self._z_last = z
        return z

    def dot_partials(self, layout, x: np.ndarray, y: np.ndarray) -> list[float]:
        """Per-rank partial inner products, worker-evaluated (opt-in)."""
        payloads = {
            rank: pack_command(
                OP_DOT_PARTIAL, {},
                [x[layout.local_slice(rank)], y[layout.local_slice(rank)]],
            )
            for rank in range(self.comm.size)
        }
        out = self._round(OP_DOT_PARTIAL, payloads, LIGHT_FLOOR)
        return [float(out[r][1][0][0]) for r in sorted(out)]
