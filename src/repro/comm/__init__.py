"""Simulated message-passing layer.

The library executes the distributed algorithms' exact data flow inside one
process: each "processor" owns a slice of every distributed object, ghost
exchanges copy real data between slices, and every message and collective is
recorded in the :class:`~repro.perfmodel.CostLedger` so the machine models can
price the run.  The API mirrors the MPI idioms of the mpi4py guide
(point-to-point exchanges derived from a communication pattern, plus
allreduce/allgather collectives).
"""

from repro.comm.communicator import Communicator, CommStats, RetryPolicy
from repro.comm.pattern import CommunicationPattern, ExchangeSpec
from repro.comm.collectives import allgather_concat, allreduce_sum
from repro.comm.backends import (
    BACKEND_ENV,
    BACKEND_NAMES,
    ExecutionBackend,
    InProcessBackend,
    MultiprocessBackend,
    resolve_backend,
)

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "Communicator",
    "CommStats",
    "ExecutionBackend",
    "InProcessBackend",
    "MultiprocessBackend",
    "RetryPolicy",
    "CommunicationPattern",
    "ExchangeSpec",
    "allreduce_sum",
    "allgather_concat",
    "resolve_backend",
]
