"""Wire framing of the integrity envelope.

Every byte string that crosses an execution-backend transport travels inside
one **frame**: a fixed header (magic, frame kind, src/dst rank, per-edge
sequence number, CRC-32, payload length) followed by the raw payload bytes.
The header reuses the seq + CRC-32 integrity envelope that PR 3 introduced
for the simulated ghost exchange — on the multiprocess backend the same
envelope now frames *real* pipe traffic, and a failed validation maps onto
the same typed taxonomy (:class:`~repro.resilience.errors.MessageCorruption`).

The format is deliberately dumb: little-endian ``struct``, no varints, no
compression.  ``decode_frame`` never raises anything but
:class:`MessageCorruption` on malformed input (truncation, bad magic,
unknown kind, length mismatch, checksum mismatch), which is what lets the
receiver treat *every* wire-level failure as a retryable delivery fault.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.resilience.errors import MessageCorruption

#: first four bytes of every frame
MAGIC = b"RPRB"

#: frame kinds (the ``kind`` header field)
DATA = 1       #: a ghost-exchange payload, driver -> rank process
ACK = 2        #: validated echo of a DATA payload, rank process -> driver
NAK = 3        #: validation failure; payload is an ASCII reason
PING = 4       #: liveness probe, driver -> rank process
PONG = 5       #: liveness reply, rank process -> driver
HELLO = 6      #: startup handshake, rank process -> driver
SHUTDOWN = 7   #: graceful stop request, driver -> rank process

FRAME_KINDS = (DATA, ACK, NAK, PING, PONG, HELLO, SHUTDOWN)

KIND_NAMES = {
    DATA: "data",
    ACK: "ack",
    NAK: "nak",
    PING: "ping",
    PONG: "pong",
    HELLO: "hello",
    SHUTDOWN: "shutdown",
}

#: header: magic, kind, src, dst, seq, crc32, payload length
_HEADER = struct.Struct("<4sBiiQIQ")
HEADER_SIZE = _HEADER.size


@dataclass(frozen=True)
class Frame:
    """One decoded transport frame."""

    kind: int
    src: int
    dst: int
    seq: int
    payload: bytes

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"unknown({self.kind})")


def encode_frame(
    kind: int, src: int, dst: int, seq: int, payload: bytes = b""
) -> bytes:
    """Serialize one frame; the CRC-32 is computed over the payload."""
    if kind not in FRAME_KINDS:
        raise ValueError(f"unknown frame kind {kind!r}; pick from {FRAME_KINDS}")
    if seq < 0:
        raise ValueError("frame seq must be >= 0")
    header = _HEADER.pack(
        MAGIC, kind, src, dst, seq, zlib.crc32(payload), len(payload)
    )
    return header + payload


def peek_header(raw: bytes) -> tuple[int, int, int, int]:
    """Read ``(kind, src, dst, seq)`` from a frame header without validation.

    The sender needs the addressing triple to match responses even when the
    frame body is deliberately garbled (fault injection flips payload bits,
    never header bytes), and the receiver needs it to address a NAK for a
    frame whose checksum failed.  Only the header must be present and carry
    the right magic; the payload is not inspected.
    """
    raw = bytes(raw)
    if len(raw) < HEADER_SIZE:
        raise MessageCorruption(
            f"frame truncated: {len(raw)} bytes < {HEADER_SIZE}-byte header",
            reason="truncated", nbytes=len(raw),
        )
    magic, kind, src, dst, seq, _crc, _length = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise MessageCorruption(
            f"bad frame magic {magic!r}", reason="bad-magic",
        )
    return kind, src, dst, seq


def decode_frame(raw: bytes) -> Frame:
    """Parse and validate one frame.

    Raises :class:`MessageCorruption` — and only that — on any malformed
    input; the context names what failed (``reason``) so retry telemetry
    can distinguish truncation from checksum mismatches.
    """
    raw = bytes(raw)
    if len(raw) < HEADER_SIZE:
        raise MessageCorruption(
            f"frame truncated: {len(raw)} bytes < {HEADER_SIZE}-byte header",
            reason="truncated", nbytes=len(raw),
        )
    magic, kind, src, dst, seq, crc, length = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise MessageCorruption(
            f"bad frame magic {magic!r}", reason="bad-magic",
        )
    if kind not in FRAME_KINDS:
        raise MessageCorruption(
            f"unknown frame kind {kind}", reason="bad-kind", kind=kind,
        )
    payload = raw[HEADER_SIZE:]
    if len(payload) != length:
        raise MessageCorruption(
            f"frame length mismatch: header says {length} payload bytes, "
            f"got {len(payload)}",
            reason="length-mismatch", expected=length, got=len(payload),
        )
    actual = zlib.crc32(payload)
    if actual != crc:
        raise MessageCorruption(
            f"frame checksum mismatch on {KIND_NAMES.get(kind, kind)} "
            f"{src}->{dst} seq {seq}",
            reason="checksum", expected=crc, got=actual,
            src=src, dst=dst, seq=seq,
        )
    return Frame(kind=kind, src=src, dst=dst, seq=seq, payload=payload)
