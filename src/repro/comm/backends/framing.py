"""Wire framing of the integrity envelope.

Every byte string that crosses an execution-backend transport travels inside
one **frame**: a fixed header (magic, frame kind, src/dst rank, per-edge
sequence number, CRC-32, payload length) followed by the raw payload bytes.
The header reuses the seq + CRC-32 integrity envelope that PR 3 introduced
for the simulated ghost exchange — on the multiprocess backend the same
envelope now frames *real* pipe traffic, and a failed validation maps onto
the same typed taxonomy (:class:`~repro.resilience.errors.MessageCorruption`).

The format is deliberately dumb: little-endian ``struct``, no varints, no
compression.  ``decode_frame`` never raises anything but
:class:`MessageCorruption` on malformed input (truncation, bad magic,
unknown kind, length mismatch, checksum mismatch), which is what lets the
receiver treat *every* wire-level failure as a retryable delivery fault.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.resilience.errors import MessageCorruption

#: first four bytes of every frame
MAGIC = b"RPRB"

#: frame kinds (the ``kind`` header field)
DATA = 1       #: a ghost-exchange payload, driver -> rank process
ACK = 2        #: validated echo of a DATA payload, rank process -> driver
NAK = 3        #: validation failure; payload is an ASCII reason
PING = 4       #: liveness probe, driver -> rank process
PONG = 5       #: liveness reply, rank process -> driver
HELLO = 6      #: startup handshake, rank process -> driver
SHUTDOWN = 7   #: graceful stop request, driver -> rank process
CMD = 8        #: worker-compute command, driver -> rank process
RESULT = 9     #: worker-compute result, rank process -> driver

FRAME_KINDS = (DATA, ACK, NAK, PING, PONG, HELLO, SHUTDOWN, CMD, RESULT)

KIND_NAMES = {
    DATA: "data",
    ACK: "ack",
    NAK: "nak",
    PING: "ping",
    PONG: "pong",
    HELLO: "hello",
    SHUTDOWN: "shutdown",
    CMD: "cmd",
    RESULT: "result",
}

#: header: magic, kind, src, dst, seq, crc32, payload length
_HEADER = struct.Struct("<4sBiiQIQ")
HEADER_SIZE = _HEADER.size


@dataclass(frozen=True)
class Frame:
    """One decoded transport frame."""

    kind: int
    src: int
    dst: int
    seq: int
    payload: bytes

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"unknown({self.kind})")


def encode_frame(
    kind: int, src: int, dst: int, seq: int, payload: bytes = b""
) -> bytes:
    """Serialize one frame; the CRC-32 is computed over the payload."""
    if kind not in FRAME_KINDS:
        raise ValueError(f"unknown frame kind {kind!r}; pick from {FRAME_KINDS}")
    if seq < 0:
        raise ValueError("frame seq must be >= 0")
    header = _HEADER.pack(
        MAGIC, kind, src, dst, seq, zlib.crc32(payload), len(payload)
    )
    return header + payload


def peek_header(raw: bytes) -> tuple[int, int, int, int]:
    """Read ``(kind, src, dst, seq)`` from a frame header without validation.

    The sender needs the addressing triple to match responses even when the
    frame body is deliberately garbled (fault injection flips payload bits,
    never header bytes), and the receiver needs it to address a NAK for a
    frame whose checksum failed.  Only the header must be present and carry
    the right magic; the payload is not inspected.

    Truncated input — fewer bytes than the fixed header — must never reach
    ``struct.unpack_from`` (which would raise a bare ``struct.error`` out of
    the retry loop's taxonomy).  The magic prefix is checked *first*, over
    however many bytes arrived, so a short frame of foreign bytes reports
    ``bad-magic`` while a short frame that genuinely starts with our magic
    reports ``truncated`` with the byte count.
    """
    raw = bytes(raw)
    prefix = raw[: len(MAGIC)]
    if prefix != MAGIC[: len(prefix)]:
        raise MessageCorruption(
            f"bad frame magic {prefix!r}", reason="bad-magic",
        )
    if len(raw) < HEADER_SIZE:
        raise MessageCorruption(
            f"frame truncated: {len(raw)} bytes < {HEADER_SIZE}-byte header",
            reason="truncated", nbytes=len(raw),
        )
    magic, kind, src, dst, seq, _crc, _length = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise MessageCorruption(
            f"bad frame magic {magic!r}", reason="bad-magic",
        )
    return kind, src, dst, seq


def decode_frame(raw: bytes) -> Frame:
    """Parse and validate one frame.

    Raises :class:`MessageCorruption` — and only that — on any malformed
    input; the context names what failed (``reason``) so retry telemetry
    can distinguish truncation from checksum mismatches.
    """
    raw = bytes(raw)
    if len(raw) < HEADER_SIZE:
        raise MessageCorruption(
            f"frame truncated: {len(raw)} bytes < {HEADER_SIZE}-byte header",
            reason="truncated", nbytes=len(raw),
        )
    magic, kind, src, dst, seq, crc, length = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise MessageCorruption(
            f"bad frame magic {magic!r}", reason="bad-magic",
        )
    if kind not in FRAME_KINDS:
        raise MessageCorruption(
            f"unknown frame kind {kind}", reason="bad-kind", kind=kind,
        )
    payload = raw[HEADER_SIZE:]
    if len(payload) != length:
        raise MessageCorruption(
            f"frame length mismatch: header says {length} payload bytes, "
            f"got {len(payload)}",
            reason="length-mismatch", expected=length, got=len(payload),
        )
    actual = zlib.crc32(payload)
    if actual != crc:
        raise MessageCorruption(
            f"frame checksum mismatch on {KIND_NAMES.get(kind, kind)} "
            f"{src}->{dst} seq {seq}",
            reason="checksum", expected=crc, got=actual,
            src=src, dst=dst, seq=seq,
        )
    return Frame(kind=kind, src=src, dst=dst, seq=seq, payload=payload)


# -- array payloads ----------------------------------------------------------
#
# Worker-compute commands ship numerical arrays.  Pickling them would copy
# every element through the pickle machinery twice per hop; instead an array
# travels as a tiny fixed header (magic, dtype code, element count) followed
# by its raw little-endian buffer, and decodes as a zero-copy
# ``np.frombuffer`` view over the received bytes.  Only the 1-D dtypes the
# protocol actually ships are admitted — a closed table, so a corrupted
# dtype byte cannot smuggle in an object dtype.

#: first bytes of every encoded array block
ARRAY_MAGIC = b"RPRA"

#: dtype code table (closed; little-endian on the wire)
ARRAY_DTYPES = {
    1: "<f8",
    2: "<i8",
    3: "<i4",
    4: "u1",
}

_ARRAY_HEADER = struct.Struct("<4sBQ")
ARRAY_HEADER_SIZE = _ARRAY_HEADER.size


def _dtype_code(dtype) -> int:
    want = np.dtype(dtype).newbyteorder("<")
    for code, name in sorted(ARRAY_DTYPES.items()):
        if np.dtype(name) == want:
            return code
    raise ValueError(
        f"dtype {dtype!r} is not shippable; supported: "
        f"{sorted(ARRAY_DTYPES.values())}"
    )


def encode_array(a) -> bytes:
    """Serialize a 1-D array: fixed header + raw little-endian buffer."""
    a = np.ascontiguousarray(a)
    if a.ndim != 1:
        raise ValueError(f"only 1-D arrays ship on the wire, got ndim={a.ndim}")
    code = _dtype_code(a.dtype)
    body = a.astype(ARRAY_DTYPES[code], copy=False)
    return _ARRAY_HEADER.pack(ARRAY_MAGIC, code, a.size) + body.tobytes()


def decode_array(buf: bytes, offset: int = 0):
    """Decode one array block at ``offset``; returns ``(view, next_offset)``.

    The returned array is a **read-only zero-copy view** over ``buf``;
    callers that need to mutate must copy.  Malformed blocks raise
    :class:`MessageCorruption` so transport-level garbage stays inside the
    retry taxonomy.
    """
    end = offset + ARRAY_HEADER_SIZE
    if len(buf) < end:
        raise MessageCorruption(
            f"array block truncated: {len(buf) - offset} bytes < "
            f"{ARRAY_HEADER_SIZE}-byte header",
            reason="truncated", nbytes=len(buf) - offset,
        )
    magic, code, count = _ARRAY_HEADER.unpack_from(buf, offset)
    if magic != ARRAY_MAGIC:
        raise MessageCorruption(
            f"bad array magic {magic!r}", reason="bad-magic",
        )
    dtype_name = ARRAY_DTYPES.get(code)
    if dtype_name is None:
        raise MessageCorruption(
            f"unknown array dtype code {code}", reason="bad-dtype", code=code,
        )
    dtype = np.dtype(dtype_name)
    body_end = end + count * dtype.itemsize
    if len(buf) < body_end:
        raise MessageCorruption(
            f"array body truncated: wanted {count * dtype.itemsize} bytes, "
            f"got {len(buf) - end}",
            reason="truncated", nbytes=len(buf) - end,
        )
    view = np.frombuffer(buf, dtype=dtype, count=count, offset=end)
    return view, body_end


def encode_arrays(arrays) -> bytes:
    """Concatenate :func:`encode_array` blocks (decode with a loop)."""
    return b"".join(encode_array(a) for a in arrays)


def decode_arrays(buf: bytes, offset: int = 0, count: int | None = None):
    """Decode consecutive array blocks until ``buf`` (or ``count``) runs out."""
    out = []
    while offset < len(buf) and (count is None or len(out) < count):
        a, offset = decode_array(buf, offset)
        out.append(a)
    return out, offset
