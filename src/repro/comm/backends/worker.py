"""Worker-resident subdomain compute: the command set rank processes serve.

PR 7 made the ranks real OS processes but left every flop in the driver —
workers validated and echoed envelope frames, which is what kept the
backends bitwise equal.  This module moves the per-rank hot path into the
rank processes themselves: a **command protocol** layered on the framed
seq + CRC transport (:mod:`~repro.comm.backends.framing`, frame kinds
``CMD``/``RESULT``).

A command payload is ``(opcode, meta, arrays)``: a one-byte opcode, a small
JSON meta dict (scalars and strings only), and zero or more raw
little-endian array blocks (:func:`framing.encode_array` — no pickle on the
hot path).  The result payload uses the same encoding; every result meta
carries ``seconds``, the worker-measured compute time of the command, which
is what lets the driver attribute time to ranks (``comm.worker.round``
events, ``repro trace``) and the scaling bench compute measured
critical-path speedups.

Determinism contract (docs/algorithms.md, "Worker-resident compute"):
every handler runs the **same kernel code** the in-process path runs —
:func:`repro.kernels.apply.csr_matvec` for the matvec,
:meth:`repro.factor.base.ILUFactorization.solve` for the triangular
sweeps, :func:`repro.factor.ilu0.ilu0` / :func:`repro.factor.ilut.ilut`
for factorization — on bitwise-identical inputs, so worker results are
bitwise equal to driver results and the PR 5/7 determinism gates hold
unchanged.

State is **content-addressed**: ``LOAD``/``FACTOR`` store objects under the
driver-computed SHA-256 content key, so repeated solves over the same
operator skip the transfer (the driver tracks shipped keys per backend
generation) and a re-ship after ``absorb_rank`` recovery reproduces the
exact factors the digest names.
"""

from __future__ import annotations

import json
from time import perf_counter, process_time

import numpy as np

from repro.comm.backends import framing

#: command opcodes (first payload byte)
OP_LOAD_MATRIX = 1    #: store a CSR matrix under a content key
OP_LOAD_FACTOR = 2    #: store an ILU factorization (L, U[, perm]) under a key
OP_FACTOR = 3         #: factor a loaded matrix worker-side; returns L/U
OP_MATVEC = 4         #: y = A_r @ x_sub (full compacted input vector shipped)
OP_MATVEC_GHOSTS = 5  #: y = A_r @ [z-register; ghosts] (only ghosts shipped)
OP_APPLY = 6          #: z = (LU)^{-1} r; z kept in the worker's z-register
OP_DOT_PARTIAL = 7    #: scalar partial <x_r, y_r> for the tree reduction

OP_NAMES = {
    OP_LOAD_MATRIX: "load-matrix",
    OP_LOAD_FACTOR: "load-factor",
    OP_FACTOR: "factor",
    OP_MATVEC: "matvec",
    OP_MATVEC_GHOSTS: "matvec-ghosts",
    OP_APPLY: "apply",
    OP_DOT_PARTIAL: "dot-partial",
}


def pack_command(op: int, meta: dict, arrays=()) -> bytes:
    """Serialize one command (or result) payload.

    ``meta`` must be JSON-serializable scalars/strings — numerical data
    travels in ``arrays`` as raw buffers, never through JSON or pickle.
    """
    if op not in OP_NAMES:
        raise ValueError(f"unknown worker opcode {op!r}")
    blob = json.dumps(meta, sort_keys=True, separators=(",", ":")).encode()
    head = bytes([op]) + len(blob).to_bytes(4, "little") + blob
    return head + framing.encode_arrays(arrays)


def unpack_command(payload: bytes) -> tuple[int, dict, list]:
    """Parse a command/result payload back into ``(op, meta, arrays)``.

    Arrays are zero-copy read-only views over ``payload``; handlers that
    build long-lived state copy them explicitly.
    """
    payload = bytes(payload)
    if len(payload) < 5:
        raise ValueError(f"command payload truncated: {len(payload)} bytes")
    op = payload[0]
    if op not in OP_NAMES:
        raise ValueError(f"unknown worker opcode {op}")
    mlen = int.from_bytes(payload[1:5], "little")
    if len(payload) < 5 + mlen:
        raise ValueError("command meta truncated")
    meta = json.loads(payload[5 : 5 + mlen].decode())
    arrays, _ = framing.decode_arrays(payload, 5 + mlen)
    return op, meta, arrays


class SubdomainStore:
    """One rank process's resident subdomain state, keyed by content hash.

    ``matrices`` maps key -> ``(csr, own_pos, own_sel, ghost_pos)`` for
    matvec blocks (column-compacted row blocks of the fused operator) or
    ``(csr, None, None, None)`` for plain square matrices (factorization
    inputs).  ``factors`` maps key -> ``(ILUFactorization, perm | None)``.
    ``registers`` holds the last APPLY result so a following
    ``MATVEC_GHOSTS`` ships only interface values.  ``loads`` / ``cached``
    count arrivals vs. key hits — the re-ship tests read these back.
    """

    def __init__(self) -> None:
        self.matrices: dict = {}
        self.factors: dict = {}
        self.registers: dict = {}
        self.loads = 0
        self.cached = 0


def _csr_from(arrays, nrows: int, ncols: int):
    import scipy.sparse as sp

    indptr, indices, data = (np.array(a) for a in arrays)
    return sp.csr_matrix((data, indices, indptr), shape=(nrows, ncols))


def _handle_load_matrix(store: SubdomainStore, meta: dict, arrays: list) -> tuple[dict, list]:
    key = meta["key"]
    if key in store.matrices:
        store.cached += 1
        return {"stored": True, "cached": True, "key": key}, []
    a = _csr_from(arrays[:3], int(meta["nrows"]), int(meta["ncols"]))
    if meta.get("block"):
        own_pos, own_sel, ghost_pos = (np.array(x) for x in arrays[3:6])
        store.matrices[key] = (a, own_pos, own_sel, ghost_pos)
    else:
        store.matrices[key] = (a, None, None, None)
    store.loads += 1
    return {"stored": True, "cached": False, "key": key}, []


def _handle_load_factor(store: SubdomainStore, meta: dict, arrays: list) -> tuple[dict, list]:
    from repro.factor.base import FactorStats, ILUFactorization

    key = meta["key"]
    if key in store.factors:
        store.cached += 1
        return {"stored": True, "cached": True, "key": key}, []
    n = int(meta["n"])
    l_strict = _csr_from(arrays[:3], n, n)
    u_upper = _csr_from(arrays[3:6], n, n)
    perm = np.array(arrays[6]) if meta.get("has_perm") else None
    stats = FactorStats(
        n=n,
        floored_pivots=int(meta.get("floored_pivots", 0)),
        shift=float(meta.get("shift", 0.0)),
    )
    store.factors[key] = (ILUFactorization(l_strict, u_upper, stats), perm)
    store.loads += 1
    return {"stored": True, "cached": False, "key": key}, []


def _handle_factor(store: SubdomainStore, meta: dict, arrays: list) -> tuple[dict, list]:
    """Factor a resident square matrix; keep and return the result.

    Runs the exact driver-side factorization code on the exact driver-side
    bytes, so the factors (and their content digest) are bitwise identical
    to an in-process factorization — the ``backend`` determinism check
    hashes them to prove it.
    """
    from repro.factor.base import ILUFactorization
    from repro.factor.ilu0 import ilu0
    from repro.factor.ilut import ilut

    matrix_key = meta["matrix_key"]
    factor_key = meta["factor_key"]
    if factor_key in store.factors:
        store.cached += 1
        fac, _ = store.factors[factor_key]
    else:
        entry = store.matrices.get(matrix_key)
        if entry is None:
            raise KeyError(f"matrix {matrix_key[:12]} not resident")
        a = entry[0]
        bf = meta.get("breakdown_frac")
        if meta["alg"] == "ilu0":
            fac = ilu0(a, shift=float(meta.get("shift", 0.0)), breakdown_frac=bf)
        else:
            fac = ilut(
                a, float(meta["drop_tol"]), int(meta["fill"]),
                shift=float(meta.get("shift", 0.0)), breakdown_frac=bf,
            )
        assert isinstance(fac, ILUFactorization)
        perm = np.array(arrays[0]) if meta.get("has_perm") else None
        store.factors[factor_key] = (fac, perm)
        store.loads += 1
    out_meta = {
        "key": factor_key,
        "n": fac.n,
        "floored_pivots": fac.stats.floored_pivots,
        "shift": fac.stats.shift,
    }
    out = [
        fac.l_strict.indptr, fac.l_strict.indices, fac.l_strict.data,
        fac.u_upper.indptr, fac.u_upper.indices, fac.u_upper.data,
    ]
    return out_meta, out


def _handle_matvec(store: SubdomainStore, meta: dict, arrays: list) -> tuple[dict, list]:
    from repro.kernels import apply as apply_kernels

    entry = store.matrices.get(meta["key"])
    if entry is None:
        raise KeyError(f"matrix {meta['key'][:12]} not resident")
    y = apply_kernels.csr_matvec(entry[0], np.asarray(arrays[0]))
    return {}, [y]


def _handle_matvec_ghosts(store: SubdomainStore, meta: dict, arrays: list) -> tuple[dict, list]:
    """Matvec over ``[z-register; shipped ghosts]`` — interface data only.

    The input vector is assembled in the compacted column order the block
    was built with (ascending distributed-global index), so the per-row
    accumulation order — hence every bit of the product — matches the
    driver's fused matvec.
    """
    from repro.kernels import apply as apply_kernels

    entry = store.matrices.get(meta["key"])
    if entry is None:
        raise KeyError(f"matrix {meta['key'][:12]} not resident")
    a, own_pos, own_sel, ghost_pos = entry
    if own_pos is None:
        raise ValueError(f"matrix {meta['key'][:12]} is not a matvec block")
    z = store.registers.get("z")
    if z is None:
        raise ValueError("no z-register: MATVEC_GHOSTS must follow APPLY")
    xsub = np.empty(a.shape[1], dtype=np.float64)
    xsub[own_pos] = z[own_sel]
    xsub[ghost_pos] = np.asarray(arrays[0])
    y = apply_kernels.csr_matvec(a, xsub)
    return {}, [y]


def _handle_apply(store: SubdomainStore, meta: dict, arrays: list) -> tuple[dict, list]:
    """Triangular sweeps ``z = (LU)^{-1} r`` via the resident factor.

    Identical code path to the driver's
    :meth:`~repro.factor.base.ILUFactorization.solve` (fused SuperLU fast
    path with probe, level-scheduled fallback), including the RCM
    permutation round-trip when the factor was built in permuted order.
    The result is parked in the z-register for a following MATVEC_GHOSTS.
    """
    entry = store.factors.get(meta["key"])
    if entry is None:
        raise KeyError(f"factor {meta['key'][:12]} not resident")
    fac, perm = entry
    r = np.array(arrays[0], dtype=np.float64)
    if perm is None:
        z = fac.solve(r)
    else:
        z_p = fac.solve(r[perm])
        z = np.empty_like(z_p)
        z[perm] = z_p
    store.registers["z"] = z
    return {}, [z]


def _handle_dot_partial(store: SubdomainStore, meta: dict, arrays: list) -> tuple[dict, list]:
    partial = float(np.dot(np.asarray(arrays[0]), np.asarray(arrays[1])))
    return {}, [np.asarray([partial], dtype=np.float64)]


_HANDLERS = {
    OP_LOAD_MATRIX: _handle_load_matrix,
    OP_LOAD_FACTOR: _handle_load_factor,
    OP_FACTOR: _handle_factor,
    OP_MATVEC: _handle_matvec,
    OP_MATVEC_GHOSTS: _handle_matvec_ghosts,
    OP_APPLY: _handle_apply,
    OP_DOT_PARTIAL: _handle_dot_partial,
}


def execute(store: SubdomainStore, payload: bytes) -> bytes:
    """Run one command against ``store``; always returns a result payload.

    Failures never kill the worker loop: any exception is serialized as
    ``{"error", "etype"}`` meta and re-raised as its typed counterpart on
    the driver side (:mod:`repro.comm.compute`).  ``seconds`` is the
    worker-measured wall time of the command — decode, compute, and result
    packing of the *handler*, not pipe time — which the driver's
    ``comm.worker.round`` events and the scaling bench aggregate per rank.
    """
    t0 = perf_counter()
    c0 = process_time()
    op = payload[0] if payload and payload[0] in OP_NAMES else OP_DOT_PARTIAL
    try:
        op, meta, arrays = unpack_command(payload)
        out_meta, out_arrays = _HANDLERS[op](store, meta, arrays)
        out_meta = dict(out_meta)
        out_meta["op"] = OP_NAMES[op]
        out_meta["seconds"] = perf_counter() - t0
        out_meta["cpu_seconds"] = process_time() - c0
        return pack_command(op, out_meta, out_arrays)
    except Exception as exc:  # noqa: BLE001 - the wire is the error boundary
        return pack_command(op, {
            "error": str(exc),
            "etype": type(exc).__name__,
            "seconds": perf_counter() - t0,
            "cpu_seconds": process_time() - c0,
        })
