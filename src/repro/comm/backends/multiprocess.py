"""The multiprocess backend: every rank is a real OS process.

Each rank runs :func:`_worker_main` — a small event loop on the child end of
a duplex pipe that validates incoming :mod:`~repro.comm.backends.framing`
frames (seq + CRC-32, the PR 3 integrity envelope now framing real bytes),
echoes DATA payloads back as ACKs, answers PING probes, and exits on
SHUTDOWN.  The parent side implements :meth:`MultiprocessBackend.request`
with deadline-based response matching (stale replies from earlier timed-out
attempts are drained and discarded by ``(kind, src, dst, seq)``).

Failure detection is the point of this backend:

* a worker that **exited** (clean exit, crash, SIGKILL — including the
  ``proc-kill`` injector) is noticed by ``Process.is_alive()`` /
  ``exitcode`` without burning a timeout window;
* a worker that is **hung** (SIGSTOP via ``proc-hang``, livelock) misses
  probe deadlines; the :class:`~repro.comm.backends.supervisor
  .RankSupervisor` counts the misses and, once the budget is exhausted,
  the backend *fences* it (SIGKILL) so it cannot wake up later and write
  into a world that has moved on.

Both paths classify through the supervisor into the existing taxonomy
(:class:`RankDeadError` / :class:`MessageTimeout`), which is what lets the
unchanged ``absorb_rank`` + checkpoint recovery machinery handle *real*
process death.

This module is the one place in the package allowed to touch raw
:mod:`multiprocessing` primitives and real sleeps (lint rule RPR008).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from multiprocessing.connection import Connection
from time import monotonic

from repro import obs
from repro.comm.backends import framing, worker
from repro.comm.backends.base import (
    ExecutionBackend,
    TransportBroken,
    TransportTimeout,
)
from repro.comm.backends.supervisor import HeartbeatPolicy, RankSupervisor
from repro.comm.communicator import RetryPolicy
from repro.resilience.errors import CommFault, MessageCorruption


def _worker_main(rank: int, size: int, conn: Connection,
                 poll_interval: float) -> None:
    """The rank process: validate, ack, compute, heartbeat until shutdown."""
    # the driver owns interrupt handling; workers die by SHUTDOWN frame,
    # pipe EOF, or the supervisor's fencing SIGKILL
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # fork inherits driver state the child must not act on: an attached
    # tracer would emit spans into a buffer nobody drains, and an active
    # fault plan would double-fire injections (the driver already fires
    # them at its own hook sites).  Neutralize both before serving.
    obs.set_tracer(obs.NULL_TRACER)
    from repro import faults as _faults
    _faults._ACTIVE = None
    store = worker.SubdomainStore()
    try:
        conn.send_bytes(framing.encode_frame(framing.HELLO, rank, rank, 0))
        last_seq: dict[tuple[int, int], int] = {}
        while True:
            if not conn.poll(poll_interval):
                continue
            raw = conn.recv_bytes()
            try:
                frame = framing.decode_frame(raw)
            except MessageCorruption as exc:
                reason = str(exc.context.get("reason", "corrupt"))
                # address the NAK from the (unvalidated) header so the
                # sender's response matcher pairs it with the retransmit
                # loop instead of draining it as a stale reply
                try:
                    _, src, dst, seq = framing.peek_header(raw)
                except MessageCorruption:
                    src, dst, seq = rank, rank, 0
                conn.send_bytes(framing.encode_frame(
                    framing.NAK, src, dst, seq, reason.encode()
                ))
                continue
            if frame.kind == framing.SHUTDOWN:
                return
            if frame.kind == framing.PING:
                conn.send_bytes(framing.encode_frame(
                    framing.PONG, frame.src, frame.dst, frame.seq
                ))
                continue
            if frame.kind == framing.DATA:
                key = (frame.src, frame.dst)
                seen = last_seq.get(key, -1)
                if frame.seq < seen:
                    # an old envelope arriving after the edge moved on —
                    # e.g. stale state surviving a recovery remap
                    conn.send_bytes(framing.encode_frame(
                        framing.NAK, frame.src, frame.dst, frame.seq,
                        b"stale-seq",
                    ))
                    continue
                last_seq[key] = frame.seq
                conn.send_bytes(framing.encode_frame(
                    framing.ACK, frame.src, frame.dst, frame.seq,
                    frame.payload,
                ))
                continue
            if frame.kind == framing.CMD:
                # worker-resident compute; every op is idempotent, so a
                # retransmitted CMD (same seq) simply re-executes and
                # returns a bitwise-identical result
                conn.send_bytes(framing.encode_frame(
                    framing.RESULT, frame.src, frame.dst, frame.seq,
                    worker.execute(store, frame.payload),
                ))
                continue
            conn.send_bytes(framing.encode_frame(
                framing.NAK, frame.src, frame.dst, frame.seq,
                f"unexpected {frame.kind_name}".encode(),
            ))
    except (EOFError, BrokenPipeError, OSError):
        return  # driver went away; nothing left to serve


class MultiprocessBackend(ExecutionBackend):
    """Ranks as supervised OS processes over pipe transport."""

    name = "multiprocess"
    is_real = True

    def __init__(
        self,
        size: int,
        heartbeat: HeartbeatPolicy | None = None,
        start_method: str | None = None,
    ) -> None:
        super().__init__(size)
        self.heartbeat = heartbeat or HeartbeatPolicy()
        self.supervisor = RankSupervisor(size, self.heartbeat)
        if start_method is None:
            # fork keeps spawn cost in the low milliseconds; fall back to
            # the platform default (spawn) where fork does not exist
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        self._ctx = multiprocessing.get_context(start_method)
        self._procs: list[multiprocessing.Process | None] = [None] * size
        self._conns: list[Connection | None] = [None] * size
        self._ping_seq = 0
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def ensure_started(self) -> None:
        if self._started:
            return
        with obs.span("comm.backend.start", backend=self.name,
                      ranks=self.size) as span:
            for rank in range(self.size):
                parent, child = self._ctx.Pipe(duplex=True)
                proc = self._ctx.Process(
                    target=_worker_main,
                    args=(rank, self.size, child, self.heartbeat.poll_interval),
                    name=f"repro-rank-{rank}",
                    daemon=True,
                )
                proc.start()
                child.close()
                self._procs[rank] = proc
                self._conns[rank] = parent
                self.supervisor.record_spawn(rank, proc.pid)
            pids = []
            for rank in range(self.size):
                self._await_hello(rank)
                pids.append(self.rank_pid(rank))
            span.set(pids=pids)
        self._started = True
        obs.event("comm.backend.ready", backend=self.name, ranks=self.size)

    def _await_hello(self, rank: int) -> None:
        conn = self._conns[rank]
        assert conn is not None
        deadline = monotonic() + self.heartbeat.startup_timeout
        while monotonic() < deadline:
            remaining = deadline - monotonic()
            if not conn.poll(max(remaining, 0.0)):
                break
            try:
                frame = framing.decode_frame(conn.recv_bytes())
            except (MessageCorruption, EOFError, OSError):
                break
            if frame.kind == framing.HELLO:
                self.supervisor.record_ready(rank)
                return
        # no handshake: treat as death-at-startup so recovery can absorb it
        self._record_exit_if_dead(rank, force=True)
        raise self.supervisor.classify(rank, phase="startup")

    def shutdown(self) -> None:
        if not any(p is not None for p in self._procs):
            return
        clean = 0
        for rank in range(self.size):
            proc, conn = self._procs[rank], self._conns[rank]
            if proc is None:
                continue
            if conn is not None and proc.is_alive():
                try:
                    conn.send_bytes(framing.encode_frame(
                        framing.SHUTDOWN, rank, rank, 0
                    ))
                except (BrokenPipeError, OSError):
                    pass
            proc.join(timeout=self.heartbeat.probe_timeout)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=self.heartbeat.startup_timeout)
            else:
                clean += 1
            if conn is not None:
                conn.close()
            self._procs[rank] = None
            self._conns[rank] = None
        self._started = False
        obs.event("comm.backend.shutdown", backend=self.name,
                  ranks=self.size, clean_exits=clean)

    # -- transport ---------------------------------------------------------

    def request(self, rank: int, raw: bytes, timeout: float) -> bytes:
        """Round-trip ``raw`` through ``rank``; deadline-matched response."""
        self._check_rank(rank)
        self.ensure_started()
        want = self._send(rank, raw)
        return self._collect(rank, want, monotonic() + timeout, timeout)

    def request_many(self, messages, timeout: float):
        """Send to every addressed rank, *then* collect the responses.

        This is the overlap primitive worker-resident compute depends on:
        all CMD frames hit the pipes before the driver blocks on the first
        response, so the rank processes execute their subdomain work
        concurrently while the driver waits.  Per-rank failures come back
        as exception values, never raised — one dead rank must not hide
        the other ranks' finished results from the caller's retry loop.
        """
        self.ensure_started()
        results: dict[int, bytes | Exception] = {}
        sent: dict[int, tuple[int, int, int, int]] = {}
        for rank in sorted(messages):
            self._check_rank(rank)
            try:
                sent[rank] = self._send(rank, messages[rank])
            except (TransportTimeout, TransportBroken) as exc:
                results[rank] = exc
        deadline = monotonic() + timeout
        for rank in sorted(sent):
            try:
                results[rank] = self._collect(
                    rank, sent[rank], deadline, timeout
                )
            except (TransportTimeout, TransportBroken) as exc:
                results[rank] = exc
        return results

    def _send(self, rank: int, raw: bytes) -> tuple[int, int, int, int]:
        """Push one frame down ``rank``'s pipe; returns its matching keys."""
        if self._record_exit_if_dead(rank):
            raise TransportBroken(rank, "process exited")
        conn = self._conns[rank]
        if conn is None:
            raise TransportBroken(rank, "transport closed")
        # header-only peek: the outgoing frame may be deliberately garbled
        # (corruption injection), and the matching keys live in the header
        want = framing.peek_header(raw)
        try:
            conn.send_bytes(raw)
        except (BrokenPipeError, OSError) as exc:
            self._record_exit_if_dead(rank, force=True)
            raise TransportBroken(rank, str(exc)) from exc
        return want

    def _collect(
        self,
        rank: int,
        want: tuple[int, int, int, int],
        deadline: float,
        timeout: float,
    ) -> bytes:
        """Wait for the response matching ``want`` until ``deadline``."""
        want_kind, want_src, want_dst, want_seq = want
        conn = self._conns[rank]
        if conn is None:
            raise TransportBroken(rank, "transport closed")
        while True:
            remaining = deadline - monotonic()
            if remaining <= 0 or not conn.poll(remaining):
                if self._record_exit_if_dead(rank):
                    raise TransportBroken(rank, "process exited mid-request")
                raise TransportTimeout(rank, timeout)
            try:
                resp = framing.decode_frame(conn.recv_bytes())
            except (EOFError, OSError) as exc:
                self._record_exit_if_dead(rank, force=True)
                raise TransportBroken(rank, str(exc)) from exc
            # corrupt response frames propagate MessageCorruption to the
            # retry loop, which counts a checksum failure and retransmits
            if (resp.src, resp.dst, resp.seq) != (want_src, want_dst, want_seq):
                continue  # stale reply from an earlier timed-out attempt
            if want_kind == framing.PING and resp.kind != framing.PONG:
                continue
            if want_kind == framing.DATA and resp.kind not in (
                framing.ACK, framing.NAK
            ):
                continue
            if want_kind == framing.CMD and resp.kind not in (
                framing.RESULT, framing.NAK
            ):
                continue
            return framing.encode_frame(
                resp.kind, resp.src, resp.dst, resp.seq, resp.payload
            )

    def probe(self, rank: int, timeout: float | None = None) -> bool:
        """PING ``rank``; True on a PONG within the window, False on a miss.

        Misses are recorded with the supervisor (this is the heartbeat);
        a miss that exhausts the budget triggers fencing.
        """
        self._check_rank(rank)
        self.ensure_started()
        timeout = self.heartbeat.probe_timeout if timeout is None else timeout
        self._ping_seq += 1
        ping = framing.encode_frame(
            framing.PING, rank, rank, self._ping_seq
        )
        try:
            self.request(rank, ping, timeout)
        except TransportTimeout:
            self.handle_timeout(rank)
            return False
        except TransportBroken:
            return False
        self.supervisor.record_ready(rank)
        return True

    # -- liveness / supervision -------------------------------------------

    def _record_exit_if_dead(self, rank: int, force: bool = False) -> bool:
        """Record (and report) death when the OS says the process is gone."""
        proc = self._procs[rank]
        if proc is None:
            if not self.supervisor.is_dead(rank):
                self.supervisor.record_exit(rank, None)
            return True
        if force or not proc.is_alive():
            self.supervisor.record_exit(rank, proc.exitcode)
            return True
        return False

    def check_alive(self, rank: int) -> bool:
        self._check_rank(rank)
        if not self._started:
            return True
        return not self._record_exit_if_dead(rank)

    def handle_timeout(self, rank: int) -> str:
        """A transfer/probe to ``rank`` timed out: record, maybe fence.

        Returns the rank's post-escalation supervision state.
        """
        if self._record_exit_if_dead(rank):
            return self.supervisor.state(rank)
        state = self.supervisor.record_miss(rank)
        if self.supervisor.should_fence(rank):
            self._fence(rank)
            state = self.supervisor.state(rank)
        return state

    def _fence(self, rank: int) -> None:
        """SIGKILL an unresponsive rank so it cannot resurface later.

        Idempotent: fencing a rank that is already DEAD (a prior fence, a
        crash noticed in between, or a concurrent recovery path beating us
        to it) is a no-op — no second SIGKILL, no duplicate events.
        """
        if self.supervisor.is_dead(rank):
            return
        proc = self._procs[rank]
        self.supervisor.record_fenced(rank)
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=self.heartbeat.startup_timeout)
        self._record_exit_if_dead(rank, force=True)

    def rank_pid(self, rank: int) -> int | None:
        self._check_rank(rank)
        proc = self._procs[rank]
        return None if proc is None else proc.pid

    def classify(self, rank: int, **context) -> CommFault:
        return self.supervisor.classify(rank, **context)

    # -- fault injection hooks --------------------------------------------

    def kill_rank(self, rank: int) -> None:
        """SIGKILL ``rank`` (the ``proc-kill`` injector): real death.

        No-op on a world that is not running — injecting into a shut-down
        (or never-started) backend must not respawn the ranks just to kill
        one, and a second kill of an already-dead rank is equally inert.
        """
        self._check_rank(rank)
        if not self._started:
            return
        proc = self._procs[rank]
        if proc is not None and proc.is_alive():
            proc.kill()  # SIGKILL — the process gets no chance to clean up
            proc.join(timeout=self.heartbeat.startup_timeout)
        self._record_exit_if_dead(rank, force=True)

    def hang_rank(self, rank: int) -> None:
        """SIGSTOP ``rank`` (the ``proc-hang`` injector): a live zombie.

        Like :meth:`kill_rank`, inert when the world is not running.
        """
        self._check_rank(rank)
        if not self._started:
            return
        pid = self.rank_pid(rank)
        if pid is not None and self.check_alive(rank):
            os.kill(pid, signal.SIGSTOP)

    def resume_rank(self, rank: int) -> None:
        """SIGCONT a hung rank (test cleanup; real recovery fences instead)."""
        self._check_rank(rank)
        pid = self.rank_pid(rank)
        if pid is not None and self.check_alive(rank):
            os.kill(pid, signal.SIGCONT)

    # -- policy ------------------------------------------------------------

    def default_retry_policy(self) -> RetryPolicy:
        """Real transports wait real milliseconds: a wider window than the
        simulated default, still bounded well under a second per transfer."""
        return RetryPolicy(max_retries=3, timeout=0.1, backoff=2.0)

    def __del__(self) -> None:  # pragma: no cover - belt and braces
        try:
            self.shutdown()
        except Exception:
            pass
