"""The execution-backend interface.

A :class:`~repro.comm.communicator.Communicator` delegates *how ranks
execute and how bytes move between them* to an :class:`ExecutionBackend`:

* ``inprocess`` — the historical simulation: every rank is a slice of the
  driver process, a transfer is an array copy, and nothing can be lost
  outside fault injection.  This is the default and is bit-identical to the
  pre-backend behavior.
* ``multiprocess`` — every rank is a real OS process; transfers travel as
  :mod:`~repro.comm.backends.framing` frames over pipes, and a
  :class:`~repro.comm.backends.supervisor.RankSupervisor` tracks the rank
  lifecycle (heartbeats, real death, hangs, fencing).

The transport speaks two *internal* exceptions — :class:`TransportTimeout`
and :class:`TransportBroken` — that never escape the ghost exchange: the
envelope retry loop converts them into retries, ledger charges, and finally
the typed :class:`~repro.resilience.errors.CommFault` taxonomy via
:meth:`ExecutionBackend.classify`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.comm.communicator import RetryPolicy
from repro.resilience.errors import CommFault

#: selectable backend names, in documentation order
BACKEND_NAMES = ("inprocess", "multiprocess")

#: environment override consulted when no explicit backend is requested
BACKEND_ENV = "REPRO_COMM_BACKEND"


class TransportTimeout(Exception):
    """No response arrived within the attempt's timeout window.

    Internal to the delivery loop — the retry policy decides whether this
    becomes another attempt or a typed :class:`CommFault`.
    """

    def __init__(self, rank: int, timeout: float) -> None:
        super().__init__(f"rank {rank} did not respond within {timeout:.3g}s")
        self.rank = rank
        self.timeout = timeout


class TransportBroken(Exception):
    """The transport endpoint is gone (process exited, pipe closed).

    Internal to the delivery loop; the supervisor has already recorded the
    death by the time this is raised.
    """

    def __init__(self, rank: int, detail: str = "") -> None:
        super().__init__(f"transport to rank {rank} is broken"
                         + (f": {detail}" if detail else ""))
        self.rank = rank


class ExecutionBackend(ABC):
    """How ``size`` ranks execute and exchange envelope-framed bytes.

    Lifecycle: backends start lazily (:meth:`ensure_started`) on first
    transfer and are shut down by the owning communicator's ``close()``.
    ``is_real`` distinguishes backends whose ranks can *actually* die from
    the simulated default — the ghost exchange routes every transfer
    through :meth:`request` when it is True.
    """

    #: short selectable name (one of :data:`BACKEND_NAMES`)
    name: str = "abstract"
    #: True when ranks are real OS processes (transfers must use the wire)
    is_real: bool = False

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("backend size must be >= 1")
        self.size = size

    # -- lifecycle ---------------------------------------------------------

    def ensure_started(self) -> None:
        """Idempotently bring every rank up (spawn + handshake)."""

    def shutdown(self) -> None:
        """Stop every rank and release transport resources (idempotent)."""

    # -- transport ---------------------------------------------------------

    @abstractmethod
    def request(self, rank: int, raw: bytes, timeout: float) -> bytes:
        """Round-trip one encoded frame through ``rank``'s process.

        Returns the response frame's raw bytes.  Raises
        :class:`TransportTimeout` when no (matching) response arrives
        within ``timeout`` seconds and :class:`TransportBroken` when the
        rank's process is confirmed gone.
        """

    def request_many(self, messages, timeout: float):
        """Round-trip a batch ``{rank: raw}``; per-rank results or errors.

        Returns ``{rank: bytes | Exception}`` — transport failures are
        *values*, not raises, so one broken rank cannot mask the others.
        The default is a sequential loop; real transports override this
        with send-all-then-collect so rank processes overlap their work.
        """
        results: dict[int, bytes | Exception] = {}
        for rank in sorted(messages):
            try:
                results[rank] = self.request(rank, messages[rank], timeout)
            except (TransportTimeout, TransportBroken) as exc:
                results[rank] = exc
        return results

    # -- liveness / supervision -------------------------------------------

    def check_alive(self, rank: int) -> bool:
        """Cheap liveness check (no wire traffic); records deaths."""
        self._check_rank(rank)
        return True

    def rank_pid(self, rank: int) -> int | None:
        """OS pid of ``rank``'s process (None for simulated ranks)."""
        self._check_rank(rank)
        return None

    def classify(self, rank: int, **context) -> CommFault:
        """The typed fault describing ``rank``'s current failure state."""
        raise NotImplementedError(
            f"backend {self.name!r} has no failure states to classify"
        )

    # -- fault injection hooks --------------------------------------------

    def kill_rank(self, rank: int) -> None:
        """SIGKILL ``rank``'s process (the ``proc-kill`` injector)."""
        raise ValueError(
            f"backend {self.name!r} has no real processes to kill — "
            "proc faults need the multiprocess backend"
        )

    def hang_rank(self, rank: int) -> None:
        """SIGSTOP ``rank``'s process (the ``proc-hang`` injector)."""
        raise ValueError(
            f"backend {self.name!r} has no real processes to stop — "
            "proc faults need the multiprocess backend"
        )

    def resume_rank(self, rank: int) -> None:
        """SIGCONT a previously hung rank (test cleanup aid)."""
        raise ValueError(
            f"backend {self.name!r} has no real processes to resume"
        )

    # -- policy ------------------------------------------------------------

    def default_retry_policy(self) -> RetryPolicy:
        """The retry policy a communicator adopts when none is given."""
        return RetryPolicy()

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} not in [0, {self.size})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(size={self.size})"
