"""Execution backends: how ranks run and how envelope bytes move.

``resolve_backend`` is the single construction point: explicit request
beats the ``REPRO_COMM_BACKEND`` environment override beats the
``inprocess`` default.  See ``docs/robustness.md`` ("Execution backends
and the rank lifecycle") for the full story.
"""

from __future__ import annotations

import os

from repro.comm.backends.base import (
    BACKEND_ENV,
    BACKEND_NAMES,
    ExecutionBackend,
    TransportBroken,
    TransportTimeout,
)
from repro.comm.backends.framing import Frame, decode_frame, encode_frame
from repro.comm.backends.inprocess import InProcessBackend
from repro.comm.backends.multiprocess import MultiprocessBackend
from repro.comm.backends.supervisor import (
    DEAD,
    READY,
    SPAWNED,
    SUSPECT,
    HeartbeatPolicy,
    RankRecord,
    RankSupervisor,
)

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "DEAD",
    "READY",
    "SPAWNED",
    "SUSPECT",
    "ExecutionBackend",
    "Frame",
    "HeartbeatPolicy",
    "InProcessBackend",
    "MultiprocessBackend",
    "RankRecord",
    "RankSupervisor",
    "TransportBroken",
    "TransportTimeout",
    "decode_frame",
    "encode_frame",
    "make_backend",
    "resolve_backend",
]


def make_backend(name: str, size: int) -> ExecutionBackend:
    """Construct a backend by selectable name."""
    if name == "inprocess":
        return InProcessBackend(size)
    if name == "multiprocess":
        return MultiprocessBackend(size)
    raise ValueError(
        f"unknown execution backend {name!r}; pick from {BACKEND_NAMES}"
    )


def resolve_backend(
    spec: str | ExecutionBackend | None, size: int
) -> tuple[ExecutionBackend, bool]:
    """Resolve a backend request into ``(backend, owned)``.

    ``spec`` may be a name, a ready-made instance (must match ``size``;
    the caller keeps ownership, so ``owned`` is False and the communicator
    will not shut it down), or None — in which case the
    :data:`~repro.comm.backends.base.BACKEND_ENV` environment variable is
    consulted before falling back to ``inprocess``.
    """
    if isinstance(spec, ExecutionBackend):
        if spec.size != size:
            raise ValueError(
                f"backend sized for {spec.size} ranks cannot serve {size}"
            )
        return spec, False
    if spec is None:
        spec = os.environ.get(BACKEND_ENV) or "inprocess"
    return make_backend(spec, size), True
