"""The in-process backend: the historical single-process simulation.

Ranks are slices of the driver process, a transfer is an array copy, and the
clean path never touches the wire — the ghost exchange keeps its direct-copy
fast path, so this backend is bit-identical *and* cost-identical to the
pre-backend behavior.  :meth:`InProcessBackend.request` still implements the
frame protocol as a local loopback (validate, echo) so transport-level tests
and tooling can exercise framing without spawning processes.
"""

from __future__ import annotations

from repro.comm.backends import framing
from repro.comm.backends.base import ExecutionBackend


class InProcessBackend(ExecutionBackend):
    """Simulated ranks inside the driver process (the default)."""

    name = "inprocess"
    is_real = False

    def request(self, rank: int, raw: bytes, timeout: float) -> bytes:
        """Local loopback: validate the frame and echo like a rank would."""
        self._check_rank(rank)
        frame = framing.decode_frame(raw)
        if frame.kind == framing.PING:
            return framing.encode_frame(
                framing.PONG, frame.src, frame.dst, frame.seq
            )
        if frame.kind == framing.DATA:
            return framing.encode_frame(
                framing.ACK, frame.src, frame.dst, frame.seq, frame.payload
            )
        return framing.encode_frame(
            framing.NAK, frame.src, frame.dst, frame.seq,
            f"unexpected {frame.kind_name} frame".encode(),
        )
