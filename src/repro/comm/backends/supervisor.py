"""Rank-lifecycle supervision for real-process backends.

The supervisor is the bookkeeping half of the robustness story: for every
rank it tracks a small state machine

::

    SPAWNED ──hello──▶ READY ──missed probe──▶ SUSPECT ──▶ DEAD
       │                 ▲          │(probe answered)        ▲
       │                 └──────────┘                        │
       └────────────────────── process exit ─────────────────┘

and classifies the terminal states into the existing
:class:`~repro.resilience.errors.CommFault` taxonomy:

* a rank whose OS process **exited** (clean exit, SIGKILL, crash) is DEAD
  and classifies as :class:`RankDeadError`;
* a rank that is alive but **unresponsive** (SIGSTOP, livelock) accumulates
  missed heartbeat probes as SUSPECT; once ``fence_after`` consecutive
  probes are missed the supervisor *fences* it — SIGKILLs the stuck process
  so it cannot wake up mid-recovery and corrupt the rebuilt world — and the
  rank is DEAD;
* a SUSPECT rank that has not yet exhausted its miss budget classifies as
  :class:`MessageTimeout`, so bounded stalls stay retryable.

Probing is pull-based: liveness is checked on demand (at startup, and
whenever a transfer times out), never from a background thread, so runs
stay deterministic.  Worker command rounds (:mod:`repro.comm.compute`)
feed the same accounting without extra probes: every successful command
response calls :meth:`RankSupervisor.record_ready` (a free heartbeat —
with worker-resident compute the ranks answer many times per iteration),
and a round that times out classifies through the supervisor exactly
like a stalled transfer.  Every transition emits a ``comm.backend.*``
trace event (``docs/observability.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.resilience.errors import CommFault, MessageTimeout, RankDeadError

#: lifecycle states, in escalation order
SPAWNED = "spawned"
READY = "ready"
SUSPECT = "suspect"
DEAD = "dead"

RANK_STATES = (SPAWNED, READY, SUSPECT, DEAD)


@dataclass(frozen=True)
class HeartbeatPolicy:
    """Supervision timing knobs (the table in ``docs/robustness.md``).

    ``poll_interval`` is the worker's event-loop granularity — the upper
    bound on how late a healthy worker answers a probe.  ``probe_timeout``
    is how long the supervisor waits for a liveness reply before recording
    a miss.  ``fence_after`` consecutive misses escalate SUSPECT → DEAD by
    fencing (SIGKILL) the unresponsive process; ``startup_timeout`` bounds
    the spawn → HELLO handshake.
    """

    poll_interval: float = 0.05
    probe_timeout: float = 0.25
    fence_after: int = 3
    startup_timeout: float = 15.0

    def __post_init__(self) -> None:
        if self.poll_interval <= 0 or self.probe_timeout <= 0:
            raise ValueError("heartbeat intervals must be > 0")
        if self.fence_after < 1:
            raise ValueError("fence_after must be >= 1")
        if self.startup_timeout <= 0:
            raise ValueError("startup_timeout must be > 0")


@dataclass
class RankRecord:
    """One rank's supervision state."""

    rank: int
    state: str = SPAWNED
    pid: int | None = None
    misses: int = 0
    exitcode: int | None = None
    fenced: bool = False

    def as_dict(self) -> dict[str, object]:
        return {
            "rank": self.rank,
            "state": self.state,
            "pid": self.pid,
            "misses": self.misses,
            "exitcode": self.exitcode,
            "fenced": self.fenced,
        }


class RankSupervisor:
    """Tracks per-rank lifecycle state and classifies failures.

    The supervisor is transport-agnostic: the owning backend reports
    observations (``record_*``) and asks two questions — *should this rank
    be fenced?* (:meth:`should_fence`) and *what fault describes it?*
    (:meth:`classify`).  The backend performs the actual SIGKILL, because
    only it holds the process handles.
    """

    def __init__(self, size: int, policy: HeartbeatPolicy | None = None) -> None:
        if size < 1:
            raise ValueError("supervisor size must be >= 1")
        self.policy = policy or HeartbeatPolicy()
        self.records = [RankRecord(rank=r) for r in range(size)]

    # -- observations ------------------------------------------------------

    def record_spawn(self, rank: int, pid: int | None) -> None:
        rec = self.records[rank]
        rec.pid = pid
        rec.state = SPAWNED

    def record_ready(self, rank: int) -> None:
        """A HELLO (startup) or probe reply arrived: the rank is healthy."""
        rec = self.records[rank]
        if rec.state == DEAD:
            return  # death is terminal; late replies from fenced ranks are noise
        if rec.state == SUSPECT:
            obs.event("comm.backend.recovered", rank=rank, misses=rec.misses)
        rec.state = READY
        rec.misses = 0

    def record_miss(self, rank: int) -> str:
        """A probe went unanswered; returns the rank's new state."""
        rec = self.records[rank]
        if rec.state == DEAD:
            return DEAD
        rec.misses += 1
        rec.state = SUSPECT
        obs.event(
            "comm.backend.heartbeat_miss", rank=rank, misses=rec.misses,
            fence_after=self.policy.fence_after,
        )
        return rec.state

    def record_exit(self, rank: int, exitcode: int | None) -> None:
        """The rank's OS process is gone (exit, signal, or fencing)."""
        rec = self.records[rank]
        if rec.state == DEAD:
            return
        rec.state = DEAD
        rec.exitcode = exitcode
        obs.event(
            "comm.backend.rank_exit", rank=rank, exitcode=exitcode,
            fenced=rec.fenced,
        )

    def record_fenced(self, rank: int) -> None:
        """The backend SIGKILLed an unresponsive rank on our advice.

        Idempotent: fencing an already-fenced (or already-DEAD) rank is a
        no-op — concurrent recovery paths may both decide to fence, and the
        second SIGKILL against a dead pid must not double-count or re-emit.
        """
        rec = self.records[rank]
        if rec.fenced or rec.state == DEAD:
            return
        rec.fenced = True
        obs.event("comm.backend.fenced", rank=rank, misses=rec.misses)

    # -- decisions ---------------------------------------------------------

    def should_fence(self, rank: int) -> bool:
        """True when the rank's miss budget is exhausted and it still lives."""
        rec = self.records[rank]
        return (
            rec.state == SUSPECT
            and not rec.fenced
            and rec.misses >= self.policy.fence_after
        )

    def state(self, rank: int) -> str:
        return self.records[rank].state

    def is_dead(self, rank: int) -> bool:
        return self.records[rank].state == DEAD

    def dead_ranks(self) -> list[int]:
        return [rec.rank for rec in self.records if rec.state == DEAD]

    def classify(self, rank: int, **context) -> CommFault:
        """The typed fault for ``rank``'s current state.

        DEAD → :class:`RankDeadError` (process-level, triggers absorb
        recovery); anything else → :class:`MessageTimeout` (message-level,
        stays retryable).  Emits ``comm.backend.classified``.
        """
        rec = self.records[rank]
        if rec.state == DEAD:
            fault: CommFault = RankDeadError(
                f"rank {rank} process is dead"
                + (" (fenced after missed heartbeats)" if rec.fenced else
                   f" (exitcode {rec.exitcode})"),
                rank=rank, exitcode=rec.exitcode, fenced=rec.fenced,
                **context,
            )
        else:
            fault = MessageTimeout(
                f"rank {rank} is unresponsive ({rec.misses} missed "
                f"heartbeat(s), state {rec.state})",
                rank=rank, misses=rec.misses, **context,
            )
        obs.event(
            "comm.backend.classified", rank=rank, state=rec.state,
            fault=type(fault).__name__,
        )
        return fault

    def census(self) -> list[dict[str, object]]:
        """Per-rank state snapshot (diagnostics / tests)."""
        return [rec.as_dict() for rec in self.records]
