"""Communication pattern recognition.

Before any parallel matvec can run, each subdomain must know which of its
owned interface values its neighbors need (sends) and where incoming external
interface values land in its ghost buffer (receives).  Diffpack's parallel
toolbox calls this "communication pattern recognition"; here the pattern is a
static object built once from the partition and reused by every exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro import faults, obs
from repro.comm.communicator import Communicator


@dataclass(frozen=True)
class ExchangeSpec:
    """One directed rank-to-rank transfer of a ghost exchange.

    ``send_local`` indexes the *sender's* owned array; ``recv_ghost`` indexes
    the *receiver's* ghost array.  Both sides list the same global points in
    the same order.
    """

    src: int
    dst: int
    send_local: np.ndarray
    recv_ghost: np.ndarray

    @property
    def count(self) -> int:
        return len(self.send_local)

    @cached_property
    def max_send(self) -> int:
        """Largest owned index this transfer reads (-1 when empty)."""
        return int(self.send_local.max()) if len(self.send_local) else -1

    @cached_property
    def max_recv(self) -> int:
        """Largest ghost index this transfer writes (-1 when empty)."""
        return int(self.recv_ghost.max()) if len(self.recv_ghost) else -1


@dataclass
class CommunicationPattern:
    """All transfers of one ghost exchange, plus cached per-rank statistics."""

    num_ranks: int
    transfers: list[ExchangeSpec]
    _msgs_per_rank: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _bytes_per_rank: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        msgs = np.zeros(self.num_ranks)
        nbytes = np.zeros(self.num_ranks)
        for t in self.transfers:
            # charge both endpoints: the sender posts the message, the
            # receiver waits for it (symmetric cost in a latency/bw model)
            msgs[t.src] += 1
            msgs[t.dst] += 1
            nbytes[t.src] += 8 * t.count
            nbytes[t.dst] += 8 * t.count
        self._msgs_per_rank = msgs
        self._bytes_per_rank = nbytes

    @property
    def msgs_per_rank(self) -> np.ndarray:
        return self._msgs_per_rank

    @property
    def bytes_per_rank(self) -> np.ndarray:
        return self._bytes_per_rank

    def neighbors_of(self, rank: int) -> list[int]:
        """Ranks that ``rank`` exchanges data with."""
        out = set()
        for t in self.transfers:
            if t.src == rank:
                out.add(t.dst)
            elif t.dst == rank:
                out.add(t.src)
        return sorted(out)

    def max_neighbor_count(self) -> int:
        return max(
            (len(self.neighbors_of(r)) for r in range(self.num_ranks)), default=0
        )

    def exchange(
        self,
        comm: Communicator,
        owned: list[np.ndarray],
        ghost: list[np.ndarray],
    ) -> None:
        """Execute the ghost exchange in place and charge its cost.

        ``owned[r]`` and ``ghost[r]`` are rank r's owned and ghost value
        arrays; after the call every ghost slot holds the owner's current
        value.  Mismatched buffers raise a clear ``ValueError`` naming the
        offending rank and transfer instead of an opaque IndexError.
        """
        if len(owned) != self.num_ranks or len(ghost) != self.num_ranks:
            raise ValueError(
                f"ghost exchange over {self.num_ranks} ranks needs one owned "
                f"and one ghost array per rank, got {len(owned)} owned / "
                f"{len(ghost)} ghost"
            )
        # hot path: skip even null-span construction when tracing is off
        if obs.enabled():
            with obs.span("comm.exchange", transfers=len(self.transfers)):
                self._exchange(comm, owned, ghost)
        else:
            self._exchange(comm, owned, ghost)

    def _exchange(
        self,
        comm: Communicator,
        owned: list[np.ndarray],
        ghost: list[np.ndarray],
    ) -> None:
        plan = faults.active()
        for t in self.transfers:
            if len(ghost[t.dst]) <= t.max_recv or len(owned[t.src]) <= t.max_send:
                raise ValueError(
                    f"ghost exchange {t.src}->{t.dst}: transfer targets ghost "
                    f"index {t.max_recv} / owned index {t.max_send}, but rank "
                    f"{t.dst} has {len(ghost[t.dst])} ghost slots and rank "
                    f"{t.src} has {len(owned[t.src])} owned values"
                )
            if plan is not None:
                action, value = plan.transfer_action(t.src, t.dst)
                if action == "drop":
                    continue  # ghost slots keep whatever (stale) values they had
                ghost[t.dst][t.recv_ghost] = owned[t.src][t.send_local]
                if action == "corrupt":
                    ghost[t.dst][t.recv_ghost] = np.nan
                elif action == "scale":
                    ghost[t.dst][t.recv_ghost] *= value
                continue
            ghost[t.dst][t.recv_ghost] = owned[t.src][t.send_local]
        comm.ledger.add_phase(
            0.0, msgs_per_rank=self._msgs_per_rank, bytes_per_rank=self._bytes_per_rank
        )
