"""Communication pattern recognition.

Before any parallel matvec can run, each subdomain must know which of its
owned interface values its neighbors need (sends) and where incoming external
interface values land in its ghost buffer (receives).  Diffpack's parallel
toolbox calls this "communication pattern recognition"; here the pattern is a
static object built once from the partition and reused by every exchange.

Every transfer travels inside an **integrity envelope**: a per-(src, dst)
sequence number plus a CRC-32 payload checksum.  Under fault injection the
receiver validates the envelope and a failed delivery (drop, corruption,
dead peer) is retransmitted under the communicator's bounded
:class:`~repro.comm.communicator.RetryPolicy`; each failed attempt charges
its timeout window to the cost ledger and emits a ``resilience.comm.retry``
trace event.  Exhausting the budget raises a typed
:class:`~repro.resilience.errors.CommFault` (``docs/robustness.md``).
Without an active fault plan nothing can be lost or corrupted in a simulated
exchange, so the checksum computation is elided from the clean hot path.

With worker-resident compute active (multiprocess backend,
:mod:`repro.comm.compute`), the values an exchange delivers are exactly
what the next ``MATVEC_GHOSTS`` worker round ships back out: the driver
gathers interface ghosts here, then forwards only those ghosts — never
whole vectors — to the rank processes.  Worker command rounds share this
module's failure model: the same fault-plan hook, the same retry
classification, the same typed faults (``docs/algorithms.md`` §8).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro import faults, obs
from repro.comm.communicator import Communicator
from repro.resilience.errors import MessageCorruption, MessageTimeout, RankDeadError


@dataclass(frozen=True)
class ExchangeSpec:
    """One directed rank-to-rank transfer of a ghost exchange.

    ``send_local`` indexes the *sender's* owned array; ``recv_ghost`` indexes
    the *receiver's* ghost array.  Both sides list the same global points in
    the same order.
    """

    src: int
    dst: int
    send_local: np.ndarray
    recv_ghost: np.ndarray

    @property
    def count(self) -> int:
        return len(self.send_local)

    @cached_property
    def max_send(self) -> int:
        """Largest owned index this transfer reads (-1 when empty)."""
        return int(self.send_local.max()) if len(self.send_local) else -1

    @cached_property
    def max_recv(self) -> int:
        """Largest ghost index this transfer writes (-1 when empty)."""
        return int(self.recv_ghost.max()) if len(self.recv_ghost) else -1


@dataclass
class CommunicationPattern:
    """All transfers of one ghost exchange, plus cached per-rank statistics."""

    num_ranks: int
    transfers: list[ExchangeSpec]
    _msgs_per_rank: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _bytes_per_rank: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        msgs = np.zeros(self.num_ranks)
        nbytes = np.zeros(self.num_ranks)
        for t in self.transfers:
            # charge both endpoints: the sender posts the message, the
            # receiver waits for it (symmetric cost in a latency/bw model)
            msgs[t.src] += 1
            msgs[t.dst] += 1
            nbytes[t.src] += 8 * t.count
            nbytes[t.dst] += 8 * t.count
        self._msgs_per_rank = msgs
        self._bytes_per_rank = nbytes

    @property
    def msgs_per_rank(self) -> np.ndarray:
        return self._msgs_per_rank

    @property
    def bytes_per_rank(self) -> np.ndarray:
        return self._bytes_per_rank

    def neighbors_of(self, rank: int) -> list[int]:
        """Ranks that ``rank`` exchanges data with."""
        out = set()
        for t in self.transfers:
            if t.src == rank:
                out.add(t.dst)
            elif t.dst == rank:
                out.add(t.src)
        return sorted(out)

    def max_neighbor_count(self) -> int:
        return max(
            (len(self.neighbors_of(r)) for r in range(self.num_ranks)), default=0
        )

    def exchange(
        self,
        comm: Communicator,
        owned: list[np.ndarray],
        ghost: list[np.ndarray],
    ) -> None:
        """Execute the ghost exchange in place and charge its cost.

        ``owned[r]`` and ``ghost[r]`` are rank r's owned and ghost value
        arrays; after the call every ghost slot holds the owner's current
        value.  Mismatched buffers raise a clear ``ValueError`` naming the
        offending rank and transfer instead of an opaque IndexError.
        """
        if len(owned) != self.num_ranks or len(ghost) != self.num_ranks:
            raise ValueError(
                f"ghost exchange over {self.num_ranks} ranks needs one owned "
                f"and one ghost array per rank, got {len(owned)} owned / "
                f"{len(ghost)} ghost"
            )
        # hot path: skip even null-span construction when tracing is off
        if obs.enabled():
            with obs.span("comm.exchange", transfers=len(self.transfers)):
                self._exchange(comm, owned, ghost)
        else:
            self._exchange(comm, owned, ghost)

    def _exchange(
        self,
        comm: Communicator,
        owned: list[np.ndarray],
        ghost: list[np.ndarray],
    ) -> None:
        plan = faults.active()
        backend = comm.backend
        if plan is not None:
            plan.exchange_begin(backend=backend)
        comm.comm_stats.messages += len(self.transfers)
        for t in self.transfers:
            if len(ghost[t.dst]) <= t.max_recv or len(owned[t.src]) <= t.max_send:
                raise ValueError(
                    f"ghost exchange {t.src}->{t.dst}: transfer targets ghost "
                    f"index {t.max_recv} / owned index {t.max_send}, but rank "
                    f"{t.dst} has {len(ghost[t.dst])} ghost slots and rank "
                    f"{t.src} has {len(owned[t.src])} owned values"
                )
            if plan is not None:
                # legacy silent kinds: corruption past the envelope — the
                # checksum has already validated, detection falls to the
                # numerical guards downstream
                action, value = plan.transfer_action(t.src, t.dst)
                if action == "drop":
                    continue  # ghost slots keep whatever (stale) values they had
                if action != "ok":
                    ghost[t.dst][t.recv_ghost] = owned[t.src][t.send_local]
                    if action == "corrupt":
                        ghost[t.dst][t.recv_ghost] = np.nan
                    else:  # "scale"
                        ghost[t.dst][t.recv_ghost] *= value
                    continue
                if backend.is_real:
                    self._deliver_backend(comm, plan, t, owned, ghost)
                else:
                    self._deliver_envelope(comm, plan, t, owned, ghost)
                continue
            if backend.is_real:
                self._deliver_backend(comm, None, t, owned, ghost)
                continue
            ghost[t.dst][t.recv_ghost] = owned[t.src][t.send_local]
        comm.ledger.add_phase(
            0.0, msgs_per_rank=self._msgs_per_rank, bytes_per_rank=self._bytes_per_rank
        )

    def _deliver_envelope(
        self,
        comm: Communicator,
        plan,
        t: ExchangeSpec,
        owned: list[np.ndarray],
        ghost: list[np.ndarray],
    ) -> None:
        """Deliver one transfer through the integrity envelope.

        Sequence number + CRC-32 checksum, bounded retransmission under
        ``comm.retry_policy``.  Failed attempts charge their timeout window
        (and the retransmission's messages/bytes) to the ledger; exhausting
        the budget raises the matching :class:`CommFault`.
        """
        policy = comm.retry_policy
        stats = comm.comm_stats
        seq = comm.next_seq(t.src, t.dst)
        payload = owned[t.src][t.send_local]
        checksum = zlib.crc32(payload.tobytes())
        delay = 0.0
        retransmits = 0
        last_reason = "timeout"
        for attempt in range(policy.max_retries + 1):
            if attempt:
                stats.retries += 1
                retransmits += 1
            dead = plan.dead_ranks.intersection((t.src, t.dst))
            if dead:
                # no ack will ever come: the receiver burns the full
                # timeout window on every attempt
                last_reason = "timeout"
                stats.timeouts += 1
                delay += policy.wait(attempt)
                obs.event(
                    "resilience.comm.retry", src=t.src, dst=t.dst, seq=seq,
                    attempt=attempt, reason="timeout",
                )
                continue
            action = plan.delivery_action(t.src, t.dst, attempt)
            if action == "drop":
                last_reason = "timeout"
                stats.timeouts += 1
                delay += policy.wait(attempt)
                obs.event(
                    "resilience.comm.retry", src=t.src, dst=t.dst, seq=seq,
                    attempt=attempt, reason="timeout",
                )
                continue
            if action == "corrupt":
                # the payload arrived, but its CRC does not match the
                # envelope's: discard and request retransmission
                wire = bytearray(payload.tobytes())
                if wire:
                    wire[0] ^= 0xFF  # one flipped bit is enough for CRC-32
                corrupted = zlib.crc32(bytes(wire))
                last_reason = "checksum"
                stats.checksum_failures += 1
                obs.event(
                    "resilience.comm.retry", src=t.src, dst=t.dst, seq=seq,
                    attempt=attempt, reason="checksum",
                    expected=checksum, got=corrupted,
                )
                continue
            lateness = plan.straggler_delay(t.src, t.dst)
            if lateness > 0.0:
                # late but intact: counted apart from retries so traces can
                # tell a slow link from a lossy one
                stats.straggler_waits += 1
                delay += lateness
            ghost[t.dst][t.recv_ghost] = payload
            self._charge_recovery(comm, t, retransmits, delay)
            return
        self._charge_recovery(comm, t, retransmits, delay)
        dead = plan.dead_ranks.intersection((t.src, t.dst))
        if dead:
            rank = min(dead)
            stats.rank_dead += 1
            obs.event("resilience.comm.rank_dead", rank=rank, src=t.src, dst=t.dst, seq=seq)
            raise RankDeadError(
                f"rank {rank} stopped responding: transfer {t.src}->{t.dst} "
                f"timed out {policy.max_retries + 1} times",
                rank=rank, src=t.src, dst=t.dst, seq=seq,
                attempts=policy.max_retries + 1,
            )
        cls = MessageCorruption if last_reason == "checksum" else MessageTimeout
        obs.event(
            "resilience.comm.give_up", src=t.src, dst=t.dst, seq=seq,
            reason=last_reason,
        )
        raise cls(
            f"transfer {t.src}->{t.dst} failed {last_reason} validation "
            f"{policy.max_retries + 1} times",
            src=t.src, dst=t.dst, seq=seq, attempts=policy.max_retries + 1,
        )

    def _deliver_backend(
        self,
        comm: Communicator,
        plan,
        t: ExchangeSpec,
        owned: list[np.ndarray],
        ghost: list[np.ndarray],
    ) -> None:
        """Deliver one transfer over a real execution-backend transport.

        The payload travels as a :mod:`~repro.comm.backends.framing` DATA
        frame to the destination rank's process, which validates seq +
        CRC-32 and echoes it back as an ACK; the ghost slots are written
        from the *response* payload, so the bytes provably survived the
        round trip.  Transport timeouts feed the backend's supervisor
        (missed-heartbeat accounting, fencing); a confirmed-dead rank
        raises the supervisor's classification
        (:class:`~repro.resilience.errors.RankDeadError`).  Injected
        drops/corruption operate on the real wire bytes.
        """
        # deferred import: repro.comm.backends.base imports this package
        from repro.comm.backends import framing
        from repro.comm.backends.base import TransportBroken, TransportTimeout

        backend = comm.backend
        policy = comm.retry_policy
        stats = comm.comm_stats
        seq = comm.next_seq(t.src, t.dst)
        payload = owned[t.src][t.send_local]
        raw = framing.encode_frame(
            framing.DATA, t.src, t.dst, seq, payload.tobytes()
        )
        delay = 0.0
        retransmits = 0
        last_reason = "timeout"
        for attempt in range(policy.max_retries + 1):
            if attempt:
                stats.retries += 1
                retransmits += 1
            wire = raw
            if plan is not None and plan.dead_ranks.intersection((t.src, t.dst)):
                # simulated rank-dead kinds: the peer process is healthy but
                # plays dead, so every attempt burns its full window
                last_reason = "timeout"
                stats.timeouts += 1
                delay += policy.wait(attempt)
                obs.event(
                    "resilience.comm.retry", src=t.src, dst=t.dst, seq=seq,
                    attempt=attempt, reason="timeout", backend=backend.name,
                )
                continue
            if plan is not None:
                action = plan.delivery_action(t.src, t.dst, attempt)
                if action == "drop":
                    # lost on the wire: nothing to send, the window burns
                    last_reason = "timeout"
                    stats.timeouts += 1
                    delay += policy.wait(attempt)
                    obs.event(
                        "resilience.comm.retry", src=t.src, dst=t.dst,
                        seq=seq, attempt=attempt, reason="timeout",
                        backend=backend.name,
                    )
                    continue
                if action == "corrupt":
                    # flip one payload bit in the real frame; the receiving
                    # process detects the CRC mismatch and NAKs
                    garbled = bytearray(raw)
                    garbled[-1] ^= 0xFF
                    wire = bytes(garbled)
            timeout = policy.wait(attempt)
            try:
                resp = framing.decode_frame(
                    backend.request(t.dst, wire, timeout)
                )
            except TransportTimeout:
                last_reason = "timeout"
                stats.timeouts += 1
                delay += timeout
                state = backend.handle_timeout(t.dst)
                obs.event(
                    "resilience.comm.retry", src=t.src, dst=t.dst, seq=seq,
                    attempt=attempt, reason="timeout",
                    backend=backend.name, peer_state=state,
                )
                continue
            except TransportBroken:
                # the peer process is confirmed gone — no point burning
                # the remaining retry windows on a corpse
                break
            except MessageCorruption:
                # a garbled response frame is a delivery fault like any
                # other: count it and retransmit
                last_reason = "checksum"
                stats.checksum_failures += 1
                obs.event(
                    "resilience.comm.retry", src=t.src, dst=t.dst, seq=seq,
                    attempt=attempt, reason="checksum", backend=backend.name,
                )
                continue
            if resp.kind == framing.NAK:
                reason = resp.payload.decode(errors="replace")
                last_reason = "checksum"
                stats.checksum_failures += 1
                obs.event(
                    "resilience.comm.retry", src=t.src, dst=t.dst, seq=seq,
                    attempt=attempt, reason="checksum",
                    backend=backend.name, nak=reason,
                )
                continue
            if plan is not None:
                lateness = plan.straggler_delay(t.src, t.dst)
                if lateness > 0.0:
                    stats.straggler_waits += 1
                    delay += lateness
            ghost[t.dst][t.recv_ghost] = np.frombuffer(
                resp.payload, dtype=payload.dtype
            )
            self._charge_recovery(comm, t, retransmits, delay)
            return
        self._charge_recovery(comm, t, retransmits, delay)
        fault = backend.classify(t.dst, src=t.src, dst=t.dst, seq=seq)
        if isinstance(fault, RankDeadError):
            stats.rank_dead += 1
            obs.event(
                "resilience.comm.rank_dead", rank=fault.rank, src=t.src,
                dst=t.dst, seq=seq, backend=backend.name,
            )
            raise fault
        if plan is not None:
            dead = plan.dead_ranks.intersection((t.src, t.dst))
            if dead:
                rank = min(dead)
                stats.rank_dead += 1
                obs.event(
                    "resilience.comm.rank_dead", rank=rank, src=t.src,
                    dst=t.dst, seq=seq, backend=backend.name,
                )
                raise RankDeadError(
                    f"rank {rank} stopped responding: transfer "
                    f"{t.src}->{t.dst} timed out "
                    f"{policy.max_retries + 1} times",
                    rank=rank, src=t.src, dst=t.dst, seq=seq,
                    attempts=policy.max_retries + 1,
                )
        cls = MessageCorruption if last_reason == "checksum" else MessageTimeout
        obs.event(
            "resilience.comm.give_up", src=t.src, dst=t.dst, seq=seq,
            reason=last_reason, backend=backend.name,
        )
        raise cls(
            f"transfer {t.src}->{t.dst} failed {last_reason} validation "
            f"{policy.max_retries + 1} times",
            src=t.src, dst=t.dst, seq=seq, attempts=policy.max_retries + 1,
        )

    def _charge_recovery(
        self, comm: Communicator, t: ExchangeSpec, retransmits: int, delay: float
    ) -> None:
        """Charge retransmission traffic and timeout/straggler waits."""
        if retransmits:
            msgs = np.zeros(self.num_ranks)
            nbytes = np.zeros(self.num_ranks)
            msgs[[t.src, t.dst]] += retransmits
            nbytes[[t.src, t.dst]] += 8.0 * t.count * retransmits
            comm.ledger.add_phase(0.0, msgs_per_rank=msgs, bytes_per_rank=nbytes)
        if delay > 0.0:
            waits = np.zeros(self.num_ranks)
            waits[t.dst] = delay
            comm.ledger.add_delay(waits)
