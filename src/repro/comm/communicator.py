"""The simulated communicator: rank bookkeeping plus cost accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfmodel.costs import COUNT_FIELDS, CostLedger


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded timeout/retry/backoff policy of the integrity envelope.

    A transfer is attempted up to ``1 + max_retries`` times; a failed
    attempt (drop, checksum mismatch, dead peer) costs a ``timeout``-second
    wait that grows by ``backoff``× per successive retry.  Exhausting the
    budget raises a typed :class:`~repro.resilience.errors.CommFault`.
    """

    max_retries: int = 3
    timeout: float = 2e-3
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout < 0.0:
            raise ValueError("timeout must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")

    def wait(self, attempt: int) -> float:
        """The timeout window charged for failed delivery ``attempt`` (0-based)."""
        return self.timeout * self.backoff**attempt


@dataclass
class CommStats:
    """Lifetime message-level counters of one communicator.

    ``messages`` counts envelope deliveries that succeeded on the first
    try as well; the failure counters only move under fault injection.
    """

    messages: int = 0
    retries: int = 0
    timeouts: int = 0
    checksum_failures: int = 0
    rank_dead: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "messages": self.messages,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "checksum_failures": self.checksum_failures,
            "rank_dead": self.rank_dead,
        }


class Communicator:
    """A communicator over ``size`` simulated processors.

    Holds the :class:`CostLedger` that all distributed operations charge.
    ``reset_ledger`` starts a fresh accounting period (e.g. to separate the
    preconditioner setup phase from the solve phase); the counters of every
    retired ledger are folded into a running total so
    :meth:`cumulative_counts` is monotone across resets — this is what the
    observability layer diffs to attribute costs to spans.

    The communicator also owns the integrity-envelope state: a per-directed-
    pair sequence counter (:meth:`next_seq`), the :class:`RetryPolicy` the
    ghost exchange enforces, and :class:`CommStats` message counters.
    """

    def __init__(self, size: int, retry_policy: RetryPolicy | None = None) -> None:
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self.size = size
        self.ledger = CostLedger(size)
        self._retired = {f: 0.0 for f in COUNT_FIELDS}
        self.retry_policy = retry_policy or RetryPolicy()
        self.comm_stats = CommStats()
        self._seq: dict[tuple[int, int], int] = {}

    def next_seq(self, src: int, dst: int) -> int:
        """Monotone per-(src, dst) envelope sequence number (starts at 0)."""
        key = (src, dst)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        return seq

    def reset_ledger(self) -> CostLedger:
        """Replace the ledger with a fresh one; returns the old ledger."""
        old = self.ledger
        for key, value in sorted(old.counts().items()):
            self._retired[key] += value
        self.ledger = CostLedger(self.size)
        return old

    def cumulative_counts(self) -> dict[str, float]:
        """Lifetime counter totals: every retired ledger plus the live one.

        Unlike ``self.ledger.counts()`` this never decreases, so span deltas
        taken against it remain valid across ``reset_ledger`` calls.
        """
        current = self.ledger.counts()
        return {k: current[k] + self._retired[k] for k in current}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Communicator(size={self.size})"
