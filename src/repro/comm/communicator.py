"""The simulated communicator: rank bookkeeping plus cost accounting."""

from __future__ import annotations

from repro.perfmodel.costs import COUNT_FIELDS, CostLedger


class Communicator:
    """A communicator over ``size`` simulated processors.

    Holds the :class:`CostLedger` that all distributed operations charge.
    ``reset_ledger`` starts a fresh accounting period (e.g. to separate the
    preconditioner setup phase from the solve phase); the counters of every
    retired ledger are folded into a running total so
    :meth:`cumulative_counts` is monotone across resets — this is what the
    observability layer diffs to attribute costs to spans.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self.size = size
        self.ledger = CostLedger(size)
        self._retired = {f: 0.0 for f in COUNT_FIELDS}

    def reset_ledger(self) -> CostLedger:
        """Replace the ledger with a fresh one; returns the old ledger."""
        old = self.ledger
        for key, value in old.counts().items():
            self._retired[key] += value
        self.ledger = CostLedger(self.size)
        return old

    def cumulative_counts(self) -> dict[str, float]:
        """Lifetime counter totals: every retired ledger plus the live one.

        Unlike ``self.ledger.counts()`` this never decreases, so span deltas
        taken against it remain valid across ``reset_ledger`` calls.
        """
        current = self.ledger.counts()
        return {k: current[k] + self._retired[k] for k in current}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Communicator(size={self.size})"
