"""The simulated communicator: rank bookkeeping plus cost accounting."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.perfmodel.costs import COUNT_FIELDS, CostLedger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.comm.backends import ExecutionBackend


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded timeout/retry/backoff policy of the integrity envelope.

    A transfer is attempted up to ``1 + max_retries`` times; a failed
    attempt (drop, checksum mismatch, dead peer) costs a ``timeout``-second
    wait that grows by ``backoff``× per successive retry.  Exhausting the
    budget raises a typed :class:`~repro.resilience.errors.CommFault`.
    """

    max_retries: int = 3
    timeout: float = 2e-3
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout < 0.0:
            raise ValueError("timeout must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")

    def wait(self, attempt: int) -> float:
        """The timeout window charged for failed delivery ``attempt`` (0-based)."""
        return self.timeout * self.backoff**attempt


@dataclass
class CommStats:
    """Lifetime message-level counters of one communicator.

    ``messages`` counts envelope deliveries that succeeded on the first
    try as well; the failure counters only move under fault injection.
    ``straggler_waits`` counts deliveries that arrived *late but intact*
    (straggler lateness), which are otherwise indistinguishable from
    ``retries`` in the aggregate cost model.
    """

    messages: int = 0
    retries: int = 0
    timeouts: int = 0
    checksum_failures: int = 0
    rank_dead: int = 0
    straggler_waits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "messages": self.messages,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "checksum_failures": self.checksum_failures,
            "rank_dead": self.rank_dead,
            "straggler_waits": self.straggler_waits,
        }


class Communicator:
    """A communicator over ``size`` processors.

    Holds the :class:`CostLedger` that all distributed operations charge.
    ``reset_ledger`` starts a fresh accounting period (e.g. to separate the
    preconditioner setup phase from the solve phase); the counters of every
    retired ledger are folded into a running total so
    :meth:`cumulative_counts` is monotone across resets — this is what the
    observability layer diffs to attribute costs to spans.

    The communicator also owns the integrity-envelope state: a per-directed-
    pair sequence counter (:meth:`next_seq`), the :class:`RetryPolicy` the
    ghost exchange enforces, and :class:`CommStats` message counters.

    *How* the ranks execute is delegated to an
    :class:`~repro.comm.backends.ExecutionBackend` — ``inprocess`` (the
    default: simulated ranks, bit-identical to the historical behavior) or
    ``multiprocess`` (ranks as supervised OS processes).  ``backend`` may
    be a name, an instance, or None (which consults the
    ``REPRO_COMM_BACKEND`` environment variable).  Communicators that
    construct their own backend own it and shut it down in :meth:`close`.
    """

    def __init__(
        self,
        size: int,
        retry_policy: RetryPolicy | None = None,
        backend: "str | ExecutionBackend | None" = None,
    ) -> None:
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self.size = size
        self.ledger = CostLedger(size)
        self._retired = {f: 0.0 for f in COUNT_FIELDS}
        # deferred import: backends import RetryPolicy from this module
        from repro.comm.backends import resolve_backend

        self.backend, self._owns_backend = resolve_backend(backend, size)
        self.retry_policy = retry_policy or self.backend.default_retry_policy()
        self.comm_stats = CommStats()
        self._seq: dict[tuple[int, int], int] = {}
        self._closed = False
        self._close_lock = threading.Lock()

    def next_seq(self, src: int, dst: int) -> int:
        """Monotone per-(src, dst) envelope sequence number (starts at 0)."""
        key = (src, dst)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        return seq

    def adopt_seq(self, prev: "Communicator", dead_rank: int) -> None:
        """Carry envelope sequence state across an ``absorb_rank`` recovery.

        ``prev`` is the pre-recovery communicator and ``dead_rank`` the
        absorbed rank.  Edges touching the dead rank are dropped (their
        counters must NOT survive — a stale seq on a reused edge would make
        the receiver reject fresh envelopes as replays), and surviving
        ranks above ``dead_rank`` shift down by one, exactly mirroring the
        rank remap of :func:`~repro.distributed.recovery.absorb_rank`.
        """
        if self.size != prev.size - 1:
            raise ValueError(
                f"cannot adopt seq state from a size-{prev.size} communicator "
                f"into a size-{self.size} one (expected {self.size + 1})"
            )

        def remap(rank: int) -> int:
            return rank - 1 if rank > dead_rank else rank

        for (src, dst), seq in sorted(prev._seq.items()):
            if src == dead_rank or dst == dead_rank:
                continue
            self._seq[(remap(src), remap(dst))] = seq

    def close(self) -> None:
        """Shut down the execution backend (idempotent, owner-only).

        Safe under concurrent callers: exactly one close wins the flag and
        performs the backend shutdown; every other call — same thread or
        racing threads (a drain path and a finalizer, say) — is a no-op.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if self._owns_backend:
            self.backend.shutdown()

    def reset_ledger(self) -> CostLedger:
        """Replace the ledger with a fresh one; returns the old ledger."""
        old = self.ledger
        for key, value in sorted(old.counts().items()):
            self._retired[key] += value
        self.ledger = CostLedger(self.size)
        return old

    def cumulative_counts(self) -> dict[str, float]:
        """Lifetime counter totals: every retired ledger plus the live one.

        Unlike ``self.ledger.counts()`` this never decreases, so span deltas
        taken against it remain valid across ``reset_ledger`` calls.
        """
        current = self.ledger.counts()
        return {k: current[k] + self._retired[k] for k in current}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Communicator(size={self.size}, backend={self.backend.name!r})"
        )
