"""The simulated communicator: rank bookkeeping plus cost accounting."""

from __future__ import annotations

from repro.perfmodel.costs import CostLedger


class Communicator:
    """A communicator over ``size`` simulated processors.

    Holds the :class:`CostLedger` that all distributed operations charge.
    ``reset_ledger`` starts a fresh accounting period (e.g. to separate the
    preconditioner setup phase from the solve phase).
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self.size = size
        self.ledger = CostLedger(size)

    def reset_ledger(self) -> CostLedger:
        """Replace the ledger with a fresh one; returns the old ledger."""
        old = self.ledger
        self.ledger = CostLedger(self.size)
        return old

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Communicator(size={self.size})"
