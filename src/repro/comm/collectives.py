"""Collective operations with cost accounting."""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.comm.communicator import Communicator


def allreduce_sum(comm: Communicator, local_values) -> float:
    """Global sum of one scalar contribution per rank (MPI_Allreduce).

    ``local_values`` is a length-``size`` sequence of per-rank partial values.
    """
    vals = np.asarray(local_values, dtype=np.float64)
    if vals.shape != (comm.size,):
        raise ValueError(f"expected {comm.size} partial values, got {vals.shape}")
    comm.ledger.add_allreduce(nbytes=8)
    obs.event("comm.allreduce", bytes=8)
    return float(vals.sum())


def allgather_concat(comm: Communicator, locals_: list[np.ndarray]) -> np.ndarray:
    """Concatenate per-rank arrays on every rank (MPI_Allgatherv).

    Charged as an allreduce of the total payload (ring/bruck-style cost).
    """
    if len(locals_) != comm.size:
        raise ValueError(f"expected {comm.size} local arrays")
    total_bytes = 8 * sum(len(a) for a in locals_)
    comm.ledger.add_allreduce(nbytes=total_bytes)
    obs.event("comm.allgather", bytes=total_bytes)
    return np.concatenate(locals_) if locals_ else np.empty(0)
