"""Cost accounting for simulated parallel execution.

Execution is modeled as a sequence of *phases* separated by synchronization
points (the natural structure of a Krylov iteration: matvec → dots → ...).
A phase's duration is governed by its slowest rank, so for each phase we
accumulate the per-rank maxima of flops, message counts and message bytes:

    T = Σ_phases max_r (flops_r/rate + msgs_r·latency + bytes_r/bandwidth)
      ≤ Σ_phases [max_r flops_r / rate + max_r msgs_r · latency + ...]

We store the right-hand side's machine-independent aggregates (``crit_*``)
so one solve can be re-priced on any machine, plus grand totals for
efficiency statistics.  Allreduce synchronizations (inner products) are
counted separately since their cost depends on P logarithmically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: the scalar counters a ledger accumulates, in canonical order — the
#: observability layer snapshots and diffs exactly these fields
COUNT_FIELDS = (
    "crit_flops",
    "crit_msgs",
    "crit_bytes",
    "allreduces",
    "allreduce_bytes",
    "total_flops",
    "total_msgs",
    "total_bytes",
    "phases",
    "delay_seconds",
)


@dataclass
class CostLedger:
    """Accumulated per-solve cost model state for ``num_ranks`` processors."""

    num_ranks: int
    crit_flops: float = 0.0
    crit_msgs: float = 0.0
    crit_bytes: float = 0.0
    allreduces: int = 0
    allreduce_bytes: float = 0.0
    total_flops: float = 0.0
    total_msgs: float = 0.0
    total_bytes: float = 0.0
    phases: int = 0
    #: machine-independent injected wall-clock seconds on the critical path —
    #: straggler delays and retry-timeout windows from the communication
    #: fault layer land here (a phase waits for its slowest rank, so the
    #: per-phase maximum over ranks is what accumulates)
    delay_seconds: float = 0.0
    per_rank_flops: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: per-rank resident working-set bytes (local matrix + factors + vectors);
    #: optional — set by the driver so cache-aware machines (paper Sec. 4.3's
    #: "subdomain fits in cache" threshold) can boost the flop rate
    working_set_bytes: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if self.per_rank_flops is None:
            self.per_rank_flops = np.zeros(self.num_ranks)

    def add_phase(
        self,
        flops_per_rank: np.ndarray | float,
        msgs_per_rank: np.ndarray | float = 0.0,
        bytes_per_rank: np.ndarray | float = 0.0,
    ) -> None:
        """Record one bulk-synchronous phase.

        Scalar arguments mean "the same on every rank".
        """
        f = np.broadcast_to(np.asarray(flops_per_rank, dtype=np.float64), (self.num_ranks,))
        m = np.broadcast_to(np.asarray(msgs_per_rank, dtype=np.float64), (self.num_ranks,))
        b = np.broadcast_to(np.asarray(bytes_per_rank, dtype=np.float64), (self.num_ranks,))
        self.crit_flops += float(f.max())
        self.crit_msgs += float(m.max())
        self.crit_bytes += float(b.max())
        self.total_flops += float(f.sum())
        self.total_msgs += float(m.sum())
        self.total_bytes += float(b.sum())
        self.per_rank_flops = self.per_rank_flops + f
        self.phases += 1

    def add_allreduce(self, nbytes: int = 8) -> None:
        """Record one allreduce synchronization (e.g. a global inner product)."""
        self.allreduces += 1
        self.allreduce_bytes += nbytes

    def add_delay(self, seconds_per_rank: np.ndarray | float) -> None:
        """Record injected wall-clock delay (straggler / retry timeout).

        The bulk-synchronous model waits for the slowest rank, so only the
        per-rank maximum enters the critical path.
        """
        d = np.broadcast_to(
            np.asarray(seconds_per_rank, dtype=np.float64), (self.num_ranks,)
        )
        self.delay_seconds += float(d.max())

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger (e.g. a setup phase) into this one."""
        if other.num_ranks != self.num_ranks:
            raise ValueError("cannot merge ledgers with different rank counts")
        self.crit_flops += other.crit_flops
        self.crit_msgs += other.crit_msgs
        self.crit_bytes += other.crit_bytes
        self.allreduces += other.allreduces
        self.allreduce_bytes += other.allreduce_bytes
        self.total_flops += other.total_flops
        self.total_msgs += other.total_msgs
        self.total_bytes += other.total_bytes
        self.phases += other.phases
        self.delay_seconds += other.delay_seconds
        self.per_rank_flops = self.per_rank_flops + other.per_rank_flops

    def counts(self) -> dict[str, float]:
        """The scalar counters as a plain dict (see :data:`COUNT_FIELDS`)."""
        return {f: float(getattr(self, f)) for f in COUNT_FIELDS}

    @property
    def load_imbalance(self) -> float:
        """max/mean of accumulated per-rank flops (1.0 = perfectly balanced)."""
        mean = self.per_rank_flops.mean()
        if mean <= 0.0:  # flop counts are non-negative, so this is the exact empty case
            return 1.0
        return float(self.per_rank_flops.max() / mean)
