"""Machine models for the paper's two platforms.

Parameters are order-of-magnitude figures for the hardware classes the paper
names (Sec. 4.2): a Pentium III 1 GHz cluster on 100 Mbit switched Ethernet,
and an SGI Origin 3800 with 600 MHz R14000 processors and a low-latency NUMA
interconnect.  The Origin model includes a *load factor*: the paper stresses
its Origin timings were polluted by a heavily loaded machine, so benches can
optionally reproduce that effect deterministically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.perfmodel.costs import CostLedger


@dataclass(frozen=True)
class Machine:
    """Latency/bandwidth/flop-rate cost model of a parallel computer."""

    name: str
    flop_rate: float  # sustained flop/s per processor on sparse kernels
    latency: float  # point-to-point message latency, seconds
    bandwidth: float  # point-to-point bandwidth, bytes/second
    load_factor: float = 1.0  # >1 models a time-shared, heavily loaded system
    #: cache modeling (paper Sec. 4.3): when the largest subdomain's working
    #: set fits in ``cache_bytes``, sparse kernels run at ``cache_speedup``
    #: times the sustained rate.  cache_bytes = 0 disables the effect.
    cache_bytes: float = 0.0
    cache_speedup: float = 1.0

    def __post_init__(self) -> None:
        if min(self.flop_rate, self.bandwidth) <= 0 or self.latency < 0:
            raise ValueError("machine parameters must be positive")
        if self.load_factor < 1.0:
            raise ValueError("load_factor must be >= 1")
        if self.cache_bytes < 0 or self.cache_speedup < 1.0:
            raise ValueError("cache parameters must be nonnegative / >= 1")

    def effective_flop_rate(self, ledger: CostLedger) -> float:
        """Flop rate accounting for the subdomain-fits-in-cache boost."""
        if (
            self.cache_bytes > 0.0
            and ledger.working_set_bytes is not None
            and float(np.max(ledger.working_set_bytes)) <= self.cache_bytes
        ):
            return self.flop_rate * self.cache_speedup
        return self.flop_rate

    def allreduce_time(self, num_ranks: int, nbytes: float = 8.0) -> float:
        """Recursive-doubling allreduce: ceil(log2 P) latency+transfer steps."""
        if num_ranks <= 1:
            return 0.0
        steps = math.ceil(math.log2(num_ranks))
        return steps * (self.latency + nbytes / self.bandwidth)

    def time(self, ledger: CostLedger) -> float:
        """Simulated parallel wall-clock seconds for a recorded solve."""
        p = ledger.num_ranks
        t = (
            ledger.crit_flops / self.effective_flop_rate(ledger)
            + ledger.crit_msgs * self.latency
            + ledger.crit_bytes / self.bandwidth
        )
        if ledger.allreduces:
            avg_bytes = ledger.allreduce_bytes / ledger.allreduces
            t += ledger.allreduces * self.allreduce_time(p, avg_bytes)
        # injected delays (stragglers, retry-timeout windows) are literal
        # wall-clock seconds, independent of the machine's load factor
        return t * self.load_factor + ledger.delay_seconds

    def speedup(self, ledger: CostLedger, serial_flops: float | None = None) -> float:
        """Speedup vs. a single processor of the same machine."""
        serial = (serial_flops if serial_flops is not None else ledger.total_flops)
        t_serial = serial / self.flop_rate
        t_par = self.time(ledger)
        return t_serial / t_par if t_par > 0 else float("inf")


# Pentium III 1 GHz, 100 Mbit switched Ethernet (MPICH-class latency).
LINUX_CLUSTER = Machine(
    name="linux-cluster",
    flop_rate=120e6,
    latency=70e-6,
    bandwidth=11e6,
)

# Same cluster with the Sec. 4.3 cache effect modeled: a Pentium III has a
# 256 KB L2; once a subdomain's working set fits, sparse kernels stop being
# memory-bound and speed up substantially.
LINUX_CLUSTER_CACHED = Machine(
    name="linux-cluster-cached",
    flop_rate=120e6,
    latency=70e-6,
    bandwidth=11e6,
    cache_bytes=256e3,
    cache_speedup=2.5,
)

# SGI Origin 3800, 600 MHz R14000, NUMAlink interconnect.  load_factor models
# the heavy time-sharing the paper reports on this machine.
ORIGIN_3800 = Machine(
    name="origin3800",
    flop_rate=350e6,
    latency=6e-6,
    bandwidth=250e6,
    load_factor=1.0,
)

ORIGIN_3800_LOADED = Machine(
    name="origin3800-loaded",
    flop_rate=350e6,
    latency=6e-6,
    bandwidth=250e6,
    load_factor=6.0,
)

_MACHINES = {
    m.name: m
    for m in (LINUX_CLUSTER, LINUX_CLUSTER_CACHED, ORIGIN_3800, ORIGIN_3800_LOADED)
}


def machine_by_name(name: str) -> Machine:
    """Look up one of the predefined machines."""
    try:
        return _MACHINES[name]
    except KeyError:
        raise KeyError(f"unknown machine {name!r}; available: {sorted(_MACHINES)}") from None
