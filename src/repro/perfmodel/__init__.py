"""Machine performance model.

The paper reports wall-clock times on two machines we do not have (a Pentium
III Linux cluster with fast Ethernet and an SGI Origin 3800).  Per DESIGN.md
§2 we *simulate* them: every distributed operation records its per-rank work
and communication into a :class:`CostLedger`; a :class:`Machine` converts the
ledger into simulated parallel wall-clock seconds.
"""

from repro.perfmodel.costs import CostLedger
from repro.perfmodel.machine import (
    LINUX_CLUSTER,
    LINUX_CLUSTER_CACHED,
    ORIGIN_3800,
    ORIGIN_3800_LOADED,
    Machine,
    machine_by_name,
)

__all__ = [
    "CostLedger",
    "Machine",
    "LINUX_CLUSTER",
    "LINUX_CLUSTER_CACHED",
    "ORIGIN_3800",
    "ORIGIN_3800_LOADED",
    "machine_by_name",
]
