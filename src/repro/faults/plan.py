"""Deterministic fault plans.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries plus counters.
Instrumented code (factorizations, the distributed matvec, the ghost
exchange) calls the plan's hooks at well-defined *opportunities*; each spec
decides per opportunity whether to fire based only on its counters and its
targeting scope — never on wall-clock time or global randomness — so a run
with the same plan, case, and seeds injects exactly the same faults.

Fault kinds and their hook points (see ``docs/robustness.md``):

``bad-pivot``
    Fired *before* the pivot floor in ILU(0)/ILUT: the pivot is zeroed, so
    it gets floored and counted — enough of them trips the
    ``breakdown_frac`` detector (:class:`FactorizationBreakdown`).
``tiny-pivot``
    Fired *after* the pivot floor: the stored pivot is replaced by
    ``value`` (default 1e-300), modeling a corrupted factor entry that the
    floor safeguard cannot see.  Applying the factor then amplifies by
    ~1e300 and the outer solve's non-finite detectors classify the run as
    ``diverged``.
``nan-kernel``
    Fired on the distributed matvec output: one entry is set to NaN, which
    the matvec guard reports as a :class:`NumericalFault`.
``ghost-corrupt`` / ``ghost-drop`` / ``ghost-scale``
    Fired per transfer of a ghost exchange: the received values are
    overwritten with NaN, left stale (the transfer is dropped), or scaled
    by ``value``.  These model corruption *past* the integrity envelope
    (e.g. memory corruption after checksum validation): they are silent,
    never retried, and detection falls to the numerical guards.
``message-drop`` / ``message-corrupt``
    Fired per *delivery attempt* of an envelope-protected transfer: the
    attempt is dropped (times out) or its payload arrives with a failing
    checksum.  The envelope detects both and retransmits with backoff, so a
    bounded spec (``count=1``) costs only a visible retry while an
    unbounded one (``count=-1``) exhausts the retry budget and raises a
    typed :class:`~repro.resilience.errors.CommFault`.
``rank-dead``
    Fired once per ghost *exchange* (``start=k`` aims at the k-th exchange
    of the run): the targeted ``rank`` stops responding, permanently.
    Every transfer touching it then times out through the full retry
    budget and the exchange raises
    :class:`~repro.resilience.errors.RankDeadError`; recovery layers call
    :meth:`FaultPlan.mark_recovered` once the dead subdomain has been
    absorbed by the survivors.
``straggler``
    Fired per transfer sent by ``rank`` (any sender when ``rank`` is
    None): the message is delivered but ``delay`` seconds late, charged to
    the :class:`~repro.perfmodel.costs.CostLedger` delay counter — slow
    ranks cost simulated time, they do not corrupt data.
``proc-kill`` / ``proc-hang``
    Fired once per ghost exchange, like ``rank-dead``, but against the
    *real* OS process behind the targeted rank: on the multiprocess
    backend the process is SIGKILLed (``proc-kill``) or SIGSTOPped
    (``proc-hang``), and detection runs through the genuine machinery —
    exit-code checks for kills, missed heartbeats plus fencing for hangs
    (``docs/robustness.md``).  On backends without real processes both
    degrade to the simulated ``rank-dead`` behavior so fault plans stay
    portable across backends.

Kind names accept ``_`` as a separator alias (``rank_dead`` == ``rank-dead``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro import obs

FAULT_KINDS = (
    "bad-pivot",
    "tiny-pivot",
    "nan-kernel",
    "ghost-corrupt",
    "ghost-drop",
    "ghost-scale",
    "message-drop",
    "message-corrupt",
    "rank-dead",
    "straggler",
    "proc-kill",
    "proc-hang",
)

#: fault kinds whose hook is the factorization pivot loop
_PIVOT_PRE = ("bad-pivot",)
_PIVOT_POST = ("tiny-pivot",)
_KERNEL = ("nan-kernel",)
_GHOST = ("ghost-corrupt", "ghost-drop", "ghost-scale")
_DELIVERY = ("message-drop", "message-corrupt")
_RANK_DEAD = ("rank-dead",)
_STRAGGLER = ("straggler",)
_PROC = ("proc-kill", "proc-hang")


@dataclass
class FaultSpec:
    """One injected fault pattern.

    ``count`` bounds how many times the spec fires (``-1`` = unlimited);
    ``start`` skips that many matching opportunities first, and ``stride``
    then fires on every ``stride``-th one — together they aim a fault at
    e.g. "the pivots of the second factorization" without the hook sites
    knowing anything about attempts.  ``target`` restricts the spec to
    fault scopes (preconditioner short names — see
    :func:`repro.faults.scope`); ``None`` matches everywhere.

    ``rank`` aims the communication kinds: the rank that dies
    (``rank-dead``, required), the slow sender (``straggler``, None = every
    sender), or an endpoint filter for ``message-drop``/``message-corrupt``
    (None = any transfer).  ``delay`` is the straggler's per-message
    lateness in seconds.
    """

    kind: str
    count: int = 1
    start: int = 0
    stride: int = 1
    target: tuple[str, ...] | None = None
    value: float = 1e-300
    rank: int | None = None
    delay: float = 5e-3

    def __post_init__(self) -> None:
        self.kind = self.kind.replace("_", "-")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; pick from {FAULT_KINDS}")
        if self.stride < 1:
            raise ValueError("stride must be >= 1")
        if self.kind in _RANK_DEAD + _PROC and self.rank is None:
            raise ValueError(f"{self.kind} needs an explicit rank to target")
        if self.delay < 0.0:
            raise ValueError("delay must be >= 0")
        if isinstance(self.target, str):
            self.target = tuple(t for t in self.target.split(",") if t)

    def matches_scope(self, scope: str | None) -> bool:
        return self.target is None or (scope is not None and scope in self.target)


@dataclass
class _SpecState:
    """Mutable firing counters of one spec within a plan."""

    spec: FaultSpec
    opportunities: int = 0
    fired: int = 0

    def should_fire(self, scope: str | None) -> bool:
        if not self.spec.matches_scope(scope):
            return False
        k = self.opportunities
        self.opportunities += 1
        if k < self.spec.start or (k - self.spec.start) % self.spec.stride:
            return False
        if self.spec.count >= 0 and self.fired >= self.spec.count:
            return False
        self.fired += 1
        return True


class FaultPlan:
    """A seeded, deterministic set of faults to inject into one run.

    Activate with :func:`repro.faults.inject`; inspect ``injected`` (a list
    of dicts, one per fired fault) afterwards to see exactly what happened.

    Thread-safety: one active plan may be consulted by several solver
    threads at once (the solve service runs a chaos plan against a whole
    worker pool).  Scope nesting is therefore *per thread* —
    ``scope_stack`` is thread-local, so one worker's ``faults.scope(...)``
    never relabels another's opportunities — while the firing counters,
    the ``injected`` log, and the RNG are shared under a single lock, so a
    bounded spec (``count=1``) fires exactly once across all threads.
    """

    def __init__(self, specs: list[FaultSpec] | FaultSpec, seed: int = 0) -> None:
        if isinstance(specs, FaultSpec):
            specs = [specs]
        self.specs = list(specs)
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.injected: list[dict] = []
        self._states = [_SpecState(s) for s in self.specs]
        self._scopes = threading.local()
        self._lock = threading.Lock()
        #: ranks confirmed dead by a fired ``rank-dead`` spec; membership is
        #: persistent until a recovery layer absorbs the subdomain and calls
        #: :meth:`mark_recovered`
        self.dead_ranks: set[int] = set()

    @property
    def scope_stack(self) -> list[str]:
        """This thread's scope-nesting stack (created on first touch)."""
        stack = getattr(self._scopes, "stack", None)
        if stack is None:
            stack = self._scopes.stack = []
        return stack

    @property
    def scope(self) -> str | None:
        stack = self.scope_stack
        return stack[-1] if stack else None

    def _fire(self, state: _SpecState, **attrs) -> None:
        record = {"kind": state.spec.kind, "scope": self.scope, **attrs}
        with self._lock:
            self.injected.append(record)
        obs.event("faults.injected", **record)

    def _firing(self, kinds: tuple[str, ...]) -> list[_SpecState]:
        """States whose spec fires at this opportunity (counters advance
        atomically, so concurrent hooks never double-spend a budget)."""
        scope = self.scope
        with self._lock:
            return [
                state for state in self._states
                if state.spec.kind in kinds and state.should_fire(scope)
            ]

    # -- hooks (called by instrumented code; must stay cheap) ----------------

    def pivot_pre(self, i: int, value: float) -> float:
        """Factorization pivot before the floor safeguard."""
        for state in self._firing(_PIVOT_PRE):
            self._fire(state, row=int(i), old=float(value))
            value = 0.0
        return value

    def pivot_post(self, i: int, value: float) -> float:
        """Factorization pivot after the floor safeguard."""
        for state in self._firing(_PIVOT_POST):
            self._fire(state, row=int(i), old=float(value))
            value = state.spec.value
        return value

    def kernel_output(self, name: str, y: np.ndarray) -> None:
        """Mutate a kernel output vector in place (distributed matvec)."""
        for state in self._firing(_KERNEL):
            if y.size == 0:
                continue
            with self._lock:
                idx = int(self.rng.integers(y.size))
            self._fire(state, kernel=name, index=idx)
            y[idx] = np.nan

    def transfer_action(self, src: int, dst: int) -> tuple[str, float]:
        """Action for one ghost-exchange transfer: ("ok"|"drop"|"corrupt"|"scale", value)."""
        for state in self._firing(_GHOST):
            kind = state.spec.kind
            self._fire(state, src=int(src), dst=int(dst))
            if kind == "ghost-drop":
                return "drop", 0.0
            if kind == "ghost-scale":
                return "scale", state.spec.value
            return "corrupt", 0.0
        return "ok", 0.0

    # -- communication-level hooks (the integrity envelope consults these) ---

    def exchange_begin(self, backend=None) -> None:
        """Called once at the start of every delivery opportunity.

        Two sites fire this hook: every ghost exchange
        (:mod:`repro.comm.pattern`) and every worker command round
        (:mod:`repro.comm.compute`) — with worker-resident compute on the
        multiprocess backend, a ``MATVEC`` or ``APPLY`` round is as real a
        chance to lose a rank as an exchange is.  The opportunity counter
        of a ``rank-dead`` spec counts these calls, so ``start=k`` kills
        the rank at the k-th opportunity of the run.

        ``backend`` is the communicator's execution backend; the process
        kinds (``proc-kill`` / ``proc-hang``) act on it when its ranks are
        real OS processes and degrade to the simulated ``rank-dead``
        behavior otherwise.
        """
        for state in self._firing(_RANK_DEAD):
            rank = int(state.spec.rank)  # type: ignore[arg-type]
            self.dead_ranks.add(rank)
            self._fire(state, rank=rank)
        for state in self._firing(_PROC):
            rank = int(state.spec.rank)  # type: ignore[arg-type]
            real = backend is not None and backend.is_real
            self._fire(state, rank=rank, degraded=not real)
            if not real:
                # no process to signal: fall back to playing dead, so the
                # same plan exercises recovery on every backend
                self.dead_ranks.add(rank)
            elif state.spec.kind == "proc-kill":
                backend.kill_rank(rank)
            else:
                backend.hang_rank(rank)

    def delivery_action(self, src: int, dst: int, attempt: int) -> str:
        """Fate of one envelope delivery attempt: "ok" | "drop" | "corrupt"."""
        scope = self.scope
        fired = None
        with self._lock:
            for state in self._states:
                spec = state.spec
                if spec.kind not in _DELIVERY:
                    continue
                if spec.rank is not None and spec.rank not in (src, dst):
                    continue
                if state.should_fire(scope):
                    fired = state
                    break
        if fired is not None:
            self._fire(fired, src=int(src), dst=int(dst), attempt=int(attempt))
            return "drop" if fired.spec.kind == "message-drop" else "corrupt"
        return "ok"

    def straggler_delay(self, src: int, dst: int) -> float:
        """Seconds a delivered transfer arrives late (0.0 = on time)."""
        scope = self.scope
        fired = []
        with self._lock:
            for state in self._states:
                spec = state.spec
                if spec.kind not in _STRAGGLER:
                    continue
                if spec.rank is not None and spec.rank != src:
                    continue
                if state.should_fire(scope):
                    fired.append(state)
        total = 0.0
        for state in fired:
            self._fire(state, src=int(src), dst=int(dst),
                       delay=state.spec.delay)
            total += state.spec.delay
        return total

    def pivot_faults_possible(self) -> bool:
        """Could a pivot-hook spec still fire in the current scope?

        Side-effect free (no opportunity is consumed).  The factor cache and
        the kernel-tier dispatcher consult this: while a ``bad-pivot`` /
        ``tiny-pivot`` spec has budget left for this scope, factorizations
        must run on the reference tier (which hosts the hooks) and must not
        be served from — or stored into — the cache.  Once the budget is
        spent, factors are clean again and caching resumes, which is what
        lets a post-fault retry skip redundant factorizations.
        """
        scope = self.scope
        with self._lock:
            for state in self._states:
                spec = state.spec
                if (
                    spec.kind in _PIVOT_PRE + _PIVOT_POST
                    and spec.matches_scope(scope)
                    and (spec.count < 0 or state.fired < spec.count)
                ):
                    return True
        return False

    def mark_recovered(self, rank: int) -> None:
        """Forget a dead rank after its subdomain was absorbed by survivors.

        The remapped world renumbers ranks, so the old identity must not
        leak into the new communicator; recovery layers call this exactly
        once per absorbed rank.
        """
        self.dead_ranks.discard(int(rank))

    def summary(self) -> dict[str, int]:
        """Fired-fault counts by kind."""
        out: dict[str, int] = {}
        for rec in self.injected:
            out[rec["kind"]] = out.get(rec["kind"], 0) + 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = ",".join(s.kind for s in self.specs)
        return f"FaultPlan([{kinds}], seed={self.seed}, fired={len(self.injected)})"
