"""Deterministic fault injection — ``repro.faults``.

The test harness for the resilience layer (``docs/robustness.md``): a
:class:`FaultPlan` injects seeded, reproducible faults at three hook points
in the solve stack —

* factorization pivots (``bad-pivot``, ``tiny-pivot``),
* the distributed matvec output (``nan-kernel``),
* the ghost exchange (``ghost-corrupt``, ``ghost-drop``, ``ghost-scale``).

Usage::

    from repro import faults
    plan = faults.FaultPlan(faults.FaultSpec("nan-kernel", count=1))
    with faults.inject(plan):
        outcome = ResilientSolver().solve(case, precond="schur1")
    print(plan.injected)   # exactly which faults fired, and where

Injection is off by default and the hooks cost one module-attribute read
when inactive.  ``inject`` also enters ``np.errstate(...="ignore")``: fault
plans *intentionally* provoke non-finite arithmetic, and detection is the
job of the resilience guards, not of numpy warnings (the test suite runs
with ``-W error::RuntimeWarning`` to keep accidental NaN arithmetic loud).

Hook sites target faults by *scope*: the driver wraps preconditioner
construction in ``faults.scope(name)``, so a spec with
``target=("schur1",)`` corrupts Schur 1's factorization but leaves the
fallback preconditioners clean.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec

_ACTIVE: FaultPlan | None = None


def active() -> FaultPlan | None:
    """The active fault plan, or None when injection is off (the default)."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the block (not reentrant)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a fault plan is already active")
    _ACTIVE = plan
    # injected faults legitimately overflow / produce NaN downstream; the
    # guards classify them, so silence numpy's warnings inside the window
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        try:
            yield plan
        finally:
            _ACTIVE = None


@contextmanager
def scope(name: str) -> Iterator[None]:
    """Label the current region as fault scope ``name`` (e.g. a
    preconditioner short name); no-op when injection is off."""
    plan = _ACTIVE
    if plan is None:
        yield
        return
    plan.scope_stack.append(name)
    try:
        yield
    finally:
        plan.scope_stack.pop()


__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "active",
    "enabled",
    "inject",
    "scope",
]
