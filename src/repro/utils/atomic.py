"""Atomic write-and-rename file helpers.

A writer that dies mid-write must never leave a half-written file where a
reader expects a complete one: checkpoints, bench results and trace exports
all go through these helpers.  The contract is the classic POSIX pattern —
write to a uniquely-named temporary in the *same directory* (so the rename
cannot cross filesystems), flush + fsync, then ``os.replace`` onto the final
name, which is atomic on POSIX and on modern Windows.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically; returns the final path.

    Readers see either the previous complete file or the new complete file,
    never a prefix.  The temporary is cleaned up on any failure.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except FileNotFoundError:
            pass
        raise
    return path


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> Path:
    """Text-mode convenience wrapper around :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding))
