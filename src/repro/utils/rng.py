"""Deterministic random number generation.

The paper notes that the two machines' different random number generators led
to different grid partitionings (and hence different iteration counts for the
same P).  All randomized components therefore take an explicit seed so that
both the reproducibility of a run and the paper's seed-sensitivity experiment
(bench A4) are expressible.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged so callers can thread one RNG through a
    pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
