"""Wall-clock timing helpers.

The paper reports wall-clock time of the preconditioned (F)GMRES solve; we keep
real timings alongside the simulated machine-model timings so both can be
reported.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    ``Timer`` accumulates elapsed seconds across repeated start/stop cycles,
    so a single instance can measure the total cost of an operation that is
    invoked many times (e.g. one preconditioner application per iteration).
    """

    elapsed: float = 0.0
    _t0: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._t0 is not None:
            raise RuntimeError("Timer already running")
        self._t0 = time.perf_counter()

    def stop(self) -> float:
        if self._t0 is None:
            raise RuntimeError("Timer not running")
        dt = time.perf_counter() - self._t0
        self.elapsed += dt
        self._t0 = None
        return dt

    def reset(self) -> None:
        self.elapsed = 0.0
        self._t0 = None

    @property
    def running(self) -> bool:
        return self._t0 is not None


@contextmanager
def timed(timer: Timer):
    """Context manager charging the enclosed block to ``timer``."""
    timer.start()
    try:
        yield timer
    finally:
        timer.stop()
