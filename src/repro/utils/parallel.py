"""Thread-pool helper for per-subdomain setup work.

The preconditioner setup phase factors one independent block per simulated
rank; the blocks share no state, so a thread pool sized by the simulated
communicator overlaps their wall-clock cost on real cores.  NumPy/SciPy
release the GIL inside the array kernels that dominate factorization, so
threads (not processes) are the right isolation level — factors stay
shareable and the content-addressed cache stays hot across the pool.

:func:`parallel_map` degrades to a plain serial loop when it cannot help or
must not run concurrently:

* one item or one worker — nothing to overlap;
* an active fault plan — injection hooks mutate per-spec counters in
  elimination order, which must stay deterministic;
* ``REPRO_SETUP_WORKERS=1`` (or ``0``) — explicit serial override.

Exceptions propagate from the lowest-index item first, matching the serial
loop's deterministic error behavior.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro import faults

T = TypeVar("T")
R = TypeVar("R")

_ENV_VAR = "REPRO_SETUP_WORKERS"


def setup_workers(n_tasks: int, requested: int | None = None) -> int:
    """Worker count for ``n_tasks`` independent setup tasks.

    ``requested`` is typically ``comm.size`` (one task per simulated rank);
    the count is clamped to the task count and the physical core count and
    can be overridden via ``REPRO_SETUP_WORKERS``.
    """
    env = os.environ.get(_ENV_VAR, "").strip()
    if env:
        try:
            requested = int(env)
        except ValueError:
            pass
    if requested is None:
        requested = n_tasks
    return max(1, min(n_tasks, requested, os.cpu_count() or 1))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items`` on a thread pool, preserving order."""
    seq: Sequence[T] = list(items)
    workers = setup_workers(len(seq), max_workers)
    if workers <= 1 or len(seq) <= 1 or faults.active() is not None:
        return [fn(it) for it in seq]
    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="repro-setup"
    ) as pool:
        futures = [pool.submit(fn, it) for it in seq]
        return [f.result() for f in futures]
