"""Small shared utilities: timers, validation helpers, deterministic RNG."""

from repro.utils.timer import Timer, timed
from repro.utils.validation import (
    check_square,
    check_vector,
    ensure_csr,
    require,
)
from repro.utils.rng import make_rng

__all__ = [
    "Timer",
    "timed",
    "check_square",
    "check_vector",
    "ensure_csr",
    "require",
    "make_rng",
]
