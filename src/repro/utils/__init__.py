"""Small shared utilities: timers, validation, RNG, atomic file writes."""

from repro.utils.atomic import atomic_write_bytes, atomic_write_text
from repro.utils.timer import Timer, timed
from repro.utils.validation import (
    check_square,
    check_vector,
    ensure_csr,
    require,
)
from repro.utils.rng import make_rng

__all__ = [
    "Timer",
    "timed",
    "atomic_write_bytes",
    "atomic_write_text",
    "check_square",
    "check_vector",
    "ensure_csr",
    "require",
    "make_rng",
]
