"""Input validation helpers used at public API boundaries.

Internal hot loops skip validation (per the optimization guides, validation is
kept at the edges so kernels stay branch-free), while every public entry point
funnels through these checks so user errors fail loudly with a clear message.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_square(a: sp.spmatrix, name: str = "matrix") -> None:
    """Validate that ``a`` is a square 2-D sparse matrix."""
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"{name} must be square, got shape {a.shape}")


def check_vector(x: np.ndarray, n: int, name: str = "vector") -> np.ndarray:
    """Validate that ``x`` is a 1-D float vector of length ``n``.

    Returns a contiguous float64 view/copy so downstream kernels never need to
    re-check dtype or layout.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got ndim={x.ndim}")
    if x.shape[0] != n:
        raise ValueError(f"{name} must have length {n}, got {x.shape[0]}")
    return np.ascontiguousarray(x)


def ensure_csr(a, name: str = "matrix") -> sp.csr_matrix:
    """Convert ``a`` to canonical CSR (sorted indices, no duplicates)."""
    if not sp.issparse(a):
        raise TypeError(f"{name} must be a scipy sparse matrix, got {type(a)!r}")
    a = a.tocsr()
    if not a.has_sorted_indices:
        a.sort_indices()
    a.sum_duplicates()
    return a
