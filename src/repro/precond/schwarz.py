"""Additive Schwarz preconditioner with overlap (paper Sec. 5.2).

The paper contrasts the four algebraic preconditioners with a classical
overlapping additive Schwarz method: subdomains are *small rectangles* from a
simple geometric partitioning, extended by ~5% overlap per side; each
subdomain solve is one Conjugate Gradient iteration preconditioned by an
FFT-based fast Poisson solver; and convergence hinges on an optional coarse
grid correction (CGC) whose small system is solved directly.

    M⁻¹ = Σ_b R_bᵀ Ã_b⁻¹ R_b   (+ P A₀⁻¹ Pᵀ with CGC)

Only structured rectangle meshes are supported (this is what the paper runs
it on — Test Case 1).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.comm.communicator import Communicator
from repro.distributed.matrix import DistributedMatrix
from repro.graph.geometric import factor_processor_count
from repro.krylov.cg import cg
from repro.krylov.ops import CountingOps
from repro.mesh.mesh import Mesh
from repro.precond.base import ParallelPreconditioner
from repro.precond.coarse import CoarseGridCorrection
from repro.precond.fft_poisson import FFTPoissonSolver
from repro.utils.parallel import parallel_map, setup_workers
from repro.utils.validation import ensure_csr


class _OverlappedBox:
    """One overlapping rectangular subdomain with its local solver."""

    def __init__(
        self,
        a_global: sp.csr_matrix,
        nx: int,
        ny: int,
        x_range: tuple[int, int],
        y_range: tuple[int, int],
        core_x: tuple[int, int],
        core_y: tuple[int, int],
    ) -> None:
        x0, x1 = x_range
        y0, y1 = y_range
        self.wx = x1 - x0
        self.wy = y1 - y0
        ix = np.arange(x0, x1)
        iy = np.arange(y0, y1)
        # x fastest inside the box, matching the lattice numbering
        self.ids = (iy[:, None] * nx + ix[None, :]).ravel()
        self.a_loc = ensure_csr(a_global[self.ids][:, self.ids])
        # FFT solver over the (wy, wx) C-ordered box data
        self.fft = FFTPoissonSolver(self.wy, self.wx)
        # core (non-overlapped) region mask inside the extended box — the
        # restriction RAS scatters through
        in_core_x = (ix >= core_x[0]) & (ix < core_x[1])
        in_core_y = (iy >= core_y[0]) & (iy < core_y[1])
        self.core_mask = (in_core_y[:, None] & in_core_x[None, :]).ravel()
        self.core_size = int(self.core_mask.sum())
        self.overlap_size = len(self.ids) - self.core_size

    def solve(self, rhs: np.ndarray, counter: CountingOps) -> np.ndarray:
        """One FFT-preconditioned CG iteration on the overlapped box."""

        def apply_a(v, a=self.a_loc, c=counter):
            c.add(2.0 * a.nnz)
            return a @ v

        def apply_m(v, f=self.fft, c=counter):
            c.add(f.flops())
            return f.solve(v)

        res = cg(apply_a, rhs, apply_m=apply_m, rtol=1e-12, maxiter=1, ops=counter)
        return res.x


class AdditiveSchwarzPreconditioner(ParallelPreconditioner):
    """Overlapping additive Schwarz with optional coarse grid correction."""

    def __init__(
        self,
        dmat: DistributedMatrix,
        comm: Communicator,
        mesh: Mesh,
        a_global: sp.csr_matrix,
        *,
        overlap_frac: float = 0.05,
        coarse_shape: tuple[int, int] | None = None,
        restricted: bool = False,
    ) -> None:
        """``restricted=True`` selects Restricted Additive Schwarz (RAS,
        Cai & Sarkis): corrections are scattered only through each box's
        non-overlapped core, halving the exchange volume and typically
        converging faster than classical AS."""
        super().__init__(dmat, comm)
        if mesh.structured_shape is None or len(mesh.structured_shape) != 2:
            raise ValueError(
                "additive Schwarz requires a structured 2-D rectangle mesh"
            )
        if not 0.0 <= overlap_frac < 0.5:
            raise ValueError("overlap_frac must be in [0, 0.5)")
        a_global = ensure_csr(a_global)
        nx, ny = mesh.structured_shape
        if a_global.shape[0] != nx * ny:
            raise ValueError("matrix size does not match the structured mesh")
        base = "RAS" if restricted else "AS"
        self.name = f"{base}+CGC" if coarse_shape else base
        self.overlap_frac = overlap_frac
        self.restricted = restricted

        px, py = factor_processor_count(comm.size, 2)
        xb = np.linspace(0, nx, px + 1).astype(np.int64)
        yb = np.linspace(0, ny, py + 1).astype(np.int64)
        specs = []
        for by in range(py):
            for bx in range(px):
                ox = max(1, int(round(overlap_frac * (xb[bx + 1] - xb[bx]))))
                oy = max(1, int(round(overlap_frac * (yb[by + 1] - yb[by]))))
                x0 = max(0, int(xb[bx]) - ox)
                x1 = min(nx, int(xb[bx + 1]) + ox)
                y0 = max(0, int(yb[by]) - oy)
                y1 = min(ny, int(yb[by + 1]) + oy)
                specs.append(
                    ((x0, x1), (y0, y1),
                     (int(xb[bx]), int(xb[bx + 1])),
                     (int(yb[by]), int(yb[by + 1])))
                )

        def _setup_box(spec) -> _OverlappedBox:
            x_range, y_range, core_x, core_y = spec
            return _OverlappedBox(
                a_global, nx, ny, x_range, y_range,
                core_x=core_x, core_y=core_y,
            )

        # box extraction and FFT-plan setup are independent per subdomain
        workers = setup_workers(len(specs), comm.size)
        with obs.span("precond.setup", precond=self.name, workers=workers):
            self.boxes: list[_OverlappedBox] = parallel_map(
                _setup_box, specs, workers
            )

        self.coarse = (
            CoarseGridCorrection(a_global, mesh.points, coarse_shape)
            if coarse_shape
            else None
        )
        # overlap data exchange cost: each box imports its overlap region
        # from the neighbors that own it (and symmetrically exports)
        self._msgs = np.asarray(
            [min(8.0, comm.size - 1.0) * 2.0 for _ in self.boxes]
        )
        # RAS only imports overlap data (no export of corrections back)
        per_point = 8.0 if restricted else 16.0
        self._bytes = np.asarray([per_point * b.overlap_size for b in self.boxes])
        # setup: FFT plans + coarse factorization (negligible vs. solve; charge
        # the coarse LU which is the real setup cost)
        if self.coarse is not None:
            n0 = self.coarse.n_coarse
            self._charge_setup(np.full(comm.size, 2.0 / 3.0 * n0**3))

    def apply(self, r: np.ndarray) -> np.ndarray:
        pm = self.pm
        r_glob = pm.to_global(r)
        z_glob = np.zeros_like(r_glob)
        flops = np.zeros(self.comm.size)
        with obs.span("schwarz.local_solves", restricted=self.restricted):
            for rank, box in enumerate(self.boxes):
                counter = CountingOps(len(box.ids))
                correction = box.solve(r_glob[box.ids], counter)
                if self.restricted:
                    # RAS: scatter through the non-overlapped core only
                    z_glob[box.ids[box.core_mask]] += correction[box.core_mask]
                else:
                    z_glob[box.ids] += correction
                flops[rank] = counter.flops
            self.comm.ledger.add_phase(
                flops, msgs_per_rank=self._msgs, bytes_per_rank=self._bytes
            )

        if self.coarse is not None:
            with obs.span("schwarz.coarse"):
                z_glob += self.coarse.apply(r_glob)
                # restriction/prolongation is local; the coarse rhs gather and
                # the redundant direct solve are charged on every rank
                self.comm.ledger.add_allreduce(nbytes=8.0 * self.coarse.n_coarse)
                obs.event("comm.allreduce", bytes=8.0 * self.coarse.n_coarse)
                self.comm.ledger.add_phase(self.coarse.flops())
        return pm.to_distributed(z_glob)
