"""Identity preconditioner (unpreconditioned baseline)."""

from __future__ import annotations

import numpy as np

from repro.precond.base import ParallelPreconditioner


class IdentityPreconditioner(ParallelPreconditioner):
    """M = I; useful as the no-preconditioning baseline in ablations."""

    name = "None"

    def apply(self, r: np.ndarray) -> np.ndarray:
        return r.copy()
