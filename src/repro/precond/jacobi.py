"""Diagonal (point-Jacobi) preconditioner.

Not one of the paper's contenders — it exists as the last link of the
resilience fallback chain (docs/robustness.md): M = diag(A) cannot break
down (zero diagonals are replaced by 1, degrading those points to identity),
needs no factorization, and communicates nothing, so a solve that defeated
every ILU-based preconditioner still gets *some* preconditioning instead of
an abort.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.comm.communicator import Communicator
from repro.distributed.matrix import DistributedMatrix
from repro.precond.base import ParallelPreconditioner


class JacobiPreconditioner(ParallelPreconditioner):
    """M = diag(A); the never-fails tail of the fallback chain."""

    name = "Jacobi"

    def __init__(self, dmat: DistributedMatrix, comm: Communicator) -> None:
        super().__init__(dmat, comm)
        d = dmat.diagonal_dist().copy()
        zero = ~np.isfinite(d) | (d == 0.0)  # repro: noqa(RPR001) — only exactly-zero diagonals are uninvertible
        if np.any(zero):
            obs.event(
                "resilience.detected", kind="zero-diagonal",
                where="jacobi.setup", count=int(np.count_nonzero(zero)),
            )
            d[zero] = 1.0
        self._inv_diag = 1.0 / d
        # setup cost: one reciprocal per owned point
        self._charge_setup(self.pm.layout.sizes.astype(float))
        self._apply_flops = self.pm.layout.sizes.astype(float)

    def apply(self, r: np.ndarray) -> np.ndarray:
        z = r * self._inv_diag
        self.comm.ledger.add_phase(self._apply_flops)
        return z


def jacobi(dmat: DistributedMatrix, comm: Communicator) -> JacobiPreconditioner:
    """Factory matching the other preconditioner constructors."""
    return JacobiPreconditioner(dmat, comm)
