"""Overlapping block preconditioner (algebraic overlap).

Paper Sec. 1.1: the distributed data structure carries the *minimum* overlap
needed for matvecs, but "an increased overlap may help to produce a better
parallel preconditioner".  This preconditioner realizes that idea
algebraically: each subdomain's owned index set is extended by ``overlap``
levels of matrix-graph neighbors, the extended diagonal block is ILU-factored,
and corrections are restricted back to owned points (the restricted-Schwarz
convention, which avoids double counting).  ``overlap=0`` reduces exactly to
Block 1/Block 2.

Unlike the geometric additive Schwarz of Sec. 5.2, this works on *any* grid
and any partition — it is the algebraic-overlap knob for bench A6.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.comm.communicator import Communicator
from repro.distributed.matrix import DistributedMatrix
from repro.factor.ilu0 import ilu0
from repro.factor.ilut import ilut
from repro.precond.base import ParallelPreconditioner
from repro.precond.block_jacobi import estimate_ilu_setup_flops
from repro.utils.validation import ensure_csr


def _expand_by_levels(
    a_global: sp.csr_matrix, seed_ids: np.ndarray, levels: int
) -> np.ndarray:
    """Grow an index set by ``levels`` rings of matrix-graph neighbors."""
    mask = np.zeros(a_global.shape[0], dtype=bool)
    mask[seed_ids] = True
    frontier = seed_ids
    for _ in range(levels):
        cols = []
        for i in frontier:
            lo, hi = a_global.indptr[i], a_global.indptr[i + 1]
            cols.append(a_global.indices[lo:hi])
        if not cols:
            break
        nxt = np.unique(np.concatenate(cols))
        nxt = nxt[~mask[nxt]]
        if nxt.size == 0:
            break
        mask[nxt] = True
        frontier = nxt
    return np.flatnonzero(mask)


class OverlappingBlockPreconditioner(ParallelPreconditioner):
    """Block Jacobi over algebraically-extended (overlapping) subdomains."""

    def __init__(
        self,
        dmat: DistributedMatrix,
        comm: Communicator,
        a_global: sp.csr_matrix,
        *,
        overlap: int = 1,
        variant: str = "ilut",
        drop_tol: float = 1e-3,
        fill: int = 10,
    ) -> None:
        """``a_global`` must be the same operator ``dmat`` distributes, in
        global numbering (used only at setup to harvest overlap rows —
        physically each rank would fetch those rows from its neighbors
        once, which is charged as setup communication)."""
        super().__init__(dmat, comm)
        if overlap < 0:
            raise ValueError("overlap must be >= 0")
        if variant not in ("ilu0", "ilut"):
            raise ValueError(f"unknown variant {variant!r}")
        a_global = ensure_csr(a_global)
        if a_global.shape[0] != self.pm.membership.shape[0]:
            raise ValueError("a_global does not match the partition map")
        self.overlap = overlap
        self.name = f"Block O{overlap}"

        self.ext_ids: list[np.ndarray] = []
        self._own_pos: list[np.ndarray] = []
        self.factors = []
        setup = np.zeros(comm.size)
        setup_bytes = np.zeros(comm.size)
        for r, sd in enumerate(self.pm.subdomains):
            grown = _expand_by_levels(a_global, sd.owned, overlap)
            halo = np.setdiff1d(grown, sd.owned, assume_unique=False)
            # local ordering [owned(internal; interface); halo] so overlap=0
            # degenerates to exactly the Block 2 factorization (incomplete
            # factorizations are ordering sensitive)
            ext = np.concatenate([sd.owned, halo])
            self.ext_ids.append(ext)
            self._own_pos.append(np.arange(sd.n_owned))
            block = ensure_csr(a_global[ext][:, ext])
            fac = ilu0(block) if variant == "ilu0" else ilut(block, drop_tol, fill)
            self.factors.append(fac)
            setup[r] = estimate_ilu_setup_flops(fac)
            # one-time neighbor fetch of the overlap rows
            setup_bytes[r] = 16.0 * (block.nnz - dmat.owned_square[r].nnz)
        self.comm.ledger.add_phase(setup, msgs_per_rank=2.0, bytes_per_rank=setup_bytes)

        self._apply_flops = np.asarray([f.solve_flops() for f in self.factors])
        # per-apply exchange: import residual values on the overlap region
        self._bytes = np.asarray(
            [8.0 * (len(ext) - sd.n_owned)
             for ext, sd in zip(self.ext_ids, self.pm.subdomains)]
        )
        self._msgs = np.asarray(
            [2.0 * max(1, len(self.pm.pattern.neighbors_of(r)))
             for r in range(comm.size)]
        )
        self._global_n = a_global.shape[0]

    def apply(self, r: np.ndarray) -> np.ndarray:
        r_glob = self.pm.to_global(r)
        z = np.empty_like(r)
        for rank in range(self.comm.size):
            correction = self.factors[rank].solve(r_glob[self.ext_ids[rank]])
            # restricted scatter: keep only this rank's owned entries
            self.pm.layout.local(z, rank)[:] = correction[self._own_pos[rank]]
        self.comm.ledger.add_phase(
            self._apply_flops, msgs_per_rank=self._msgs, bytes_per_rank=self._bytes
        )
        return z
