"""Simple parallel block preconditioners (paper Sec. 2, "Block 1"/"Block 2").

Each subdomain updates its local solution independently by solving a local
system with its subdomain matrix A_i (the owned square block): perfectly
parallel, zero communication per application — which is why the paper finds
their per-iteration scalability excellent even when their convergence is
poor.  Three subdomain solvers are provided:

* ILU(0) backward-forward substitution → **Block 1**
* ILUT(τ,p) backward-forward substitution → **Block 2**
* a few ILUT-preconditioned local GMRES iterations → the "local
  (preconditioned) Krylov solver" variant the paper mentions.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import obs
from repro.comm.communicator import Communicator
from repro.distributed.matrix import DistributedMatrix
from repro.factor.base import ILUFactorization
from repro.factor.ilu0 import ilu0
from repro.factor.ilut import ilut
from repro.krylov.fgmres import fgmres
from repro.krylov.ops import CountingOps
from repro.precond.base import ParallelPreconditioner
from repro.resilience.errors import InnerSolveDivergence
from repro.utils.parallel import parallel_map, setup_workers


def estimate_ilu_setup_flops(fac: ILUFactorization) -> float:
    """Rough factorization cost: each L entry triggers one U-row update."""
    avg_u_row = fac.u_upper.nnz / max(fac.n, 1)
    return 2.0 * fac.l_strict.nnz * avg_u_row + 2.0 * fac.nnz


class BlockPreconditioner(ParallelPreconditioner):
    """Block Jacobi over subdomains with a pluggable local solver."""

    def __init__(
        self,
        dmat: DistributedMatrix,
        comm: Communicator,
        factory: Callable[[np.ndarray], ILUFactorization] | None = None,
        *,
        variant: str = "ilu0",
        drop_tol: float = 1e-3,
        fill: int = 10,
        inner_iterations: int = 3,
        ordering: str = "natural",
        shift: float = 0.0,
        breakdown_frac: float | None = 0.25,
    ) -> None:
        """``variant``: "ilu0" (Block 1), "ilut" (Block 2), or "krylov".

        ``ordering``: "natural" keeps the [internal; interface] numbering;
        "rcm" factors each subdomain in reverse Cuthill–McKee order
        (bandwidth-reducing — a fixed-fill ILUT captures more of the true
        factors; ablation bench A7).

        ``shift`` factors A_i + shift·I (post-breakdown remedy);
        ``breakdown_frac`` bounds the tolerated floored-pivot fraction per
        subdomain before :class:`FactorizationBreakdown` is raised.
        """
        super().__init__(dmat, comm)
        if variant not in ("ilu0", "ilut", "krylov"):
            raise ValueError(f"unknown variant {variant!r}")
        if ordering not in ("natural", "rcm"):
            raise ValueError(f"unknown ordering {ordering!r}")
        self.variant = variant
        self.ordering = ordering
        self.inner_iterations = inner_iterations
        self.name = {"ilu0": "Block 1", "ilut": "Block 2", "krylov": "Block K"}[variant]
        if ordering == "rcm":
            self.name += " (RCM)"

        def _setup_rank(r: int) -> tuple[np.ndarray | None, ILUFactorization]:
            a_own = dmat.owned_square[r]
            perm = None
            if ordering == "rcm" and a_own.shape[0] > 1:
                from repro.graph.adjacency import graph_from_matrix
                from repro.graph.rcm import reverse_cuthill_mckee
                from repro.sparse.reorder import apply_symmetric_permutation

                perm = reverse_cuthill_mckee(graph_from_matrix(a_own))
                a_own = apply_symmetric_permutation(a_own, perm)
            if variant == "ilu0":
                fac = ilu0(a_own, shift=shift, breakdown_frac=breakdown_frac)
            else:
                fac = ilut(
                    a_own, drop_tol, fill,
                    shift=shift, breakdown_frac=breakdown_frac,
                )
            return perm, fac

        # one independent factorization per simulated rank: fan out on a
        # thread pool; the span records the overlapped wall-clock cost
        workers = setup_workers(comm.size, comm.size)
        with obs.span("precond.setup", precond=self.name, workers=workers):
            results = parallel_map(_setup_rank, range(comm.size), workers)

        self.factors = [fac for _, fac in results]
        self._perms = [perm for perm, _ in results]
        setup = np.zeros(comm.size)
        for r, fac in enumerate(self.factors):
            if fac.stats.floored_pivots:
                obs.event(
                    "factor.stats", rank=r, precond=variant,
                    floored_pivots=fac.stats.floored_pivots, n=fac.stats.n,
                )
            setup[r] = estimate_ilu_setup_flops(fac)
        self._charge_setup(setup)
        self._apply_flops = np.asarray([f.solve_flops() for f in self.factors])

    def _local_solve(self, rank: int, r_loc: np.ndarray) -> np.ndarray:
        perm = self._perms[rank]
        if perm is None:
            return self.factors[rank].solve(r_loc)
        z_p = self.factors[rank].solve(r_loc[perm])
        z = np.empty_like(z_p)
        z[perm] = z_p
        return z

    def apply(self, r: np.ndarray) -> np.ndarray:
        z = np.empty_like(r)
        if self.variant != "krylov":
            with obs.span("block.local_solves", variant=self.variant):
                for rank in range(self.comm.size):
                    loc = self.pm.layout.local_slice(rank)
                    z[loc] = self._local_solve(rank, r[loc])
                self.comm.ledger.add_phase(self._apply_flops)
            return z

        # local-Krylov variant: a few ILUT-preconditioned GMRES iterations
        return self._apply_krylov(r, z)

    def _apply_krylov(self, r: np.ndarray, z: np.ndarray) -> np.ndarray:
        flops = np.zeros(self.comm.size)
        with obs.span("block.local_solves", variant=self.variant):
            for rank in range(self.comm.size):
                loc = self.pm.layout.local_slice(rank)
                a_own = self.dmat.owned_square[rank]
                fac = self.factors[rank]
                counter = CountingOps(a_own.shape[0])

                def apply_a(v, a=a_own, c=counter):
                    c.add(2.0 * a.nnz)
                    return a @ v

                def apply_m(v, f=fac, c=counter):
                    c.add(f.solve_flops())
                    return f.solve(v)

                res = fgmres(
                    apply_a,
                    r[loc],
                    apply_m=apply_m,
                    restart=max(self.inner_iterations, 1),
                    rtol=1e-12,
                    maxiter=self.inner_iterations,
                    ops=counter,
                )
                if res.status == "diverged":
                    raise InnerSolveDivergence(
                        "Block K local Krylov solve diverged",
                        rank=rank, where="blockk.local",
                        residual=float(res.final_residual),
                    )
                z[loc] = res.x
                flops[rank] = counter.flops
            self.comm.ledger.add_phase(flops)
        return z


def block1(
    dmat: DistributedMatrix, comm: Communicator, **params
) -> BlockPreconditioner:
    """Block 1: block Jacobi with ILU(0) subdomain solves."""
    return BlockPreconditioner(dmat, comm, variant="ilu0", **params)


def block2(
    dmat: DistributedMatrix,
    comm: Communicator,
    drop_tol: float = 1e-3,
    fill: int = 10,
    ordering: str = "natural",
    **params,
) -> BlockPreconditioner:
    """Block 2: block Jacobi with ILUT(τ,p) subdomain solves."""
    return BlockPreconditioner(
        dmat, comm, variant="ilut", drop_tol=drop_tol, fill=fill,
        ordering=ordering, **params,
    )


def block_krylov(
    dmat: DistributedMatrix,
    comm: Communicator,
    inner_iterations: int = 3,
    drop_tol: float = 1e-3,
    fill: int = 10,
    **params,
) -> BlockPreconditioner:
    """Block preconditioner with local preconditioned-GMRES subdomain solves."""
    return BlockPreconditioner(
        dmat,
        comm,
        variant="krylov",
        drop_tol=drop_tol,
        fill=fill,
        inner_iterations=inner_iterations,
        **params,
    )
