"""Simple parallel block preconditioners (paper Sec. 2, "Block 1"/"Block 2").

Each subdomain updates its local solution independently by solving a local
system with its subdomain matrix A_i (the owned square block): perfectly
parallel, zero communication per application — which is why the paper finds
their per-iteration scalability excellent even when their convergence is
poor.  Three subdomain solvers are provided:

* ILU(0) backward-forward substitution → **Block 1**
* ILUT(τ,p) backward-forward substitution → **Block 2**
* a few ILUT-preconditioned local GMRES iterations → the "local
  (preconditioned) Krylov solver" variant the paper mentions.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro import faults, obs
from repro.comm import compute as worker_compute
from repro.comm.communicator import Communicator
from repro.distributed.matrix import DistributedMatrix
from repro.factor import cache as factor_cache
from repro.factor.base import FactorStats, ILUFactorization
from repro.factor.ilu0 import _check_breakdown, ilu0
from repro.factor.ilut import ilut
from repro.krylov.fgmres import fgmres
from repro.krylov.ops import CountingOps
from repro.precond.base import ParallelPreconditioner
from repro.resilience.errors import InnerSolveDivergence
from repro.utils.parallel import parallel_map, setup_workers


def estimate_ilu_setup_flops(fac: ILUFactorization) -> float:
    """Rough factorization cost: each L entry triggers one U-row update."""
    avg_u_row = fac.u_upper.nnz / max(fac.n, 1)
    return 2.0 * fac.l_strict.nnz * avg_u_row + 2.0 * fac.nnz


class BlockPreconditioner(ParallelPreconditioner):
    """Block Jacobi over subdomains with a pluggable local solver."""

    def __init__(
        self,
        dmat: DistributedMatrix,
        comm: Communicator,
        factory: Callable[[np.ndarray], ILUFactorization] | None = None,
        *,
        variant: str = "ilu0",
        drop_tol: float = 1e-3,
        fill: int = 10,
        inner_iterations: int = 3,
        ordering: str = "natural",
        shift: float = 0.0,
        breakdown_frac: float | None = 0.25,
    ) -> None:
        """``variant``: "ilu0" (Block 1), "ilut" (Block 2), or "krylov".

        ``ordering``: "natural" keeps the [internal; interface] numbering;
        "rcm" factors each subdomain in reverse Cuthill–McKee order
        (bandwidth-reducing — a fixed-fill ILUT captures more of the true
        factors; ablation bench A7).

        ``shift`` factors A_i + shift·I (post-breakdown remedy);
        ``breakdown_frac`` bounds the tolerated floored-pivot fraction per
        subdomain before :class:`FactorizationBreakdown` is raised.
        """
        super().__init__(dmat, comm)
        if variant not in ("ilu0", "ilut", "krylov"):
            raise ValueError(f"unknown variant {variant!r}")
        if ordering not in ("natural", "rcm"):
            raise ValueError(f"unknown ordering {ordering!r}")
        self.variant = variant
        self.ordering = ordering
        self.inner_iterations = inner_iterations
        self.name = {"ilu0": "Block 1", "ilut": "Block 2", "krylov": "Block K"}[variant]
        if ordering == "rcm":
            self.name += " (RCM)"

        alg = "ilu0" if variant == "ilu0" else "ilut"
        params = (
            (float(shift),) if alg == "ilu0"
            else (float(drop_tol), int(fill), float(shift))
        )

        def _permute_rank(r: int) -> tuple[np.ndarray | None, sp.csr_matrix]:
            a_own = dmat.owned_square[r]
            perm = None
            if ordering == "rcm" and a_own.shape[0] > 1:
                from repro.graph.adjacency import graph_from_matrix
                from repro.graph.rcm import reverse_cuthill_mckee
                from repro.sparse.reorder import apply_symmetric_permutation

                perm = reverse_cuthill_mckee(graph_from_matrix(a_own))
                a_own = apply_symmetric_permutation(a_own, perm)
            return perm, a_own

        def _ship_key(a_perm: sp.csr_matrix) -> str:
            # the content digest both the driver cache and the worker
            # shipping protocol dedupe on — "worker" family, since the
            # factors it names are transport-independent by the bitwise
            # contract (same tier code runs on either side)
            return factor_cache.FactorCache.key(alg, a_perm, params, "worker")

        def _setup_rank(
            r: int,
        ) -> tuple[np.ndarray | None, ILUFactorization, str]:
            perm, a_own = _permute_rank(r)
            if variant == "ilu0":
                fac = ilu0(a_own, shift=shift, breakdown_frac=breakdown_frac)
            else:
                fac = ilut(
                    a_own, drop_tol, fill,
                    shift=shift, breakdown_frac=breakdown_frac,
                )
            return perm, fac, _ship_key(a_own)

        def _setup_worker(
            wc: worker_compute.WorkerCompute,
        ) -> list[tuple[np.ndarray | None, ILUFactorization, str]]:
            """Factor every subdomain inside its own rank process.

            One LOAD round ships the (permuted) subdomain matrices that are
            not already resident, one FACTOR round runs all eliminations
            concurrently in the rank processes (real parallelism — no GIL),
            and driver-cached factors skip both: they travel as a
            LOAD_FACTOR instead of being re-eliminated, the PR 4 cache
            identity doing the dedup.  The returned factors are rebuilt
            from the wire bytes and are bitwise identical to a driver-side
            factorization (same tier, same code, same input bytes).
            """
            cache = factor_cache.get_cache()
            results: dict[int, tuple] = {}
            perms: dict[int, np.ndarray | None] = {}
            keys: dict[int, str] = {}
            load_mat: dict[int, tuple[str, dict, list]] = {}
            load_fac: dict[int, tuple[str, dict, list]] = {}
            factor_meta: dict[int, dict] = {}
            for r in range(comm.size):
                perm, a_perm = _permute_rank(r)
                perms[r] = perm
                fkey = _ship_key(a_perm)
                keys[r] = fkey
                cached = cache.get(fkey, alg) if cache.enabled else None
                if cached is not None:
                    _check_breakdown(
                        alg, cached.stats.floored_pivots, cached.n,
                        breakdown_frac, shift,
                    )
                    results[r] = (perm, cached, fkey)
                    meta = {
                        "key": fkey, "n": cached.n,
                        "floored_pivots": cached.stats.floored_pivots,
                        "shift": cached.stats.shift,
                        "has_perm": perm is not None,
                    }
                    arrays = [
                        cached.l_strict.indptr, cached.l_strict.indices,
                        cached.l_strict.data, cached.u_upper.indptr,
                        cached.u_upper.indices, cached.u_upper.data,
                    ]
                    if perm is not None:
                        arrays.append(np.asarray(perm, dtype=np.int64))
                    load_fac[r] = (fkey, meta, arrays)
                    continue
                n_r = int(a_perm.shape[0])
                mkey = factor_cache.FactorCache.key(
                    alg, a_perm, params, "worker-matrix"
                )
                load_mat[r] = (
                    mkey,
                    {"key": mkey, "nrows": n_r, "ncols": n_r},
                    [a_perm.indptr, a_perm.indices, a_perm.data],
                )
                meta = {
                    "alg": alg, "matrix_key": mkey, "factor_key": fkey,
                    "shift": float(shift),
                }
                if breakdown_frac is not None:
                    meta["breakdown_frac"] = float(breakdown_frac)
                if alg == "ilut":
                    meta["drop_tol"] = float(drop_tol)
                    meta["fill"] = int(fill)
                factor_meta[r] = meta
            if load_mat:
                wc.ensure_matrices(load_mat)
            if factor_meta:
                out = wc.factor(
                    factor_meta,
                    {r: perms[r] for r in factor_meta if perms[r] is not None},
                )
                for r in sorted(out):
                    meta, arrays = out[r]
                    n_r = int(meta["n"])
                    l_strict = sp.csr_matrix(
                        (np.array(arrays[2]), np.array(arrays[1]),
                         np.array(arrays[0])), shape=(n_r, n_r),
                    )
                    u_upper = sp.csr_matrix(
                        (np.array(arrays[5]), np.array(arrays[4]),
                         np.array(arrays[3])), shape=(n_r, n_r),
                    )
                    fac = ILUFactorization(l_strict, u_upper, stats=FactorStats(
                        n=n_r,
                        floored_pivots=int(meta["floored_pivots"]),
                        shift=float(meta["shift"]),
                    ))
                    if cache.enabled:
                        cache.put(keys[r], fac)
                    results[r] = (perms[r], fac, keys[r])
            if load_fac:
                wc.ensure_factors(load_fac)
            return [results[r] for r in range(comm.size)]

        # worker-resident setup on real backends: eliminations run inside
        # the rank processes.  An active fault plan pins setup to the
        # driver — pivot hooks must fire in the injecting process.
        wc = None
        if faults.active() is None:
            wc = worker_compute.session(comm)
        workers = setup_workers(comm.size, comm.size)
        with obs.span("precond.setup", precond=self.name, workers=workers,
                      where="worker" if wc is not None else "driver"):
            if wc is not None:
                results = _setup_worker(wc)
            else:
                # one independent factorization per simulated rank: fan out
                # on a thread pool; the span records the overlapped cost
                results = parallel_map(_setup_rank, range(comm.size), workers)

        self.factors = [fac for _, fac, _ in results]
        self._perms = [perm for perm, _, _ in results]
        self._ship_keys = {r: key for r, (_, _, key) in enumerate(results)}
        setup = np.zeros(comm.size)
        for r, fac in enumerate(self.factors):
            if fac.stats.floored_pivots:
                obs.event(
                    "factor.stats", rank=r, precond=variant,
                    floored_pivots=fac.stats.floored_pivots, n=fac.stats.n,
                )
            setup[r] = estimate_ilu_setup_flops(fac)
        self._charge_setup(setup)
        self._apply_flops = np.asarray([f.solve_flops() for f in self.factors])

    def _ensure_worker_factors(self, wc: worker_compute.WorkerCompute) -> int:
        """Ship any factors the rank processes do not hold (content-keyed).

        A no-op on the steady path — after setup (or the first apply) every
        ``(rank, key)`` is in the session's shipped set.  After an
        ``absorb_rank`` recovery the preconditioner is rebuilt on a fresh
        communicator whose session starts empty, so this is also the
        re-shipping path the robustness docs describe.
        """
        entries: dict[int, tuple[str, dict, list]] = {}
        for r in range(self.comm.size):
            key = self._ship_keys[r]
            if wc.is_shipped(r, key):
                continue
            fac, perm = self.factors[r], self._perms[r]
            meta = {
                "key": key, "n": fac.n,
                "floored_pivots": fac.stats.floored_pivots,
                "shift": fac.stats.shift,
                "has_perm": perm is not None,
            }
            arrays = [
                fac.l_strict.indptr, fac.l_strict.indices, fac.l_strict.data,
                fac.u_upper.indptr, fac.u_upper.indices, fac.u_upper.data,
            ]
            if perm is not None:
                arrays.append(np.asarray(perm, dtype=np.int64))
            entries[r] = (key, meta, arrays)
        return wc.ensure_factors(entries) if entries else 0

    def _local_solve(self, rank: int, r_loc: np.ndarray) -> np.ndarray:
        perm = self._perms[rank]
        if perm is None:
            return self.factors[rank].solve(r_loc)
        z_p = self.factors[rank].solve(r_loc[perm])
        z = np.empty_like(z_p)
        z[perm] = z_p
        return z

    def apply(self, r: np.ndarray) -> np.ndarray:
        if self.variant != "krylov":
            wc = worker_compute.session(self.comm)
            if wc is not None:
                # worker-resident sweeps: each rank process runs the exact
                # ILUFactorization.solve path on its resident factor, so
                # the assembled z is bitwise equal to the loop below
                with obs.span("block.local_solves", variant=self.variant,
                              where="worker"):
                    self._ensure_worker_factors(wc)
                    z = wc.apply_factors(self._ship_keys, self.pm.layout, r)
                    self.comm.ledger.add_phase(self._apply_flops)
                return z
            z = np.empty_like(r)
            with obs.span("block.local_solves", variant=self.variant):
                for rank in range(self.comm.size):
                    loc = self.pm.layout.local_slice(rank)
                    z[loc] = self._local_solve(rank, r[loc])
                self.comm.ledger.add_phase(self._apply_flops)
            return z
        z = np.empty_like(r)

        # local-Krylov variant: a few ILUT-preconditioned GMRES iterations
        return self._apply_krylov(r, z)

    def _apply_krylov(self, r: np.ndarray, z: np.ndarray) -> np.ndarray:
        flops = np.zeros(self.comm.size)
        with obs.span("block.local_solves", variant=self.variant):
            for rank in range(self.comm.size):
                loc = self.pm.layout.local_slice(rank)
                a_own = self.dmat.owned_square[rank]
                fac = self.factors[rank]
                counter = CountingOps(a_own.shape[0])

                def apply_a(v, a=a_own, c=counter):
                    c.add(2.0 * a.nnz)
                    return a @ v

                def apply_m(v, f=fac, c=counter):
                    c.add(f.solve_flops())
                    return f.solve(v)

                res = fgmres(
                    apply_a,
                    r[loc],
                    apply_m=apply_m,
                    restart=max(self.inner_iterations, 1),
                    rtol=1e-12,
                    maxiter=self.inner_iterations,
                    ops=counter,
                )
                if res.status == "diverged":
                    raise InnerSolveDivergence(
                        "Block K local Krylov solve diverged",
                        rank=rank, where="blockk.local",
                        residual=float(res.final_residual),
                    )
                z[loc] = res.x
                flops[rank] = counter.flops
            self.comm.ledger.add_phase(flops)
        return z


def block1(
    dmat: DistributedMatrix, comm: Communicator, **params
) -> BlockPreconditioner:
    """Block 1: block Jacobi with ILU(0) subdomain solves."""
    return BlockPreconditioner(dmat, comm, variant="ilu0", **params)


def block2(
    dmat: DistributedMatrix,
    comm: Communicator,
    drop_tol: float = 1e-3,
    fill: int = 10,
    ordering: str = "natural",
    **params,
) -> BlockPreconditioner:
    """Block 2: block Jacobi with ILUT(τ,p) subdomain solves."""
    return BlockPreconditioner(
        dmat, comm, variant="ilut", drop_tol=drop_tol, fill=fill,
        ordering=ordering, **params,
    )


def block_krylov(
    dmat: DistributedMatrix,
    comm: Communicator,
    inner_iterations: int = 3,
    drop_tol: float = 1e-3,
    fill: int = 10,
    **params,
) -> BlockPreconditioner:
    """Block preconditioner with local preconditioned-GMRES subdomain solves."""
    return BlockPreconditioner(
        dmat,
        comm,
        variant="krylov",
        drop_tol=drop_tol,
        fill=fill,
        inner_iterations=inner_iterations,
        **params,
    )
