"""FFT-based fast Poisson solver (sine-transform diagonalization).

The additive Schwarz comparison of paper Sec. 5.2 uses "one Conjugate
Gradient iteration accelerated by a special FFT-based preconditioner" as its
subdomain solver.  On a uniform right-triangulated square, the interior P1
stiffness operator is exactly the 5-point stencil [−1; −1, 4, −1; −1]
(independent of h in 2D), which the type-I discrete sine transform
diagonalizes: eigenvalues λ_jk = (2 − 2cos(jπ/(mx+1))) + (2 − 2cos(kπ/(my+1))).
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dstn, idstn


class FFTPoissonSolver:
    """Exact solver for the 5-point Dirichlet Laplacian on an mx × my box."""

    def __init__(self, mx: int, my: int, scale: float = 1.0) -> None:
        if mx < 1 or my < 1:
            raise ValueError("box dimensions must be >= 1")
        if scale == 0.0:  # repro: noqa(RPR001) — exact-zero argument validation
            raise ValueError("scale must be nonzero")
        self.mx = mx
        self.my = my
        self.scale = scale
        jx = np.arange(1, mx + 1)
        jy = np.arange(1, my + 1)
        lx = 2.0 - 2.0 * np.cos(jx * np.pi / (mx + 1))
        ly = 2.0 - 2.0 * np.cos(jy * np.pi / (my + 1))
        self._eig = lx[:, None] + ly[None, :]  # (mx, my), all positive

    def solve(self, w: np.ndarray) -> np.ndarray:
        """Solve (scale · A5) z = w; ``w`` flat of length mx*my (x fastest? no:

        ``w`` is interpreted as C-ordered (mx, my) — callers reshape their
        lattice data accordingly and the transform is separable, so the axis
        convention only needs to be consistent.
        """
        w = np.asarray(w, dtype=np.float64)
        if w.shape == (self.mx * self.my,):
            w = w.reshape(self.mx, self.my)
        elif w.shape != (self.mx, self.my):
            raise ValueError(f"expected ({self.mx}, {self.my}) data, got {w.shape}")
        what = dstn(w, type=1)
        zhat = what / self._eig
        z = idstn(zhat, type=1) / self.scale
        return z.ravel()

    def flops(self) -> float:
        """Approximate cost of one solve: two 2-D DSTs plus the scaling."""
        m = self.mx * self.my
        return 2.0 * 5.0 * m * max(np.log2(max(m, 2)), 1.0) + 2.0 * m
