"""Parallel algebraic preconditioners (the paper's object of study).

* :class:`BlockPreconditioner` — Block 1 / Block 2 / block-Krylov variants
  (simple subdomain-wise solves, paper Sec. 2).
* :class:`Schur1Preconditioner` — Schur-complement enhanced, ILUT trailing
  blocks + inner GMRES (paper notation "Schur 1").
* :class:`Schur2Preconditioner` — expanded Schur system with ARMS subdomain
  solves and a distributed ILU(0) ("Schur 2").
* :class:`AdditiveSchwarzPreconditioner` — the overlapping Schwarz
  comparison of Sec. 5.2, with optional coarse grid corrections.
"""

from repro.precond.base import ParallelPreconditioner
from repro.precond.identity import IdentityPreconditioner
from repro.precond.block_jacobi import BlockPreconditioner, block1, block2, block_krylov
from repro.precond.overlapping_block import OverlappingBlockPreconditioner
from repro.precond.polynomial import ChebyshevPreconditioner
from repro.precond.schur1 import Schur1Preconditioner
from repro.precond.schur2 import Schur2Preconditioner
from repro.precond.fft_poisson import FFTPoissonSolver
from repro.precond.coarse import CoarseGridCorrection
from repro.precond.schwarz import AdditiveSchwarzPreconditioner

__all__ = [
    "ParallelPreconditioner",
    "IdentityPreconditioner",
    "BlockPreconditioner",
    "block1",
    "block2",
    "block_krylov",
    "OverlappingBlockPreconditioner",
    "ChebyshevPreconditioner",
    "Schur1Preconditioner",
    "Schur2Preconditioner",
    "FFTPoissonSolver",
    "CoarseGridCorrection",
    "AdditiveSchwarzPreconditioner",
]
