"""Chebyshev polynomial preconditioner.

The communication-minimal baseline: M⁻¹ = p_k(A) needs only matvecs, so a
parallel application costs exactly k distributed matvecs and *zero* extra
synchronization (no dots, no factor solves) — the opposite end of the
communication/strength spectrum from the Schur preconditioners.  Chebyshev
coefficients need an eigenvalue interval [λ_min, λ_max], estimated here with
the Lanczos diagnostic.  SPD operators only.
"""

from __future__ import annotations

import numpy as np

from repro.comm.communicator import Communicator
from repro.distributed.matrix import DistributedMatrix
from repro.krylov.spectra import lanczos_extremes
from repro.precond.base import ParallelPreconditioner


class ChebyshevPreconditioner(ParallelPreconditioner):
    """k-step Chebyshev iteration as a (fixed, linear) preconditioner."""

    def __init__(
        self,
        dmat: DistributedMatrix,
        comm: Communicator,
        *,
        degree: int = 8,
        interval: tuple[float, float] | None = None,
        lanczos_steps: int = 30,
        boost: float = 1.1,
    ) -> None:
        """``interval`` overrides the Lanczos [λ_min, λ_max] estimate; the
        upper end is multiplied by ``boost`` for safety (Chebyshev diverges
        if eigenvalues fall outside the interval)."""
        super().__init__(dmat, comm)
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.name = f"Cheb({degree})"

        if interval is None:
            n = dmat.shape[0]
            probe_comm = Communicator(comm.size)  # estimate cost not charged twice

            lmin, lmax = lanczos_extremes(
                lambda v: dmat.matvec(probe_comm, v), n, steps=min(lanczos_steps, n),
                seed=0,
            )
            # Lanczos underestimates extreme separation on few steps: pad both
            lmin = max(lmin * 0.5, 1e-12)
            lmax = lmax * boost
            # charge the estimation matvecs as setup
            comm.ledger.merge(probe_comm.ledger)
        else:
            lmin, lmax = interval
        if not 0 < lmin < lmax:
            raise ValueError("need 0 < lambda_min < lambda_max (SPD operators only)")
        self.lmin, self.lmax = float(lmin), float(lmax)
        self._theta = 0.5 * (self.lmax + self.lmin)
        self._delta = 0.5 * (self.lmax - self.lmin)

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Standard Chebyshev semi-iteration on A z = r from z = 0
        (Saad, Alg. 12.1): one distributed matvec per degree."""
        theta, delta = self._theta, self._delta
        sigma1 = theta / delta
        rho = 1.0 / sigma1
        d = r / theta
        z = d.copy()
        for _ in range(self.degree - 1):
            res = r - self.dmat.matvec(self.comm, z)
            rho_new = 1.0 / (2.0 * sigma1 - rho)
            d = rho_new * rho * d + (2.0 * rho_new / delta) * res
            rho = rho_new
            z = z + d
        self.comm.ledger.add_phase(6.0 * self.pm.layout.sizes * max(self.degree - 1, 1))
        return z
