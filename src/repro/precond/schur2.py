"""Schur 2: expanded Schur complement with ARMS subdomain solves.

Paper Sec. 2 & 4.4: on each subdomain a two-level ARMS reordering (group-
independent sets) produces the *expanded* Schur complement, coupling both the
local interfaces (between groups) and the interdomain interfaces.  The global
expanded Schur system is solved approximately by a few distributed GMRES
iterations preconditioned by a distributed ILU(0) — realized, as in parms,
as processor-local ILU(0) factors of the expanded Schur diagonal blocks
(off-processor rows are not exchanged during factorization).

Interdomain coupling inside the expanded system: the only expanded-interface
unknowns visible to neighbors are the interdomain-interface ones (group and
local-interface unknowns never couple across subdomains), so the Σ E_ij y_j
term reuses the interface exchange pattern, scattered into the trailing
(interdomain) slice of each expanded block.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.comm.communicator import Communicator
from repro.distributed.layout import Layout
from repro.distributed.matrix import DistributedMatrix
from repro.distributed.ops import DistributedOps
from repro.factor.arms import ArmsFactorization
from repro.krylov.gmres import gmres
from repro.precond.base import ParallelPreconditioner
from repro.resilience.errors import InnerSolveDivergence
from repro.utils.parallel import parallel_map, setup_workers


class Schur2Preconditioner(ParallelPreconditioner):
    """The paper's "Schur 2" preconditioner."""

    name = "Schur 2"

    def __init__(
        self,
        dmat: DistributedMatrix,
        comm: Communicator,
        *,
        group_size: int = 20,
        drop_tol: float = 1e-4,
        global_iterations: int = 5,
        seed: int = 0,
        levels: int = 2,
        global_ilu: str = "block",
        shift: float = 0.0,
        breakdown_frac: float | None = 0.25,
    ) -> None:
        """``global_ilu`` selects the realization of the paper's "global
        ILU(0)" on the expanded Schur system:

        * ``"block"`` (default, the pARMS realization): each processor
          factors its own diagonal block Ŝ_i; off-processor couplings are
          not exchanged during factorization.  Fully parallel setup.
        * ``"global"``: a true ILU(0) of the assembled global expanded Schur
          matrix *including* the interdomain couplings.  Its triangular
          solves execute level-scheduled across subdomains (a pipelined
          sweep), which the cost model charges as one extra neighbor
          exchange per sweep.  Stronger, but with serialized setup.
        """
        super().__init__(dmat, comm)
        if global_iterations < 1:
            raise ValueError("global_iterations must be >= 1")
        if global_ilu not in ("block", "global"):
            raise ValueError(f"unknown global_ilu mode {global_ilu!r}")
        self.global_iterations = global_iterations
        self.global_ilu = global_ilu

        def _setup_rank(r: int) -> ArmsFactorization:
            return ArmsFactorization(
                dmat.owned_square[r],
                self.pm.subdomains[r].n_internal,
                group_size=group_size,
                drop_tol=drop_tol,
                seed=seed + r,
                levels=levels,
                shift=shift,
                breakdown_frac=breakdown_frac,
            )

        workers = setup_workers(comm.size, comm.size)
        with obs.span("precond.setup", precond=self.name, workers=workers):
            self.arms = parallel_map(_setup_rank, range(comm.size), workers)

        setup = np.zeros(comm.size)
        for r, (sd, fac) in enumerate(zip(self.pm.subdomains, self.arms)):
            if fac.final_n_interdomain != sd.n_interface:
                raise AssertionError(
                    "ARMS separator lost interdomain interface unknowns"
                )
            # setup: group dense factorizations + Schur formation + ILU(0)
            setup[r] = (
                sum(2.0 / 3.0 * lu.n**3 for lu in fac._group_lus)
                + 4.0 * fac.s_hat.nnz
                + (0.0 if fac.s_ilu is None else 4.0 * fac.s_ilu.nnz)
            )
        self._charge_setup(setup)

        self._exp_layout = Layout.from_sizes([f.final_n_expanded for f in self.arms])
        self._exp_ops = DistributedOps(comm, self._exp_layout)

        self._global_fac = None
        if global_ilu == "global":
            s_global = self._assemble_global_expanded()
            from repro.factor.ilu0 import ilu0 as _ilu0

            self._global_fac = _ilu0(s_global)
            # serialized factorization sweep: charged as a critical-path phase
            comm.ledger.add_phase(
                np.full(comm.size, 4.0 * s_global.nnz / comm.size),
                msgs_per_rank=2.0 * self.pm.interface_pattern.msgs_per_rank,
                bytes_per_rank=self.pm.interface_pattern.bytes_per_rank,
            )
            rows_per_rank = self._exp_layout.sizes
            total_nnz = self._global_fac.nnz
            self._global_solve_flops = (
                2.0 * total_nnz * rows_per_rank / max(self._exp_layout.total, 1)
            )

    def _assemble_global_expanded(self):
        """The global expanded Schur matrix: diagonal blocks Ŝ_i plus the
        interdomain couplings Ē mapped onto neighbors' expanded indices."""
        import scipy.sparse as sp

        pm = self.pm
        offsets = self._exp_layout.rank_ptr
        rows_all, cols_all, vals_all = [], [], []
        # expanded index of each global interface point
        n_points = pm.membership.shape[0]
        exp_index_of_global = np.full(n_points, -1, dtype=np.int64)
        for q, sd in enumerate(pm.subdomains):
            ifc = sd.interface_global
            base = offsets[q] + self.arms[q].final_n_local_interface
            exp_index_of_global[ifc] = base + np.arange(len(ifc))
        for r in range(self.comm.size):
            fac = self.arms[r]
            s = fac.final_s_hat.tocoo()
            rows_all.append(offsets[r] + s.row)
            cols_all.append(offsets[r] + s.col)
            vals_all.append(s.data)
            ghost_mat = self.dmat.ghost_coupling[r].tocoo()
            if ghost_mat.nnz:
                sd = pm.subdomains[r]
                rows_all.append(
                    offsets[r] + fac.final_n_local_interface + ghost_mat.row
                )
                cols_all.append(exp_index_of_global[sd.ghost[ghost_mat.col]])
                vals_all.append(ghost_mat.data)
        n = self._exp_layout.total
        s_global = sp.coo_matrix(
            (
                np.concatenate(vals_all),
                (np.concatenate(rows_all), np.concatenate(cols_all)),
            ),
            shape=(n, n),
        ).tocsr()
        s_global.sum_duplicates()
        return s_global

    # -- global expanded Schur operator ---------------------------------------

    def _expanded_matvec(self, y: np.ndarray) -> np.ndarray:
        """(Ŝ y)_i = Ŝ_i y_i + Σ_j E_ij y_j (interdomain rows only)."""
        pm = self.pm
        # neighbors only ever see the interdomain-interface slice
        ifc_views = [
            self._exp_layout.local(y, r)[self.arms[r].final_n_local_interface :]
            for r in range(self.comm.size)
        ]
        ghosts = [np.zeros(len(sd.ghost)) for sd in pm.subdomains]
        pm.interface_pattern.exchange(self.comm, ifc_views, ghosts)

        out = np.empty_like(y)
        flops = np.zeros(self.comm.size)
        for r in range(self.comm.size):
            fac = self.arms[r]
            yi = self._exp_layout.local(y, r)
            v = fac.final_s_hat @ yi
            ghost_mat = self.dmat.ghost_coupling[r]
            if ghost_mat.shape[1]:
                v[fac.final_n_local_interface :] += ghost_mat @ ghosts[r]
            self._exp_layout.local(out, r)[:] = v
            flops[r] = 2.0 * (fac.final_s_hat.nnz + ghost_mat.nnz)
        self.comm.ledger.add_phase(flops)
        return out

    def _expanded_precond(self, g: np.ndarray) -> np.ndarray:
        """Distributed ILU(0) on the expanded Schur system."""
        if self._global_fac is not None:
            # true global ILU(0): level-scheduled sweeps pipeline across
            # subdomains — one neighbor exchange per triangular sweep
            z = self._global_fac.solve(g)
            pat = self.pm.interface_pattern
            self.comm.ledger.add_phase(
                self._global_solve_flops,
                msgs_per_rank=2.0 * pat.msgs_per_rank,
                bytes_per_rank=2.0 * pat.bytes_per_rank,
            )
            return z
        out = np.empty_like(g)
        flops = np.zeros(self.comm.size)
        for r in range(self.comm.size):
            fac = self.arms[r]
            self._exp_layout.local(out, r)[:] = fac.final_solve_s_ilu(
                self._exp_layout.local(g, r)
            )
            flops[r] = fac.final.solve_s_flops()
        self.comm.ledger.add_phase(flops)
        return out

    def _solve_expanded_system(self, ghat: np.ndarray) -> np.ndarray:
        with obs.span("schur.solve", iterations=self.global_iterations):
            res = gmres(
                self._expanded_matvec,
                ghat,
                apply_m=self._expanded_precond,
                restart=self.global_iterations,
                rtol=1e-12,
                maxiter=self.global_iterations,
                ops=self._exp_ops,
            )
        if res.status == "diverged":
            raise InnerSolveDivergence(
                "Schur 2 global expanded-interface solve diverged",
                where="schur2.global",
                residual=float(res.final_residual),
            )
        return res.x

    # -- Algorithm 2.1, expanded variant ----------------------------------------

    def apply(self, r: np.ndarray) -> np.ndarray:
        pm = self.pm
        ghat = np.empty(self._exp_layout.total)
        f_parts: list[list[np.ndarray]] = []
        flops = np.zeros(self.comm.size)

        # Step 1: exact group elimination ĝ_i = g_i − Ẽ_i D_i^{-1} f_i
        with obs.span("schur.forward"):
            for rank in range(self.comm.size):
                fac = self.arms[rank]
                f_stack, g_i = fac.forward_eliminate_full(pm.layout.local(r, rank))
                f_parts.append(f_stack)
                self._exp_layout.local(ghat, rank)[:] = g_i
                flops[rank] = fac.forward_full_flops()
            self.comm.ledger.add_phase(flops)

        # Step 2: distributed GMRES on the global expanded Schur system
        y = self._solve_expanded_system(ghat)

        # Step 3: back substitution u_i = D_i^{-1}(f_i − F̃_i y_i)
        z = np.empty_like(r)
        flops = np.zeros(self.comm.size)
        with obs.span("schur.back"):
            for rank in range(self.comm.size):
                fac = self.arms[rank]
                y_i = self._exp_layout.local(y, rank)
                pm.layout.local(z, rank)[:] = fac.back_substitute_full(
                    f_parts[rank], y_i
                )
                flops[rank] = fac.back_full_flops()
            self.comm.ledger.add_phase(flops)
        return z
