"""Preconditioner interface."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro import obs
from repro.comm.communicator import Communicator
from repro.distributed.matrix import DistributedMatrix
from repro.resilience.errors import NumericalFault


class ParallelPreconditioner(ABC):
    """A parallel algebraic preconditioner bound to one distributed operator.

    ``apply`` maps a distributed residual to a distributed correction,
    charging its full parallel cost (per-rank flops, neighbor messages,
    allreduces of any inner iterations) to the communicator's ledger.
    Construction charges the setup phase (factorizations).
    """

    #: short identifier used in result tables ("Block 1", "Schur 2", ...)
    name: str = "preconditioner"

    def __init__(self, dmat: DistributedMatrix, comm: Communicator) -> None:
        if comm.size != dmat.pm.num_ranks:
            raise ValueError("communicator size does not match the partition")
        self.dmat = dmat
        self.comm = comm
        self.pm = dmat.pm

    @abstractmethod
    def apply(self, r: np.ndarray) -> np.ndarray:
        """Return z ≈ M^{-1} r (distributed ordering)."""

    def __call__(self, r: np.ndarray) -> np.ndarray:
        """``apply`` wrapped in a ``precond.apply`` span and a NaN/Inf guard.

        Callers that want per-application tracing and the guards (the driver
        does) pass the preconditioner object itself as ``apply_m``; calling
        ``.apply`` directly skips both but is otherwise identical.
        """
        r = self._check_input(r)
        if obs.enabled():
            with obs.span("precond.apply", precond=self.name):
                return self._guarded_apply(r)
        return self._guarded_apply(r)

    def apply_matvec(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Fused ``z = M^{-1} r`` and ``v = A z`` for the inner Krylov step.

        Every Krylov iteration applies the preconditioner and immediately
        multiplies the result by the operator; routing both through one
        entry point gives subclasses a hook to overlap or fuse the two.
        The base implementation composes them — emitting exactly the spans
        and ledger charges of the unfused path, so traces and cost models
        are unchanged — and returns ``(z, v)``.
        """
        z = self(r)
        return z, self.dmat.matvec(self.comm, z)

    def _check_input(self, r: np.ndarray) -> np.ndarray:
        """The single shape/dtype guard for all preconditioner applications.

        Subclasses must not re-validate: every ``apply`` sees a 1-D float64
        vector of the distributed layout's length (non-float64 input is
        coerced here once, so classes that allocate with ``empty_like`` or
        return ``r.copy()`` inherit a consistent dtype).
        """
        r = np.asarray(r)
        if r.ndim != 1 or r.shape[0] != self.pm.layout.total:
            raise ValueError(
                f"{self.name}: expected a residual of shape "
                f"({self.pm.layout.total},), got {r.shape}"
            )
        if r.dtype != np.float64:
            r = r.astype(np.float64)
        return r

    def _guarded_apply(self, r: np.ndarray) -> np.ndarray:
        z = self.apply(r)
        # same two-stage NaN/Inf guard as the distributed matvec: cheap sum
        # test, exact check only before raising
        if not np.isfinite(z.sum()) and not np.all(np.isfinite(z)):
            obs.event(
                "resilience.detected", kind="nonfinite", where="precond.apply",
                precond=self.name,
            )
            raise NumericalFault(
                f"{self.name} preconditioner produced non-finite values",
                where="precond.apply",
                precond=self.name,
                bad=int(np.count_nonzero(~np.isfinite(z))),
                n=int(z.size),
            )
        return z

    # -- shared helpers ------------------------------------------------------

    def _charge_setup(self, flops_per_rank: np.ndarray) -> None:
        """Charge a setup (factorization) phase."""
        self.comm.ledger.add_phase(flops_per_rank)
