"""Coarse grid correction for two-level additive Schwarz.

Paper Sec. 5.2: the additive Schwarz preconditioner converges acceptably only
with coarse grid corrections (CGCs); the coarse system is small and "solved
by Gaussian elimination".  We build the coarse space by bilinear interpolation
from a fixed structured coarse grid and form the coarse operator by the
Galerkin product A₀ = Pᵀ A P (spectrally equivalent to the paper's
rediscretization; see DESIGN.md §5), factoring it with our dense LU.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.factor.dense import DenseLU, dense_lu
from repro.utils.validation import ensure_csr


def bilinear_interpolation(
    fine_points: np.ndarray, coarse_shape: tuple[int, int]
) -> sp.csr_matrix:
    """Prolongation P: coarse lattice on [0,1]² → arbitrary fine points.

    Each fine point receives the bilinear weights of its enclosing coarse
    cell; rows sum to 1.
    """
    ncx, ncy = coarse_shape
    if ncx < 2 or ncy < 2:
        raise ValueError("coarse grid needs at least 2 points per direction")
    pts = np.asarray(fine_points, dtype=np.float64)
    n = len(pts)
    hx, hy = 1.0 / (ncx - 1), 1.0 / (ncy - 1)
    ix = np.clip((pts[:, 0] / hx).astype(np.int64), 0, ncx - 2)
    iy = np.clip((pts[:, 1] / hy).astype(np.int64), 0, ncy - 2)
    tx = pts[:, 0] / hx - ix
    ty = pts[:, 1] / hy - iy

    def cid(jx, jy):
        return jy * ncx + jx

    rows = np.repeat(np.arange(n), 4)
    cols = np.column_stack(
        [cid(ix, iy), cid(ix + 1, iy), cid(ix, iy + 1), cid(ix + 1, iy + 1)]
    ).ravel()
    w = np.column_stack(
        [(1 - tx) * (1 - ty), tx * (1 - ty), (1 - tx) * ty, tx * ty]
    ).ravel()
    p = sp.coo_matrix((w, (rows, cols)), shape=(n, ncx * ncy)).tocsr()
    return ensure_csr(p)


class CoarseGridCorrection:
    """z += P A₀^{-1} Pᵀ r with a direct (Gaussian elimination) coarse solve."""

    def __init__(
        self,
        a_global: sp.csr_matrix,
        fine_points: np.ndarray,
        coarse_shape: tuple[int, int] = (9, 9),
    ) -> None:
        a_global = ensure_csr(a_global)
        self.coarse_shape = coarse_shape
        self.p = bilinear_interpolation(fine_points, coarse_shape)
        a0 = (self.p.T @ a_global @ self.p).toarray()
        # coarse dofs with no fine support (e.g. under a hole) yield zero
        # rows; regularize them to identity so the LU exists
        empty = np.abs(a0).sum(axis=1) <= 0.0  # abs-sum is non-negative: exactly the empty rows
        a0[empty, empty] = 1.0
        self.a0_lu: DenseLU = dense_lu(a0)
        self.n_coarse = a0.shape[0]

    def apply(self, r_global: np.ndarray) -> np.ndarray:
        """Coarse correction of a global-numbering residual."""
        rc = self.p.T @ r_global
        zc = self.a0_lu.solve(rc)
        return self.p @ zc

    def flops(self) -> float:
        """Per-application cost (restriction + redundant solve + prolongation)."""
        return 4.0 * self.p.nnz + self.a0_lu.flops()
