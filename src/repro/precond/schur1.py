"""Schur 1: Schur-complement enhanced preconditioner (paper Sec. 2 & 4.4).

Algorithm 2.1 with the following realizations:

* One ILUT factorization of each [internal; interface]-ordered subdomain
  matrix A_i supplies both the B_i solver (leading blocks L_B, U_B) and the
  local Schur solver (trailing blocks L_S, U_S ≈ factors of S_i).
* Steps 1 and 3 (the B_i solves) run a few *local* GMRES iterations on B_i
  preconditioned by (L_B, U_B) — purely subdomain-local work.
* Step 2 solves the global interface system S y = ĝ with a few *distributed*
  GMRES iterations preconditioned by block Jacobi, whose blocks are the
  (L_S, U_S) solves.  The S-matvec needs one approximate B_i solve
  (the ILU forward/backward pass) plus a neighbor exchange of interface
  values for the Σ E_ij y_j coupling of Eq. (5)/(8).

Inner iteration counts vary the operator, so the outer accelerator must be
FGMRES.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.comm.communicator import Communicator
from repro.distributed.matrix import DistributedMatrix
from repro.distributed.ops import DistributedOps
from repro.factor.base import ILUFactorization
from repro.factor.ilut import ilut
from repro.factor.schur_extract import SchurBlocks, extract_schur_blocks
from repro.utils.parallel import parallel_map, setup_workers
from repro.krylov.fgmres import fgmres
from repro.krylov.gmres import gmres
from repro.krylov.ops import CountingOps
from repro.precond.base import ParallelPreconditioner
from repro.precond.block_jacobi import estimate_ilu_setup_flops
from repro.resilience.errors import InnerSolveDivergence


class Schur1Preconditioner(ParallelPreconditioner):
    """The paper's "Schur 1" preconditioner."""

    name = "Schur 1"

    def __init__(
        self,
        dmat: DistributedMatrix,
        comm: Communicator,
        *,
        drop_tol: float = 1e-3,
        fill: int = 10,
        global_iterations: int = 5,
        local_iterations: int = 3,
        shift: float = 0.0,
        breakdown_frac: float | None = 0.25,
    ) -> None:
        super().__init__(dmat, comm)
        if global_iterations < 1 or local_iterations < 1:
            raise ValueError("iteration counts must be >= 1")
        self.global_iterations = global_iterations
        self.local_iterations = local_iterations

        def _setup_rank(r: int) -> tuple[ILUFactorization, SchurBlocks]:
            sd = self.pm.subdomains[r]
            fac = ilut(
                dmat.owned_square[r], drop_tol, fill,
                shift=shift, breakdown_frac=breakdown_frac,
            )
            return fac, extract_schur_blocks(fac, sd.n_internal)

        workers = setup_workers(comm.size, comm.size)
        with obs.span("precond.setup", precond=self.name, workers=workers):
            results = parallel_map(_setup_rank, range(comm.size), workers)

        self.schur_blocks = [sb for _, sb in results]
        setup = np.zeros(comm.size)
        for r, (fac, _) in enumerate(results):
            if fac.stats.floored_pivots:
                obs.event(
                    "factor.stats", rank=r, precond="schur1",
                    floored_pivots=fac.stats.floored_pivots, n=fac.stats.n,
                )
            setup[r] = estimate_ilu_setup_flops(fac)
        self._charge_setup(setup)

        self._ifc_layout = self.pm.interface_layout
        self._ifc_ops = DistributedOps(comm, self._ifc_layout)

    # -- subdomain-local approximate B solve (steps 1 and 3) -----------------

    def _solve_b_gmres(self, rank: int, f: np.ndarray, counter: CountingOps) -> np.ndarray:
        """A few local GMRES iterations on B_i, ILUT-block preconditioned."""
        blocks = self.dmat.blocks[rank]
        sb = self.schur_blocks[rank]
        b_mat = blocks.B
        if b_mat.shape[0] == 0:
            return np.empty(0)

        def apply_a(v, a=b_mat, c=counter):
            c.add(2.0 * a.nnz)
            return a @ v

        def apply_m(v, s=sb, c=counter):
            c.add(s.solve_b_flops())
            return s.solve_b(v)

        res = fgmres(
            apply_a,
            f,
            apply_m=apply_m,
            restart=self.local_iterations,
            rtol=1e-12,
            maxiter=self.local_iterations,
            ops=counter,
        )
        if res.status == "diverged":
            raise InnerSolveDivergence(
                "Schur 1 local B-block solve diverged",
                rank=rank, where="schur1.local",
                residual=float(res.final_residual),
            )
        return res.x

    # -- the distributed global Schur solve (step 2) --------------------------

    def _schur_matvec(self, y: np.ndarray) -> np.ndarray:
        """(S y)_i = C_i y_i − E_i B̃_i^{-1} F_i y_i + Σ_j E_ij y_j."""
        pm = self.pm
        owned = self._ifc_layout.split(y)
        ghosts = [np.zeros(len(sd.ghost)) for sd in pm.subdomains]
        pm.interface_pattern.exchange(self.comm, owned, ghosts)

        out = np.empty_like(y)
        flops = np.zeros(self.comm.size)
        for r in range(self.comm.size):
            blocks = self.dmat.blocks[r]
            sb = self.schur_blocks[r]
            yi = owned[r]
            t = blocks.F @ yi
            s = sb.solve_b(t)  # one ILU pass approximates B_i^{-1}
            v = blocks.C @ yi - blocks.E @ s
            ghost_mat = self.dmat.ghost_coupling[r]
            if ghost_mat.shape[1]:
                v = v + ghost_mat @ ghosts[r]
            self._ifc_layout.local(out, r)[:] = v
            flops[r] = (
                2.0 * (blocks.F.nnz + blocks.C.nnz + blocks.E.nnz + ghost_mat.nnz)
                + sb.solve_b_flops()
            )
        self.comm.ledger.add_phase(flops)
        return out

    def _schur_precond(self, g: np.ndarray) -> np.ndarray:
        """Block Jacobi on S: independent (L_S, U_S) solves per subdomain."""
        out = np.empty_like(g)
        flops = np.zeros(self.comm.size)
        for r in range(self.comm.size):
            sb = self.schur_blocks[r]
            self._ifc_layout.local(out, r)[:] = sb.solve_s(self._ifc_layout.local(g, r))
            flops[r] = sb.solve_s_flops()
        self.comm.ledger.add_phase(flops)
        return out

    def _solve_schur_system(self, ghat: np.ndarray) -> np.ndarray:
        with obs.span("schur.solve", iterations=self.global_iterations):
            res = gmres(
                self._schur_matvec,
                ghat,
                apply_m=self._schur_precond,
                restart=self.global_iterations,
                rtol=1e-12,
                maxiter=self.global_iterations,
                ops=self._ifc_ops,
            )
        if res.status == "diverged":
            raise InnerSolveDivergence(
                "Schur 1 global interface solve diverged",
                where="schur1.global",
                residual=float(res.final_residual),
            )
        return res.x

    # -- Algorithm 2.1 ---------------------------------------------------------

    def apply(self, r: np.ndarray) -> np.ndarray:
        pm = self.pm
        n_ifc = self._ifc_layout.total
        ghat = np.empty(n_ifc)
        f_parts: list[np.ndarray] = []
        flops = np.zeros(self.comm.size)

        # Step 1: ĝ_i = g_i − E_i B̃_i^{-1} f_i
        with obs.span("schur.forward"):
            for rank, sd in enumerate(pm.subdomains):
                loc = pm.layout.local(r, rank)
                f_i, g_i = loc[: sd.n_internal], loc[sd.n_internal :]
                f_parts.append(f_i)
                counter = CountingOps(max(sd.n_internal, 1))
                w = self._solve_b_gmres(rank, f_i, counter)
                blocks = self.dmat.blocks[rank]
                self._ifc_layout.local(ghat, rank)[:] = g_i - blocks.E @ w
                counter.add(2.0 * blocks.E.nnz)
                flops[rank] = counter.flops
            self.comm.ledger.add_phase(flops)

        # Step 2: solve S y = ĝ approximately (distributed GMRES)
        y = self._solve_schur_system(ghat)

        # Step 3: u_i = B̃_i^{-1} (f_i − F_i y_i)
        z = np.empty_like(r)
        flops = np.zeros(self.comm.size)
        with obs.span("schur.back"):
            for rank, sd in enumerate(pm.subdomains):
                blocks = self.dmat.blocks[rank]
                y_i = self._ifc_layout.local(y, rank)
                counter = CountingOps(max(sd.n_internal, 1))
                rhs = f_parts[rank] - blocks.F @ y_i
                counter.add(2.0 * blocks.F.nnz)
                u_i = self._solve_b_gmres(rank, rhs, counter)
                loc = pm.layout.local(z, rank)
                loc[: sd.n_internal] = u_i
                loc[sd.n_internal :] = y_i
                flops[rank] = counter.flops
            self.comm.ledger.add_phase(flops)
        return z
