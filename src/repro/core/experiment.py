"""Experiment sweeps: one paper table = one sweep over (preconditioner, P)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.cases.base import TestCase
from repro.core.driver import SolveOutcome, solve_case
from repro.core.reporting import format_paper_table
from repro.perfmodel.machine import LINUX_CLUSTER, Machine


@dataclass
class SweepResult:
    """All outcomes of one table's sweep."""

    case_key: str
    case_title: str
    scheme: str
    p_values: list[int]
    preconds: list[str]
    outcomes: dict[tuple[str, int], SolveOutcome] = field(default_factory=dict)

    def get(self, precond: str, p: int) -> SolveOutcome | None:
        return self.outcomes.get((precond, p))

    def table(self, machine: Machine = LINUX_CLUSTER, include_setup: bool = True) -> str:
        """Render this sweep as a paper-style table on ``machine``."""
        columns: dict[str, dict[int, tuple[int | None, float | None]]] = {}
        for name in self.preconds:
            col: dict[int, tuple[int | None, float | None]] = {}
            for p in self.p_values:
                out = self.get(name, p)
                if out is None:
                    continue
                itr = out.iterations if out.converged else None
                col[p] = (itr, out.sim_time(machine, include_setup=include_setup))
            display = self.outcomes.get((name, self.p_values[0]))
            label = display.precond if display is not None else name
            columns[label] = col
        title = f"{self.case_title} — machine: {machine.name} — {self.scheme} partitioning"
        return format_paper_table(title, self.p_values, columns)


def run_sweep(
    case: TestCase,
    preconds: Sequence[str],
    p_values: Sequence[int],
    seed: int = 0,
    scheme: str = "general",
    maxiter: int = 500,
    precond_params: dict[str, dict] | None = None,
) -> SweepResult:
    """Run one paper table: every preconditioner at every processor count.

    ``precond_params`` maps preconditioner short names to keyword overrides.
    """
    precond_params = precond_params or {}
    result = SweepResult(
        case_key=case.key,
        case_title=case.title,
        scheme=scheme,
        p_values=list(p_values),
        preconds=list(preconds),
    )
    with obs.span("sweep", case=case.key, scheme=scheme,
                  configs=len(p_values) * len(preconds)):
        for p in p_values:
            for name in preconds:
                outcome = solve_case(
                    case,
                    precond=name,
                    nparts=p,
                    seed=seed,
                    scheme=scheme,
                    maxiter=maxiter,
                    precond_params=precond_params.get(name),
                    keep_solution=False,
                )
                result.outcomes[(name, p)] = outcome
    return result
