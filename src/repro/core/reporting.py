"""Paper-style result tables.

Each evaluation table in the paper lists, for a fixed test case and machine,
FGMRES iteration counts and wall-clock seconds per preconditioner as P
varies.  ``format_paper_table`` renders exactly that layout.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def format_paper_table(
    title: str,
    p_values: Sequence[int],
    columns: Mapping[str, Mapping[int, tuple[int | None, float | None]]],
    time_format: str = "{:.2f}",
) -> str:
    """Render an iterations/time table.

    ``columns[name][p]`` is an ``(iterations, seconds)`` pair; ``None``
    entries render as "--" (the paper's "not converged" marker renders as
    "n.c." when iterations is the string "n.c.").
    """
    names = list(columns)
    width = 15
    lines = [title]
    header1 = "  P  " + "".join(f"{name:^{width}}" for name in names)
    header2 = "     " + "".join(f"{'#itr':>7}{'time':>8}" for _ in names)
    lines.append(header1)
    lines.append(header2)
    for p in p_values:
        row = f"{p:4d} "
        for name in names:
            entry = columns[name].get(p)
            if entry is None:
                row += f"{'--':>7}{'--':>8}"
                continue
            itr, t = entry
            itr_s = "--" if itr is None else str(itr)
            t_s = "--" if t is None else time_format.format(t)
            row += f"{itr_s:>7}{t_s:>8}"
        lines.append(row)
    return "\n".join(lines)


def format_convergence_history(
    residuals: Sequence[float],
    title: str = "convergence history",
    width: int = 60,
    height: int = 16,
) -> str:
    """ASCII semilog plot of a residual history (iterations vs log10 ‖r‖).

    The terminal-native equivalent of the convergence plots solver papers
    show; used by examples and for quick diagnosis of stagnation/restart
    artifacts.
    """
    rs = [max(float(r), 1e-300) for r in residuals]
    if len(rs) < 2:
        return f"{title}\n(history too short to plot)"
    logs = [math.log10(r) for r in rs]
    lo, hi = min(logs), max(logs)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    # map iteration index to column, log-residual to row
    cols = [round(i * (width - 1) / (len(logs) - 1)) for i in range(len(logs))]
    grid = [[" "] * width for _ in range(height)]
    for c, lg in zip(cols, logs):
        r_row = round((hi - lg) / (hi - lo) * (height - 1))
        grid[r_row][c] = "*"
    lines = [title]
    for k, row in enumerate(grid):
        label = hi - k * (hi - lo) / (height - 1)
        lines.append(f"10^{label:+6.1f} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(" " * 11 + f"0{'iterations':^{width - 12}}{len(rs) - 1}")
    return "\n".join(lines)


def format_efficiency_table(
    title: str,
    p_values: Sequence[int],
    times: Mapping[str, Mapping[int, float]],
    base_p: int | None = None,
) -> str:
    """Relative speedup/efficiency table: S(P) = T(P₀)·P₀/T(P)... rendered as
    speedup relative to the smallest measured P (the standard fixed-size
    presentation when a serial run is impractical)."""
    names = list(times)
    p0 = base_p if base_p is not None else min(p_values)
    lines = [title]
    lines.append("  P  " + "".join(f"{n:^22}" for n in names))
    lines.append("     " + "".join(f"{'time':>8}{'speedup':>8}{'eff':>6}" for _ in names))
    for p in p_values:
        row = f"{p:4d} "
        for name in names:
            t = times[name].get(p)
            t0 = times[name].get(p0)
            if t is None or t0 is None or t <= 0:
                row += f"{'--':>8}{'--':>8}{'--':>6}"
                continue
            speedup = t0 / t * 1.0
            eff = speedup * p0 / p
            row += f"{t:>8.3f}{speedup:>8.2f}{eff:>6.2f}"
        lines.append(row)
    return "\n".join(lines)
