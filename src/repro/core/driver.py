"""The end-to-end parallel solve pipeline (paper Sec. 4).

``solve_case`` reproduces the paper's measurement procedure: partition the
grid, set up the distributed system and the chosen parallel algebraic
preconditioner, run FGMRES(20) to a 10⁻⁶ relative residual reduction, and
report iteration count plus (simulated) wall-clock time, with setup and solve
phases ledgered separately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import faults, obs
from repro.cases.base import TestCase
from repro.comm.communicator import Communicator
from repro.distributed.matrix import DistributedMatrix, distribute_matrix
from repro.distributed.ops import DistributedOps
from repro.distributed.partition_map import PartitionMap
from repro.krylov.bicgstab import bicgstab
from repro.krylov.cg import cg
from repro.krylov.fgmres import fgmres
from repro.krylov.monitors import STATUSES
from repro.perfmodel.costs import CostLedger
from repro.perfmodel.machine import Machine
from repro.precond.base import ParallelPreconditioner
from repro.precond.block_jacobi import block1, block2, block_krylov
from repro.precond.identity import IdentityPreconditioner
from repro.precond.jacobi import jacobi
from repro.precond.overlapping_block import OverlappingBlockPreconditioner
from repro.precond.polynomial import ChebyshevPreconditioner
from repro.precond.schur1 import Schur1Preconditioner
from repro.precond.schur2 import Schur2Preconditioner
from repro.precond.schwarz import AdditiveSchwarzPreconditioner

PRECONDITIONER_NAMES = (
    "block1",
    "block2",
    "blockk",
    "blocko",
    "schur1",
    "schur2",
    "as",
    "ras",
    "as+cgc",
    "ras+cgc",
    "cheb",
    "jacobi",
    "none",
)


def make_preconditioner(
    name: str,
    dmat: DistributedMatrix,
    comm: Communicator,
    case: TestCase,
    params: dict | None = None,
) -> ParallelPreconditioner:
    """Instantiate one of the paper's preconditioners by short name."""
    params = dict(params or {})
    if name == "block1":
        return block1(dmat, comm, **params)
    if name == "block2":
        return block2(dmat, comm, **params)
    if name == "blockk":
        return block_krylov(dmat, comm, **params)
    if name == "blocko":
        params.setdefault("overlap", 1)
        return OverlappingBlockPreconditioner(dmat, comm, case.matrix, **params)
    if name == "schur1":
        return Schur1Preconditioner(dmat, comm, **params)
    if name == "schur2":
        return Schur2Preconditioner(dmat, comm, **params)
    if name == "as":
        return AdditiveSchwarzPreconditioner(
            dmat, comm, case.mesh, case.matrix, coarse_shape=None, **params
        )
    if name == "ras":
        params.setdefault("restricted", True)
        return AdditiveSchwarzPreconditioner(
            dmat, comm, case.mesh, case.matrix, coarse_shape=None, **params
        )
    if name == "as+cgc":
        params.setdefault("coarse_shape", (9, 9))
        return AdditiveSchwarzPreconditioner(
            dmat, comm, case.mesh, case.matrix, **params
        )
    if name == "ras+cgc":
        params.setdefault("coarse_shape", (9, 9))
        params.setdefault("restricted", True)
        return AdditiveSchwarzPreconditioner(
            dmat, comm, case.mesh, case.matrix, **params
        )
    if name == "cheb":
        return ChebyshevPreconditioner(dmat, comm, **params)
    if name == "jacobi":
        return jacobi(dmat, comm)
    if name == "none":
        return IdentityPreconditioner(dmat, comm)
    raise ValueError(f"unknown preconditioner {name!r}; pick from {PRECONDITIONER_NAMES}")


SOLVER_NAMES = ("fgmres", "cg", "bicgstab")


@dataclass
class SolveOutcome:
    """Everything the paper's tables report, plus diagnostics.

    ``status`` carries the classified solver termination (one of
    :data:`repro.krylov.STATUSES`); ``converged`` stays available as a
    derived property so table-building code keeps reading naturally.
    """

    case_key: str
    precond: str
    nparts: int
    scheme: str
    seed: int
    iterations: int
    status: str
    setup_ledger: CostLedger
    solve_ledger: CostLedger
    wall_seconds: float
    residuals: list[float] = field(repr=False)
    x_global: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    error: float | None = None
    backend: str = "inprocess"
    comm_stats: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"unknown status {self.status!r}; pick from {STATUSES}")

    @property
    def converged(self) -> bool:
        return self.status == "converged"

    def sim_time(self, machine: Machine, include_setup: bool = True) -> float:
        """Simulated parallel wall-clock seconds on ``machine``."""
        t = machine.time(self.solve_ledger)
        if include_setup:
            t += machine.time(self.setup_ledger)
        return t

    def time_per_iteration(self, machine: Machine) -> float:
        return machine.time(self.solve_ledger) / max(self.iterations, 1)


def solve_case(
    case: TestCase,
    precond: str = "schur1",
    nparts: int = 4,
    seed: int = 0,
    scheme: str = "general",
    rtol: float = 1e-6,
    restart: int = 20,
    maxiter: int = 500,
    precond_params: dict | None = None,
    keep_solution: bool = True,
    solver: str = "fgmres",
    x0: np.ndarray | None = None,
    membership: np.ndarray | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 1,
    restore: bool = False,
    backend: str | None = None,
    retry_policy=None,
) -> SolveOutcome:
    """Run the full pipeline on ``case`` and return the measurements.

    Parameters beyond the paper's measurement procedure:

    solver:
        Outer Krylov method — ``"fgmres"`` (paper default), ``"cg"`` or
        ``"bicgstab"``.
    x0 / membership:
        Global-numbering initial guess and explicit partition override.
        The recovery paths use these to resume a solve on a *remapped*
        layout after a rank failure (see ``repro.resilience``).
    checkpoint_dir / checkpoint_every / restore:
        FGMRES-only checkpoint/restart: snapshot the global-numbered
        iterate every ``checkpoint_every`` restart cycles into
        ``checkpoint_dir`` (``repro.ckpt.v1`` files, prefix ``solve``);
        with ``restore=True`` the newest intact snapshot seeds ``x0``.
        Checkpoints store global numbering, so a restore survives a
        partition remap.
    backend:
        Execution backend for the communicator — ``"inprocess"`` (default:
        simulated ranks) or ``"multiprocess"`` (ranks as supervised OS
        processes; ghost exchanges travel over real pipes, and the
        per-rank hot path — matvecs, ILU sweeps — executes inside the
        rank processes unless ``REPRO_WORKER_COMPUTE=0``; see
        ``docs/algorithms.md`` §8).  ``None`` consults the
        ``REPRO_COMM_BACKEND`` environment variable.  The numerical
        results are bitwise identical across backends
        (``docs/robustness.md``).
    retry_policy:
        Override of the communicator's transfer
        :class:`~repro.comm.communicator.RetryPolicy`.  The serving layer
        passes a deadline-scaled policy here so a job's end-to-end budget
        bounds the comm retry waits too (``docs/service.md``); ``None``
        keeps the backend's default.
    """
    if solver not in SOLVER_NAMES:
        raise ValueError(f"unknown solver {solver!r}; pick from {SOLVER_NAMES}")
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    manager = None
    if checkpoint_dir is not None:
        from repro.checkpoint import CheckpointManager

        manager = CheckpointManager(checkpoint_dir, prefix="solve")
    comm = Communicator(nparts, retry_policy=retry_policy, backend=backend)
    tracer = obs.get_tracer()
    tracer.bind(comm)
    obs.event(
        "comm.backend.selected", backend=comm.backend.name, ranks=nparts,
        real=comm.backend.is_real,
    )
    try:
        return _solve_case_with(
            comm, case, precond=precond, nparts=nparts, seed=seed,
            scheme=scheme, rtol=rtol, restart=restart, maxiter=maxiter,
            precond_params=precond_params, keep_solution=keep_solution,
            solver=solver, x0=x0, membership=membership, manager=manager,
            checkpoint_every=checkpoint_every, restore=restore,
        )
    finally:
        comm.close()


def _solve_case_with(
    comm: Communicator,
    case: TestCase,
    *,
    precond: str,
    nparts: int,
    seed: int,
    scheme: str,
    rtol: float,
    restart: int,
    maxiter: int,
    precond_params: dict | None,
    keep_solution: bool,
    solver: str,
    x0: np.ndarray | None,
    membership: np.ndarray | None,
    manager,
    checkpoint_every: int,
    restore: bool,
) -> SolveOutcome:
    """The pipeline body, on an externally owned communicator."""
    with obs.span(
        "solve_case", case=case.key, precond=precond, nparts=nparts,
        scheme=scheme, seed=seed,
    ) as root:
        with obs.span("partition", scheme=scheme):
            if membership is None:
                membership = case.membership(nparts, seed=seed, scheme=scheme)
            pm = PartitionMap(case.coupling_graph, membership, num_ranks=nparts)
        with obs.span("distribute"):
            dmat = distribute_matrix(case.matrix, pm)

        # per-rank resident working set: local matrix + factor (≈ matrix-sized)
        # + a handful of vectors — feeds cache-aware machine models (Sec. 4.3)
        working_set = np.asarray(
            [
                2 * 16.0 * dmat.local[r].nnz + 8.0 * 6 * pm.subdomains[r].n_owned
                for r in range(nparts)
            ]
        )

        with obs.span("precond.setup", precond=precond):
            # scope the fault plan so targeted factorization faults hit this
            # preconditioner's setup but not a fallback's
            with faults.scope(precond):
                preconditioner = make_preconditioner(
                    precond, dmat, comm, case, precond_params
                )
        setup_ledger = comm.reset_ledger()
        setup_ledger.working_set_bytes = working_set
        comm.ledger.working_set_bytes = working_set

        ops = DistributedOps(comm, pm.layout)
        b_dist = pm.to_distributed(case.rhs)
        x0_global = case.x0 if x0 is None else np.asarray(x0, dtype=np.float64)
        atol = 0.0
        target = 0.0
        if manager is not None:
            # the target the run is aiming for, anchored to the *original*
            # start: a restored solve must finish the old job, not chase a
            # fresh rtol reduction relative to its (already nearly
            # converged) restart point
            r0 = b_dist - dmat.matvec(comm, pm.to_distributed(x0_global))
            target = rtol * float(np.linalg.norm(r0))
            if restore:
                ckpt = manager.load_latest()
                if ckpt is not None:
                    x0_global = ckpt["x"]
                    atol = float(ckpt.meta.get("target", 0.0))
        x0_dist = pm.to_distributed(x0_global)

        on_restart = None
        if manager is not None and solver == "fgmres":
            cycle = 0

            def on_restart(iters: int, x_dist: np.ndarray) -> None:
                nonlocal cycle
                cycle += 1
                if cycle % checkpoint_every == 0:
                    manager.save(
                        iters,
                        {"x": pm.to_global(x_dist), "b": np.asarray(case.rhs)},
                        meta={
                            "kind": "solve",
                            "case": case.key,
                            "precond": precond,
                            "nparts": nparts,
                            "iterations": int(iters),
                            "target": target,
                        },
                    )

        t0 = time.perf_counter()
        with obs.span("krylov.solve", solver=f"{solver}({restart})", rtol=rtol), \
                faults.scope(precond):
            if solver == "fgmres":
                result = fgmres(
                    lambda v: dmat.matvec(comm, v),
                    b_dist,
                    apply_m=preconditioner,
                    x0=x0_dist,
                    restart=restart,
                    rtol=rtol,
                    atol=atol,
                    maxiter=maxiter,
                    ops=ops,
                    on_restart=on_restart,
                    apply_ma=preconditioner.apply_matvec,
                )
            elif solver == "cg":
                result = cg(
                    lambda v: dmat.matvec(comm, v),
                    b_dist,
                    apply_m=preconditioner,
                    x0=x0_dist,
                    rtol=rtol,
                    atol=atol,
                    maxiter=maxiter,
                    ops=ops,
                )
            else:
                result = bicgstab(
                    lambda v: dmat.matvec(comm, v),
                    b_dist,
                    apply_m=preconditioner,
                    x0=x0_dist,
                    rtol=rtol,
                    atol=atol,
                    maxiter=maxiter,
                    ops=ops,
                    apply_ma=preconditioner.apply_matvec,
                )
        wall = time.perf_counter() - t0

        x_global = pm.to_global(result.x)
        root.set(
            iterations=result.iterations,
            converged=result.converged,
            status=result.status,
        )
    return SolveOutcome(
        case_key=case.key,
        precond=preconditioner.name,
        nparts=nparts,
        scheme=scheme,
        seed=seed,
        iterations=result.iterations,
        status=result.status,
        setup_ledger=setup_ledger,
        solve_ledger=comm.ledger,
        wall_seconds=wall,
        residuals=result.residuals,
        x_global=x_global if keep_solution else None,
        error=case.solution_error(x_global),
        backend=comm.backend.name,
        comm_stats=comm.comm_stats.as_dict(),
    )
