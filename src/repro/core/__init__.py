"""High-level driver: partition → distribute → precondition → solve → report."""

from repro.core.driver import (
    PRECONDITIONER_NAMES,
    SolveOutcome,
    make_preconditioner,
    solve_case,
)
from repro.core.experiment import SweepResult, run_sweep
from repro.core.reporting import (
    format_convergence_history,
    format_efficiency_table,
    format_paper_table,
)
from repro.core.transient import StepRecord, TransientHeatSolver

__all__ = [
    "StepRecord",
    "TransientHeatSolver",
    "PRECONDITIONER_NAMES",
    "SolveOutcome",
    "make_preconditioner",
    "solve_case",
    "SweepResult",
    "run_sweep",
    "format_paper_table",
    "format_convergence_history",
    "format_efficiency_table",
]
