"""Transient (multi-step) parallel solves.

The paper's Test Case 4 runs a single implicit Euler step; production heat
simulations run many.  :class:`TransientHeatSolver` packages the pattern the
``examples/heat_simulation.py`` script demonstrates: partition and factor
once, then advance any number of steps, reusing the distributed operator and
the parallel preconditioner, with all per-step costs accumulated on one
ledger so the amortized parallel cost is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.communicator import Communicator
from repro.core.driver import make_preconditioner
from repro.distributed.matrix import distribute_matrix
from repro.distributed.ops import DistributedOps
from repro.distributed.partition_map import PartitionMap
from repro.fem.boundary import apply_dirichlet
from repro.fem.timestepping import ImplicitEulerOperator
from repro.krylov.fgmres import fgmres
from repro.mesh.mesh import Mesh


@dataclass
class StepRecord:
    """Per-step measurements."""

    step: int
    iterations: int
    converged: bool
    max_abs: float


class TransientHeatSolver:
    """Implicit-Euler heat marching with a reused parallel preconditioner.

    Parameters
    ----------
    mesh:
        Spatial mesh (any dimension supported by the FE kernels).
    dt, conductivity:
        Time step and conductivity k of u_t = k∇²u.
    dirichlet_nodes:
        Nodes held at zero (TC4 uses the x=1 face; homogeneous Neumann is
        natural elsewhere).
    precond, nparts, seed, scheme:
        Parallel setup, as in :func:`repro.core.solve_case`.
    """

    def __init__(
        self,
        mesh: Mesh,
        dt: float,
        dirichlet_nodes: np.ndarray,
        conductivity: float = 1.0,
        precond: str = "schur1",
        nparts: int = 4,
        seed: int = 0,
        scheme: str = "general",
        rtol: float = 1e-8,
        maxiter: int = 300,
        precond_params: dict | None = None,
    ) -> None:
        from repro.graph.adjacency import graph_from_elements
        from repro.graph.geometric import box_partition_2d, box_partition_3d
        from repro.graph.partitioner import partition_graph

        self.op = ImplicitEulerOperator(mesh, dt=dt, conductivity=conductivity)
        self.dirichlet = np.asarray(dirichlet_nodes, dtype=np.int64)
        self.matrix, _ = apply_dirichlet(
            self.op.matrix, np.zeros(mesh.num_points), self.dirichlet, 0.0
        )
        self.rtol = rtol
        self.maxiter = maxiter

        graph = graph_from_elements(mesh.num_points, mesh.elements)
        if scheme == "general":
            membership = partition_graph(graph, nparts, seed=seed)
        elif scheme == "box":
            shape = mesh.structured_shape
            if shape is None:
                raise ValueError("box partitioning requires a structured grid")
            membership = (
                box_partition_2d(*shape, nparts)
                if len(shape) == 2
                else box_partition_3d(*shape, nparts)
            )
        else:
            raise ValueError(f"unknown scheme {scheme!r}")
        self.pm = PartitionMap(graph, membership, num_ranks=nparts)
        self.dmat = distribute_matrix(self.matrix, self.pm)
        self.comm = Communicator(nparts)

        # a minimal stand-in TestCase is not needed: only the Schwarz
        # preconditioners read case.mesh/case.matrix, and they are valid here
        class _CaseShim:
            pass

        shim = _CaseShim()
        shim.mesh = mesh
        shim.matrix = self.matrix
        self.precond = make_preconditioner(
            precond, self.dmat, self.comm, shim, precond_params
        )
        self.setup_ledger = self.comm.reset_ledger()
        self._ops = DistributedOps(self.comm, self.pm.layout)
        self.history: list[StepRecord] = []

    def advance(self, u: np.ndarray, steps: int = 1) -> np.ndarray:
        """March ``steps`` implicit Euler steps from state ``u``."""
        u = np.asarray(u, dtype=np.float64).copy()
        for _ in range(steps):
            rhs = self.op.rhs(u)
            rhs[self.dirichlet] = 0.0
            # symmetric elimination: subtract prescribed couplings (all zero
            # values here, so only the row replacement matters)
            res = fgmres(
                lambda v: self.dmat.matvec(self.comm, v),
                self.pm.to_distributed(rhs),
                apply_m=self.precond,
                x0=self.pm.to_distributed(u),
                restart=20,
                rtol=self.rtol,
                maxiter=self.maxiter,
                ops=self._ops,
            )
            if not res.converged:
                raise RuntimeError(
                    f"step {len(self.history) + 1} failed to converge in "
                    f"{self.maxiter} iterations"
                )
            u = self.pm.to_global(res.x)
            self.history.append(
                StepRecord(
                    step=len(self.history) + 1,
                    iterations=res.iterations,
                    converged=res.converged,
                    max_abs=float(np.abs(u).max()),
                )
            )
        return u

    @property
    def total_iterations(self) -> int:
        return sum(rec.iterations for rec in self.history)
