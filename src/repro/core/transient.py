"""Transient (multi-step) parallel solves.

The paper's Test Case 4 runs a single implicit Euler step; production heat
simulations run many.  :class:`TransientHeatSolver` packages the pattern the
``examples/heat_simulation.py`` script demonstrates: partition and factor
once, then advance any number of steps, reusing the distributed operator and
the parallel preconditioner, with all per-step costs accumulated on one
ledger so the amortized parallel cost is measurable.

Long marches are fault-tolerant (docs/robustness.md):

* every completed step is classified (:attr:`StepRecord.status`), and a
  step that ends anything but ``converged`` raises a typed
  :class:`~repro.resilience.errors.TransientStepFailure` instead of
  silently marching on;
* with ``checkpoint_dir`` set, time-step state is snapshotted every
  ``checkpoint_every`` steps (``repro.ckpt.v1``, prefix ``transient``) and
  :meth:`restore` resumes a fresh process from the newest intact snapshot;
* a confirmed :class:`~repro.resilience.errors.RankDeadError` mid-march
  triggers in-place recovery: survivors absorb the dead subdomain
  (:func:`~repro.distributed.partition_map.absorb_rank`), the operator and
  preconditioner are rebuilt on the shrunk layout, and the march rewinds to
  the last checkpoint (or retries the current step when not checkpointed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import faults, obs
from repro.comm.communicator import Communicator
from repro.core.driver import make_preconditioner
from repro.distributed.matrix import distribute_matrix
from repro.distributed.ops import DistributedOps
from repro.distributed.partition_map import PartitionMap, absorb_rank
from repro.fem.boundary import apply_dirichlet
from repro.fem.timestepping import ImplicitEulerOperator
from repro.krylov.fgmres import fgmres
from repro.mesh.mesh import Mesh
from repro.resilience.errors import RankDeadError, TransientStepFailure


@dataclass
class StepRecord:
    """Per-step measurements."""

    step: int
    iterations: int
    converged: bool
    max_abs: float
    status: str = "converged"


class TransientHeatSolver:
    """Implicit-Euler heat marching with a reused parallel preconditioner.

    Parameters
    ----------
    mesh:
        Spatial mesh (any dimension supported by the FE kernels).
    dt, conductivity:
        Time step and conductivity k of u_t = k∇²u.
    dirichlet_nodes:
        Nodes held at zero (TC4 uses the x=1 face; homogeneous Neumann is
        natural elsewhere).
    precond, nparts, seed, scheme:
        Parallel setup, as in :func:`repro.core.solve_case`.
    checkpoint_dir, checkpoint_every:
        When ``checkpoint_dir`` is set, snapshot ``(u, membership)`` every
        ``checkpoint_every`` completed steps; :meth:`restore` and the
        rank-failure recovery path resume from the newest intact snapshot.
    """

    def __init__(
        self,
        mesh: Mesh,
        dt: float,
        dirichlet_nodes: np.ndarray,
        conductivity: float = 1.0,
        precond: str = "schur1",
        nparts: int = 4,
        seed: int = 0,
        scheme: str = "general",
        rtol: float = 1e-8,
        maxiter: int = 300,
        precond_params: dict | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 1,
        backend: str | None = None,
    ) -> None:
        from repro.graph.adjacency import graph_from_elements
        from repro.graph.geometric import box_partition_2d, box_partition_3d
        from repro.graph.partitioner import partition_graph

        self.op = ImplicitEulerOperator(mesh, dt=dt, conductivity=conductivity)
        self.dirichlet = np.asarray(dirichlet_nodes, dtype=np.int64)
        self.matrix, _ = apply_dirichlet(
            self.op.matrix, np.zeros(mesh.num_points), self.dirichlet, 0.0
        )
        self.rtol = rtol
        self.maxiter = maxiter
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.checkpoint_every = checkpoint_every
        self.checkpoints = None
        if checkpoint_dir is not None:
            from repro.checkpoint import CheckpointManager

            self.checkpoints = CheckpointManager(checkpoint_dir, prefix="transient")

        self.graph = graph_from_elements(mesh.num_points, mesh.elements)
        if scheme == "general":
            membership = partition_graph(self.graph, nparts, seed=seed)
        elif scheme == "box":
            shape = mesh.structured_shape
            if shape is None:
                raise ValueError("box partitioning requires a structured grid")
            membership = (
                box_partition_2d(*shape, nparts)
                if len(shape) == 2
                else box_partition_3d(*shape, nparts)
            )
        else:
            raise ValueError(f"unknown scheme {scheme!r}")
        self.precond_name = precond
        self.precond_params = precond_params
        self.nparts = nparts
        self.backend_name = backend
        self.comm: Communicator | None = None

        # a minimal stand-in TestCase is not needed: only the Schwarz
        # preconditioners read case.mesh/case.matrix, and they are valid here
        class _CaseShim:
            pass

        self._shim = _CaseShim()
        self._shim.mesh = mesh
        self._shim.matrix = self.matrix
        self._build(np.asarray(membership, dtype=np.int64))
        self.setup_ledger = self.comm.reset_ledger()
        self.history: list[StepRecord] = []
        self.step = 0

    # -- layout (re)construction -------------------------------------------

    def _build(
        self, membership: np.ndarray, absorbed_rank: int | None = None
    ) -> None:
        """(Re)build the distributed operator stack for ``membership``.

        ``absorbed_rank`` is set on the rank-failure recovery path: the old
        communicator's envelope sequence state is carried over for the
        surviving edges (stale seq counters for edges that touched the dead
        rank are dropped — see :meth:`Communicator.adopt_seq`) and the old
        communicator's backend is shut down so dead-world processes do not
        outlive the world they belonged to.
        """
        prev = self.comm
        self.membership = membership
        self.nparts = int(membership.max()) + 1
        self.pm = PartitionMap(self.graph, membership, num_ranks=self.nparts)
        self.dmat = distribute_matrix(self.matrix, self.pm)
        self.comm = Communicator(self.nparts, backend=self.backend_name)
        if prev is not None and absorbed_rank is not None:
            self.comm.adopt_seq(prev, absorbed_rank)
        if prev is not None:
            prev.close()
        self.precond = make_preconditioner(
            self.precond_name, self.dmat, self.comm, self._shim, self.precond_params
        )
        self._ops = DistributedOps(self.comm, self.pm.layout)

    def close(self) -> None:
        """Release the communicator's execution backend (idempotent)."""
        if self.comm is not None:
            self.comm.close()

    def _recover(self, exc: RankDeadError, u: np.ndarray) -> np.ndarray:
        """Absorb a confirmed-dead rank, rewind to the last checkpoint.

        Returns the state to resume from: the newest intact checkpointed
        ``u`` (with ``self.step`` and the history rewound to match) when
        checkpointing is on, else the in-memory start-of-step state.
        """
        if self.nparts < 2:
            raise exc
        dead = exc.rank
        obs.event("resilience.comm.rank_dead", rank=dead, step=self.step + 1)
        with obs.span(
            "resilience.comm.recover", rank=dead, survivors=self.nparts - 1
        ):
            self._build(
                absorb_rank(self.graph, self.membership, dead),
                absorbed_rank=dead,
            )
            plan = faults.active()
            if plan is not None:
                plan.mark_recovered(dead)
            if self.checkpoints is not None:
                ckpt = self.checkpoints.load_latest()
                if ckpt is not None and int(ckpt.meta.get("step", 0)) <= self.step:
                    self.step = int(ckpt.meta.get("step", 0))
                    del self.history[self.step :]
                    return np.asarray(ckpt["u"], dtype=np.float64)
        return u

    def restore(self) -> tuple[np.ndarray, int] | None:
        """Resume a fresh process from the newest intact checkpoint.

        Returns ``(u, step)`` — the state to pass to :meth:`advance` and the
        number of steps already completed — or ``None`` when no intact
        checkpoint exists.  If the snapshot was taken after a rank-failure
        recovery, its (shrunk) partition layout is re-adopted, so survivors
        keep marching as survivors.
        """
        if self.checkpoints is None:
            raise ValueError("restore() requires checkpoint_dir")
        ckpt = self.checkpoints.load_latest()
        if ckpt is None:
            return None
        membership = ckpt.arrays.get("membership")
        if membership is not None:
            membership = np.asarray(membership, dtype=np.int64)
            if not np.array_equal(membership, self.membership):
                self._build(membership)
                rebuild = self.comm.reset_ledger()
                if rebuild.num_ranks == self.setup_ledger.num_ranks:
                    self.setup_ledger.merge(rebuild)
                else:
                    # the snapshot came from a shrunk (post-recovery) world;
                    # per-rank setup vectors for the old layout no longer
                    # describe anything that exists, so start fresh
                    self.setup_ledger = rebuild
        self.step = int(ckpt.meta.get("step", 0))
        del self.history[self.step :]
        return np.asarray(ckpt["u"], dtype=np.float64), self.step

    # -- marching -----------------------------------------------------------

    def advance(self, u: np.ndarray, steps: int = 1) -> np.ndarray:
        """March ``steps`` implicit Euler steps from state ``u``.

        A step that ends anything but ``converged`` is recorded in
        ``history`` with its classification and raised as
        :class:`TransientStepFailure`.  A confirmed rank failure triggers
        in-place recovery (see :meth:`_recover`) and the march continues —
        possibly rewound to an earlier checkpointed step — until the
        original target step is reached.
        """
        u = np.asarray(u, dtype=np.float64).copy()
        target = self.step + steps
        while self.step < target:
            rhs = self.op.rhs(u)
            rhs[self.dirichlet] = 0.0
            # symmetric elimination: subtract prescribed couplings (all zero
            # values here, so only the row replacement matters)
            try:
                res = fgmres(
                    lambda v: self.dmat.matvec(self.comm, v),
                    self.pm.to_distributed(rhs),
                    apply_m=self.precond,
                    x0=self.pm.to_distributed(u),
                    restart=20,
                    rtol=self.rtol,
                    maxiter=self.maxiter,
                    ops=self._ops,
                )
            except RankDeadError as exc:
                u = self._recover(exc, u)
                continue
            step = self.step + 1
            u_next = self.pm.to_global(res.x)
            self.history.append(
                StepRecord(
                    step=step,
                    iterations=res.iterations,
                    converged=res.converged,
                    max_abs=float(np.abs(u_next).max()),
                    status=res.status,
                )
            )
            if not res.converged:
                raise TransientStepFailure(
                    f"step {step} ended {res.status!r} after "
                    f"{res.iterations} iterations",
                    step=step, step_status=res.status,
                    iterations=res.iterations,
                )
            u = u_next
            self.step = step
            if self.checkpoints is not None and step % self.checkpoint_every == 0:
                self.checkpoints.save(
                    step,
                    {"u": u, "membership": self.membership},
                    meta={
                        "kind": "transient",
                        "nparts": self.nparts,
                        "precond": self.precond_name,
                    },
                )
        return u

    @property
    def total_iterations(self) -> int:
        return sum(rec.iterations for rec in self.history)
