"""Per-preconditioner circuit breakers.

A preconditioner that keeps breaking down (repeated
:class:`~repro.resilience.errors.FactorizationBreakdown`, divergence, NaN
faults) wastes every job's retry budget rediscovering the same failure.
The breaker board remembers: after ``fail_threshold`` consecutive failures
a preconditioner's circuit **opens** and the runner routes new jobs
straight down the fallback chain (:data:`repro.resilience.FALLBACK_CHAIN`)
instead of attempting it.  After ``cooldown_s`` the circuit goes
**half-open** and admits one probe job; a success closes it, a failure
re-opens it for another cooldown.

States: ``closed`` (healthy) → ``open`` (tripped) → ``half-open`` (probe)
→ ``closed`` / ``open``.  ``jacobi`` — the unbreakable last rung of the
fallback chain — is never tracked, so there is always a route to *some*
preconditioner.  Transitions emit ``service.breaker.*`` events
(``docs/observability.md``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro import obs

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

BREAKER_STATES = (CLOSED, OPEN, HALF_OPEN)

#: never tripped: the chain's terminal rung must always stay routable
UNBREAKABLE = frozenset({"jacobi", "none"})


@dataclass(frozen=True)
class BreakerPolicy:
    """Trip/cooldown knobs shared by every tracked preconditioner."""

    fail_threshold: int = 3
    cooldown_s: float = 5.0

    def __post_init__(self) -> None:
        if self.fail_threshold < 1:
            raise ValueError("fail_threshold must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")


class _Circuit:
    """One preconditioner's breaker state (board lock serializes access)."""

    def __init__(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.trips = 0


class BreakerBoard:
    """Thread-safe circuit breakers keyed by preconditioner short name."""

    def __init__(
        self, policy: BreakerPolicy | None = None, clock=time.monotonic
    ) -> None:
        self.policy = policy or BreakerPolicy()
        self.clock = clock
        self._lock = threading.Lock()
        self._circuits: dict[str, _Circuit] = {}

    def _circuit(self, name: str) -> _Circuit:
        circuit = self._circuits.get(name, None)
        if circuit is None:
            circuit = self._circuits[name] = _Circuit()
        return circuit

    def allow(self, name: str) -> bool:
        """May a job attempt ``name`` now?  Half-open admits one probe."""
        if name in UNBREAKABLE:
            return True
        with self._lock:
            circuit = self._circuit(name)
            if circuit.state == CLOSED:
                return True
            if circuit.state == OPEN:
                elapsed = self.clock() - (circuit.opened_at or 0.0)
                if elapsed < self.policy.cooldown_s:
                    return False
                circuit.state = HALF_OPEN
                obs.event("service.breaker.half_open", precond=name)
                return True
            # HALF_OPEN: one probe is already in flight; hold the rest back
            return False

    def record_success(self, name: str) -> None:
        if name in UNBREAKABLE:
            return
        with self._lock:
            circuit = self._circuit(name)
            was = circuit.state
            circuit.consecutive_failures = 0
            circuit.state = CLOSED
            circuit.opened_at = None
        if was != CLOSED:
            obs.event("service.breaker.close", precond=name, was=was)

    def record_failure(self, name: str) -> None:
        if name in UNBREAKABLE:
            return
        with self._lock:
            circuit = self._circuit(name)
            circuit.consecutive_failures += 1
            tripped = (
                circuit.state == HALF_OPEN
                or circuit.consecutive_failures >= self.policy.fail_threshold
            )
            if tripped and circuit.state != OPEN:
                circuit.state = OPEN
                circuit.opened_at = self.clock()
                circuit.trips += 1
                failures = circuit.consecutive_failures
            else:
                tripped = False
        if tripped:
            obs.event("service.breaker.open", precond=name, failures=failures)

    def state(self, name: str) -> str:
        if name in UNBREAKABLE:
            return CLOSED
        with self._lock:
            return self._circuit(name).state

    def stats(self) -> dict:
        with self._lock:
            return {
                name: {
                    "state": c.state,
                    "consecutive_failures": c.consecutive_failures,
                    "trips": c.trips,
                }
                for name, c in self._circuits.items()
            }
