"""The multi-tenant solve service (``docs/service.md``).

Quickstart::

    from repro.service import JobSpec, ServiceConfig, SolveService

    with SolveService(ServiceConfig(workers=2)) as svc:
        record = svc.submit(JobSpec(case="tc1", size=17, precond="schur1"))
        svc.wait(record.job_id, timeout=60.0)
        print(record.status, record.iterations)

``repro serve`` wraps the same service as a process with graceful
SIGTERM drain; see :mod:`repro.service.serve`.
"""

from repro.service.admission import AdmissionController, TenantPolicy, TokenBucket
from repro.service.breaker import BreakerBoard, BreakerPolicy
from repro.service.deadline import (
    Deadline,
    IterationRateEstimator,
    iteration_budget,
    scaled_retry_policy,
)
from repro.service.errors import (
    DeadlineExceeded,
    JobCancelled,
    ServiceFault,
    ServiceOverload,
    ServiceShutdown,
    UnknownJob,
)
from repro.service.job import (
    JOB_STATUSES,
    TERMINAL_STATUSES,
    JobRecord,
    JobSpec,
    JobUpdate,
)
from repro.service.service import DRAIN_SCHEMA, ServiceConfig, SolveService
from repro.service.workload import synthetic_jobs

__all__ = [
    "AdmissionController",
    "TenantPolicy",
    "TokenBucket",
    "BreakerBoard",
    "BreakerPolicy",
    "Deadline",
    "IterationRateEstimator",
    "iteration_budget",
    "scaled_retry_policy",
    "ServiceFault",
    "ServiceOverload",
    "ServiceShutdown",
    "DeadlineExceeded",
    "JobCancelled",
    "UnknownJob",
    "JOB_STATUSES",
    "TERMINAL_STATUSES",
    "JobSpec",
    "JobRecord",
    "JobUpdate",
    "DRAIN_SCHEMA",
    "ServiceConfig",
    "SolveService",
    "synthetic_jobs",
]
