"""Typed faults of the serving layer.

The service speaks its own small taxonomy, parallel to
:mod:`repro.resilience.errors`: every rejection or abnormal job ending is a
:class:`ServiceFault` subclass carrying a machine-readable ``reason`` plus
context, so clients (and the chaos tests) can branch on *why* without
parsing messages.  Solver-side failures keep their
:class:`~repro.resilience.errors.SolverFault` types — the service wraps
them into terminal job statuses, it never re-raises them at submitters.
"""

from __future__ import annotations


class ServiceFault(RuntimeError):
    """Base class for typed serving-layer faults.

    ``reason`` is a stable machine-readable slug (e.g. ``"rate-limit"``);
    ``context`` carries structured details for logs and tests.
    """

    reason = "service"

    def __init__(self, message: str, **context) -> None:
        super().__init__(message)
        self.context = context

    def __str__(self) -> str:
        base = super().__str__()
        if not self.context:
            return base
        details = ", ".join(f"{k}={v!r}" for k, v in sorted(self.context.items()))
        return f"{base} [{details}]"


class ServiceOverload(ServiceFault):
    """Admission refused the job: load shedding, not a solver failure.

    ``reason`` distinguishes the shed cause: ``"tenant-queue-full"``,
    ``"global-queue-full"``, ``"rate-limit"``, or ``"draining"``.  When the
    service recorded the rejection, the shed :class:`~repro.service.job
    .JobRecord` rides along as ``record``.
    """

    def __init__(self, message: str, *, reason: str, record=None, **context) -> None:
        super().__init__(message, reason=reason, **context)
        self.reason = reason
        self.record = record


class DeadlineExceeded(ServiceFault):
    """A job's end-to-end deadline elapsed (in queue or mid-solve)."""

    reason = "deadline"


class JobCancelled(ServiceFault):
    """A client cancelled the job before it reached a solver outcome."""

    reason = "cancelled"


class UnknownJob(ServiceFault):
    """A job id the service has never seen (or has already forgotten)."""

    reason = "unknown-job"


class ServiceShutdown(ServiceFault):
    """The service is stopped; no further submissions are possible."""

    reason = "shutdown"
