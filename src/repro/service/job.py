"""Job model: declarative solve specs and their observable lifecycle.

A :class:`JobSpec` is everything a tenant declares about one solve — case,
preconditioner, tolerances, deadline — in plain data, so specs round-trip
through JSON lines (the ``repro serve`` wire format) and drain manifests.

A :class:`JobRecord` is the service's live view of one accepted job: a
small state machine

::

    queued ──▶ running ──▶ converged | failed
       │          │
       │          ├──▶ shed       (drain / deadline — resumable when
       │          │                a checkpoint exists)
       │          └──▶ cancelled
       ├──▶ shed            (load shedding, drain flush)
       └──▶ cancelled

with four terminal statuses (:data:`TERMINAL_STATUSES`).  Every transition
appends a typed :class:`JobUpdate` and wakes waiters, so clients stream
progress (residual history rides on ``progress`` updates) without polling
the solver.  All methods are thread-safe; waits are always bounded
(lint rule RPR009 enforces explicit timeouts in this package).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.service.errors import UnknownJob

#: every status a job can report; the last four are terminal
JOB_STATUSES = ("queued", "running", "converged", "failed", "shed", "cancelled")
TERMINAL_STATUSES = ("converged", "failed", "shed", "cancelled")

#: legal transitions of the lifecycle state machine
_TRANSITIONS = {
    "queued": ("running", "shed", "cancelled"),
    "running": ("converged", "failed", "shed", "cancelled"),
}


@dataclass(frozen=True)
class JobSpec:
    """One tenant's declarative solve request.

    ``deadline_s`` is the end-to-end budget from *submission*: queueing,
    retries, and every solver chunk all spend from it.  ``key`` makes the
    submission idempotent — re-submitting an identical key returns the
    existing record instead of a duplicate job.  ``maxiter`` stays the
    honest iteration budget; the deadline can only shrink it.
    """

    tenant: str = "default"
    case: str = "tc1"
    size: int | None = 17
    precond: str = "schur1"
    nparts: int = 2
    solver: str = "fgmres"
    rtol: float = 1e-6
    maxiter: int = 400
    seed: int = 0
    scheme: str = "general"
    backend: str | None = None
    deadline_s: float | None = None
    key: str | None = None

    def __post_init__(self) -> None:
        from repro.core.driver import PRECONDITIONER_NAMES, SOLVER_NAMES

        if self.precond not in PRECONDITIONER_NAMES:
            raise ValueError(
                f"unknown preconditioner {self.precond!r}; "
                f"pick from {PRECONDITIONER_NAMES}"
            )
        if self.solver not in SOLVER_NAMES:
            raise ValueError(
                f"unknown solver {self.solver!r}; pick from {SOLVER_NAMES}"
            )
        if self.nparts < 1:
            raise ValueError("nparts must be >= 1")
        if self.maxiter < 1:
            raise ValueError("maxiter must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 when given")
        if not self.tenant:
            raise ValueError("tenant must be a non-empty string")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown JobSpec field(s) {unknown}")
        return cls(**data)


@dataclass(frozen=True)
class JobUpdate:
    """One observable lifecycle event of a job."""

    seq: int
    t: float
    kind: str  # "status" | "progress"
    status: str
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq, "t": self.t, "kind": self.kind,
            "status": self.status, "detail": self.detail,
        }


class JobRecord:
    """The service-side state of one accepted (or shed) job."""

    def __init__(
        self,
        job_id: str,
        spec: JobSpec,
        clock=time.monotonic,
        checkpoint_dir: str | None = None,
    ) -> None:
        self.job_id = job_id
        self.spec = spec
        self.clock = clock
        self.checkpoint_dir = checkpoint_dir
        self.status = "queued"
        self.created_t = clock()
        self.started_t: float | None = None
        self.finished_t: float | None = None
        self.iterations = 0
        self.residuals: list[float] = []
        self.final_relres: float | None = None
        self.attempts: list[dict] = []
        self.error: str | None = None
        self.shed_reason: str | None = None
        self.resumable = False
        self.resumed = False
        self.worker: str | None = None
        self.updates: list[JobUpdate] = []
        self._cancel = False
        self._cond = threading.Condition()
        self._record("status", "queued")

    # -- state machine -----------------------------------------------------

    def _record(self, kind: str, status: str, **detail) -> None:
        self.updates.append(JobUpdate(
            seq=len(self.updates), t=self.clock(), kind=kind,
            status=status, detail=detail,
        ))

    def transition(self, status: str, **detail) -> None:
        """Move to ``status`` (validated), record the update, wake waiters."""
        if status not in JOB_STATUSES:
            raise ValueError(f"unknown status {status!r}; pick from {JOB_STATUSES}")
        with self._cond:
            allowed = _TRANSITIONS.get(self.status, ())
            if status not in allowed:
                raise ValueError(
                    f"illegal transition {self.status!r} -> {status!r} "
                    f"for {self.job_id}"
                )
            self.status = status
            if status == "running":
                self.started_t = self.clock()
            if status in TERMINAL_STATUSES:
                self.finished_t = self.clock()
            self._record("status", status, **detail)
            self._cond.notify_all()

    def progress(self, **detail) -> None:
        """Record a non-state-changing progress update (residuals etc.)."""
        with self._cond:
            self._record("progress", self.status, **detail)
            self._cond.notify_all()

    def request_cancel(self) -> None:
        with self._cond:
            self._cancel = True
            self._cond.notify_all()

    @property
    def cancel_requested(self) -> bool:
        return self._cancel

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @property
    def latency_s(self) -> float | None:
        if self.finished_t is None:
            return None
        return self.finished_t - self.created_t

    # -- observation -------------------------------------------------------

    def wait(self, timeout: float) -> bool:
        """Block (bounded) until the job is terminal; True when it is."""
        deadline = self.clock() + timeout
        with self._cond:
            while not self.terminal:
                remaining = deadline - self.clock()
                if remaining <= 0:
                    return False
                self._cond.wait(timeout=remaining)
        return True

    def stream(self, timeout: float = 30.0, poll_s: float = 0.5):
        """Yield :class:`JobUpdate` items until terminal (or ``timeout``).

        The generator re-yields nothing it already delivered; it ends after
        the update that made the job terminal, or once ``timeout`` seconds
        pass without the job finishing.
        """
        seen = 0
        deadline = self.clock() + timeout
        while True:
            with self._cond:
                while seen >= len(self.updates):
                    if self.terminal or self.clock() >= deadline:
                        return
                    self._cond.wait(timeout=poll_s)
                fresh = self.updates[seen:]
                seen = len(self.updates)
            for update in fresh:
                yield update
            if self.terminal and seen >= len(self.updates):
                return
            if self.clock() >= deadline:
                return

    def to_dict(self) -> dict:
        """JSON-able snapshot (the ``repro serve`` result-line shape)."""
        with self._cond:
            return {
                "job_id": self.job_id,
                "tenant": self.spec.tenant,
                "status": self.status,
                "iterations": self.iterations,
                "final_relres": self.final_relres,
                "latency_s": self.latency_s,
                "error": self.error,
                "shed_reason": self.shed_reason,
                "resumable": self.resumable,
                "resumed": self.resumed,
                "attempts": list(self.attempts),
                "checkpoint_dir": self.checkpoint_dir,
                "spec": self.spec.to_dict(),
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"JobRecord({self.job_id}, tenant={self.spec.tenant!r}, "
                f"status={self.status!r})")


class JobTable:
    """Thread-safe id/key -> record registry with monotone job ids."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_id: dict[str, JobRecord] = {}
        self._by_key: dict[str, JobRecord] = {}
        self._counter = itertools.count()

    def new_id(self) -> str:
        with self._lock:
            return f"job-{next(self._counter):05d}"

    def add(self, record: JobRecord) -> None:
        with self._lock:
            self._by_id[record.job_id] = record
            if record.spec.key is not None:
                self._by_key[record.spec.key] = record

    def by_key(self, key: str) -> JobRecord | None:
        with self._lock:
            return self._by_key.get(key, None)

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._by_id.get(job_id, None)
        if record is None:
            raise UnknownJob(f"no job {job_id!r}", job_id=job_id)
        return record

    def all(self) -> list[JobRecord]:
        with self._lock:
            return list(self._by_id.values())
