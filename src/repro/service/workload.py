"""Synthetic multi-tenant workloads for the load generator and chaos tests.

Deterministic by construction: job order, tenants, and per-job parameters
are pure functions of the arguments (no RNG), so a bench or chaos run with
the same knobs submits byte-identical specs — which is what makes shed
counts and fault campaigns reproducible.
"""

from __future__ import annotations

from repro.service.job import JobSpec


def synthetic_jobs(
    n: int,
    tenants: tuple[str, ...] = ("tenant-a", "tenant-b", "tenant-c"),
    case: str = "tc1",
    size: int = 13,
    nparts: int = 2,
    precond: str = "schur1",
    solver: str = "fgmres",
    rtol: float = 1e-6,
    maxiter: int = 400,
    deadline_s: float | None = None,
    backend: str | None = None,
    keyed: bool = False,
) -> list[JobSpec]:
    """``n`` jobs round-robined over ``tenants``.

    Seeds vary per job (different partitionings of the same case), so the
    factor cache sees realistic same-structure traffic without every job
    being literally identical.  ``keyed=True`` assigns idempotency keys
    (``synthetic-<i>``), which the dedup tests rely on.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if not tenants:
        raise ValueError("at least one tenant is required")
    jobs = []
    for i in range(n):
        jobs.append(JobSpec(
            tenant=tenants[i % len(tenants)],
            case=case,
            size=size,
            precond=precond,
            nparts=nparts,
            solver=solver,
            rtol=rtol,
            maxiter=maxiter,
            seed=i % 4,
            deadline_s=deadline_s,
            backend=backend,
            key=f"synthetic-{i}" if keyed else None,
        ))
    return jobs
