"""``repro serve`` — the solve service as a process.

Reads jobs (JSON lines of :class:`~repro.service.job.JobSpec` fields, or a
synthetic ``--gen`` workload), runs them through a :class:`SolveService`,
and reports one JSON line per job with its terminal typed status.

Signals: SIGTERM / SIGINT trigger **graceful drain** — admission closes,
queued jobs shed, running jobs checkpoint at their next chunk boundary,
and a ``repro.service.drain.v1`` manifest lands in the spool directory; a
successor invocation picks the work back up with ``--resume``.  A drained
exit is exit code **0**: job failures are *data* (in the result lines),
not a process error.

``--chaos`` composes the deterministic fault injectors of
:mod:`repro.faults` (e.g. ``proc-kill,straggler,message-corrupt``) against
the live service — the acceptance bar is that every job still ends in a
terminal typed status.

This module lives inside ``repro.service`` so lint rule RPR009 (explicit
timeouts on every blocking call) covers the process wrapper too.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys
import threading

from repro import faults
from repro.service.admission import TenantPolicy
from repro.service.job import JobSpec
from repro.service.service import ServiceConfig, SolveService
from repro.service.workload import synthetic_jobs


def add_serve_arguments(serve: argparse.ArgumentParser) -> None:
    """Register the ``serve`` subcommand's arguments (called by the CLI)."""
    src = serve.add_argument_group("job sources")
    src.add_argument("--jobs", default=None, metavar="PATH",
                     help="JSON-lines job specs ('-' = stdin)")
    src.add_argument("--gen", type=int, default=0, metavar="N",
                     help="also submit N synthetic jobs")
    src.add_argument("--resume", default=None, metavar="MANIFEST",
                     help="re-submit the jobs of a drain manifest "
                     "(checkpointed jobs continue from their snapshot)")
    wl = serve.add_argument_group("synthetic workload shape")
    wl.add_argument("--case", default="tc1")
    wl.add_argument("--size", type=int, default=13)
    wl.add_argument("--nparts", type=int, default=2)
    wl.add_argument("--precond", default="schur1")
    wl.add_argument("--rtol", type=float, default=1e-6)
    wl.add_argument("--maxiter", type=int, default=400)
    wl.add_argument("--deadline", type=float, default=None, metavar="S",
                    help="per-job end-to-end deadline in seconds")
    svc = serve.add_argument_group("service")
    svc.add_argument("--workers", type=int, default=2)
    svc.add_argument("--max-queue", type=int, default=16,
                     help="per-tenant queue bound")
    svc.add_argument("--rate", type=float, default=None,
                     help="per-tenant token-bucket rate (jobs/s)")
    svc.add_argument("--burst", type=int, default=8,
                     help="token-bucket burst capacity")
    svc.add_argument("--max-total", type=int, default=64,
                     help="global queued-job ceiling")
    svc.add_argument("--spool", default=None, metavar="DIR",
                     help="spool directory (checkpoints + drain manifest); "
                     "default: a private temp dir")
    svc.add_argument("--drain-timeout", type=float, default=30.0)
    svc.add_argument("--linger", type=float, default=0.0, metavar="S",
                     help="stay alive S seconds after the last job "
                     "finishes (drain-on-signal testing)")
    out = serve.add_argument_group("output")
    out.add_argument("--out", default=None, metavar="PATH",
                     help="write result JSON lines here (default stdout)")
    chaos = serve.add_argument_group("chaos")
    chaos.add_argument("--chaos", default=None, metavar="KINDS",
                       help="comma-separated fault kinds to inject against "
                       "the live service (repro.faults)")
    chaos.add_argument("--chaos-count", type=int, default=1)
    chaos.add_argument("--chaos-start", type=int, default=4)
    chaos.add_argument("--chaos-rank", type=int, default=None)
    chaos.add_argument("--chaos-seed", type=int, default=0)


def _load_specs(args: argparse.Namespace) -> list[JobSpec]:
    specs: list[JobSpec] = []
    if args.jobs is not None:
        stream = sys.stdin if args.jobs == "-" else open(args.jobs)
        with contextlib.nullcontext(stream) if args.jobs == "-" else stream:
            for line in stream:
                line = line.strip()
                if line:
                    specs.append(JobSpec.from_dict(json.loads(line)))
    if args.gen:
        specs.extend(synthetic_jobs(
            args.gen, case=args.case, size=args.size, nparts=args.nparts,
            precond=args.precond, rtol=args.rtol, maxiter=args.maxiter,
            deadline_s=args.deadline, backend=args.backend,
        ))
    return specs


def _chaos_plan(args: argparse.Namespace) -> faults.FaultPlan | None:
    if not args.chaos:
        return None
    specs = []
    for kind in (k.strip() for k in args.chaos.split(",")):
        if not kind:
            continue
        kind = kind.replace("_", "-")
        rank = args.chaos_rank
        if rank is None and kind in ("rank-dead", "proc-kill", "proc-hang"):
            rank = args.nparts - 1
        specs.append(faults.FaultSpec(
            kind=kind, count=args.chaos_count, start=args.chaos_start,
            rank=rank,
        ))
    return faults.FaultPlan(specs, seed=args.chaos_seed) if specs else None


def cmd_serve(args: argparse.Namespace) -> int:
    config = ServiceConfig(
        workers=args.workers,
        max_total_queue=args.max_total,
        default_policy=TenantPolicy(
            max_queue=args.max_queue, rate=args.rate, burst=args.burst,
        ),
        drain_timeout_s=args.drain_timeout,
        spool_dir=args.spool,
    )
    service = SolveService(config)

    interrupted = threading.Event()

    def _on_signal(signum, frame):  # pragma: no cover - signal path is
        # exercised end-to-end by the CLI drain tests
        interrupted.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    plan = _chaos_plan(args)
    service.start()
    print(f"service: {config.workers} worker(s), spool {service.spool_dir}",
          file=sys.stderr)

    submitted = 0
    overloaded = 0
    with faults.inject(plan) if plan else contextlib.nullcontext():
        if args.resume:
            resumed = service.resume(args.resume)
            submitted += len(resumed)
            print(f"resumed {len(resumed)} job(s) from {args.resume}",
                  file=sys.stderr)
        for spec in _load_specs(args):
            try:
                service.submit(spec)
                submitted += 1
            except Exception as exc:
                overloaded += 1
                print(f"shed at admission: {exc}", file=sys.stderr)

        # serve until every job is terminal, then linger (if asked) so an
        # operator signal can exercise the drain path
        lingered = 0.0
        while not interrupted.is_set():
            if service.wait_all(timeout=0.25):
                if lingered >= args.linger:
                    break
                interrupted.wait(timeout=0.25)
                lingered += 0.25

        manifest = service.drain(timeout=args.drain_timeout)

    if plan is not None and plan.injected:
        summary = ", ".join(f"{k} x{v}" for k, v in plan.summary().items())
        print(f"chaos: {len(plan.injected)} fault(s) fired ({summary})",
              file=sys.stderr)

    records = service.all_jobs()
    lines = [json.dumps(r.to_dict()) for r in records]
    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        print(f"results written to {args.out}", file=sys.stderr)
    else:
        for line in lines:
            print(line)

    by_status: dict[str, int] = {}
    for r in records:
        by_status[r.status] = by_status.get(r.status, 0) + 1
    resumable = sum(1 for j in manifest["jobs"] if j["resumable"])
    print(
        f"served {submitted} job(s), {overloaded} shed at admission; "
        + ", ".join(f"{k}={v}" for k, v in sorted(by_status.items()))
        + (f"; drained with {resumable} resumable "
           f"(manifest {service.spool_dir / 'drain.json'})"
           if interrupted.is_set() else ""),
        file=sys.stderr,
    )
    # a drained exit is a *clean* exit — failures are data, not a crash
    return 0
