"""The multi-tenant solve service: submit, observe, drain.

:class:`SolveService` is the in-process front-end (the ``repro serve`` CLI
wraps it): clients submit :class:`~repro.service.job.JobSpec`s, admission
control (:mod:`repro.service.admission`) sheds overload with typed
:class:`~repro.service.errors.ServiceOverload` rejections, and a pool of
worker threads drains the fair-share queues through
:func:`~repro.service.runner.run_job` on the existing execution backends.
Every job ends in exactly one terminal typed status — ``converged``,
``failed``, ``shed``, or ``cancelled`` — observable via
:meth:`wait` / :meth:`stream` / :meth:`job`.

Graceful drain (``docs/service.md``): :meth:`drain` stops admission
(further submits shed with reason ``"draining"``), flushes the queues
(queued jobs shed as ``drained``), lets running jobs reach their next
chunk boundary — where they checkpoint and shed as *resumable* — then
writes a ``repro.service.drain.v1`` manifest so a successor process can
:meth:`resume` every interrupted job from its snapshot.

Threading: worker threads only touch thread-safe structures (the
admission queues, the breaker board, per-record condition variables, the
rate estimator).  Span *tracing* is single-owner, so traced runs must use
``workers=1``; untraced runs (the default ``NULL_TRACER``) scale out.
All blocking calls carry explicit timeouts (lint rule RPR009).
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.service.admission import AdmissionController, TenantPolicy
from repro.service.breaker import BreakerBoard, BreakerPolicy
from repro.service.deadline import IterationRateEstimator
from repro.service.errors import ServiceOverload, ServiceShutdown
from repro.service.job import JobRecord, JobSpec, JobTable
from repro.service.runner import CaseCache, RunnerContext, run_job

DRAIN_SCHEMA = "repro.service.drain.v1"


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide knobs; per-tenant policy lives in ``policies``."""

    workers: int = 2
    max_total_queue: int = 64
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    chunk_iters: int = 100          # whole restart cycles per solver chunk
    job_retries: int = 1
    retry_backoff_s: float = 0.05
    poll_s: float = 0.05            # worker dequeue wait granularity
    drain_timeout_s: float = 30.0
    checkpoint: bool = True
    spool_dir: str | None = None    # None = private temp dir

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_iters < 1:
            raise ValueError("chunk_iters must be >= 1")
        if self.poll_s <= 0 or self.drain_timeout_s <= 0:
            raise ValueError("poll_s and drain_timeout_s must be > 0")


class SolveService:
    """Admission-controlled, deadline-aware, drainable solve front-end."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        policies: dict[str, TenantPolicy] | None = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config or ServiceConfig()
        self.clock = clock
        self.spool_dir = Path(
            self.config.spool_dir
            or tempfile.mkdtemp(prefix="repro-service-")
        )
        self.admission = AdmissionController(
            default_policy=self.config.default_policy,
            policies=policies,
            max_total=self.config.max_total_queue,
            clock=clock,
        )
        self.breakers = BreakerBoard(self.config.breaker, clock=clock)
        self.rates = IterationRateEstimator()
        self.jobs = JobTable()
        self._draining = threading.Event()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._started = False
        self._ctx = RunnerContext(
            breakers=self.breakers,
            rates=self.rates,
            cases=CaseCache(),
            draining=self._draining,
            clock=clock,
            chunk_iters=self.config.chunk_iters,
            job_retries=self.config.job_retries,
            retry_backoff_s=self.config.retry_backoff_s,
            checkpoint=self.config.checkpoint,
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SolveService":
        if self._started:
            return self
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        for i in range(self.config.workers):
            t = threading.Thread(
                target=self._worker_loop, args=(f"worker-{i}",),
                name=f"repro-service-worker-{i}", daemon=True,
            )
            t.start()
            self._threads.append(t)
        self._started = True
        obs.event("service.start", workers=self.config.workers,
                  spool=str(self.spool_dir))
        return self

    def __enter__(self) -> "SolveService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def _worker_loop(self, name: str) -> None:
        while not self._stop.is_set():
            record = self.admission.next_job(timeout=self.config.poll_s)
            if record is None:
                continue
            record.worker = name
            try:
                run_job(record, self._ctx)
            except Exception as exc:  # the terminal-status guarantee:
                # nothing escapes a worker without classifying the job
                record.error = f"{type(exc).__name__}: {exc}"
                if not record.terminal:
                    if record.status == "queued":
                        record.transition("running", worker=name)
                    record.transition("failed", reason="internal-error")
                obs.event("service.worker_error", worker=name,
                          job=record.job_id, error=record.error)

    # -- submission --------------------------------------------------------

    def submit(
        self, spec: JobSpec | dict, *, _resume_from: dict | None = None
    ) -> JobRecord:
        """Admit ``spec`` (or raise :class:`ServiceOverload` /
        :class:`ServiceShutdown`).  Idempotent on ``spec.key``: an already
        -known key returns its existing record, whatever its status."""
        if isinstance(spec, dict):
            spec = JobSpec.from_dict(spec)
        if not self._started or self._stop.is_set():
            raise ServiceShutdown("service is not running")
        if spec.key is not None:
            existing = self.jobs.by_key(spec.key)
            if existing is not None:
                obs.event("service.dedup", job=existing.job_id, key=spec.key)
                return existing
        record = JobRecord(
            self.jobs.new_id(), spec, clock=self.clock,
            checkpoint_dir=None,
        )
        if self.config.checkpoint and spec.solver == "fgmres":
            record.checkpoint_dir = str(self.spool_dir / record.job_id)
        if _resume_from is not None and _resume_from.get("resumable") \
                and _resume_from.get("checkpoint_dir"):
            # set before admission: a worker may dispatch the instant the
            # record is queued, and must already see the restore fields
            record.checkpoint_dir = _resume_from["checkpoint_dir"]
            record.resumed = True
        if self._draining.is_set():
            return self._shed_submission(
                record, "draining", "service is draining"
            )
        try:
            self.admission.submit(record)
        except ServiceOverload as exc:
            return self._shed_submission(record, exc.reason, str(exc))
        self.jobs.add(record)
        obs.event("service.submit", job=record.job_id, tenant=spec.tenant,
                  case=spec.case, precond=spec.precond,
                  deadline_s=spec.deadline_s)
        return record

    def _shed_submission(
        self, record: JobRecord, reason: str, message: str
    ) -> JobRecord:
        """Shed at admission: record it, then raise with the record attached."""
        record.shed_reason = reason
        record.transition("shed", reason=reason, where="admission")
        self.jobs.add(record)
        obs.event("service.shed", job=record.job_id,
                  tenant=record.spec.tenant, reason=reason,
                  where="admission")
        raise ServiceOverload(
            message, reason=reason, record=record, tenant=record.spec.tenant
        )

    # -- observation / control --------------------------------------------

    def job(self, job_id: str) -> JobRecord:
        return self.jobs.get(job_id)

    def all_jobs(self) -> list[JobRecord]:
        return self.jobs.all()

    def wait(self, job_id: str, timeout: float = 60.0) -> JobRecord:
        record = self.jobs.get(job_id)
        record.wait(timeout=timeout)
        return record

    def wait_all(self, timeout: float = 60.0) -> bool:
        """True when every known job reached a terminal status in time."""
        deadline = self.clock() + timeout
        for record in self.jobs.all():
            remaining = deadline - self.clock()
            if remaining <= 0 or not record.wait(timeout=remaining):
                return False
        return True

    def stream(self, job_id: str, timeout: float = 60.0):
        return self.jobs.get(job_id).stream(timeout=timeout)

    def cancel(self, job_id: str) -> JobRecord:
        """Request cancellation; queued jobs cancel at dispatch, running
        jobs at their next chunk boundary."""
        record = self.jobs.get(job_id)
        record.request_cancel()
        obs.event("service.cancel", job=job_id, status=record.status)
        return record

    def stats(self) -> dict:
        jobs = self.jobs.all()
        by_status: dict[str, int] = {}
        for record in jobs:
            by_status[record.status] = by_status.get(record.status, 0) + 1
        return {
            "jobs": len(jobs),
            "by_status": by_status,
            "admission": self.admission.stats(),
            "breakers": self.breakers.stats(),
            "draining": self._draining.is_set(),
        }

    # -- drain / shutdown --------------------------------------------------

    def drain(self, timeout: float | None = None) -> dict:
        """Graceful stop: shed the queues, let running jobs checkpoint,
        write and return the ``repro.service.drain.v1`` manifest."""
        timeout = self.config.drain_timeout_s if timeout is None else timeout
        obs.event("service.drain.begin", queued=self.admission.depth())
        self._draining.set()
        for record in self.admission.flush():
            record.shed_reason = "drained"
            record.transition("shed", reason="drained", where="queued")
            obs.event("service.shed", job=record.job_id, reason="drained",
                      where="queued")

        deadline = self.clock() + timeout
        for record in self.jobs.all():
            remaining = deadline - self.clock()
            if remaining <= 0:
                break
            record.wait(timeout=remaining)

        self._stop.set()
        for t in self._threads:
            t.join(timeout=max(1.0, self.config.poll_s * 4))
        self._threads = []

        manifest = self._drain_manifest()
        path = self.spool_dir / "drain.json"
        from repro.utils.atomic import atomic_write_text

        atomic_write_text(path, json.dumps(manifest, indent=2) + "\n")
        obs.event("service.drain.done", manifest=str(path),
                  resumable=sum(1 for j in manifest["jobs"] if j["resumable"]))
        return manifest

    def _drain_manifest(self) -> dict:
        jobs = []
        for record in self.jobs.all():
            if record.status == "shed" or not record.terminal:
                jobs.append({
                    "job_id": record.job_id,
                    "spec": record.spec.to_dict(),
                    "status": record.status,
                    "shed_reason": record.shed_reason,
                    "resumable": record.resumable,
                    "checkpoint_dir": record.checkpoint_dir
                    if record.resumable else None,
                    "iterations_done": record.iterations,
                })
        return {
            "schema": DRAIN_SCHEMA,
            "spool_dir": str(self.spool_dir),
            "jobs": jobs,
            "stats": self.stats(),
        }

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop workers without the manifest ceremony (tests, __exit__)."""
        if not self._started:
            return
        self._draining.set()
        self._stop.set()
        for record in self.admission.flush():
            record.shed_reason = "drained"
            record.transition("shed", reason="drained", where="queued")
        for t in self._threads:
            t.join(timeout=timeout)
        self._threads = []
        self._started = False
        obs.event("service.shutdown")

    def resume(self, manifest: dict | str | Path) -> list[JobRecord]:
        """Re-submit every job of a drain manifest; checkpointed jobs
        continue from their snapshot (``restore=True`` on the first chunk).

        Admission applies as usual — a successor under pressure may shed
        resumed jobs again, typed as ever.
        """
        if not isinstance(manifest, dict):
            manifest = json.loads(Path(manifest).read_text())
        if manifest.get("schema") != DRAIN_SCHEMA:
            raise ValueError(
                f"not a {DRAIN_SCHEMA} manifest "
                f"(schema={manifest.get('schema')!r})"
            )
        resumed = []
        for entry in manifest["jobs"]:
            spec = JobSpec.from_dict(entry["spec"])
            try:
                record = self.submit(spec, _resume_from=entry)
            except ServiceOverload as exc:
                resumed.append(exc.record)  # shed again, typed as ever
                continue
            obs.event("service.resume", job=record.job_id,
                      prior=entry["job_id"], resumed=record.resumed)
            resumed.append(record)
        return resumed
