"""End-to-end deadline propagation.

A job's ``deadline_s`` is one budget spent at every layer:

* **queueing** spends it first — a job whose deadline lapsed while queued
  is shed without touching a worker;
* the **Krylov iteration budget** is clamped per solver chunk: the runner
  divides the remaining seconds by an EWMA estimate of this
  (case, preconditioner)'s seconds-per-iteration and rounds down to whole
  FGMRES restart cycles, so a solve never starts a cycle it cannot afford;
* the **comm retry budget** shrinks with it: :func:`scaled_retry_policy`
  caps the transport :class:`~repro.comm.communicator.RetryPolicy` so the
  worst-case cumulative retry wait of a single transfer stays a small
  share of the time left — a nearly-expired job fails fast on a flaky
  link instead of burning its last seconds in backoff.

The estimator learns online: every finished chunk feeds
:meth:`IterationRateEstimator.observe`, so budgets tighten toward real
throughput as traffic flows.
"""

from __future__ import annotations

import math
import threading
import time

from repro.comm.communicator import RetryPolicy


class Deadline:
    """Absolute end-to-end deadline on an injectable monotonic clock.

    ``start`` anchors the budget (default: now).  The runner anchors at the
    job's *submission* time, so seconds spent queued are already spent —
    end-to-end means end-to-end.
    """

    def __init__(
        self,
        seconds: float | None,
        clock=time.monotonic,
        start: float | None = None,
    ) -> None:
        self.clock = clock
        self.seconds = seconds
        if seconds is None:
            self._expires = None
        else:
            self._expires = (clock() if start is None else start) + seconds

    def remaining(self) -> float:
        """Seconds left; ``math.inf`` when the job has no deadline."""
        if self._expires is None:
            return math.inf
        return self._expires - self.clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0


class IterationRateEstimator:
    """EWMA seconds-per-iteration, keyed by (case, precond, size) shape."""

    def __init__(self, alpha: float = 0.3, default: float = 1e-3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.default = default
        self._lock = threading.Lock()
        self._rates: dict[tuple, float] = {}

    def observe(self, key: tuple, wall_s: float, iterations: int) -> None:
        if iterations < 1 or wall_s <= 0:
            return
        rate = wall_s / iterations
        with self._lock:
            prev = self._rates.get(key, None)
            if prev is None:
                self._rates[key] = rate
            else:
                self._rates[key] = (1 - self.alpha) * prev + self.alpha * rate

    def estimate(self, key: tuple) -> float:
        with self._lock:
            return self._rates.get(key, self.default)


def iteration_budget(
    remaining_s: float,
    sec_per_iter: float,
    restart: int,
    max_chunk: int,
) -> int:
    """Iterations affordable in ``remaining_s``, in whole restart cycles.

    Never below one restart cycle (a chunk that cannot checkpoint makes no
    progress), never above ``max_chunk``.
    """
    if not math.isfinite(remaining_s):
        return max_chunk
    affordable = int(remaining_s / max(sec_per_iter, 1e-12))
    cycles = max(1, affordable // max(restart, 1))
    return max(restart, min(max_chunk, cycles * restart))


def scaled_retry_policy(
    base: RetryPolicy, remaining_s: float, share: float = 0.1
) -> RetryPolicy:
    """Shrink ``base`` so one transfer's worst case fits the deadline.

    The worst-case cumulative wait of a policy is
    ``timeout * (backoff^(max_retries+1) - 1) / (backoff - 1)``; the scaled
    policy caps that at ``share * remaining_s`` (floored at 1 ms so a
    nearly-dead job still gets one honest attempt).  Without a deadline the
    base policy is returned unchanged.
    """
    if not math.isfinite(remaining_s):
        return base
    attempts = base.max_retries + 1
    if base.backoff > 1.0:
        worst = base.timeout * (base.backoff**attempts - 1) / (base.backoff - 1)
    else:
        worst = base.timeout * attempts
    budget = max(1e-3, share * max(remaining_s, 0.0))
    if worst <= budget or worst <= 0:
        return base
    return RetryPolicy(
        max_retries=base.max_retries,
        timeout=base.timeout * (budget / worst),
        backoff=base.backoff,
    )
