"""Worker-side execution of one admitted job.

The runner turns a queued :class:`~repro.service.job.JobRecord` into a
terminal typed status.  Its loop is *chunked*: each pass runs
:class:`~repro.resilience.ResilientSolver` for a bounded slice of the
iteration budget (whole FGMRES restart cycles) with checkpointing on, then
re-checks the control signals — cancel, drain, deadline — before the next
slice restores from the newest snapshot and continues.  That is what makes
a long solve *interruptible*: drain and cancel latency is one chunk, never
one whole solve, and a drained job leaves a resumable checkpoint behind.

Robustness composition per chunk:

* the **breaker board** routes the job to the strongest non-tripped
  preconditioner before the attempt (``service.degraded`` event when the
  primary is skipped), and every attempt feeds back success/failure;
* the **deadline** clamps the chunk's ``maxiter`` via the learned
  seconds-per-iteration rate and shrinks the comm
  :class:`~repro.comm.communicator.RetryPolicy`
  (:func:`~repro.service.deadline.scaled_retry_policy`);
* **retry-with-backoff**: a chunk in which every attempt *raised* (e.g.
  comm faults exhausted the whole fallback chain) is retried after a
  bounded, drain-interruptible backoff wait, ``job_retries`` times.

Non-FGMRES solvers cannot checkpoint mid-solve (see ``solve_case``), so
they run as one chunk with the deadline clamped up front.

With ``backend="multiprocess"`` a job's subdomain arithmetic executes in
the supervised rank processes (worker-resident compute,
``docs/algorithms.md`` §8) — the service's worker threads drive the
protocol rounds while the rank processes do the flops, so one service
worker no longer serializes its job's per-rank compute on the GIL.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.cases.base import TestCase
from repro.checkpoint import CheckpointManager
from repro.comm.communicator import RetryPolicy
from repro.resilience import FALLBACK_CHAIN, ResilientSolver
from repro.resilience.resilient import _FAILURE_STATUSES
from repro.service.breaker import BreakerBoard
from repro.service.deadline import (
    Deadline,
    IterationRateEstimator,
    iteration_budget,
    scaled_retry_policy,
)
from repro.service.job import JobRecord

#: FGMRES restart length (mirrors the solve_case default; chunk sizes are
#: whole multiples so every chunk ends on a checkpointable cycle boundary)
RESTART = 20


class CaseCache:
    """Build-once cache of TestCase instances keyed by (case, size)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cases: dict[tuple, TestCase] = {}

    def get(self, case_key: str, size: int | None) -> TestCase:
        from repro.cli import _build_case

        key = (case_key, size)
        with self._lock:
            case = self._cases.get(key, None)
            if case is None:
                case = self._cases[key] = _build_case(case_key, size)
            return case


@dataclass
class RunnerContext:
    """Everything a worker needs besides the record itself."""

    breakers: BreakerBoard
    rates: IterationRateEstimator
    cases: CaseCache
    draining: threading.Event
    clock: object
    chunk_iters: int = 5 * RESTART
    job_retries: int = 1
    retry_backoff_s: float = 0.05
    checkpoint: bool = True
    solver_factory: object = field(default=ResilientSolver)


def _base_retry_policy(backend: str | None) -> RetryPolicy:
    """The per-transfer policy the deadline scales down from."""
    if backend == "multiprocess":
        return RetryPolicy(max_retries=3, timeout=0.1, backoff=2.0)
    return RetryPolicy()


def _route_precond(primary: str, breakers: BreakerBoard) -> tuple[str, bool]:
    """Strongest non-tripped preconditioner, primary first."""
    chain = (primary,) + tuple(n for n in FALLBACK_CHAIN if n != primary)
    for name in chain:
        if breakers.allow(name):
            return name, name != primary
    return "jacobi", True  # unreachable: jacobi is unbreakable


def _feed_breakers(breakers: BreakerBoard, attempts: list) -> None:
    for a in attempts:
        if a.fault is not None or a.status in _FAILURE_STATUSES:
            breakers.record_failure(a.precond)
        elif a.status in ("converged", "maxiter"):
            breakers.record_success(a.precond)


def _relative_residual(case: TestCase, x: np.ndarray) -> float:
    """|b - A x| / |b - A x0| — convergence vs the *original* target."""
    r = case.rhs - case.matrix @ x
    r0 = case.rhs - case.matrix @ case.x0
    denom = float(np.linalg.norm(r0))
    if denom <= 0.0:
        denom = 1.0
    return float(np.linalg.norm(r)) / denom


def run_job(record: JobRecord, ctx: RunnerContext) -> None:
    """Drive ``record`` to a terminal status.  Never raises ServiceFaults
    at the caller; unexpected exceptions are the worker loop's problem."""
    spec = record.spec
    # anchored at submission: time spent queued spends the same budget
    deadline = Deadline(spec.deadline_s, clock=ctx.clock,
                        start=record.created_t)

    if record.cancel_requested:
        record.transition("cancelled", where="queued")
        obs.event("service.cancelled", job=record.job_id, where="queued")
        return
    if deadline.expired:
        record.shed_reason = "deadline"
        record.transition("shed", reason="deadline", where="queued")
        obs.event("service.shed", job=record.job_id, reason="deadline",
                  where="queued")
        return

    record.transition("running", worker=record.worker)
    obs.event("service.dispatch", job=record.job_id, tenant=spec.tenant,
              worker=record.worker, precond=spec.precond)

    case = ctx.cases.get(spec.case, spec.size)
    rate_key = (spec.case, spec.size, spec.precond, spec.nparts)
    base_policy = _base_retry_policy(spec.backend)

    # chunked execution only pays off where mid-solve checkpoints exist
    chunked = spec.solver == "fgmres" and ctx.checkpoint \
        and record.checkpoint_dir is not None
    manager = None
    if chunked:
        manager = CheckpointManager(record.checkpoint_dir, prefix="solve")

    iters_done = 0
    retries_left = ctx.job_retries
    resume = record.resumed
    status = "failed"
    detail: dict = {}

    while True:
        # -- control signals, checked at every chunk boundary ---------------
        if record.cancel_requested:
            status, detail = "cancelled", {"after_iters": iters_done}
            break
        if ctx.draining.is_set():
            record.resumable = manager is not None and bool(manager.steps())
            record.shed_reason = "drained"
            status = "shed"
            detail = {"reason": "drained", "resumable": record.resumable,
                      "after_iters": iters_done}
            break
        remaining = deadline.remaining()
        if remaining <= 0:
            record.error = (f"deadline of {spec.deadline_s}s exceeded after "
                            f"{iters_done} iteration(s)")
            status, detail = "failed", {"reason": "deadline"}
            break
        budget_left = spec.maxiter - iters_done
        if budget_left <= 0:
            record.error = f"iteration budget {spec.maxiter} exhausted"
            status, detail = "failed", {"reason": "maxiter"}
            break

        # -- deadline -> iteration budget -> comm retry policy --------------
        sec_per_iter = ctx.rates.estimate(rate_key)
        if chunked:
            chunk = iteration_budget(
                remaining, sec_per_iter, RESTART,
                min(ctx.chunk_iters, budget_left),
            )
            chunk = min(chunk, budget_left)
        else:
            chunk = budget_left
            if math.isfinite(remaining):
                chunk = min(chunk, iteration_budget(
                    remaining, sec_per_iter, 1, budget_left,
                ))
        policy = scaled_retry_policy(base_policy, remaining)
        if policy is not base_policy:
            obs.event("service.deadline.clamp", job=record.job_id,
                      remaining_s=remaining, timeout=policy.timeout)

        eff_precond, degraded = _route_precond(spec.precond, ctx.breakers)
        if degraded:
            obs.event("service.degraded", job=record.job_id,
                      from_=spec.precond, to=eff_precond,
                      breaker=ctx.breakers.state(spec.precond))

        kwargs = dict(
            nparts=spec.nparts, seed=spec.seed, scheme=spec.scheme,
            rtol=spec.rtol, maxiter=chunk, solver=spec.solver,
            backend=spec.backend, retry_policy=policy,
        )
        if chunked:
            kwargs.update(
                checkpoint_dir=record.checkpoint_dir,
                checkpoint_every=1, restore=resume,
            )

        t0 = ctx.clock()
        res = ctx.solver_factory().solve(case, precond=eff_precond, **kwargs)
        wall = ctx.clock() - t0

        consumed = sum(a.iterations for a in res.attempts)
        iters_done += consumed
        record.iterations = iters_done
        ctx.rates.observe(rate_key, wall, max(consumed, 1))
        _feed_breakers(ctx.breakers, res.attempts)
        record.attempts.extend(
            {"precond": a.precond, "kind": a.kind, "status": a.status,
             "iterations": a.iterations, "fault": a.fault}
            for a in res.attempts
        )
        if res.outcome is not None:
            record.residuals.extend(float(r) for r in res.outcome.residuals)
        record.progress(iterations=iters_done, chunk_status=res.status,
                        precond=eff_precond, wall_s=wall)

        if res.converged:
            out = res.outcome
            if out.x_global is not None:
                record.final_relres = _relative_residual(case, out.x_global)
            status = "converged"
            detail = {"iterations": iters_done, "precond": out.precond,
                      "relres": record.final_relres}
            break

        if res.outcome is None:
            # every attempt raised a typed fault: the job-level retry rung
            if retries_left > 0 and not deadline.expired \
                    and not ctx.draining.is_set():
                retries_left -= 1
                backoff = ctx.retry_backoff_s * 2 ** (
                    ctx.job_retries - retries_left - 1
                )
                backoff = min(backoff, max(deadline.remaining(), 0.0))
                obs.event("service.retry", job=record.job_id,
                          backoff_s=backoff, retries_left=retries_left,
                          reason=res.attempts[-1].fault if res.attempts
                          else res.status)
                if backoff > 0:
                    # drain-interruptible wait; wakes early on shutdown
                    ctx.draining.wait(timeout=backoff)
                resume = chunked and manager is not None \
                    and bool(manager.steps())
                continue
            record.error = (res.attempts[-1].fault if res.attempts
                            else "all attempts faulted")
            status, detail = "failed", {"reason": res.status}
            break

        if res.status == "maxiter" and chunked:
            # honest budget exhaustion of *this chunk*: checkpointed, so the
            # next pass restores and continues the same solve
            resume = True
            continue

        record.error = f"solver ended with status {res.status!r}"
        status, detail = "failed", {"reason": res.status}
        break

    record.transition(status, **detail)
    obs.event("service.complete", job=record.job_id, status=status,
              iterations=iters_done, tenant=spec.tenant)
