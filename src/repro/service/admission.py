"""Per-tenant admission control: bounded queues, rate limits, fair share.

Admission is the service's first robustness line: a saturated tenant is
shed with a typed :class:`~repro.service.errors.ServiceOverload` *at
submission time* — fast, explicit, and with a stable reason slug — instead
of letting its backlog grow until every tenant's latency collapses.

Three independent gates, checked in order:

1. **global queue bound** (``max_total``): the whole service's queued-job
   ceiling — sheds with reason ``"global-queue-full"``;
2. **per-tenant queue bound** (``TenantPolicy.max_queue``) — reason
   ``"tenant-queue-full"``;
3. **token bucket** (``TenantPolicy.rate`` jobs/s, ``burst`` capacity) —
   reason ``"rate-limit"``.

Dispatch is weighted round-robin over tenants with non-empty queues
(``TenantPolicy.weight`` consecutive picks per turn), so a heavy tenant
cannot starve a light one: each gets queue slots *and* scheduler turns in
proportion to policy, never demand.  All waits are bounded (RPR009).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.service.errors import ServiceOverload
from repro.service.job import JobRecord


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's admission knobs (also the service-wide default)."""

    max_queue: int = 16
    rate: float | None = None  # sustained jobs/second; None = unlimited
    burst: int = 8             # token-bucket capacity
    weight: int = 1            # consecutive dispatch picks per RR turn

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be > 0 when given")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.weight < 1:
            raise ValueError("weight must be >= 1")


class TokenBucket:
    """Deterministic token bucket on an injectable monotonic clock."""

    def __init__(self, rate: float, burst: int, now: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = now

    def try_take(self, now: float) -> bool:
        elapsed = max(0.0, now - self._last)
        self._last = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Bounded per-tenant FIFO queues with weighted fair-share dispatch."""

    def __init__(
        self,
        default_policy: TenantPolicy | None = None,
        policies: dict[str, TenantPolicy] | None = None,
        max_total: int = 64,
        clock=time.monotonic,
    ) -> None:
        if max_total < 1:
            raise ValueError("max_total must be >= 1")
        self.default_policy = default_policy or TenantPolicy()
        self.policies = dict(policies or {})
        self.max_total = max_total
        self.clock = clock
        self._cond = threading.Condition()
        self._queues: dict[str, deque[JobRecord]] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._order: list[str] = []   # tenant registration order (stable RR)
        self._cursor = 0              # round-robin position into _order
        self._credits: dict[str, int] = {}
        self.admitted = 0
        self.shed: dict[str, int] = {}

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.policies.get(tenant, self.default_policy)

    def _ensure_tenant(self, tenant: str) -> deque:
        queue = self._queues.get(tenant, None)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._order.append(tenant)
            self._credits[tenant] = self.policy_for(tenant).weight
        return queue

    def _shed(self, reason: str, message: str, record: JobRecord, **ctx) -> None:
        self.shed[reason] = self.shed.get(reason, 0) + 1
        raise ServiceOverload(message, reason=reason, record=record, **ctx)

    # -- submission --------------------------------------------------------

    def submit(self, record: JobRecord) -> None:
        """Enqueue or raise :class:`ServiceOverload` (caller marks the shed)."""
        tenant = record.spec.tenant
        policy = self.policy_for(tenant)
        with self._cond:
            total = sum(len(q) for q in self._queues.values())
            if total >= self.max_total:
                self._shed(
                    "global-queue-full",
                    f"service queue is full ({total}/{self.max_total})",
                    record, tenant=tenant,
                )
            queue = self._ensure_tenant(tenant)
            if len(queue) >= policy.max_queue:
                self._shed(
                    "tenant-queue-full",
                    f"tenant {tenant!r} queue is full "
                    f"({len(queue)}/{policy.max_queue})",
                    record, tenant=tenant,
                )
            if policy.rate is not None:
                bucket = self._buckets.get(tenant, None)
                if bucket is None:
                    bucket = self._buckets[tenant] = TokenBucket(
                        policy.rate, policy.burst, self.clock()
                    )
                if not bucket.try_take(self.clock()):
                    self._shed(
                        "rate-limit",
                        f"tenant {tenant!r} exceeded {policy.rate}/s "
                        f"(burst {policy.burst})",
                        record, tenant=tenant,
                    )
            queue.append(record)
            self.admitted += 1
            self._cond.notify()

    # -- dispatch ----------------------------------------------------------

    def _pick(self) -> JobRecord | None:
        """Weighted round-robin pick; caller holds the lock."""
        n = len(self._order)
        for i in range(n):
            pos = (self._cursor + i) % n
            tenant = self._order[pos]
            queue = self._queues[tenant]
            if not queue:
                continue
            record = queue.popleft()
            self._credits[tenant] -= 1
            if self._credits[tenant] <= 0:
                # turn spent: refill and hand the cursor to the next tenant
                self._credits[tenant] = self.policy_for(tenant).weight
                self._cursor = (pos + 1) % n
            else:
                self._cursor = pos
            return record
        return None

    def next_job(self, timeout: float) -> JobRecord | None:
        """Dequeue the next fair-share job, waiting at most ``timeout``."""
        with self._cond:
            record = self._pick()
            if record is None:
                self._cond.wait(timeout=timeout)
                record = self._pick()
            return record

    # -- introspection / drain --------------------------------------------

    def depth(self, tenant: str | None = None) -> int:
        with self._cond:
            if tenant is not None:
                queue = self._queues.get(tenant, None)
                return 0 if queue is None else len(queue)
            return sum(len(q) for q in self._queues.values())

    def flush(self) -> list[JobRecord]:
        """Empty every queue (the drain path); returns the evicted records."""
        with self._cond:
            evicted: list[JobRecord] = []
            for tenant in self._order:
                queue = self._queues[tenant]
                evicted.extend(queue)
                queue.clear()
            self._cond.notify_all()
            return evicted

    def stats(self) -> dict:
        with self._cond:
            return {
                "admitted": self.admitted,
                "queued": sum(len(q) for q in self._queues.values()),
                "tenants": {t: len(self._queues[t]) for t in self._order},
                "shed": dict(self.shed),
            }
