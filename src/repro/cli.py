"""Command-line interface: ``python -m repro``.

Runs any of the paper's test cases under any preconditioner, a full
paper-style sweep, or a traced run with a per-phase cost breakdown::

    python -m repro solve --case tc1 --precond schur1 --nparts 8
    python -m repro sweep --case tc2 --preconds schur1,block2 --p 2,4,8,16
    python -m repro trace poisson2d --precond schur1 --nparts 8
    python -m repro faults tc1 --kind bad-pivot --precond schur1
    python -m repro lint src/
    python -m repro check-determinism --cases tc1,tc3 --size 17
    python -m repro info

``solve`` and ``trace`` exit nonzero when the final status is anything but
``converged`` and print the classified status; ``faults`` runs a solve under
deterministic fault injection through the resilient fallback chain
(docs/robustness.md); ``lint`` and ``check-determinism`` drive the
correctness tooling of :mod:`repro.analysis` (docs/static-analysis.md).

Sizes default to laptop scale; ``--size`` overrides the case's resolution
parameter (grid points per side, or 1/h for tc3).  Cases are addressable by
paper key (``tc1``) or descriptive alias (``poisson2d``).
"""

from __future__ import annotations

import argparse
import sys

from repro import faults, obs
from repro.analysis import sanitize
from repro.cases import CASE_BUILDERS
from repro.comm.backends import BACKEND_NAMES
from repro.resilience.errors import SolverFault
from repro.factor import cache as factor_cache
from repro.core.driver import PRECONDITIONER_NAMES, SOLVER_NAMES, solve_case
from repro.core.experiment import run_sweep
from repro.perfmodel.machine import machine_by_name
from repro.resilience import ResilientSolver
from repro.service.serve import add_serve_arguments, cmd_serve

#: descriptive aliases for the paper's tcN keys
CASE_ALIASES = {
    "poisson2d": "tc1",
    "poisson3d": "tc2",
    "poisson_unstructured": "tc3",
    "heat3d": "tc4",
    "convection2d": "tc5",
    "elasticity_ring": "tc6",
}


def _build_case(key: str, size: int | None):
    key = CASE_ALIASES.get(key, key)
    try:
        builder = CASE_BUILDERS[key]
    except KeyError:
        raise SystemExit(
            f"unknown case {key!r}; pick from {sorted(CASE_BUILDERS)} "
            f"or aliases {sorted(CASE_ALIASES)}"
        )
    if size is None:
        return builder()
    if key == "tc3":
        return builder(target_h=1.0 / size)
    if key == "tc6":
        return builder(n_theta=size, n_r=max(3, size // 3))
    return builder(n=size)


def _parse_int_list(text: str) -> list[int]:
    try:
        return [int(t) for t in text.split(",") if t]
    except ValueError:
        raise SystemExit(f"expected a comma-separated integer list, got {text!r}")


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel algebraic preconditioners (Cai & Sosonkina, IPPS 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cache_opts = argparse.ArgumentParser(add_help=False)
    cache_opts.add_argument(
        "--no-factor-cache", action="store_true",
        help="disable the content-addressed factorization cache "
        "(docs/performance.md); every ILU setup recomputes from scratch",
    )

    backend_opts = argparse.ArgumentParser(add_help=False)
    backend_opts.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="execution backend: inprocess (simulated ranks, default) or "
        "multiprocess (ranks as supervised OS processes — "
        "docs/robustness.md); default consults REPRO_COMM_BACKEND",
    )

    solve = sub.add_parser("solve", parents=[cache_opts, backend_opts],
                           help="run one case under one preconditioner")
    solve.add_argument("--case", default="tc1", help=f"one of {sorted(CASE_BUILDERS)}")
    solve.add_argument("--precond", default="schur1",
                       help=f"one of {PRECONDITIONER_NAMES}")
    solve.add_argument("--nparts", type=int, default=4)
    solve.add_argument("--size", type=int, default=None, help="resolution override")
    solve.add_argument("--seed", type=int, default=0, help="partitioning seed")
    solve.add_argument("--scheme", choices=("general", "box", "spectral"), default="general")
    solve.add_argument("--machine", default="linux-cluster")
    solve.add_argument("--rtol", type=float, default=1e-6)
    solve.add_argument("--maxiter", type=int, default=500)
    solve.add_argument("--solver", choices=SOLVER_NAMES, default="fgmres",
                       help="outer Krylov method")
    solve.add_argument("--resilient", action="store_true",
                       help="wrap the solve in the retry/fallback chain "
                       "(docs/robustness.md)")
    solve.add_argument("--checkpoint-dir", default=None,
                       help="snapshot the FGMRES iterate at restarts into "
                       "this directory (repro.ckpt.v1)")
    solve.add_argument("--checkpoint-every", type=int, default=1,
                       help="restart cycles between snapshots")
    solve.add_argument("--restore", action="store_true",
                       help="seed x0 from the newest intact checkpoint in "
                       "--checkpoint-dir")
    solve.add_argument("--sanitize", nargs="?", const="fp", default=None,
                       metavar="MODES",
                       help="arm runtime sanitizers for this solve (comma "
                       "list of fp,race; bare flag means fp) — NaN/Inf "
                       "trap as typed faults, races in shared setup state "
                       "abort (docs/static-analysis.md)")

    sweep = sub.add_parser("sweep", parents=[cache_opts],
                          help="run a paper-style table")
    sweep.add_argument("--case", default="tc1")
    sweep.add_argument("--preconds", default="schur1,schur2,block1,block2",
                       help="comma-separated preconditioner names")
    sweep.add_argument("--p", default="2,4,8,16", help="comma-separated P values")
    sweep.add_argument("--size", type=int, default=None)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--scheme", choices=("general", "box", "spectral"), default="general")
    sweep.add_argument("--machine", default="linux-cluster")
    sweep.add_argument("--maxiter", type=int, default=500)

    trace = sub.add_parser(
        "trace",
        parents=[cache_opts, backend_opts],
        help="run one case under tracing; print the per-phase breakdown "
        "and write a machine-readable trace file",
    )
    trace.add_argument("case", help=f"one of {sorted(CASE_BUILDERS)} or an alias")
    trace.add_argument("--precond", default="schur1",
                       help=f"one of {PRECONDITIONER_NAMES}")
    trace.add_argument("--nparts", type=int, default=4)
    trace.add_argument("--size", type=int, default=None, help="resolution override")
    trace.add_argument("--seed", type=int, default=0, help="partitioning seed")
    trace.add_argument("--scheme", choices=("general", "box", "spectral"),
                       default="general")
    trace.add_argument("--machine", default="linux-cluster")
    trace.add_argument("--rtol", type=float, default=1e-6)
    trace.add_argument("--maxiter", type=int, default=500)
    trace.add_argument("--out", default=None,
                       help="trace JSON path (default trace_<case>_<precond>_"
                       "p<nparts>.json)")
    trace.add_argument("--csv", default=None,
                       help="also write a flat per-span CSV to this path")
    trace.add_argument("--format", choices=("table", "json"), default="table",
                       help="stdout format: human tables (default) or the "
                       "repro.trace.v1 document as a single JSON object")

    fault = sub.add_parser(
        "faults",
        parents=[cache_opts, backend_opts],
        help="run one case under deterministic fault injection through the "
        "resilient retry/fallback chain",
    )
    fault.add_argument("case", help=f"one of {sorted(CASE_BUILDERS)} or an alias")
    fault.add_argument("--kind", default="bad-pivot", choices=faults.FAULT_KINDS,
                       type=lambda s: s.replace("_", "-"),
                       help="fault class to inject (underscores accepted)")
    fault.add_argument("--count", type=int, default=1,
                       help="how many times the fault fires (-1 = unlimited)")
    fault.add_argument("--start", type=int, default=0,
                       help="matching opportunities to skip before firing")
    fault.add_argument("--target", default=None,
                       help="comma-separated fault scopes (preconditioner "
                       "short names); default: fault everywhere")
    fault.add_argument("--value", type=float, default=1e-300,
                       help="payload for tiny-pivot / ghost-scale")
    fault.add_argument("--rank", type=int, default=None,
                       help="target rank for rank-dead / proc-kill / "
                       "proc-hang / message faults (rank-targeting kinds "
                       "default to nparts - 1)")
    fault.add_argument("--delay", type=float, default=5e-3,
                       help="per-exchange straggler delay in seconds")
    fault.add_argument("--checkpoint-dir", default=None,
                       help="checkpoint the solve so rank-dead recovery "
                       "resumes from the newest intact snapshot")
    fault.add_argument("--fault-seed", type=int, default=0)
    fault.add_argument("--precond", default="schur1",
                       help=f"one of {PRECONDITIONER_NAMES}")
    fault.add_argument("--nparts", type=int, default=4)
    fault.add_argument("--size", type=int, default=None, help="resolution override")
    fault.add_argument("--seed", type=int, default=0, help="partitioning seed")
    fault.add_argument("--scheme", choices=("general", "box", "spectral"),
                       default="general")
    fault.add_argument("--rtol", type=float, default=1e-6)
    fault.add_argument("--maxiter", type=int, default=500)
    fault.add_argument("--out", default=None,
                       help="also write a JSON trace of the faulted run")

    lint = sub.add_parser(
        "lint",
        help="run the repo's RPRxxx AST lint rules (docs/static-analysis.md)",
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to lint (default src/repro)")
    lint.add_argument("--baseline", default=None,
                      help="baseline JSON of grandfathered violations "
                      "(default: lint-baseline.json when it exists)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="report every violation, baselined or not")
    lint.add_argument("--write-baseline", default=None, metavar="PATH",
                      help="write the current violations as the new baseline "
                      "and exit 0")
    lint.add_argument("--json", default=None, metavar="PATH",
                      help="write a repro.lint.v1 JSON report")

    proto = sub.add_parser(
        "verify-protocol",
        help="protocol/concurrency static analysis: wire contracts "
        "(RPR010), state-machine model check (RPR011), lock-order and "
        "blocking-under-lock (RPR012)",
    )
    proto.add_argument("root", nargs="?", default=None,
                       help="package root to analyse (the directory holding "
                       "comm/, service/, ...; default: the installed "
                       "repro package)")
    proto.add_argument("--baseline", default=None,
                       help="baseline JSON of grandfathered findings "
                       "(default: proto-baseline.json when it exists)")
    proto.add_argument("--no-baseline", action="store_true",
                       help="report every finding, baselined or not")
    proto.add_argument("--write-baseline", default=None, metavar="PATH",
                       help="write the current findings as the new baseline "
                       "and exit 0")
    proto.add_argument("--json", default=None, metavar="PATH",
                       help="write a repro.proto.v1 JSON report")

    det = sub.add_parser(
        "check-determinism",
        help="bitwise-compare solves across kernel tiers, repeats, and "
        "serial vs parallel setup (repro.determinism.v1)",
    )
    det.add_argument("--cases", default="tc1,tc3",
                     help="comma-separated case keys/aliases")
    det.add_argument("--size", type=int, default=17,
                     help="resolution override applied to every case")
    det.add_argument("--nparts", type=int, default=4)
    det.add_argument("--tiers", default=None,
                     help="comma-separated kernel tiers (default: all "
                     "available in this process)")
    det.add_argument("--workers", default="1,4",
                     help="comma-separated REPRO_SETUP_WORKERS values to sweep")
    det.add_argument("--check", default=None,
                     help="comma-separated check kinds to run (default: all); "
                     "e.g. --check backend compares inprocess vs "
                     "multiprocess execution bitwise")
    det.add_argument("--precond", default="schur1",
                     help=f"one of {PRECONDITIONER_NAMES}")
    det.add_argument("--seed", type=int, default=0)
    det.add_argument("--rtol", type=float, default=1e-6)
    det.add_argument("--maxiter", type=int, default=200)
    det.add_argument("--json", default=None, metavar="PATH",
                     help="write the repro.determinism.v1 report here")

    serve = sub.add_parser(
        "serve",
        parents=[cache_opts, backend_opts],
        help="run the multi-tenant solve service: admission control, "
        "deadlines, circuit breakers, graceful SIGTERM drain "
        "(docs/service.md)",
    )
    add_serve_arguments(serve)

    sub.add_parser("info", help="list available cases, preconditioners, machines")
    return parser


def _status_text(status: str) -> str:
    return "converged" if status == "converged" else f"NOT CONVERGED [{status}]"


def cmd_solve(args: argparse.Namespace) -> int:
    case = _build_case(args.case, args.size)
    machine = machine_by_name(args.machine)
    kwargs = dict(
        precond=args.precond,
        nparts=args.nparts,
        seed=args.seed,
        scheme=args.scheme,
        rtol=args.rtol,
        maxiter=args.maxiter,
        solver=args.solver,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        restore=args.restore,
        backend=args.backend,
    )
    if args.restore and args.checkpoint_dir is None:
        raise SystemExit("--restore requires --checkpoint-dir")
    modes = [m for m in (args.sanitize or "").split(",") if m]
    try:
        with sanitize.sanitizing(*modes):
            if args.resilient:
                res = ResilientSolver().solve(case, **kwargs)
                _print_attempts(res)
                out = res.outcome
                if out is None:
                    print(f"  all attempts failed; final status: {res.status}")
                    return 1
            else:
                out = solve_case(case, **kwargs)
    except (SolverFault, sanitize.RaceDetected) as exc:
        if not modes:
            raise
        # the sanitizers speak the typed taxonomy; report the classification
        # instead of a traceback so scripted callers can branch on it
        status = getattr(exc, "status", "race")
        print(f"sanitizer trapped a fault [{status}]: {exc}")
        return 3
    print(f"{case.title}: {case.num_dofs} unknowns, P={args.nparts}, "
          f"{out.precond}, {args.scheme} partitioning")
    # guarded: a zero initial residual (x0 already exact) must not divide
    reduction = (f"{out.residuals[-1] / out.residuals[0]:.2e}"
                 if out.residuals and out.residuals[0] > 0 else "n/a")
    print(f"  {_status_text(out.status)} in {out.iterations} {args.solver} "
          f"iterations (reduction {reduction})")
    print(f"  simulated time on {machine.name}: {out.sim_time(machine):.3f}s "
          f"(setup {machine.time(out.setup_ledger):.3f}s)")
    if out.error is not None:
        print(f"  max error vs exact solution: {out.error:.3e}")
    return 0 if out.converged else 1


def _print_attempts(res) -> None:
    if len(res.attempts) > 1:
        for a in res.attempts:
            detail = a.fault or f"{a.status} after {a.iterations} iterations"
            print(f"  [{a.kind}] {a.precond}: {detail}")


def cmd_sweep(args: argparse.Namespace) -> int:
    case = _build_case(args.case, args.size)
    machine = machine_by_name(args.machine)
    sweep = run_sweep(
        case,
        [name for name in args.preconds.split(",") if name],
        _parse_int_list(args.p),
        seed=args.seed,
        scheme=args.scheme,
        maxiter=args.maxiter,
    )
    print(sweep.table(machine))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    case = _build_case(args.case, args.size)
    machine = machine_by_name(args.machine)
    with obs.tracing() as tracer:
        out = solve_case(
            case,
            precond=args.precond,
            nparts=args.nparts,
            seed=args.seed,
            scheme=args.scheme,
            rtol=args.rtol,
            maxiter=args.maxiter,
            backend=args.backend,
        )

    # the contract's invariant: span-attributed ledger deltas reproduce the
    # run's total (setup + solve) cost exactly
    totals = out.setup_ledger.counts()
    for key, value in out.solve_ledger.counts().items():
        totals[key] += value
    err = obs.conservation_error(tracer.spans, totals)

    meta = {
        "case": case.key,
        "title": case.title,
        "num_dofs": case.num_dofs,
        "precond": args.precond,
        "precond_title": out.precond,
        "nparts": args.nparts,
        "scheme": args.scheme,
        "seed": args.seed,
        "machine": machine.name,
        "iterations": out.iterations,
        "converged": out.converged,
        "status": out.status,
    }

    if args.format == "json":
        # machine consumers get the repro.trace.v1 document on stdout —
        # nothing else is printed there, so the output is parseable as-is
        import json

        print(json.dumps(obs.trace_to_dict(tracer, meta)))
    else:
        print(f"{case.title}: {case.num_dofs} unknowns, P={args.nparts}, "
              f"{out.precond} — {_status_text(out.status)} in "
              f"{out.iterations} iterations")
        print(obs.format_phase_table(tracer.spans, machine, args.nparts))

        worker_table = obs.format_worker_table(tracer)
        if worker_table:
            # per-rank merge of the rank processes' self-measured command
            # spans (comm.worker.round events): where worker-resident
            # compute actually spent its CPU time, rank by rank
            print(worker_table)

        cs = out.comm_stats
        print(f"comm [{out.backend}]: {cs['messages']} messages, "
              f"{cs['retries']} retries, {cs['straggler_waits']} straggler "
              f"waits, {cs['timeouts']} timeouts, "
              f"{cs['checksum_failures']} checksum failures")

        print(f"ledger conservation: {'OK' if err < 1e-9 else 'FAILED'} "
              f"(max relative error {err:.2e})")

        cstats = factor_cache.stats()
        print(f"factor cache: {cstats['hits']} hits, {cstats['misses']} "
              f"misses, {cstats['bypasses']} bypasses"
              + ("" if cstats["enabled"] else " (disabled)"))

    diag = sys.stderr if args.format == "json" else sys.stdout
    precond_slug = args.precond.replace("+", "_")
    out_path = args.out or f"trace_{args.case}_{precond_slug}_p{args.nparts}.json"
    written = obs.write_json_trace(out_path, tracer, meta)
    print(f"trace written to {written}", file=diag)
    if args.csv:
        print(f"span CSV written to {obs.write_csv_trace(args.csv, tracer)}",
              file=diag)
    if err >= 1e-9:
        return 2
    return 0 if out.converged else 1


def cmd_faults(args: argparse.Namespace) -> int:
    case = _build_case(args.case, args.size)
    rank = args.rank
    if rank is None and args.kind in ("rank-dead", "proc-kill", "proc-hang"):
        rank = args.nparts - 1
    spec = faults.FaultSpec(
        kind=args.kind, count=args.count, start=args.start,
        target=args.target, value=args.value, rank=rank, delay=args.delay,
    )
    plan = faults.FaultPlan(spec, seed=args.fault_seed)
    solver = ResilientSolver()
    kwargs = dict(
        precond=args.precond, nparts=args.nparts, seed=args.seed,
        scheme=args.scheme, rtol=args.rtol, maxiter=args.maxiter,
        backend=args.backend,
    )
    if args.checkpoint_dir is not None:
        kwargs["checkpoint_dir"] = args.checkpoint_dir
    with obs.tracing() as tracer, faults.inject(plan):
        res = solver.solve(case, **kwargs)

    print(f"{case.title}: {case.num_dofs} unknowns, P={args.nparts}, "
          f"primary {args.precond}, fault {args.kind} x{args.count}")
    if plan.injected:
        for rec in plan.injected[:8]:
            where = {k: v for k, v in rec.items() if k != "kind"}
            print(f"  injected {rec['kind']}: {where}")
        if len(plan.injected) > 8:
            by_kind = ", ".join(f"{k} x{v}" for k, v in plan.summary().items())
            print(f"  ... {len(plan.injected)} faults fired in total ({by_kind})")
    else:
        print("  no faults fired (check --target / --start against the run)")
    for a in res.attempts:
        detail = a.fault or f"{a.status} after {a.iterations} iterations"
        print(f"  [{a.kind}] {a.precond}: {detail}")
    verdict = "recovered" if res.recovered else _status_text(res.status)
    print(f"  final: {verdict} via {res.final_precond} "
          f"({len(res.attempts)} attempt(s))")
    if args.out:
        meta = {
            "case": case.key,
            "precond": args.precond,
            "fault": {"kind": args.kind, "count": args.count,
                      "start": args.start, "target": args.target},
            "injected": plan.injected,
            "status": res.status,
            "recovered": res.recovered,
        }
        print(f"trace written to {obs.write_json_trace(args.out, tracer, meta)}")
    return 0 if res.converged else 1


def cmd_lint(args: argparse.Namespace) -> int:
    import os

    from repro.analysis.lint import lint_paths, write_json_report
    from repro.analysis.lint.baseline import DEFAULT_BASELINE, write_baseline

    if args.write_baseline is not None:
        report = lint_paths(args.paths)
        path = write_baseline(args.write_baseline, report.violations)
        print(f"baseline with {len(report.violations)} violation(s) "
              f"written to {path}")
        return 0

    baseline = args.baseline
    if baseline is None and not args.no_baseline \
            and os.path.exists(DEFAULT_BASELINE):
        baseline = DEFAULT_BASELINE
    if args.no_baseline:
        baseline = None
    report = lint_paths(args.paths, baseline_path=baseline)

    shown = report.violations if baseline is None else report.new_violations
    for v in shown:
        print(v.format())
    for err in report.parse_errors:
        print(f"parse error: {err}")
    counts = report.counts()
    summary = ", ".join(f"{code} x{n}" for code, n in sorted(counts.items()))
    print(f"{report.files_checked} file(s): {len(shown)} violation(s)"
          + (f" ({summary})" if shown and summary else "")
          + (f", {len(report.violations) - len(report.new_violations)} "
             "baselined" if baseline is not None else "")
          + (f", {len(report.suppressed)} suppressed by noqa"
             if report.suppressed else ""))
    for entry in report.stale_noqas:
        print(f"stale noqa: {entry['path']}:{entry['line']}: "
              f"{entry['code']} no longer fires on this line — delete it")
    if report.baseline is not None and report.baseline.stale:
        print(f"note: {len(report.baseline.stale)} stale baseline "
              "entr(ies) no longer match — shrink the baseline")
    if args.json:
        print(f"report written to {write_json_report(args.json, report)}")
    return 0 if report.clean and not report.parse_errors else 1


def cmd_verify_protocol(args: argparse.Namespace) -> int:
    import os

    from repro.analysis.lint.baseline import write_baseline
    from repro.analysis.proto.report import (
        DEFAULT_PROTO_BASELINE,
        verify_protocol,
        write_proto_report,
    )

    if args.write_baseline is not None:
        report = verify_protocol(root=args.root)
        path = write_baseline(args.write_baseline, report.violations)
        print(f"proto baseline with {len(report.violations)} finding(s) "
              f"written to {path}")
        return 0

    baseline = args.baseline
    if baseline is None and not args.no_baseline \
            and os.path.exists(DEFAULT_PROTO_BASELINE):
        baseline = DEFAULT_PROTO_BASELINE
    if args.no_baseline:
        baseline = None
    report = verify_protocol(root=args.root, baseline_path=baseline)

    shown = report.violations if baseline is None else report.new_violations
    for v in shown:
        print(v.format())
    for err in report.parse_errors:
        print(f"parse error: {err}")
    for entry in report.stale_noqas:
        print(f"stale noqa: {entry['path']}:{entry['line']}: "
              f"{entry['code']} no longer fires on this line — delete it")

    wire = report.wire
    opcodes = wire.get("opcodes", {})
    kinds = wire.get("frame_kinds", {})
    dtypes = wire.get("dtypes", {})
    print(f"wire: {len(opcodes)} opcode(s), {len(kinds)} frame kind(s), "
          f"{len(dtypes)} dtype(s) covered")
    for m in report.machines:
        status = "ok" if not m["violations"] else \
            f"{len(m['violations'])} invariant violation(s)"
        print(f"machine {m['machine']}: {m['states_explored']} state(s), "
              f"{m['product_states_explored']} product state(s), "
              f"{len(m['invariants_proven'])} invariant(s) proven — {status}")
    locks = report.locks
    print(f"locks: {len(locks.get('locks', []))} lock(s), "
          f"{locks.get('functions_scanned', 0)} function(s), "
          f"{len(locks.get('order_edges', []))} order edge(s), "
          f"{len(locks.get('cycles', []))} cycle(s)")
    print(f"{len(shown)} finding(s)"
          + (f", {len(report.violations) - len(report.new_violations)} "
             "baselined" if baseline is not None else "")
          + (f", {len(report.suppressed)} suppressed by noqa"
             if report.suppressed else ""))
    if report.baseline is not None and report.baseline.stale:
        print(f"note: {len(report.baseline.stale)} stale baseline "
              "entr(ies) no longer match — shrink the baseline")
    if args.json:
        print(f"report written to {write_proto_report(args.json, report)}")
    return 0 if report.clean else 1


def cmd_check_determinism(args: argparse.Namespace) -> int:
    from repro.analysis.determinism import (
        CHECK_KINDS,
        available_tiers,
        check_determinism,
    )

    cases = [
        _build_case(key.strip(), args.size)
        for key in args.cases.split(",") if key.strip()
    ]
    if not cases:
        raise SystemExit("no cases given")
    tiers = ([t for t in args.tiers.split(",") if t]
             if args.tiers is not None else None)
    known = available_tiers()
    for t in tiers or ():
        if t not in known:
            raise SystemExit(
                f"tier {t!r} not available in this process; pick from {known}"
            )
    checks = None
    if args.check is not None:
        checks = [c.strip() for c in args.check.split(",") if c.strip()]
        for c in checks:
            if c not in CHECK_KINDS:
                raise SystemExit(
                    f"unknown check {c!r}; pick from {CHECK_KINDS}"
                )
    report = check_determinism(
        cases,
        nparts=args.nparts,
        tiers=tiers,
        workers=_parse_int_list(args.workers),
        precond=args.precond,
        seed=args.seed,
        rtol=args.rtol,
        maxiter=args.maxiter,
        checks=checks,
    )
    print(f"determinism matrix: {len(cases)} case(s), tiers "
          f"{','.join(report.tiers)}, setup workers "
          f"{','.join(str(w) for w in report.workers)}, P={report.nparts}")
    print(report.summary())
    n_fail = len(report.failures())
    print("all checks bitwise-identical" if report.identical
          else f"{n_fail} check(s) MISMATCHED")
    if args.json:
        print(f"report written to {report.write_json(args.json)}")
    return 0 if report.identical else 1


def cmd_info(_args: argparse.Namespace) -> int:
    from repro.perfmodel.machine import _MACHINES

    print("cases:          ", ", ".join(sorted(CASE_BUILDERS)))
    print("preconditioners:", ", ".join(PRECONDITIONER_NAMES))
    print("machines:       ", ", ".join(sorted(_MACHINES)))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    if getattr(args, "no_factor_cache", False):
        factor_cache.configure(enabled=False)
    commands = {
        "solve": cmd_solve,
        "sweep": cmd_sweep,
        "trace": cmd_trace,
        "faults": cmd_faults,
        "lint": cmd_lint,
        "verify-protocol": cmd_verify_protocol,
        "check-determinism": cmd_check_determinism,
        "serve": cmd_serve,
        "info": cmd_info,
    }
    return commands[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
