"""Command-line interface: ``python -m repro``.

Runs any of the paper's test cases under any preconditioner, or a full
paper-style sweep, from the shell::

    python -m repro solve --case tc1 --precond schur1 --nparts 8
    python -m repro sweep --case tc2 --preconds schur1,block2 --p 2,4,8,16
    python -m repro info

Sizes default to laptop scale; ``--size`` overrides the case's resolution
parameter (grid points per side, or 1/h for tc3).
"""

from __future__ import annotations

import argparse
import sys

from repro.cases import CASE_BUILDERS
from repro.core.driver import PRECONDITIONER_NAMES, solve_case
from repro.core.experiment import run_sweep
from repro.perfmodel.machine import machine_by_name


def _build_case(key: str, size: int | None):
    try:
        builder = CASE_BUILDERS[key]
    except KeyError:
        raise SystemExit(f"unknown case {key!r}; pick from {sorted(CASE_BUILDERS)}")
    if size is None:
        return builder()
    if key == "tc3":
        return builder(target_h=1.0 / size)
    if key == "tc6":
        return builder(n_theta=size, n_r=max(3, size // 3))
    return builder(n=size)


def _parse_int_list(text: str) -> list[int]:
    try:
        return [int(t) for t in text.split(",") if t]
    except ValueError:
        raise SystemExit(f"expected a comma-separated integer list, got {text!r}")


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel algebraic preconditioners (Cai & Sosonkina, IPPS 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="run one case under one preconditioner")
    solve.add_argument("--case", default="tc1", help=f"one of {sorted(CASE_BUILDERS)}")
    solve.add_argument("--precond", default="schur1",
                       help=f"one of {PRECONDITIONER_NAMES}")
    solve.add_argument("--nparts", type=int, default=4)
    solve.add_argument("--size", type=int, default=None, help="resolution override")
    solve.add_argument("--seed", type=int, default=0, help="partitioning seed")
    solve.add_argument("--scheme", choices=("general", "box", "spectral"), default="general")
    solve.add_argument("--machine", default="linux-cluster")
    solve.add_argument("--rtol", type=float, default=1e-6)
    solve.add_argument("--maxiter", type=int, default=500)

    sweep = sub.add_parser("sweep", help="run a paper-style table")
    sweep.add_argument("--case", default="tc1")
    sweep.add_argument("--preconds", default="schur1,schur2,block1,block2",
                       help="comma-separated preconditioner names")
    sweep.add_argument("--p", default="2,4,8,16", help="comma-separated P values")
    sweep.add_argument("--size", type=int, default=None)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--scheme", choices=("general", "box", "spectral"), default="general")
    sweep.add_argument("--machine", default="linux-cluster")
    sweep.add_argument("--maxiter", type=int, default=500)

    sub.add_parser("info", help="list available cases, preconditioners, machines")
    return parser


def cmd_solve(args: argparse.Namespace) -> int:
    case = _build_case(args.case, args.size)
    machine = machine_by_name(args.machine)
    out = solve_case(
        case,
        precond=args.precond,
        nparts=args.nparts,
        seed=args.seed,
        scheme=args.scheme,
        rtol=args.rtol,
        maxiter=args.maxiter,
    )
    print(f"{case.title}: {case.num_dofs} unknowns, P={args.nparts}, "
          f"{out.precond}, {args.scheme} partitioning")
    status = "converged" if out.converged else "NOT CONVERGED"
    print(f"  {status} in {out.iterations} FGMRES(20) iterations "
          f"(reduction {out.residuals[-1] / out.residuals[0]:.2e})")
    print(f"  simulated time on {machine.name}: {out.sim_time(machine):.3f}s "
          f"(setup {machine.time(out.setup_ledger):.3f}s)")
    if out.error is not None:
        print(f"  max error vs exact solution: {out.error:.3e}")
    return 0 if out.converged else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    case = _build_case(args.case, args.size)
    machine = machine_by_name(args.machine)
    sweep = run_sweep(
        case,
        [name for name in args.preconds.split(",") if name],
        _parse_int_list(args.p),
        seed=args.seed,
        scheme=args.scheme,
        maxiter=args.maxiter,
    )
    print(sweep.table(machine))
    return 0


def cmd_info(_args: argparse.Namespace) -> int:
    from repro.perfmodel.machine import _MACHINES

    print("cases:          ", ", ".join(sorted(CASE_BUILDERS)))
    print("preconditioners:", ", ".join(PRECONDITIONER_NAMES))
    print("machines:       ", ", ".join(sorted(_MACHINES)))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    return {"solve": cmd_solve, "sweep": cmd_sweep, "info": cmd_info}[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
