"""Generic mesh container and mesh-level utilities."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Mesh:
    """A simplicial mesh (triangles in 2D, tetrahedra in 3D).

    Attributes
    ----------
    points:
        ``(n, dim)`` vertex coordinates.
    elements:
        ``(ne, dim+1)`` vertex indices of each simplex.
    boundary_sets:
        Named sets of boundary vertex indices (e.g. ``"left"``, ``"hole"``,
        ``"gamma1"``).  The union over all names is available as
        :meth:`all_boundary_nodes`.
    structured_shape:
        For structured grids, the lattice dimensions ``(nx, ny[, nz])`` in
        points (x fastest); ``None`` for unstructured meshes.  Geometric box
        partitioning and the FFT Poisson solver require this.
    """

    points: np.ndarray
    elements: np.ndarray
    boundary_sets: dict[str, np.ndarray] = field(default_factory=dict)
    structured_shape: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.float64)
        self.elements = np.asarray(self.elements, dtype=np.int64)
        if self.points.ndim != 2:
            raise ValueError("points must be (n, dim)")
        dim = self.points.shape[1]
        if self.elements.ndim != 2 or self.elements.shape[1] != dim + 1:
            raise ValueError(
                f"elements must be (ne, {dim + 1}) for dim={dim}, "
                f"got {self.elements.shape}"
            )
        if self.elements.size and (
            self.elements.min() < 0 or self.elements.max() >= len(self.points)
        ):
            raise ValueError("element indices out of range")

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    @property
    def num_points(self) -> int:
        return len(self.points)

    @property
    def num_elements(self) -> int:
        return len(self.elements)

    def all_boundary_nodes(self) -> np.ndarray:
        """Sorted union of every named boundary set."""
        if not self.boundary_sets:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(list(self.boundary_sets.values())))

    def boundary_set(self, name: str) -> np.ndarray:
        try:
            return self.boundary_sets[name]
        except KeyError:
            raise KeyError(
                f"no boundary set {name!r}; available: {sorted(self.boundary_sets)}"
            ) from None


def boundary_edges_2d(mesh: Mesh) -> np.ndarray:
    """Edges of a triangle mesh belonging to exactly one triangle.

    Returns an ``(nb, 2)`` array of vertex index pairs (sorted within a pair).
    """
    if mesh.dim != 2:
        raise ValueError("boundary_edges_2d requires a 2-D mesh")
    tri = mesh.elements
    edges = np.vstack([tri[:, [0, 1]], tri[:, [1, 2]], tri[:, [2, 0]]])
    edges = np.sort(edges, axis=1)
    uniq, counts = np.unique(edges, axis=0, return_counts=True)
    return uniq[counts == 1]


def boundary_faces_3d(mesh: Mesh) -> np.ndarray:
    """Triangular faces of a tet mesh belonging to exactly one tetrahedron."""
    if mesh.dim != 3:
        raise ValueError("boundary_faces_3d requires a 3-D mesh")
    tet = mesh.elements
    faces = np.vstack(
        [tet[:, [0, 1, 2]], tet[:, [0, 1, 3]], tet[:, [0, 2, 3]], tet[:, [1, 2, 3]]]
    )
    faces = np.sort(faces, axis=1)
    uniq, counts = np.unique(faces, axis=0, return_counts=True)
    return uniq[counts == 1]


def triangle_quality(mesh: Mesh) -> np.ndarray:
    """Per-triangle quality in (0, 1]: normalized radius ratio.

    q = 4*sqrt(3)*area / (sum of squared edge lengths); 1 for equilateral,
    → 0 for degenerate slivers.  Used to sanity-check generated grids
    (bench F3).
    """
    if mesh.dim != 2:
        raise ValueError("triangle_quality requires a 2-D mesh")
    p = mesh.points[mesh.elements]  # (ne, 3, 2)
    e0 = p[:, 1] - p[:, 0]
    e1 = p[:, 2] - p[:, 1]
    e2 = p[:, 0] - p[:, 2]
    area = 0.5 * np.abs(e0[:, 0] * (-e2[:, 1]) - e0[:, 1] * (-e2[:, 0]))
    lensq = (e0**2).sum(1) + (e1**2).sum(1) + (e2**2).sum(1)
    with np.errstate(divide="ignore", invalid="ignore"):
        q = 4.0 * np.sqrt(3.0) * area / lensq
    return np.nan_to_num(q)
