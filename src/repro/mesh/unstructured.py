"""Unstructured 2-D mesh generation (Test Case 3 substitute).

The paper's Test Case 3 runs Poisson on a "special 2D domain" (its Figure 3,
whose geometry is not recoverable from the text) with an unstructured grid of
521,185 points.  We substitute a plate-with-hole domain — the unit square with
a circular hole — which exercises exactly the same code path: a genuinely
unstructured triangulation with irregular vertex degrees, partitioned by the
general graph partitioner.  See DESIGN.md §2.

The generator seeds a jittered lattice, inserts exact points on the hole
circle, Delaunay-triangulates (scipy.spatial), and discards triangles whose
centroid falls inside the hole.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

from repro.mesh.mesh import Mesh, boundary_edges_2d
from repro.utils.rng import make_rng


def plate_with_hole(
    target_h: float = 0.02,
    hole_center: tuple[float, float] = (0.5, 0.5),
    hole_radius: float = 0.25,
    jitter: float = 0.25,
    seed: int | np.random.Generator | None = 0,
) -> Mesh:
    """Unstructured triangulation of the unit square minus a disc.

    Parameters
    ----------
    target_h:
        Approximate mesh spacing (the paper-scale grid corresponds to
        ``target_h ≈ 0.0015``).
    jitter:
        Interior lattice points are perturbed by ``jitter * target_h`` in each
        coordinate, so the triangulation is genuinely irregular.
    """
    if not 0.0 < hole_radius < 0.5:
        raise ValueError("hole_radius must lie in (0, 0.5)")
    rng = make_rng(seed)
    n = max(4, int(round(1.0 / target_h)) + 1)
    xs = np.linspace(0.0, 1.0, n)
    X, Y = np.meshgrid(xs, xs, indexing="xy")
    pts = np.column_stack([X.ravel(), Y.ravel()])

    cx, cy = hole_center
    r = np.hypot(pts[:, 0] - cx, pts[:, 1] - cy)
    on_outer = (
        (pts[:, 0] == 0.0) | (pts[:, 0] == 1.0) | (pts[:, 1] == 0.0) | (pts[:, 1] == 1.0)  # repro: noqa(RPR001) — lattice points sit exactly on the box
    )
    # keep lattice points clearly outside the hole (with a guard band so no
    # sliver triangles appear between lattice and circle points)
    keep = r > hole_radius + 0.5 * target_h
    pts = pts[keep]
    on_outer = on_outer[keep]

    # jitter interior points only
    interior = ~on_outer
    h = 1.0 / (n - 1)
    pts[interior] += (rng.random((int(interior.sum()), 2)) - 0.5) * 2 * jitter * h
    # jitter must not push points into the guard band or outside the square
    pts = np.clip(pts, 0.0, 1.0)
    r = np.hypot(pts[:, 0] - cx, pts[:, 1] - cy)
    bad = (r < hole_radius + 0.25 * target_h) & interior
    if np.any(bad):
        scale = (hole_radius + 0.5 * target_h) / r[bad]
        pts[bad] = np.column_stack(
            [cx + (pts[bad, 0] - cx) * scale, cy + (pts[bad, 1] - cy) * scale]
        )

    # exact points on the hole circle
    circumference = 2 * np.pi * hole_radius
    m = max(8, int(round(circumference / h)))
    theta = np.linspace(0.0, 2 * np.pi, m, endpoint=False)
    circle = np.column_stack(
        [cx + hole_radius * np.cos(theta), cy + hole_radius * np.sin(theta)]
    )
    points = np.vstack([pts, circle])

    tri = Delaunay(points)
    cent = points[tri.simplices].mean(axis=1)
    outside = np.hypot(cent[:, 0] - cx, cent[:, 1] - cy) > hole_radius
    elements = tri.simplices[outside].astype(np.int64)

    # drop points orphaned by hole removal and renumber
    used = np.unique(elements)
    remap = np.full(len(points), -1, dtype=np.int64)
    remap[used] = np.arange(len(used))
    mesh = Mesh(points[used], remap[elements])

    # classify boundary from the actual triangulation
    bedges = boundary_edges_2d(mesh)
    bnodes = np.unique(bedges)
    p = mesh.points[bnodes]
    rb = np.hypot(p[:, 0] - cx, p[:, 1] - cy)
    on_hole = rb < hole_radius + 0.5 * h
    mesh.boundary_sets = {
        "outer": bnodes[~on_hole],
        "hole": bnodes[on_hole],
    }
    return mesh
