"""Structured triangulated rectangles.

Test Cases 1, 4(2D variant) and 5 use uniform grids on the unit square (the
paper's production runs used 1001x1001 points).  Each grid cell is split into
two right triangles; with this split, the P1 stiffness matrix of the Laplacian
reduces to the classical 5-point stencil, which is what makes the FFT-based
subdomain preconditioner of Sec. 5.2 exact on rectangles.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.mesh import Mesh


def structured_rectangle(
    nx: int,
    ny: int,
    x0: float = 0.0,
    x1: float = 1.0,
    y0: float = 0.0,
    y1: float = 1.0,
) -> Mesh:
    """Uniform triangulated rectangle with ``nx × ny`` points (x fastest).

    Boundary sets: ``left`` (x=x0), ``right`` (x=x1), ``bottom`` (y=y0),
    ``top`` (y=y1).  Corners belong to both adjacent sets.
    """
    if nx < 2 or ny < 2:
        raise ValueError("need at least 2 points per direction")
    xs = np.linspace(x0, x1, nx)
    ys = np.linspace(y0, y1, ny)
    X, Y = np.meshgrid(xs, ys, indexing="xy")  # Y slow, X fast
    points = np.column_stack([X.ravel(), Y.ravel()])

    # two triangles per cell, consistent counter-clockwise orientation
    ix, iy = np.meshgrid(np.arange(nx - 1), np.arange(ny - 1), indexing="xy")
    v00 = (iy * nx + ix).ravel()
    v10 = v00 + 1
    v01 = v00 + nx
    v11 = v01 + 1
    lower = np.column_stack([v00, v10, v11])
    upper = np.column_stack([v00, v11, v01])
    elements = np.vstack([lower, upper])

    idx = np.arange(nx * ny)
    boundary = {
        "left": idx[idx % nx == 0],
        "right": idx[idx % nx == nx - 1],
        "bottom": idx[: nx],
        "top": idx[nx * (ny - 1) :],
    }
    return Mesh(points, elements, boundary, structured_shape=(nx, ny))
