"""Uniform mesh refinement (2-D triangles).

Regular "red" refinement: each triangle splits into four by connecting edge
midpoints.  Convergence studies (and growing a coarse mesh toward the paper's
grid sizes) use this; boundary sets are carried over, with midpoints of
boundary edges joining the sets of both endpoints' common sets.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.mesh import Mesh


def refine_uniform(mesh: Mesh) -> Mesh:
    """One level of red refinement of a triangle mesh."""
    if mesh.dim != 2:
        raise ValueError("refine_uniform supports 2-D triangle meshes")
    tri = mesh.elements
    n = mesh.num_points

    # unique edges and midpoint numbering
    edges = np.vstack([tri[:, [0, 1]], tri[:, [1, 2]], tri[:, [2, 0]]])
    edges = np.sort(edges, axis=1)
    uniq, inverse = np.unique(edges, axis=0, return_inverse=True)
    mid_ids = n + np.arange(len(uniq))
    midpoints = 0.5 * (mesh.points[uniq[:, 0]] + mesh.points[uniq[:, 1]])
    points = np.vstack([mesh.points, midpoints])

    ne = len(tri)
    m01 = mid_ids[inverse[:ne]]
    m12 = mid_ids[inverse[ne : 2 * ne]]
    m20 = mid_ids[inverse[2 * ne :]]
    elements = np.vstack(
        [
            np.column_stack([tri[:, 0], m01, m20]),
            np.column_stack([m01, tri[:, 1], m12]),
            np.column_stack([m20, m12, tri[:, 2]]),
            np.column_stack([m01, m12, m20]),
        ]
    )

    # boundary sets: a midpoint joins every set containing both edge endpoints
    boundary: dict[str, np.ndarray] = {}
    for name, nodes in mesh.boundary_sets.items():
        in_set = np.zeros(n, dtype=bool)
        in_set[nodes] = True
        both = in_set[uniq[:, 0]] & in_set[uniq[:, 1]]
        boundary[name] = np.concatenate([nodes, mid_ids[both]])

    shape = None
    if mesh.structured_shape is not None and len(mesh.structured_shape) == 2:
        # red refinement of a structured grid stays structured only in point
        # count terms; the numbering changes, so drop the structured tag
        shape = None
    return Mesh(points, elements, boundary, structured_shape=shape)
