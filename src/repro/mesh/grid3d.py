"""Structured tetrahedral boxes.

Test Cases 2 and 4 use the 3-D unit cube (101³ points in the paper).  Each
grid cell is split into six tetrahedra (Kuhn/Freudenthal triangulation), which
keeps the mesh conforming across cells.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.mesh import Mesh

# The six tetrahedra of the Kuhn triangulation of the unit cube, as index
# permutations of the cube's 8 corners (corner id bit pattern: x + 2y + 4z).
_KUHN_TETS = np.asarray(
    [
        [0, 1, 3, 7],
        [0, 1, 5, 7],
        [0, 2, 3, 7],
        [0, 2, 6, 7],
        [0, 4, 5, 7],
        [0, 4, 6, 7],
    ],
    dtype=np.int64,
)


def structured_box(
    nx: int,
    ny: int,
    nz: int,
    x0: float = 0.0,
    x1: float = 1.0,
    y0: float = 0.0,
    y1: float = 1.0,
    z0: float = 0.0,
    z1: float = 1.0,
) -> Mesh:
    """Uniform tetrahedral box with ``nx × ny × nz`` points (x fastest, z slowest).

    Boundary sets: ``left``/``right`` (x), ``front``/``back`` (y),
    ``bottom``/``top`` (z).
    """
    if min(nx, ny, nz) < 2:
        raise ValueError("need at least 2 points per direction")
    xs = np.linspace(x0, x1, nx)
    ys = np.linspace(y0, y1, ny)
    zs = np.linspace(z0, z1, nz)
    Z, Y, X = np.meshgrid(zs, ys, xs, indexing="ij")  # z slowest, x fastest
    points = np.column_stack([X.ravel(), Y.ravel(), Z.ravel()])

    ix, iy, iz = np.meshgrid(
        np.arange(nx - 1), np.arange(ny - 1), np.arange(nz - 1), indexing="ij"
    )
    base = ((iz * ny + iy) * nx + ix).ravel()
    # corner offsets for bit pattern x + 2y + 4z
    offs = np.asarray(
        [0, 1, nx, nx + 1, nx * ny, nx * ny + 1, nx * ny + nx, nx * ny + nx + 1],
        dtype=np.int64,
    )
    corners = base[:, None] + offs[None, :]  # (ncells, 8)
    elements = corners[:, _KUHN_TETS].reshape(-1, 4)

    idx = np.arange(nx * ny * nz)
    jx = idx % nx
    jy = (idx // nx) % ny
    jz = idx // (nx * ny)
    boundary = {
        "left": idx[jx == 0],
        "right": idx[jx == nx - 1],
        "front": idx[jy == 0],
        "back": idx[jy == ny - 1],
        "bottom": idx[jz == 0],
        "top": idx[jz == nz - 1],
    }
    return Mesh(points, elements, boundary, structured_shape=(nx, ny, nz))
