"""Computational grids: structured 2D/3D, unstructured 2D, curvilinear ring."""

from repro.mesh.mesh import Mesh, boundary_edges_2d, boundary_faces_3d, triangle_quality
from repro.mesh.grid2d import structured_rectangle
from repro.mesh.grid3d import structured_box
from repro.mesh.unstructured import plate_with_hole
from repro.mesh.ring import quarter_ring
from repro.mesh.lshape import l_shape
from repro.mesh.refine import refine_uniform
from repro.mesh.vtkio import read_vtk_points_cells, write_vtk

__all__ = [
    "l_shape",
    "refine_uniform",
    "write_vtk",
    "read_vtk_points_cells",
    "Mesh",
    "boundary_edges_2d",
    "boundary_faces_3d",
    "triangle_quality",
    "structured_rectangle",
    "structured_box",
    "plate_with_hole",
    "quarter_ring",
]
