"""L-shaped domain triangulation.

The classic corner-singularity domain ([0,1]² minus the upper-right quadrant):
the re-entrant corner at (1/2, 1/2) limits solution regularity, making it the
standard stress test for error estimates and a natural extra domain for the
partitioner (non-convex geometry produces nontrivial cuts).  Structured
triangulation of the three sub-squares, conforming across their interfaces.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.mesh import Mesh


def l_shape(n: int) -> Mesh:
    """L-shaped domain with lattice spacing 1/(2(n-1)) (n points per half-side).

    Points: the full (2n-1)×(2n-1) lattice minus the open upper-right
    quadrant.  Boundary sets: ``outer`` (the square-outline portions) and
    ``reentrant`` (the two edges meeting at the re-entrant corner; the
    corner point belongs to ``reentrant``).
    """
    if n < 2:
        raise ValueError("need n >= 2 points per half-side")
    m = 2 * n - 1  # lattice points per full side
    h = 1.0 / (m - 1)
    keep = np.zeros((m, m), dtype=bool)  # [iy, ix]
    half = n - 1  # lattice index of x = y = 1/2
    keep[:, :] = True
    keep[half + 1 :, half + 1 :] = False  # remove open upper-right quadrant

    ids = np.full((m, m), -1, dtype=np.int64)
    count = 0
    pts = []
    for iy in range(m):
        for ix in range(m):
            if keep[iy, ix]:
                ids[iy, ix] = count
                pts.append((ix * h, iy * h))
                count += 1
    points = np.asarray(pts)

    elements = []
    for iy in range(m - 1):
        for ix in range(m - 1):
            corners = ids[iy, ix], ids[iy, ix + 1], ids[iy + 1, ix + 1], ids[iy + 1, ix]
            if min(corners) < 0:
                continue
            v00, v10, v11, v01 = corners
            elements.append((v00, v10, v11))
            elements.append((v00, v11, v01))
    elements = np.asarray(elements, dtype=np.int64)

    # boundary classification straight from the lattice geometry
    x, y = points[:, 0], points[:, 1]
    eps = 1e-12
    on_outer = (
        (x < eps)
        | (y < eps)
        | (x > 1 - eps)
        | (y > 1 - eps)
        | ((np.abs(x - 0.5) < eps) & (y > 0.5 - eps))
        | ((np.abs(y - 0.5) < eps) & (x > 0.5 - eps))
    )
    # split the two re-entrant edges out of the outline
    reentrant = (
        ((np.abs(x - 0.5) < eps) & (y > 0.5 - eps) & (y < 1 + eps))
        | ((np.abs(y - 0.5) < eps) & (x > 0.5 - eps) & (x < 1 + eps))
    )
    idx = np.arange(len(points))
    boundary = {
        "outer": idx[on_outer & ~reentrant],
        "reentrant": idx[reentrant],
    }
    return Mesh(points, elements, boundary)
