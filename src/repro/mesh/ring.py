"""Curvilinear quarter-ring grid (Test Case 6, paper Fig. 5).

The elasticity test case uses one quarter of a ring with inner radius 1 and
outer radius 2, meshed with a curvilinear structured grid of triangular
elements.  Boundary sets follow the paper's notation: ``gamma1`` is the edge
at θ = π/2 (the x = 0 symmetry plane, where u₁ = 0) and ``gamma2`` the edge at
θ = 0 (the y = 0 plane, where u₂ = 0); ``stress`` collects the inner and
outer circular arcs where the stress vector is prescribed.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.mesh import Mesh


def quarter_ring(
    n_theta: int,
    n_r: int,
    r_inner: float = 1.0,
    r_outer: float = 2.0,
) -> Mesh:
    """Quarter ring with ``n_theta × n_r`` points (θ fastest).

    θ runs from 0 (gamma2) to π/2 (gamma1); r from ``r_inner`` to ``r_outer``.
    """
    if n_theta < 2 or n_r < 2:
        raise ValueError("need at least 2 points per direction")
    if not 0 < r_inner < r_outer:
        raise ValueError("require 0 < r_inner < r_outer")
    thetas = np.linspace(0.0, np.pi / 2.0, n_theta)
    radii = np.linspace(r_inner, r_outer, n_r)
    R, T = np.meshgrid(radii, thetas, indexing="ij")  # r slow, theta fast
    points = np.column_stack([(R * np.cos(T)).ravel(), (R * np.sin(T)).ravel()])

    it, ir = np.meshgrid(np.arange(n_theta - 1), np.arange(n_r - 1), indexing="xy")
    v00 = (ir * n_theta + it).ravel()
    v10 = v00 + 1
    v01 = v00 + n_theta
    v11 = v01 + 1
    elements = np.vstack(
        [np.column_stack([v00, v10, v11]), np.column_stack([v00, v11, v01])]
    )

    idx = np.arange(n_theta * n_r)
    jt = idx % n_theta
    jr = idx // n_theta
    boundary = {
        "gamma2": idx[jt == 0],              # θ = 0: y = 0 plane, u2 = 0
        "gamma1": idx[jt == n_theta - 1],    # θ = π/2: x = 0 plane, u1 = 0
        "stress": idx[(jr == 0) | (jr == n_r - 1)],  # inner + outer arcs
    }
    return Mesh(points, elements, boundary, structured_shape=(n_theta, n_r))
