"""Legacy-VTK output of meshes, solution fields, and partitions.

Writes ASCII legacy ``.vtk`` unstructured-grid files viewable in ParaView /
VisIt: triangles (cell type 5) and tetrahedra (cell type 10), with any number
of named point-data fields (solutions, partition membership, errors).  This
is the practical hand-off format for users adopting the library on real
simulations.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.mesh.mesh import Mesh

_CELL_TYPES = {3: 5, 4: 10}  # triangle, tetrahedron


def write_vtk(
    path: str | Path,
    mesh: Mesh,
    point_data: dict[str, np.ndarray] | None = None,
    title: str = "repro output",
) -> Path:
    """Write ``mesh`` (and optional nodal fields) as a legacy VTK file.

    Scalar fields must have one value per mesh point; 2-vector fields (e.g.
    elasticity displacements, shape ``(n, 2)``) are padded to 3-D vectors.
    """
    path = Path(path)
    point_data = point_data or {}
    n = mesh.num_points
    for name, field in point_data.items():
        field = np.asarray(field)
        if field.shape[0] != n:
            raise ValueError(f"field {name!r} has {field.shape[0]} values, need {n}")
        if field.ndim > 2 or (field.ndim == 2 and field.shape[1] not in (2, 3)):
            raise ValueError(f"field {name!r} must be scalar or 2/3-vector")

    k = mesh.elements.shape[1]
    cell_type = _CELL_TYPES[k]
    pts3 = np.zeros((n, 3))
    pts3[:, : mesh.dim] = mesh.points

    lines = [
        "# vtk DataFile Version 3.0",
        title,
        "ASCII",
        "DATASET UNSTRUCTURED_GRID",
        f"POINTS {n} double",
    ]
    lines.extend(" ".join(f"{c:.10g}" for c in p) for p in pts3)
    ne = mesh.num_elements
    lines.append(f"CELLS {ne} {ne * (k + 1)}")
    lines.extend(f"{k} " + " ".join(str(int(v)) for v in e) for e in mesh.elements)
    lines.append(f"CELL_TYPES {ne}")
    lines.extend([str(cell_type)] * ne)

    if point_data:
        lines.append(f"POINT_DATA {n}")
        for name, field in point_data.items():
            field = np.asarray(field, dtype=np.float64)
            safe = name.replace(" ", "_")
            if field.ndim == 1:
                lines.append(f"SCALARS {safe} double 1")
                lines.append("LOOKUP_TABLE default")
                lines.extend(f"{v:.10g}" for v in field)
            else:
                vec3 = np.zeros((n, 3))
                vec3[:, : field.shape[1]] = field
                lines.append(f"VECTORS {safe} double")
                lines.extend(" ".join(f"{c:.10g}" for c in v) for v in vec3)

    path.write_text("\n".join(lines) + "\n")
    return path


def read_vtk_points_cells(path: str | Path) -> tuple[np.ndarray, np.ndarray]:
    """Minimal reader for round-trip testing: returns (points, elements)."""
    tokens = Path(path).read_text().split()
    i = tokens.index("POINTS")
    n = int(tokens[i + 1])
    pts = np.asarray(tokens[i + 3 : i + 3 + 3 * n], dtype=np.float64).reshape(n, 3)
    j = tokens.index("CELLS")
    ne = int(tokens[j + 1])
    total = int(tokens[j + 2])
    raw = np.asarray(tokens[j + 3 : j + 3 + total], dtype=np.int64)
    k = int(raw[0])
    cells = raw.reshape(ne, k + 1)[:, 1:]
    return pts, cells
