"""P1 (linear) tetrahedron element geometry."""

from __future__ import annotations

import numpy as np

from repro.mesh.mesh import Mesh


def tet_geometry(mesh: Mesh) -> tuple[np.ndarray, np.ndarray]:
    """Volumes and basis gradients of every tetrahedron.

    Returns
    -------
    volumes:
        ``(ne,)`` tetrahedron volumes.
    grads:
        ``(ne, 4, 3)`` constant gradients of the four barycentric basis
        functions on each tetrahedron.
    """
    if mesh.dim != 3:
        raise ValueError("tet_geometry requires a 3-D mesh")
    p = mesh.points[mesh.elements]  # (ne, 4, 3)
    d = p[:, 1:] - p[:, :1]  # (ne, 3, 3): edge vectors from vertex 0
    det = np.linalg.det(d)
    if np.any(det == 0.0):  # repro: noqa(RPR001) — exactly degenerate elements only; near-zero is legal
        raise ValueError("mesh contains degenerate (zero-volume) tetrahedra")
    volumes = np.abs(det) / 6.0
    # rows of inv(d) are the gradients of λ1, λ2, λ3
    inv = np.linalg.inv(d)  # (ne, 3, 3); batched compiled kernel
    g123 = np.transpose(inv, (0, 2, 1))
    g0 = -g123.sum(axis=1, keepdims=True)
    grads = np.concatenate([g0, g123], axis=1)
    return volumes, grads
