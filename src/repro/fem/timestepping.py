"""Implicit time stepping for the heat equation (Test Case 4).

The paper discretizes u_t = k ∇²u with implicit Euler, giving per time step

    (M + Δt K) u^l = M u^{l-1},

where M is the mass matrix and K the (scaled) stiffness matrix — Eq. (13).
The system matrix is assembled once and reused across steps.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.fem.assembly import assemble_mass, assemble_stiffness
from repro.mesh.mesh import Mesh
from repro.utils.validation import ensure_csr


class ImplicitEulerOperator:
    """System operator A = M + Δt·K and right-hand-side builder.

    Parameters
    ----------
    mesh:
        Spatial mesh.
    dt:
        Time step (paper: Δt = 0.05).
    conductivity:
        Heat conductivity k (paper: k = 1).
    """

    def __init__(self, mesh: Mesh, dt: float, conductivity: float = 1.0) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        if conductivity <= 0:
            raise ValueError("conductivity must be positive")
        self.dt = dt
        self.conductivity = conductivity
        self.mass = assemble_mass(mesh)
        self.stiffness = assemble_stiffness(mesh, kappa=conductivity)
        self.matrix = ensure_csr(self.mass + dt * self.stiffness)

    def rhs(self, u_prev: np.ndarray) -> np.ndarray:
        """Right-hand side M u^{l-1} for the next implicit step."""
        u_prev = np.asarray(u_prev, dtype=np.float64)
        if u_prev.shape[0] != self.mass.shape[0]:
            raise ValueError("u_prev has wrong length")
        return self.mass @ u_prev
