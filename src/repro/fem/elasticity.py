"""Linear elasticity in the Navier (Lamé) form of paper Eq. (15):

    −μ Δu − (μ + λ) ∇(∇·u) = f.

The weak form assembled here is

    μ ∫ ∇u : ∇v dx + (μ + λ) ∫ (∇·u)(∇·v) dx = ∫ f · v dx,

discretized with P1 triangles and two displacement unknowns per node.  The
dof numbering is *node-blocked*: dof(node, comp) = 2*node + comp, so that the
graph partitioner can keep both components of a node on one processor (the
paper's TC6 has "two unknowns per grid point").
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.fem.p1_triangle import triangle_geometry
from repro.mesh.mesh import Mesh
from repro.sparse.csr import csr_from_coo


def elasticity_dof(node: np.ndarray | int, comp: int) -> np.ndarray | int:
    """Global dof index of displacement component ``comp`` at ``node``."""
    return 2 * np.asarray(node) + comp if not np.isscalar(node) else 2 * node + comp


def assemble_elasticity(mesh: Mesh, mu: float, lam: float) -> sp.csr_matrix:
    """Stiffness matrix of the Navier operator on a 2-D P1 mesh.

    Element matrix (6x6, dofs ordered u1_0, u2_0, u1_1, u2_1, u1_2, u2_2):

        K_e = μ A (∇φ_i·∇φ_j) δ_cd  +  (μ+λ) A d_ic d_jd,

    where d_ic = ∂φ_i/∂x_c is the divergence row.
    """
    if mesh.dim != 2:
        raise ValueError("assemble_elasticity supports 2-D meshes")
    if mu <= 0:
        raise ValueError("mu must be positive")
    areas, grads = triangle_geometry(mesh)  # (ne,), (ne, 3, 2)
    ne = mesh.num_elements

    # vector-Laplacian part: kron(scalar stiffness, I2)
    ks = areas[:, None, None] * np.einsum("eid,ejd->eij", grads, grads)  # (ne,3,3)
    local = np.zeros((ne, 6, 6))
    for c in range(2):
        local[:, c::2, c::2] += mu * ks

    # grad-div part: outer product of the divergence rows
    d = grads.reshape(ne, 6)  # d[e, 2*i + c] = ∂φ_i/∂x_c
    local += (mu + lam) * areas[:, None, None] * d[:, :, None] * d[:, None, :]

    # scatter with node-blocked dof numbering
    elems = mesh.elements
    edofs = np.empty((ne, 6), dtype=np.int64)
    edofs[:, 0::2] = 2 * elems
    edofs[:, 1::2] = 2 * elems + 1
    rows = np.repeat(edofs, 6, axis=1).ravel()
    cols = np.tile(edofs, (1, 6)).ravel()
    n = 2 * mesh.num_points
    return csr_from_coo(rows, cols, local.ravel(), (n, n))


def elasticity_load(
    mesh: Mesh, f: Callable[[np.ndarray], np.ndarray]
) -> np.ndarray:
    """Load vector for a vector volume load ``f: (m,2) points → (m,2) values``."""
    areas, _ = triangle_geometry(mesh)
    centroids = mesh.points[mesh.elements].mean(axis=1)
    fvals = np.asarray(f(centroids), dtype=np.float64)
    if fvals.shape != (mesh.num_elements, 2):
        raise ValueError("f must return an (ne, 2) array")
    contrib = (areas / 3.0)[:, None] * fvals  # per-vertex share of each element
    b = np.zeros(2 * mesh.num_points)
    for c in range(2):
        np.add.at(b, 2 * mesh.elements.ravel() + c,
                  np.repeat(contrib[:, c], 3))
    return b
