"""Finite-element discretization (P1 triangles and tetrahedra).

Provides the discrete operators the paper's test suite needs: Laplacian
stiffness, mass matrices, convection with streamline-upwind weighting, and
plane elasticity in the Navier (μ, λ) form of Eq. (15).
"""

from repro.fem.p1_triangle import triangle_geometry
from repro.fem.p1_tet import tet_geometry
from repro.fem.assembly import (
    assemble_convection,
    assemble_stiffness_tensor,
    assemble_load,
    assemble_mass,
    assemble_stiffness,
)
from repro.fem.supg import assemble_streamline_diffusion, peclet_tau
from repro.fem.elasticity import assemble_elasticity, elasticity_load
from repro.fem.boundary import apply_dirichlet, dirichlet_dofs_from_nodes
from repro.fem.timestepping import ImplicitEulerOperator
from repro.fem.neumann import (
    assemble_neumann_load,
    assemble_traction_load,
    boundary_edges_of_set,
)
from repro.fem.norms import error_norms, h1_seminorm, l2_norm

__all__ = [
    "triangle_geometry",
    "tet_geometry",
    "assemble_stiffness",
    "assemble_stiffness_tensor",
    "assemble_mass",
    "assemble_convection",
    "assemble_load",
    "assemble_streamline_diffusion",
    "peclet_tau",
    "assemble_elasticity",
    "elasticity_load",
    "apply_dirichlet",
    "dirichlet_dofs_from_nodes",
    "ImplicitEulerOperator",
    "assemble_neumann_load",
    "assemble_traction_load",
    "boundary_edges_of_set",
    "l2_norm",
    "h1_seminorm",
    "error_norms",
]
