"""Discrete error norms.

Max-norm errors are convenient but mesh-dependent; convergence studies
report the L² and H¹ (energy) norms, computed exactly for P1 fields through
the mass and stiffness matrices:

    ‖v‖²_L² = vᵀ M v,        |v|²_H¹ = vᵀ K v.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.fem.assembly import assemble_mass, assemble_stiffness
from repro.mesh.mesh import Mesh


def l2_norm(mesh: Mesh, v: np.ndarray, mass: sp.csr_matrix | None = None) -> float:
    """L² norm of the P1 field with nodal values ``v``."""
    v = np.asarray(v, dtype=np.float64)
    if v.shape != (mesh.num_points,):
        raise ValueError("one nodal value per mesh point required")
    m = mass if mass is not None else assemble_mass(mesh)
    return float(np.sqrt(max(v @ (m @ v), 0.0)))


def h1_seminorm(mesh: Mesh, v: np.ndarray, stiffness: sp.csr_matrix | None = None) -> float:
    """H¹ seminorm (energy norm) of the P1 field ``v``."""
    v = np.asarray(v, dtype=np.float64)
    if v.shape != (mesh.num_points,):
        raise ValueError("one nodal value per mesh point required")
    k = stiffness if stiffness is not None else assemble_stiffness(mesh)
    return float(np.sqrt(max(v @ (k @ v), 0.0)))


def error_norms(
    mesh: Mesh, computed: np.ndarray, exact: np.ndarray
) -> dict[str, float]:
    """max / L² / H¹ errors of ``computed`` against nodal ``exact`` values."""
    e = np.asarray(computed, dtype=np.float64) - np.asarray(exact, dtype=np.float64)
    return {
        "max": float(np.abs(e).max()),
        "l2": l2_norm(mesh, e),
        "h1": h1_seminorm(mesh, e),
    }
